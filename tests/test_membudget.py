"""The process-wide staging-memory budget: ledger, scoping, and audit."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpisim.errors import MemoryBudgetError, MpiSimError
from repro.utils.membudget import (
    MEMORY_BUDGET,
    MemoryBudget,
    auditing_memory,
    budget_scope,
)


class TestLedger:
    def test_inactive_budget_is_a_no_op(self):
        budget = MemoryBudget()
        assert not budget.active
        budget.reserve(1 << 40)  # would blow any limit
        assert budget.used_bytes() == 0
        assert budget.headroom_bytes() is None

    def test_reserve_release_roundtrip(self):
        budget = MemoryBudget(limit_bytes=1024)
        budget.reserve(600, rank=0)
        budget.reserve(200, rank=0)
        assert budget.used_bytes(0) == 800
        assert budget.headroom_bytes(0) == 224
        budget.release(800, rank=0)
        assert budget.used_bytes(0) == 0
        assert budget.peak_bytes(0) == 800  # high-water mark survives drain

    def test_over_limit_raises_typed_before_mutating(self):
        budget = MemoryBudget(limit_bytes=1024)
        budget.reserve(1000, rank=0)
        with pytest.raises(MemoryBudgetError, match="DDR_MEM_BUDGET_MB"):
            budget.reserve(100, "packed payload", rank=0)
        # The failed reservation charged nothing.
        assert budget.used_bytes(0) == 1000

    def test_typed_error_is_catchable_both_ways(self):
        # Callers catching the library's root or the stdlib MemoryError
        # both see budget exhaustion.
        assert issubclass(MemoryBudgetError, MpiSimError)
        assert issubclass(MemoryBudgetError, MemoryError)

    def test_limit_is_per_rank(self):
        budget = MemoryBudget(limit_bytes=100)
        for rank in range(4):
            budget.reserve(90, rank=rank)
        assert budget.total_used_bytes() == 360
        with pytest.raises(MemoryBudgetError):
            budget.reserve(20, rank=2)

    def test_release_clamps_at_zero(self):
        # Enabling a budget mid-flight: stragglers allocated before the
        # limit existed release into an empty ledger harmlessly.
        budget = MemoryBudget(limit_bytes=1024)
        budget.release(500, rank=0)
        assert budget.used_bytes(0) == 0
        budget.reserve(1024, rank=0)  # full limit still available

    def test_peak_without_rank_is_worst_rank(self):
        budget = MemoryBudget(limit_bytes=1024)
        budget.reserve(100, rank=0)
        budget.reserve(700, rank=1)
        assert budget.peak_bytes() == 700


class TestBudgetScope:
    def test_installs_and_restores(self):
        assert not MEMORY_BUDGET.active
        with budget_scope(limit_mb=1) as budget:
            assert budget is MEMORY_BUDGET
            assert budget.active
            assert budget.limit_bytes == 1 << 20
            budget.reserve(512, rank=0)
        assert not MEMORY_BUDGET.active
        assert MEMORY_BUDGET.used_bytes(0) == 0

    def test_restores_prior_ledger_on_nesting(self):
        with budget_scope(limit_bytes=4096):
            MEMORY_BUDGET.reserve(100, rank=0)
            with budget_scope(limit_bytes=64):
                assert MEMORY_BUDGET.used_bytes(0) == 0
                with pytest.raises(MemoryBudgetError):
                    MEMORY_BUDGET.reserve(100, rank=0)
            assert MEMORY_BUDGET.limit_bytes == 4096
            assert MEMORY_BUDGET.used_bytes(0) == 100

    def test_none_disables_within_block(self):
        with budget_scope(limit_bytes=64):
            with budget_scope(None):
                MEMORY_BUDGET.reserve(1 << 20, rank=0)  # no limit: fine
            assert MEMORY_BUDGET.limit_bytes == 64

    def test_rejects_both_units(self):
        with pytest.raises(ValueError, match="not both"):
            with budget_scope(1, limit_bytes=1024):
                pass


class TestAudit:
    def test_measures_real_allocations(self):
        nbytes = 4 << 20
        with auditing_memory() as audit:
            block = np.ones(nbytes, dtype=np.uint8)
            del block
        # tracemalloc sees the numpy block plus small interpreter noise.
        assert audit.measured_peak_bytes >= nbytes
        assert audit.measured_peak_bytes < 2 * nbytes

    def test_peak_is_high_water_not_sum(self):
        nbytes = 1 << 20
        with auditing_memory() as audit:
            for _ in range(8):
                block = np.ones(nbytes, dtype=np.uint8)
                del block  # sequential blocks never coexist
        assert audit.measured_peak_bytes < 3 * nbytes
