"""Colormap, scalar-field rendering and PPM tests."""

from __future__ import annotations

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.viz import (
    BLUE_WHITE_RED,
    COLORMAPS,
    Colormap,
    GRAYSCALE,
    TOOTH,
    assemble_tiles,
    normalize,
    read_ppm,
    render_scalar_field,
    write_ppm,
)


class TestColormap:
    def test_endpoints(self):
        assert BLUE_WHITE_RED(np.array(0.0)).tolist() == [0.0, 0.0, 1.0]
        assert BLUE_WHITE_RED(np.array(1.0)).tolist() == [1.0, 0.0, 0.0]
        assert BLUE_WHITE_RED(np.array(0.5)).tolist() == [1.0, 1.0, 1.0]

    def test_clipping(self):
        assert BLUE_WHITE_RED(np.array(-5.0)).tolist() == [0.0, 0.0, 1.0]
        assert BLUE_WHITE_RED(np.array(5.0)).tolist() == [1.0, 0.0, 0.0]

    def test_shape_preserved(self):
        out = GRAYSCALE(np.zeros((4, 6)))
        assert out.shape == (4, 6, 3)

    def test_to_uint8(self):
        rgb = GRAYSCALE.to_uint8(np.array([0.0, 0.5, 1.0]))
        assert rgb.dtype == np.uint8
        assert rgb[0].tolist() == [0, 0, 0]
        assert rgb[2].tolist() == [255, 255, 255]
        assert rgb[1].tolist() == [128, 128, 128]

    def test_registry(self):
        assert set(COLORMAPS) == {"blue_white_red", "grayscale", "tooth"}
        assert COLORMAPS["tooth"] is TOOTH

    def test_bad_control_points(self):
        with pytest.raises(ValueError):
            Colormap("x", ((0.2, (0, 0, 0)), (1.0, (1, 1, 1))))
        with pytest.raises(ValueError):
            Colormap("x", ((0.0, (0, 0, 0)),))

    @given(s=st.floats(0, 1), t=st.floats(0, 1))
    @settings(max_examples=50, deadline=None)
    def test_grayscale_monotone(self, s, t):
        lo, hi = min(s, t), max(s, t)
        a = GRAYSCALE(np.array(lo))
        b = GRAYSCALE(np.array(hi))
        assert (a <= b + 1e-12).all()


class TestNormalize:
    def test_minmax(self):
        out = normalize(np.array([2.0, 4.0, 6.0]))
        assert out.tolist() == [0.0, 0.5, 1.0]

    def test_explicit_range(self):
        out = normalize(np.array([0.0, 10.0]), vmin=0, vmax=20)
        assert out.tolist() == [0.0, 0.5]

    def test_constant_field(self):
        assert normalize(np.full(4, 3.0)).tolist() == [0.0] * 4

    def test_symmetric_zero_at_half(self):
        out = normalize(np.array([-2.0, 0.0, 1.0]), symmetric=True)
        assert out[1] == 0.5
        assert out[0] == 0.0
        assert out[2] == pytest.approx(0.75)

    def test_symmetric_all_zero(self):
        assert normalize(np.zeros(3), symmetric=True).tolist() == [0.5] * 3


class TestRenderScalarField:
    def test_vorticity_style(self):
        field = np.array([[-1.0, 0.0, 1.0]])
        img = render_scalar_field(field)
        assert img.shape == (1, 3, 3)
        assert img[0, 0].tolist() == [0, 0, 255]  # negative -> blue
        assert img[0, 1].tolist() == [255, 255, 255]  # zero -> white
        assert img[0, 2].tolist() == [255, 0, 0]  # positive -> red

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            render_scalar_field(np.zeros((2, 2, 2)))


class TestAssembleTiles:
    def test_stitch(self):
        a = np.full((2, 3, 3), 10, dtype=np.uint8)
        b = np.full((2, 3, 3), 20, dtype=np.uint8)
        frame = assemble_tiles([((0, 0), a), ((2, 3), b)], (4, 6))
        assert frame[0, 0, 0] == 10
        assert frame[3, 5, 0] == 20
        assert frame[0, 5, 0] == 0

    def test_out_of_bounds(self):
        with pytest.raises(ValueError):
            assemble_tiles([((3, 0), np.zeros((2, 2, 3), np.uint8))], (4, 4))


class TestPpm:
    def test_roundtrip(self, rng):
        image = rng.integers(0, 255, (13, 17, 3)).astype(np.uint8)
        buf = io.BytesIO()
        n = write_ppm(buf, image)
        assert n == len(buf.getvalue())
        buf.seek(0)
        assert np.array_equal(read_ppm(buf), image)

    def test_file_roundtrip(self, tmp_path, rng):
        image = rng.integers(0, 255, (5, 5, 3)).astype(np.uint8)
        path = tmp_path / "x.ppm"
        write_ppm(path, image)
        assert np.array_equal(read_ppm(path), image)

    def test_comment_in_header(self, rng):
        image = rng.integers(0, 255, (2, 2, 3)).astype(np.uint8)
        blob = b"P6\n# a comment\n2 2\n255\n" + image.tobytes()
        assert np.array_equal(read_ppm(io.BytesIO(blob)), image)

    def test_rejects_wrong_dtype(self):
        with pytest.raises(ValueError):
            write_ppm(io.BytesIO(), np.zeros((2, 2, 3), dtype=np.float32))

    def test_rejects_bad_magic(self):
        with pytest.raises(ValueError):
            read_ppm(io.BytesIO(b"P5\n2 2\n255\n" + b"\x00" * 4))

    def test_rejects_truncated(self):
        with pytest.raises(ValueError):
            read_ppm(io.BytesIO(b"P6\n4 4\n255\n\x00\x00"))
