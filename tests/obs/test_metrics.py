"""MetricsRegistry: histograms, ingestion, legacy-path absorption, summary."""

from __future__ import annotations

import math

from repro.obs import Histogram, MetricsRegistry, SpanRecord
from repro.obs.metrics import BUCKET_BOUNDS_S
from repro.utils.timing import StopwatchRegistry, TransferCounters


def record(name, rank=0, dur_us=1000.0, **attrs):
    return SpanRecord(
        name=name, rank=rank, tid=1, start_us=0.0, dur_us=dur_us, attrs=attrs
    )


class TestHistogram:
    def test_observe_streams_stats(self):
        hist = Histogram()
        for value in (1e-5, 1e-3, 2.0):
            hist.observe(value)
        assert hist.count == 3
        assert math.isclose(hist.total, 1e-5 + 1e-3 + 2.0)
        assert hist.min == 1e-5
        assert hist.max == 2.0
        assert math.isclose(hist.mean, hist.total / 3)
        assert sum(hist.buckets) == 3

    def test_bucket_placement_and_overflow(self):
        hist = Histogram()
        hist.observe(5e-4)  # <= 1e-3 bound
        hist.observe(100.0)  # beyond the last bound -> overflow bucket
        assert hist.buckets[BUCKET_BOUNDS_S.index(1e-3)] == 1
        assert hist.buckets[-1] == 1

    def test_observe_aggregate_folds_mean(self):
        hist = Histogram()
        hist.observe_aggregate(count=10, total=0.5)  # mean 50 ms
        assert hist.count == 10
        assert hist.total == 0.5
        assert hist.min == hist.max == 0.05
        assert hist.buckets[BUCKET_BOUNDS_S.index(1e-1)] == 10
        hist.observe_aggregate(count=0, total=0.0)  # no-op
        assert hist.count == 10

    def test_merge(self):
        a, b = Histogram(), Histogram()
        a.observe(1e-4)
        b.observe(1.0)
        a.merge(b)
        assert a.count == 2
        assert a.min == 1e-4 and a.max == 1.0
        assert sum(a.buckets) == 2


class TestRegistry:
    def test_observe_keeps_aggregate_and_per_rank(self):
        registry = MetricsRegistry()
        registry.observe("phase.render", 0.01, rank=0)
        registry.observe("phase.render", 0.03, rank=1)
        assert registry.histograms["phase.render"].count == 2
        assert registry.by_rank[0]["phase.render"].count == 1
        assert registry.by_rank[1]["phase.render"].count == 1

    def test_ingest_spans_durations_and_bytes(self):
        registry = MetricsRegistry()
        registry.ingest(
            [
                record("mpi.Send", rank=0, dur_us=500.0, nbytes=1024),
                record("mpi.Send", rank=1, dur_us=700.0, nbytes=2048),
                record("ddr.round", rank=0, dur_us=900.0),
            ]
        )
        send = registry.histograms["mpi.Send"]
        assert send.count == 2
        assert math.isclose(send.total, 1.2e-3)
        assert registry.counters["mpi.Send.bytes"] == 3072
        assert "ddr.round.bytes" not in registry.counters

    def test_absorb_stopwatches(self):
        watches = StopwatchRegistry()
        watches.add("read", 0.2)
        watches.add("read", 0.4)
        watches.add("render", 0.1)
        registry = MetricsRegistry()
        registry.absorb_stopwatches(watches, rank=3)
        assert registry.histograms["phase.read"].count == 2
        assert math.isclose(registry.histograms["phase.read"].total, 0.6)
        assert registry.by_rank[3]["phase.render"].count == 1

    def test_absorb_transfers(self):
        counters = TransferCounters()
        counters.enabled = True
        counters.count_copy("pack", 100)
        counters.count_copy("pack", 50)
        counters.count_alloc(4096)
        registry = MetricsRegistry()
        registry.absorb_transfers(counters)
        assert registry.counters["transfer.copies.pack"] == 2
        assert registry.counters["transfer.bytes_copied.pack"] == 150
        assert registry.counters["transfer.allocations"] == 1
        assert registry.counters["transfer.bytes_allocated"] == 4096
        # zero-count kinds are not emitted
        assert "transfer.copies.unpack" not in registry.counters

    def test_absorb_resilience(self):
        registry = MetricsRegistry()
        registry.absorb_resilience({"recoveries": 2, "deposits": 7, "replays": 0})
        assert registry.counters["resilience.recoveries"] == 2
        assert registry.counters["resilience.deposits"] == 7
        assert "resilience.replays" not in registry.counters

    def test_summary_lists_spans_and_counters(self):
        registry = MetricsRegistry()
        registry.ingest([record("mpi.Send", rank=0, nbytes=10)])
        registry.observe("phase.render", 0.01, rank=1)
        text = registry.summary(per_rank=True)
        assert "mpi.Send" in text
        assert "phase.render" in text
        assert "rank 0" in text and "rank 1" in text
        assert "mpi.Send.bytes" in text

    def test_summary_empty(self):
        assert MetricsRegistry().summary() == ""
