"""Chrome trace-event export: schema validity, pid mapping, JSON safety."""

from __future__ import annotations

import json

import numpy as np

from repro.obs import SpanRecord, chrome_trace_events, write_chrome_trace


def record(name="unit.x", rank=0, tid=1, start=0.0, dur=5.0, **attrs):
    return SpanRecord(
        name=name, rank=rank, tid=tid, start_us=start, dur_us=dur, attrs=attrs
    )


class TestSchema:
    def test_complete_events_have_required_fields(self):
        events = chrome_trace_events([record(nbytes=64)])
        complete = [e for e in events if e["ph"] == "X"]
        (event,) = complete
        assert event["name"] == "unit.x"
        assert event["cat"] == "unit"
        assert event["ts"] == 0.0
        assert event["dur"] == 5.0
        assert event["pid"] == 0
        assert event["args"] == {"nbytes": 64}
        for key in ("name", "ph", "ts", "pid", "tid"):
            assert key in event

    def test_one_process_name_per_rank_plus_driver(self):
        events = chrome_trace_events(
            [record(rank=0), record(rank=2), record(rank=None)]
        )
        meta = [e for e in events if e["ph"] == "M"]
        assert [e["name"] for e in meta] == ["process_name"] * 3
        names = {e["pid"]: e["args"]["name"] for e in meta}
        assert names == {0: "rank 0", 2: "rank 2", 3: "driver"}
        # the synthetic driver pid never collides with a real rank pid
        assert 3 not in {0, 2}

    def test_thread_idents_compressed_per_pid(self):
        events = chrome_trace_events(
            [
                record(rank=0, tid=140_000_001),
                record(rank=0, tid=140_000_002),
                record(rank=1, tid=140_000_003),
            ]
        )
        complete = [e for e in events if e["ph"] == "X"]
        assert [e["tid"] for e in complete] == [0, 1, 0]

    def test_numpy_attrs_become_plain_json(self):
        events = chrome_trace_events(
            [record(nbytes=np.int64(4096), scale=np.float32(0.5), shape=(2, 3))]
        )
        (event,) = [e for e in events if e["ph"] == "X"]
        args = event["args"]
        assert args["nbytes"] == 4096 and type(args["nbytes"]) is int
        assert args["scale"] == 0.5 and type(args["scale"]) is float
        assert args["shape"] == "(2, 3)"  # non-scalars fall back to str
        json.dumps(event)  # must not raise

    def test_empty_records(self):
        assert chrome_trace_events([]) == []


class TestWriteChromeTrace:
    def test_round_trips_through_json(self, tmp_path):
        out = tmp_path / "trace.json"
        trace = write_chrome_trace([record(rank=1), record(rank=None)], out)
        loaded = json.loads(out.read_text())
        assert loaded == trace
        assert loaded["displayTimeUnit"] == "ms"
        assert isinstance(loaded["traceEvents"], list)
        phases = {e["ph"] for e in loaded["traceEvents"]}
        assert phases == {"M", "X"}

    def test_accepts_str_path(self, tmp_path):
        out = str(tmp_path / "trace.json")
        write_chrome_trace([record()], out)
        assert json.loads(open(out).read())["traceEvents"]
