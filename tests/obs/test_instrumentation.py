"""Runtime instrumentation: spans from the engines, transports and pipeline.

The acceptance bar: every exchange round is visible in the trace, including
which backend AutoEngine picked for it, under all three engines and both
transports.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Box, Redistributor
from repro.intransit import PipelineConfig, run_pipeline
from repro.lbm import LbmConfig
from repro.mpisim import TRANSPORT_PACKED, TRANSPORT_ZEROCOPY, transport
from repro.obs import tracing
from tests.conftest import spmd

NPROCS = 4


def dense_layout(nprocs, rank):
    """Dense: rank owns cell ``rank``, needs the whole domain."""
    return [Box((rank,), (1,))], Box((0,), (nprocs,))


def run_exchange(backend):
    """One dense 1-D exchange on NPROCS ranks; returns auto's round choices."""

    def fn(comm):
        red = Redistributor(comm, ndims=1, dtype=np.float32, backend=backend)
        own, need = dense_layout(comm.size, comm.rank)
        red.setup(own=own, need=need)
        data = np.full(1, float(comm.rank), dtype=np.float32)
        out = red.gather_need([data])
        np.testing.assert_array_equal(out, np.arange(comm.size, dtype=np.float32))
        return red.engine_choices()

    return spmd(NPROCS, fn)


def spans_named(records, name):
    return [r for r in records if r.name == name]


@pytest.mark.parametrize("mode", [TRANSPORT_ZEROCOPY, TRANSPORT_PACKED])
@pytest.mark.parametrize("backend", ["alltoallw", "p2p", "auto"])
class TestEngineSpans:
    def test_every_round_traced_with_backend_choice(self, backend, mode):
        with tracing() as tracer, transport(mode):
            choices_per_rank = run_exchange(backend)
        records = tracer.records()

        exchanges = spans_named(records, "ddr.exchange")
        assert len(exchanges) == NPROCS  # one per rank
        for span in exchanges:
            assert span.attrs["backend"] == backend
            assert span.attrs["transport"] == mode
            assert span.rank in range(NPROCS)

        rounds = spans_named(records, "ddr.round")
        assert rounds, "no per-round spans captured"
        per_rank = {}
        for span in rounds:
            per_rank.setdefault(span.rank, []).append(span)
        assert sorted(per_rank) == list(range(NPROCS))
        for rank, rank_rounds in per_rank.items():
            rank_rounds.sort(key=lambda s: s.attrs["round"])
            picked = [s.attrs["backend"] for s in rank_rounds]
            if backend == "auto":
                # The trace shows exactly what AutoEngine decided per round.
                assert picked == choices_per_rank[rank]
            else:
                assert picked == [backend] * len(rank_rounds)
            for span in rank_rounds:
                assert span.attrs["lanes"] >= 1
                assert span.attrs["nbytes"] >= 0

    def test_mpi_spans_carry_bytes(self, backend, mode):
        with tracing() as tracer, transport(mode):
            run_exchange(backend)
        mpi = [r for r in tracer.records() if r.category == "mpi"]
        assert mpi, "no mpi.* spans captured"
        moved = [r for r in mpi if "nbytes" in r.attrs]
        assert moved and all(r.attrs["nbytes"] >= 0 for r in moved)
        if backend == "alltoallw":
            collectives = spans_named(mpi, "mpi.Alltoallw")
            assert len(collectives) == NPROCS
            assert all(r.attrs["transport"] == mode for r in collectives)


class TestDisabledPath:
    def test_no_records_when_disabled(self):
        from repro.obs import TRACER

        assert not TRACER.enabled
        before = len(TRACER)
        run_exchange("auto")
        assert len(TRACER) == before


class TestPipelineSpans:
    def test_phase_spans_cover_the_frame_loop(self):
        config = PipelineConfig(
            lbm=LbmConfig(nx=32, ny=16), m=4, n=2, steps=20, output_every=10
        )

        with tracing() as tracer:
            spmd(6, lambda comm: run_pipeline(comm, config))
        names = {r.name for r in tracer.records()}
        for expected in (
            "phase.sim_step",
            "phase.stream_send",
            "phase.stream_recv",
            "phase.ddr_setup",
            "phase.redistribute",
            "phase.render",
            "phase.encode",
            "ddr.exchange",
        ):
            assert expected in names, f"missing {expected} span"

    def test_phase_spans_land_on_world_ranks(self):
        """Analysis ranks use a Split subcommunicator; their DDR spans must
        still file under world pids."""
        config = PipelineConfig(
            lbm=LbmConfig(nx=32, ny=16), m=4, n=2, steps=10, output_every=10
        )

        with tracing() as tracer:
            spmd(6, lambda comm: run_pipeline(comm, config))
        exchange_ranks = {
            r.rank for r in tracer.records() if r.name == "ddr.exchange"
        }
        assert exchange_ranks == {4, 5}  # the two analysis world ranks
