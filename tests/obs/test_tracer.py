"""Tracer unit tests: nesting, disabled path, scope restore, thread safety."""

from __future__ import annotations

import threading

from repro.obs import NULL_SPAN, TRACER, Tracer, tracing
from tests.conftest import spmd


class TestSpanBasics:
    def test_records_name_rank_attrs_duration(self):
        tracer = Tracer(enabled=True)
        with tracer.span("unit.outer", rank=3, color="red"):
            pass
        (record,) = tracer.records()
        assert record.name == "unit.outer"
        assert record.rank == 3
        assert record.attrs == {"color": "red"}
        assert record.dur_us >= 0.0
        assert record.category == "unit"

    def test_nesting_closes_inner_first(self):
        tracer = Tracer(enabled=True)
        with tracer.span("unit.outer"):
            with tracer.span("unit.inner"):
                pass
        names = [r.name for r in tracer.records()]
        assert names == ["unit.inner", "unit.outer"]
        inner, outer = tracer.records()
        assert inner.start_us >= outer.start_us
        assert inner.dur_us <= outer.dur_us

    def test_set_attaches_mid_span_attributes(self):
        tracer = Tracer(enabled=True)
        with tracer.span("unit.recv") as span:
            span.set(nbytes=128)
        (record,) = tracer.records()
        assert record.attrs["nbytes"] == 128

    def test_clear_resets_records_and_epoch(self):
        tracer = Tracer(enabled=True)
        with tracer.span("unit.a"):
            pass
        tracer.clear()
        assert tracer.records() == []
        with tracer.span("unit.b"):
            pass
        (record,) = tracer.records()
        assert record.start_us >= 0.0


class TestDisabled:
    def test_disabled_span_is_null_singleton(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("unit.x", anything=1) is NULL_SPAN
        with tracer.span("unit.x") as span:
            span.set(more=2)
        assert tracer.records() == []

    def test_global_tracer_disabled_by_default(self):
        assert TRACER.enabled is False


class TestTracingScope:
    def test_enables_and_restores(self):
        assert not TRACER.enabled
        with tracing() as tracer:
            assert tracer is TRACER
            assert TRACER.enabled
        assert not TRACER.enabled

    def test_nested_scopes_restore_outer_state(self):
        """The save/restore discipline counting_transfers originally broke:
        an inner scope must not leave the outer scope disabled."""
        with tracing():
            with tracing(clear=False):
                assert TRACER.enabled
            assert TRACER.enabled  # outer scope still tracing
            with TRACER.span("unit.after_inner"):
                pass
        assert not TRACER.enabled
        assert "unit.after_inner" in [r.name for r in TRACER.records()]

    def test_clear_false_preserves_prior_records(self):
        with tracing() as tracer:
            with tracer.span("unit.first"):
                pass
            with tracing(clear=False):
                with tracer.span("unit.second"):
                    pass
            names = {r.name for r in tracer.records()}
        assert names == {"unit.first", "unit.second"}


class TestThreadSafety:
    def test_spmd_ranks_record_concurrently(self):
        """Every rank emits nested spans in parallel; nothing is lost and
        every record lands on its emitting rank."""
        nprocs, per_rank = 8, 25

        def fn(comm):
            for i in range(per_rank):
                with TRACER.span("unit.outer", iteration=i):
                    with TRACER.span("unit.inner"):
                        pass
            return comm.rank

        with tracing() as tracer:
            spmd(nprocs, fn)
        records = tracer.records()
        assert len(records) == nprocs * per_rank * 2
        by_rank = {}
        for record in records:
            assert record.rank is not None  # run_spmd bound the thread rank
            by_rank.setdefault(record.rank, []).append(record)
        assert sorted(by_rank) == list(range(nprocs))
        for rank_records in by_rank.values():
            assert len(rank_records) == per_rank * 2

    def test_active_spans_reports_open_stack(self):
        tracer = Tracer(enabled=True)
        opened = threading.Event()
        release = threading.Event()

        def worker():
            tracer.set_thread_rank(7)
            with tracer.span("unit.outer"):
                with tracer.span("unit.blocked"):
                    opened.set()
                    release.wait(5.0)

        thread = threading.Thread(target=worker, daemon=True)
        thread.start()
        assert opened.wait(5.0)
        active = tracer.active_spans()
        assert active[7] == ["unit.outer", "unit.blocked"]
        release.set()
        thread.join(5.0)
        assert tracer.active_spans() == {}
