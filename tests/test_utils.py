"""Unit tests for repro.utils."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.utils import (
    GiB,
    MiB,
    StopwatchRegistry,
    Timer,
    as_contiguous,
    counting_transfers,
    dtype_size,
    flat_view,
    fmt_bytes,
    fmt_mb,
    fmt_seconds,
    gbit_per_s,
    mb,
    transfer_counters,
)
from repro.utils.log import (
    _ROOT_NAME,
    disable_console_logging,
    enable_console_logging,
)


class TestUnits:
    def test_mb_is_binary(self):
        assert mb(32 * MiB) == 32.0

    def test_gbit_per_s_fdr_infiniband(self):
        # The paper's Cooley link: 56 Gbps -> 7e9 bytes/s.
        assert gbit_per_s(56) == pytest.approx(7e9)

    def test_fmt_bytes_suffixes(self):
        assert fmt_bytes(512) == "512.00 B"
        assert fmt_bytes(3 * MiB) == "3.00 MiB"
        assert fmt_bytes(2 * GiB) == "2.00 GiB"
        assert "TiB" in fmt_bytes(5 * GiB * 1024)

    def test_fmt_mb_matches_paper_table3_convention(self):
        # 32 MiB image minus 1/27 kept locally.
        nbytes = 32 * MiB * 26 / 27
        assert fmt_mb(nbytes) == "30.81"

    def test_fmt_seconds(self):
        assert fmt_seconds(6.64) == "6.6 sec"


class TestTimer:
    def test_timer_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert 0.005 < t.elapsed < 1.0

    def test_registry_accumulates(self):
        reg = StopwatchRegistry()
        reg.add("read", 1.0)
        reg.add("read", 2.0)
        reg.add("comm", 0.5)
        assert reg.total("read") == pytest.approx(3.0)
        assert reg.mean("read") == pytest.approx(1.5)
        assert reg.total("missing") == 0.0
        assert reg.mean("missing") == 0.0

    def test_registry_scope(self):
        reg = StopwatchRegistry()
        with reg.time("phase"):
            time.sleep(0.005)
        assert reg.total("phase") > 0.0
        assert "phase" in reg.summary()


class TestArrays:
    def test_dtype_size(self):
        assert dtype_size(np.float32) == 4
        assert dtype_size("u1") == 1
        assert dtype_size(np.float64) == 8

    def test_as_contiguous_passthrough(self):
        a = np.zeros((3, 4))
        assert as_contiguous(a) is a

    def test_as_contiguous_copies_views(self):
        a = np.zeros((4, 4))[:, ::2]
        b = as_contiguous(a)
        assert b.flags["C_CONTIGUOUS"]
        assert b is not a

    def test_flat_view_shares_memory(self):
        a = np.zeros((2, 3))
        v = flat_view(a)
        v[0] = 7.0
        assert a[0, 0] == 7.0

    def test_flat_view_rejects_noncontiguous(self):
        a = np.zeros((4, 4))[:, ::2]
        with pytest.raises(ValueError):
            flat_view(a)


class TestConsoleLogging:
    """Regression: enable_console_logging used to stack a fresh StreamHandler
    per call, duplicating every log line."""

    @pytest.fixture(autouse=True)
    def _clean_handler(self):
        import logging

        disable_console_logging()
        yield
        disable_console_logging()
        logging.getLogger(_ROOT_NAME).setLevel(logging.NOTSET)

    def _console_handlers(self):
        import logging

        root = logging.getLogger(_ROOT_NAME)
        return [h for h in root.handlers if isinstance(h, logging.StreamHandler)]

    def test_repeat_calls_attach_one_handler(self):
        import logging

        enable_console_logging()
        enable_console_logging()
        enable_console_logging(logging.DEBUG)
        assert len(self._console_handlers()) == 1
        assert logging.getLogger(_ROOT_NAME).level == logging.DEBUG

    def test_disable_then_enable_reattaches(self):
        enable_console_logging()
        disable_console_logging()
        assert self._console_handlers() == []
        enable_console_logging()
        assert len(self._console_handlers()) == 1


class TestTransferCounters:
    def test_count_copy_rejects_unknown_kind(self):
        counters = transfer_counters()
        with pytest.raises(ValueError, match="unknown copy kind 'teleport'"):
            counters.count_copy("teleport", 10)

    def test_nested_counting_preserves_outer_accounting(self):
        """Regression: the inner block's reset used to wipe the outer block's
        counts and its exit left accounting disabled for the rest of the
        outer block."""
        counters = transfer_counters()
        with counting_transfers() as outer:
            outer.count_copy("pack", 100)
            with counting_transfers() as inner:
                assert inner.total_copies == 0  # inner block starts from zero
                inner.count_copy("pack", 30)
                assert inner.copies["pack"] == 1
            assert counters.enabled  # outer block is still counting...
            counters.count_copy("unpack", 5)
            # ...and sees its own pre-nesting counts plus the inner block's.
            assert outer.copies["pack"] == 2
            assert outer.bytes_copied["pack"] == 130
            assert outer.copies["unpack"] == 1
        assert not counters.enabled

    def test_nested_counting_restores_enabled_state(self):
        counters = transfer_counters()
        assert not counters.enabled
        with counting_transfers():
            with counting_transfers():
                pass
            assert counters.enabled
        assert not counters.enabled
