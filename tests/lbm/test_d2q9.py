"""D2Q9 kernel unit + property tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lbm import (
    CX,
    CY,
    OPPOSITE,
    W,
    bounce_back,
    collide,
    equilibrium,
    macroscopics,
    omega_from_viscosity,
    stream,
    total_mass,
)


class TestLatticeConstants:
    def test_weights_sum_to_one(self):
        assert W.sum() == pytest.approx(1.0)

    def test_velocity_moments_vanish(self):
        # First moment of the weights is zero (isotropy).
        assert (W * CX).sum() == pytest.approx(0.0)
        assert (W * CY).sum() == pytest.approx(0.0)

    def test_second_moment_is_cs2(self):
        # Lattice speed of sound: sum w_i c_i c_i = 1/3 per axis.
        assert (W * CX * CX).sum() == pytest.approx(1 / 3)
        assert (W * CY * CY).sum() == pytest.approx(1 / 3)

    def test_opposite_is_involution(self):
        assert np.array_equal(OPPOSITE[OPPOSITE], np.arange(9))
        assert np.array_equal(CX[OPPOSITE], -CX)
        assert np.array_equal(CY[OPPOSITE], -CY)


class TestEquilibrium:
    def test_moments_recovered(self, rng):
        rho = 1.0 + 0.1 * rng.random((5, 7))
        ux = 0.1 * (rng.random((5, 7)) - 0.5)
        uy = 0.1 * (rng.random((5, 7)) - 0.5)
        feq = equilibrium(rho, ux, uy)
        r2, ux2, uy2 = macroscopics(feq)
        assert np.allclose(r2, rho)
        assert np.allclose(ux2, ux)
        assert np.allclose(uy2, uy)

    def test_equilibrium_is_collision_fixed_point(self):
        rho = np.ones((4, 4))
        ux = np.full((4, 4), 0.08)
        uy = np.zeros((4, 4))
        f = equilibrium(rho, ux, uy)
        before = f.copy()
        collide(f, omega=1.7)
        assert np.allclose(f, before)

    def test_rest_fluid_weights(self):
        feq = equilibrium(np.ones((1, 1)), np.zeros((1, 1)), np.zeros((1, 1)))
        assert np.allclose(feq[:, 0, 0], W)


class TestCollide:
    def test_conserves_mass_and_momentum(self, rng):
        f = 0.1 + rng.random((9, 6, 8)) * 0.1
        rho0, ux0, uy0 = macroscopics(f)
        collide(f, omega=1.5)
        rho1, ux1, uy1 = macroscopics(f)
        assert np.allclose(rho0, rho1)
        assert np.allclose(rho0 * ux0, rho1 * ux1)
        assert np.allclose(rho0 * uy0, rho1 * uy1)

    def test_skip_mask(self, rng):
        f = 0.1 + rng.random((9, 4, 4)) * 0.1
        solid = np.zeros((4, 4), dtype=bool)
        solid[1, 2] = True
        frozen = f[:, 1, 2].copy()
        collide(f, omega=1.5, skip=solid)
        assert np.array_equal(f[:, 1, 2], frozen)

    @given(omega=st.floats(0.2, 1.9), seed=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_property_mass_conservation(self, omega, seed):
        rng = np.random.default_rng(seed)
        f = 0.05 + rng.random((9, 5, 5)) * 0.2
        mass = total_mass(f)
        collide(f, omega)
        assert total_mass(f) == pytest.approx(mass, rel=1e-12)


class TestStream:
    def test_east_population_moves_east(self):
        f = np.zeros((9, 3, 4))
        f[1, 1, 1] = 1.0  # direction E = (1, 0)
        stream(f)
        assert f[1, 1, 2] == 1.0
        assert f[1, 1, 1] == 0.0

    def test_rest_population_stays(self):
        f = np.zeros((9, 3, 3))
        f[0, 1, 1] = 1.0
        stream(f)
        assert f[0, 1, 1] == 1.0

    def test_periodic_wrap(self):
        f = np.zeros((9, 2, 3))
        f[1, 0, 2] = 1.0  # E at last column wraps to column 0
        stream(f)
        assert f[1, 0, 0] == 1.0

    def test_mass_conserved(self, rng):
        f = rng.random((9, 5, 6))
        mass = total_mass(f)
        stream(f)
        assert total_mass(f) == pytest.approx(mass)

    def test_diagonal(self):
        f = np.zeros((9, 4, 4))
        f[5, 1, 1] = 1.0  # NE = (1, 1): +x, +y (row index +1)
        stream(f)
        assert f[5, 2, 2] == 1.0


class TestBounceBack:
    def test_populations_reversed_at_solid(self, rng):
        f = rng.random((9, 3, 3))
        solid = np.zeros((3, 3), dtype=bool)
        solid[1, 1] = True
        before = f[:, 1, 1].copy()
        bounce_back(f, solid)
        assert np.allclose(f[:, 1, 1], before[OPPOSITE])
        assert np.allclose(f[:, 0, 0], f[:, 0, 0])  # others untouched

    def test_double_bounce_is_identity(self, rng):
        f = rng.random((9, 3, 3))
        solid = np.ones((3, 3), dtype=bool)
        before = f.copy()
        bounce_back(f, solid)
        bounce_back(f, solid)
        assert np.allclose(f, before)


class TestOmega:
    def test_value(self):
        assert omega_from_viscosity(1 / 6) == pytest.approx(1.0)

    def test_positive_required(self):
        with pytest.raises(ValueError):
            omega_from_viscosity(0.0)
