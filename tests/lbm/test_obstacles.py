"""Obstacle geometry variants for the LBM (extension beyond the paper's bar)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lbm import DistributedLbm, LbmConfig, SerialLbm
from tests.conftest import spmd


class TestObstacleMasks:
    def test_bar_default(self):
        cfg = LbmConfig(nx=40, ny=24)
        assert cfg.obstacle == "bar"
        mask = cfg.barrier_mask()
        assert mask[:, cfg.barrier_x].sum() == cfg.barrier_y1 - cfg.barrier_y0
        assert mask.sum() == cfg.barrier_y1 - cfg.barrier_y0

    def test_circle(self):
        cfg = LbmConfig(nx=60, ny=30, obstacle="circle")
        mask = cfg.barrier_mask()
        cx, cy = cfg.circle_center
        assert mask[int(cy), int(cx)]  # center solid
        assert not mask[0, 0]
        # Roughly pi r^2 cells.
        assert mask.sum() == pytest.approx(np.pi * cfg.circle_radius**2, rel=0.25)

    def test_none(self):
        cfg = LbmConfig(nx=40, ny=24, obstacle="none")
        assert not cfg.barrier_mask().any()

    def test_invalid(self):
        with pytest.raises(ValueError, match="obstacle"):
            LbmConfig(nx=40, ny=24, obstacle="pyramid")

    def test_slab_consistency(self):
        cfg = LbmConfig(nx=60, ny=30, obstacle="circle")
        full = cfg.barrier_mask()
        pieces = [cfg.barrier_mask((lo, lo + 10)) for lo in (0, 10, 20)]
        assert np.array_equal(np.vstack(pieces), full)


class TestCirclePhysics:
    CFG = LbmConfig(nx=64, ny=32, obstacle="circle")

    def test_stable_and_sheds_vorticity(self):
        sim = SerialLbm(self.CFG)
        sim.step(200)
        assert np.isfinite(sim.f).all()
        curl = sim.vorticity()
        wake = curl[:, int(self.CFG.circle_center[0]) + 6 :]
        assert wake.max() > 1e-4 and wake.min() < -1e-4

    def test_distributed_equivalence_with_circle(self):
        serial = SerialLbm(self.CFG)
        serial.step(30)

        def fn(comm):
            sim = DistributedLbm(comm, self.CFG)
            sim.step(30)
            return sim.y0, sim.y1, sim.interior.copy()

        for y0, y1, interior in spmd(4, fn):
            assert np.array_equal(interior, serial.f[:, y0:y1, :])

    def test_no_obstacle_stays_uniform(self):
        cfg = LbmConfig(nx=32, ny=16, obstacle="none")
        sim = SerialLbm(cfg)
        sim.step(10)
        _, ux, uy = sim.macroscopics()
        assert np.allclose(ux, cfg.u0, atol=1e-12)
        assert np.allclose(uy, 0.0, atol=1e-12)
