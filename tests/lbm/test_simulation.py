"""Serial LBM driver tests: physics sanity + distributed equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lbm import (
    DistributedLbm,
    LbmConfig,
    SerialLbm,
    kinetic_energy,
    slab_box,
    slab_rows,
    total_mass,
    vorticity,
)
from tests.conftest import spmd

CFG = LbmConfig(nx=48, ny=24)


class TestConfig:
    def test_barrier_geometry(self):
        assert CFG.barrier_x == 12
        assert CFG.barrier_y0 == 8
        assert CFG.barrier_y1 == 16

    def test_barrier_mask_slab(self):
        full = CFG.barrier_mask()
        slab = CFG.barrier_mask((6, 12))
        assert np.array_equal(slab, full[6:12])

    def test_barrier_mask_outside_slab_empty(self):
        assert not CFG.barrier_mask((0, 4)).any()

    def test_validation(self):
        with pytest.raises(ValueError):
            LbmConfig(nx=2, ny=24)
        with pytest.raises(ValueError):
            LbmConfig(nx=48, ny=24, u0=0.5)
        with pytest.raises(ValueError):
            LbmConfig(nx=48, ny=24, viscosity=-1)

    def test_omega_range(self):
        assert 0 < CFG.omega < 2


class TestSerialPhysics:
    def test_initial_state_is_uniform_flow(self):
        sim = SerialLbm(CFG)
        rho, ux, uy = sim.macroscopics()
        assert np.allclose(rho, 1.0)
        assert np.allclose(ux, CFG.u0)
        assert np.allclose(uy, 0.0)

    def test_stable_over_many_steps(self):
        sim = SerialLbm(CFG)
        sim.step(200)
        rho, ux, uy = sim.macroscopics()
        assert np.isfinite(sim.f).all()
        assert rho.min() > 0.5 and rho.max() < 2.0
        assert np.abs(ux).max() < 0.5

    def test_barrier_generates_vorticity(self):
        sim = SerialLbm(CFG)
        sim.step(150)
        curl = sim.vorticity()
        # Flow past the barrier sheds vorticity of both signs downstream.
        downstream = curl[:, CFG.barrier_x + 1 :]
        assert downstream.max() > 1e-4
        assert downstream.min() < -1e-4

    def test_no_barrier_stays_uniform(self):
        """A domain whose barrier mask is empty keeps the uniform flow
        (equilibrium is a fixed point; boundaries re-impose the same state)."""
        cfg = LbmConfig(nx=16, ny=300)  # barrier occupies rows 100..200
        sim = SerialLbm(cfg)
        sim.solid[:] = False  # physics-only test: remove the obstacle
        sim.step(5)
        _, ux, uy = sim.macroscopics()
        assert np.allclose(ux, cfg.u0, atol=1e-12)
        assert np.allclose(uy, 0.0, atol=1e-12)

    def test_mass_bounded(self):
        """Open boundaries exchange mass, but it must stay bounded."""
        sim = SerialLbm(CFG)
        m0 = total_mass(sim.f)
        sim.step(100)
        assert abs(total_mass(sim.f) - m0) / m0 < 0.05

    def test_kinetic_energy_positive(self):
        sim = SerialLbm(CFG)
        sim.step(50)
        assert kinetic_energy(*sim.macroscopics()) > 0


class TestVorticityField:
    def test_rigid_rotation(self):
        """u = (-y, x) has constant curl 2."""
        ys, xs = np.mgrid[0:8, 0:8].astype(float)
        curl = vorticity(-ys, xs)
        assert np.allclose(curl, 2.0)

    def test_uniform_flow_zero(self):
        assert np.allclose(vorticity(np.ones((5, 5)), np.zeros((5, 5))), 0.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            vorticity(np.zeros((3, 3)), np.zeros((4, 3)))


class TestSlabDecomposition:
    def test_rows_partition(self):
        ranges = [slab_rows(24, 5, r) for r in range(5)]
        assert ranges[0][0] == 0 and ranges[-1][1] == 24
        for (_, a_end), (b_start, _) in zip(ranges, ranges[1:]):
            assert a_end == b_start

    def test_slab_box(self):
        box = slab_box(48, 24, 4, 1)
        assert box.offset == (0, 6)
        assert box.dims == (48, 6)


class TestDistributedEqualsSerial:
    @pytest.mark.parametrize("nprocs", [1, 2, 3, 4])
    def test_bitwise_equivalence(self, nprocs):
        """The slab solver must reproduce the serial solver exactly."""
        steps = 30
        serial = SerialLbm(CFG)
        serial.step(steps)

        def fn(comm):
            sim = DistributedLbm(comm, CFG)
            sim.step(steps)
            return sim.y0, sim.y1, sim.interior.copy()

        pieces = spmd(nprocs, fn)
        for y0, y1, interior in pieces:
            assert np.array_equal(interior, serial.f[:, y0:y1, :]), (y0, y1)

    @pytest.mark.parametrize("nprocs", [1, 2, 3])
    def test_vorticity_equivalence(self, nprocs):
        steps = 25
        serial = SerialLbm(CFG)
        serial.step(steps)
        reference = serial.vorticity()

        def fn(comm):
            sim = DistributedLbm(comm, CFG)
            sim.step(steps)
            return sim.y0, sim.y1, sim.vorticity()

        pieces = spmd(nprocs, fn)
        for y0, y1, curl in pieces:
            assert curl.shape == (y1 - y0, CFG.nx)
            assert np.array_equal(curl, reference[y0:y1]), (y0, y1)

    def test_too_many_ranks_rejected(self):
        def fn(comm):
            with pytest.raises(ValueError, match="one row each"):
                DistributedLbm(comm, LbmConfig(nx=8, ny=4))

        spmd(5, fn)

    def test_barrier_split_across_ranks(self):
        """Slab cuts through the barrier rows; equivalence must still hold."""
        cfg = LbmConfig(nx=32, ny=18)
        serial = SerialLbm(cfg)
        serial.step(40)

        def fn(comm):
            sim = DistributedLbm(comm, cfg)
            sim.step(40)
            return sim.y0, sim.y1, sim.interior.copy()

        for y0, y1, interior in spmd(6, fn):
            assert np.array_equal(interior, serial.f[:, y0:y1, :])
