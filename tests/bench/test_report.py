"""Tests for the bench reporting utilities and paper-data constants."""

from __future__ import annotations

import pytest

from repro.bench import format_table, pct, relative_error
from repro.bench.paperdata import (
    FIGURE4_EXAMPLE,
    LBM_RUN,
    TABLE1_E1,
    TABLE2_MAX_SPEEDUP,
    TABLE2_SECONDS,
    TABLE2_STDDEV,
    TABLE3_SCHEDULE,
    TABLE4_OUTPUT,
    TIFF_SERIES,
)


class TestFormatTable:
    def test_alignment_and_rule(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "--" in lines[2]
        assert lines[3].endswith("2.50")
        assert lines[4].endswith("0.25")

    def test_empty_rows(self):
        out = format_table(["x"], [])
        assert "x" in out

    def test_string_cells(self):
        out = format_table(["k", "v"], [["name", "value"]])
        assert "name" in out and "value" in out


class TestErrorHelpers:
    def test_relative_error(self):
        assert relative_error(110, 100) == pytest.approx(0.1)
        assert relative_error(90, 100) == pytest.approx(-0.1)
        assert relative_error(0, 0) == 0.0
        assert relative_error(1, 0) == float("inf")

    def test_pct(self):
        assert pct(0.123) == "+12.3%"
        assert pct(-0.05) == "-5.0%"


class TestPaperDataConsistency:
    """Internal consistency of the transcribed paper numbers."""

    def test_table2_has_all_scales(self):
        assert set(TABLE2_SECONDS) == {27, 64, 125, 216} == set(TABLE2_STDDEV)

    def test_table2_headline_speedup(self):
        no_ddr, _, consec = TABLE2_SECONDS[216]
        assert no_ddr / consec == pytest.approx(TABLE2_MAX_SPEEDUP, abs=0.2)

    def test_table2_paper_quotes_hold(self):
        """§IV-A's prose: RR 20% faster at 27; consecutive 32% faster at 216."""
        _, rr27, consec27 = TABLE2_SECONDS[27]
        assert (consec27 - rr27) / consec27 == pytest.approx(0.20, abs=0.02)
        _, rr216, consec216 = TABLE2_SECONDS[216]
        assert (rr216 - consec216) / rr216 == pytest.approx(0.32, abs=0.02)

    def test_table3_round_robin_rounds_formula(self):
        for nprocs, per in TABLE3_SCHEDULE.items():
            assert per["round_robin"][0] == -(-TIFF_SERIES["n_images"] // nprocs)

    def test_tiff_series_size(self):
        s = TIFF_SERIES
        assert (
            s["n_images"] * s["width"] * s["height"] * s["bits"] // 8
            == s["total_bytes"]
        )

    def test_table4_reductions_match_sizes(self):
        for (nx, ny), (raw, processed, reduction) in TABLE4_OUTPUT.items():
            assert 1 - processed / raw == pytest.approx(reduction, abs=0.0015)
            # Raw size is nx*ny*4*200 up to the paper's rounding.
            assert nx * ny * 4 * LBM_RUN["saved_steps"] == pytest.approx(raw, rel=0.06)

    def test_figure4_example(self):
        assert sum(FIGURE4_EXAMPLE["per_analysis"]) == FIGURE4_EXAMPLE["m"]

    def test_table1_all_ranks(self):
        assert set(TABLE1_E1) == {0, 1, 2, 3}
        assert TABLE1_E1[3]["P7"] == [4, 4]
