"""Tests of the per-artifact bench harness functions (fast paths only;
full-scale shape checks live in benchmarks/)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import e1, fig3, fig45, table2, table3, table4
from repro.io.assignment import StackGeometry

SMALL = StackGeometry(width=256, height=128, n_images=512, bytes_per_pixel=4)


class TestE1Harness:
    def test_parameters_match_paperdata(self):
        assert e1.e1_matches_table1()

    def test_run_returns_quadrants(self):
        quadrants = e1.run_e1()
        assert len(quadrants) == 4
        assert all(q.shape == (4, 4) for q in quadrants)

    def test_rank0_mapping_counts(self):
        mapping = e1.rank0_mapping()
        assert len(mapping["sends"]) == 4
        assert len(mapping["recvs"]) == 4

    def test_report_runs(self):
        out = e1.report()
        assert "Table I" in out and "True" in out


class TestTable3Harness:
    def test_rows_small_stack(self):
        rows = table3.table3_rows(SMALL)
        assert len(rows) == 8  # 4 scales x 2 strategies
        by_key = {(r.nprocs, r.strategy): r for r in rows}
        # At a non-paper stack the paper comparison is geometric only:
        assert by_key[(27, "consecutive")].rounds == 1
        assert by_key[(64, "round_robin")].rounds == 8  # 512 imgs / 64 procs


class TestTable2Harness:
    def test_native_runs_small(self, tmp_path):
        stack_dir = table2.prepare_native_stack(tmp_path, width=32, height=16, depth=8)
        row = table2.table2_native(stack_dir, nprocs=8, grid=(2, 2, 2))
        assert row.verified_equal
        assert row.rr_decodes == 8
        assert row.consec_decodes == 8
        assert row.no_ddr_decodes == 32  # 4x redundancy

    def test_prepare_is_idempotent(self, tmp_path):
        a = table2.prepare_native_stack(tmp_path, width=16, height=8, depth=4)
        mtime = (a / "slice_00000.tif").stat().st_mtime_ns
        b = table2.prepare_native_stack(tmp_path, width=16, height=8, depth=4)
        assert a == b
        assert (b / "slice_00000.tif").stat().st_mtime_ns == mtime  # not rewritten


class TestFig3Harness:
    def test_summaries_from_custom_series(self):
        series = {
            "nprocs": [27, 64, 125, 216],
            "no_ddr": [100.0, 90.0, 80.0, 75.0],
            "ddr_round_robin": [20.0, 10.0, 6.0, 4.0],
            "ddr_consecutive": [25.0, 10.0, 5.0, 3.0],
        }
        summaries = fig3.scaling_summaries(series)
        by_mode = {s.mode: s for s in summaries}
        assert by_mode["no_ddr"].speedup_27_to_216 == pytest.approx(100 / 75)
        assert by_mode["ddr_consecutive"].parallel_efficiency == pytest.approx(
            (25 / 3) / 8
        )
        # Strict win required: the 64-rank tie does not count as a crossover.
        assert fig3.crossover_processes(series) == 125

    def test_crossover_none_when_rr_always_wins(self):
        series = {
            "nprocs": [27, 64],
            "ddr_round_robin": [1.0, 1.0],
            "ddr_consecutive": [2.0, 2.0],
        }
        assert fig3.crossover_processes(series) is None

    def test_ascii_plot_renders(self):
        series = {
            "nprocs": [27, 216],
            "no_ddr": [100.0, 75.0],
            "ddr_round_robin": [20.0, 4.0],
            "ddr_consecutive": [25.0, 3.0],
        }
        plot = fig3.ascii_plot(series, width=40)
        assert "noDDR" in plot and "#" in plot


class TestFig45Harness:
    def test_mapping(self):
        assert fig45.figure4_matches_paper()

    def test_layouts_cover_domain(self):
        layouts = fig45.figure5_layouts(m=6, n=3, nx=30, ny=12)
        total = sum(layout.rectangle.volume() for layout in layouts)
        assert total == 30 * 12


class TestTable4Harness:
    def test_rows_from_synthetic_measurement(self):
        measured = table4.MeasuredCompression(
            nx=100, ny=40, frames=10, jpeg_bytes=16_000, raw_bytes=100 * 40 * 4 * 10
        )
        assert measured.bits_per_pixel == pytest.approx(3.2)
        rows = table4.table4_rows(measured)
        assert len(rows) == 4
        for row in rows:
            assert row.raw_bytes == row.nx * row.ny * 4 * 200
            assert 0 < row.reduction < 1

    def test_scaling_fit(self):
        small = table4.MeasuredCompression(
            nx=100, ny=40, frames=10, jpeg_bytes=20_000, raw_bytes=100 * 40 * 4 * 10
        )
        large = table4.MeasuredCompression(
            nx=200, ny=80, frames=10, jpeg_bytes=45_000, raw_bytes=200 * 80 * 4 * 10
        )
        fit = table4.fit_scaling(small, large)
        assert 0.5 <= fit.alpha <= 1.0
        # The fit reproduces the large measurement's frame size.
        assert fit.frame_bytes(200 * 80) == pytest.approx(4_500, rel=0.01)

    def test_fit_requires_two_scales(self):
        m = table4.MeasuredCompression(
            nx=10, ny=10, frames=1, jpeg_bytes=100, raw_bytes=400
        )
        with pytest.raises(ValueError):
            table4.fit_scaling(m, m)

    def test_header_bytes_positive(self):
        assert 100 < table4.jpeg_header_bytes() < 2000
