"""Multi-variable in-transit streaming (paper §IV-B: "many other variables
... could also be streamed and rendered, achieving similar data
compression")."""

from __future__ import annotations

import numpy as np
import pytest

from repro.intransit import PipelineConfig, run_pipeline
from repro.intransit.pipeline import VARIABLES
from repro.lbm import LbmConfig
from tests.conftest import spmd

LBM = LbmConfig(nx=64, ny=32)


def run(config):
    results = spmd(config.m + config.n, lambda comm: run_pipeline(comm, config))
    return next(r for r in results if r.role == "analysis_root")


class TestConfig:
    def test_unknown_variable_rejected(self):
        with pytest.raises(ValueError, match="unknown variable"):
            PipelineConfig(lbm=LBM, m=2, n=1, steps=10, output_every=10,
                           variables=("pressure",))

    def test_empty_variables_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            PipelineConfig(lbm=LBM, m=2, n=1, steps=10, output_every=10,
                           variables=())

    def test_registry(self):
        assert set(VARIABLES) == {"vorticity", "density", "speed", "ux", "uy"}


class TestMultiVariablePipeline:
    def test_three_variables_accounted(self):
        config = PipelineConfig(
            lbm=LBM, m=3, n=2, steps=30, output_every=15,
            variables=("vorticity", "density", "speed"), keep_frames=True,
        )
        root = run(config)
        assert root.frames == 2
        assert set(root.jpeg_bytes_by_variable) == {"vorticity", "density", "speed"}
        assert sum(root.jpeg_bytes_by_variable.values()) == root.jpeg_bytes
        # Raw baseline now accounts for all streamed variables.
        assert root.raw_bytes == 2 * 3 * 64 * 32 * 4

    def test_similar_compression_across_variables(self):
        """Every variable must achieve a large reduction (the paper's
        'similar data compression' claim)."""
        config = PipelineConfig(
            lbm=LbmConfig(nx=128, ny=64), m=4, n=2, steps=60, output_every=20,
            variables=("vorticity", "density", "speed", "ux", "uy"),
        )
        root = run(config)
        per_frame_raw = 128 * 64 * 4 * root.frames
        for name, nbytes in root.jpeg_bytes_by_variable.items():
            reduction = 1.0 - nbytes / per_frame_raw
            assert reduction > 0.9, (name, reduction)

    def test_variables_render_differently(self, tmp_path):
        config = PipelineConfig(
            lbm=LBM, m=2, n=2, steps=40, output_every=40,
            variables=("vorticity", "speed"), save_dir=tmp_path / "mv",
        )
        run(config)
        from repro.jpeg import decode

        vort = decode((tmp_path / "mv" / "frame_00000_vorticity.jpg").read_bytes())
        speed = decode((tmp_path / "mv" / "frame_00000_speed.jpg").read_bytes())
        assert vort.shape == speed.shape
        assert not np.array_equal(vort, speed)

    def test_single_variable_filenames_unchanged(self, tmp_path):
        config = PipelineConfig(
            lbm=LBM, m=2, n=1, steps=10, output_every=10,
            save_dir=tmp_path / "sv",
        )
        run(config)
        assert (tmp_path / "sv" / "frame_00000.jpg").exists()

    def test_fields_match_serial_reference(self):
        """Streamed density/speed must be the serial solver's fields."""
        from repro.lbm import SerialLbm
        from repro.viz import GRAYSCALE, render_scalar_field

        config = PipelineConfig(
            lbm=LBM, m=2, n=1, steps=20, output_every=20,
            variables=("density",), keep_frames=True,
        )
        root = run(config)
        serial = SerialLbm(LBM)
        serial.step(20)
        rho, _, _ = serial.macroscopics()
        expected = render_scalar_field(
            rho.astype(np.float32), GRAYSCALE, 0.9, 1.1, symmetric=False
        )
        assert np.array_equal(root.frames_rendered[0], expected)
