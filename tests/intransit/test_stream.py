"""M-to-N mapping and streaming endpoint tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Box, check_send_coverage
from repro.intransit import (
    StreamReceiver,
    StreamSender,
    StreamTopology,
    analysis_rank_for,
    sim_to_analysis_map,
)
from tests.conftest import spmd


class TestMapping:
    def test_paper_figure4_example(self):
        """10 sim ranks to 4 analysis ranks: 3, 3, 2, 2."""
        mapping = sim_to_analysis_map(10, 4)
        assert [len(m) for m in mapping] == [3, 3, 2, 2]
        assert mapping[0] == [0, 1, 2]
        assert mapping[3] == [8, 9]

    def test_paper_production_run(self):
        """128 sim ranks to 32 analysis ranks: uniform 4 each."""
        mapping = sim_to_analysis_map(128, 32)
        assert all(len(m) == 4 for m in mapping)

    def test_every_sim_rank_mapped_once(self):
        for m, n in [(10, 4), (7, 3), (5, 5), (12, 1)]:
            mapping = sim_to_analysis_map(m, n)
            flat = [s for group in mapping for s in group]
            assert flat == list(range(m))

    def test_analysis_rank_for_consistent(self):
        mapping = sim_to_analysis_map(10, 4)
        for a, group in enumerate(mapping):
            for s in group:
                assert analysis_rank_for(s, 10, 4) == a

    def test_validation(self):
        with pytest.raises(ValueError):
            sim_to_analysis_map(4, 10)
        with pytest.raises(ValueError):
            sim_to_analysis_map(0, 1)


class TestTopology:
    TOPO = StreamTopology(m=5, n=2, nx=20, ny=10)

    def test_roles(self):
        assert self.TOPO.world_size() == 7
        assert self.TOPO.is_sim(4)
        assert not self.TOPO.is_sim(5)
        assert self.TOPO.analysis_index(6) == 1
        with pytest.raises(ValueError):
            self.TOPO.analysis_index(2)

    def test_sim_slabs_tile_domain(self):
        slabs = [self.TOPO.sim_slab(s) for s in range(5)]
        assert check_send_coverage([[s] for s in slabs]) == Box((0, 0), (20, 10))

    def test_incoming_slabs(self):
        incoming = self.TOPO.incoming_slabs(0)
        assert [s for s, _ in incoming] == [0, 1, 2]
        incoming = self.TOPO.incoming_slabs(1)
        assert [s for s, _ in incoming] == [3, 4]

    def test_owned_chunks_complete_across_analysis(self):
        owns = [
            [slab for _, slab in self.TOPO.incoming_slabs(a)] for a in range(2)
        ]
        assert check_send_coverage(owns) == Box((0, 0), (20, 10))


class TestEndpoints:
    def test_frame_transfer(self):
        topo = StreamTopology(m=3, n=2, nx=8, ny=6)

        def fn(comm):
            if topo.is_sim(comm.rank):
                sender = StreamSender(comm, topo, comm.rank)
                for frame in range(3):
                    field = np.full(
                        sender.slab.np_shape(), 100 * comm.rank + frame, dtype=np.float32
                    )
                    sender.send_frame(frame, field)
                return None
            receiver = StreamReceiver(comm, topo, topo.analysis_index(comm.rank))
            seen = []
            for frame in range(3):
                slabs = receiver.recv_frame(frame)
                for (sim_rank, box), data in zip(receiver.sources, slabs):
                    assert data.shape == box.np_shape()
                    assert np.all(data == 100 * sim_rank + frame)
                    seen.append((frame, sim_rank))
            return seen

        results = spmd(5, fn)
        analysis_seen = [r for r in results if r is not None]
        assert len(analysis_seen) == 2

    def test_sender_shape_validated(self):
        topo = StreamTopology(m=2, n=1, nx=8, ny=6)

        def fn(comm):
            if comm.rank == 0:
                sender = StreamSender(comm, topo, 0)
                with pytest.raises(ValueError, match="shape"):
                    sender.send_frame(0, np.zeros((1, 1), dtype=np.float32))

        spmd(3, fn)

    def test_out_of_order_frames_match_by_tag(self):
        """The receiver can consume frame 1 before frame 0 (tags isolate)."""
        topo = StreamTopology(m=1, n=1, nx=4, ny=4)

        def fn(comm):
            if comm.rank == 0:
                sender = StreamSender(comm, topo, 0)
                for frame in range(2):
                    sender.send_frame(frame, np.full((4, 4), frame, dtype=np.float32))
            else:
                receiver = StreamReceiver(comm, topo, 0)
                later = receiver.recv_frame(1)
                earlier = receiver.recv_frame(0)
                assert np.all(later[0] == 1.0)
                assert np.all(earlier[0] == 0.0)

        spmd(2, fn)
