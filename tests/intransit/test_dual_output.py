"""Dual-frequency output (the paper's §IV-B closing proposal).

"We could still output raw data every 100 iterations, but additionally
stream data every 10 iterations for visual analysis.  This would increase
temporal resolution 10-fold, but only marginally increase data storage
size."
"""

from __future__ import annotations

import numpy as np
from repro.intransit import PipelineConfig, run_pipeline
from repro.lbm import LbmConfig
from tests.conftest import spmd

LBM = LbmConfig(nx=64, ny=32)


def run(config: PipelineConfig):
    results = spmd(config.m + config.n, lambda comm: run_pipeline(comm, config))
    return next(r for r in results if r.role == "analysis_root")


class TestDualOutput:
    def test_coarse_raw_cadence_counted(self):
        config = PipelineConfig(
            lbm=LBM, m=2, n=1, steps=100, output_every=10, raw_every_frames=5
        )
        root = run(config)
        assert root.frames == 10
        # Frames 0 and 5 are raw frames.
        assert root.dual_raw_bytes == 2 * 64 * 32 * 4
        assert root.dual_total_bytes == root.dual_raw_bytes + root.jpeg_bytes

    def test_marginal_overhead_claim(self):
        """10x temporal resolution for a small storage increase: the dual
        total must be far below raw-at-every-frame."""
        config = PipelineConfig(
            lbm=LbmConfig(nx=128, ny=64), m=4, n=2,
            steps=200, output_every=10, raw_every_frames=10,
        )
        root = run(config)
        assert root.frames == 20
        assert root.dual_raw_bytes == 2 * 128 * 64 * 4  # frames 0 and 10
        # Dual output costs a fraction of what raw-every-frame would:
        assert root.dual_total_bytes < 0.35 * root.raw_bytes
        # ... and its overhead over raw-only is bounded (paper: "marginal").
        assert root.dual_overhead < 2.0

    def test_disabled_by_default(self):
        config = PipelineConfig(lbm=LBM, m=2, n=1, steps=20, output_every=10)
        root = run(config)
        assert root.dual_raw_bytes == 0
        assert root.dual_overhead == 0.0

    def test_raw_files_only_on_coarse_frames(self, tmp_path):
        config = PipelineConfig(
            lbm=LBM, m=2, n=2, steps=60, output_every=10,
            raw_every_frames=3, save_dir=tmp_path / "dual", save_raw=True,
        )
        root = run(config)
        jpgs = sorted((tmp_path / "dual").glob("*.jpg"))
        raws = sorted((tmp_path / "dual").glob("*.raw"))
        assert len(jpgs) == 6  # every frame
        assert [p.stem for p in raws] == ["frame_00000", "frame_00003"]
        assert root.dual_raw_bytes == 2 * 64 * 32 * 4

    def test_raw_dump_content_correct(self, tmp_path):
        from repro.io.raw import read_raw
        from repro.lbm import SerialLbm

        config = PipelineConfig(
            lbm=LBM, m=2, n=1, steps=20, output_every=10,
            raw_every_frames=2, save_dir=tmp_path / "o", save_raw=True,
        )
        run(config)
        serial = SerialLbm(LBM)
        serial.step(10)
        expected = serial.vorticity().astype(np.float32)
        got = read_raw(tmp_path / "o" / "frame_00000.raw", (32, 64))
        assert np.array_equal(got, expected)
