"""End-to-end in-transit pipeline tests (use case 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.intransit import PipelineConfig, run_pipeline
from repro.jpeg import decode
from repro.lbm import LbmConfig, SerialLbm
from repro.viz import render_scalar_field
from tests.conftest import spmd

LBM = LbmConfig(nx=32, ny=16)


def make_config(**overrides):
    defaults = dict(lbm=LBM, m=4, n=2, steps=20, output_every=10, keep_frames=True)
    defaults.update(overrides)
    return PipelineConfig(**defaults)


class TestConfig:
    def test_frames(self):
        assert make_config().n_frames == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            make_config(steps=15, output_every=10)
        with pytest.raises(ValueError):
            make_config(steps=0)


class TestPipeline:
    def test_roles_and_counts(self):
        config = make_config()

        def fn(comm):
            return run_pipeline(comm, config)

        results = spmd(6, fn)
        roles = [r.role for r in results]
        assert roles == ["sim"] * 4 + ["analysis_root", "analysis"]
        root = results[4]
        assert root.frames == 2
        assert root.raw_bytes == 2 * 32 * 16 * 4
        assert 0 < root.jpeg_bytes < root.raw_bytes
        assert 0 < root.data_reduction < 1
        assert len(root.frames_rendered) == 2
        assert root.frames_rendered[0].shape == (16, 32, 3)

    def test_wrong_world_size(self):
        config = make_config()

        def fn(comm):
            with pytest.raises(ValueError, match="world has"):
                run_pipeline(comm, config)

        spmd(3, fn)

    def test_frames_match_serial_reference(self):
        """The streamed + DDR-redistributed + rendered frame must equal the
        frame rendered directly from a serial simulation."""
        config = make_config(m=3, n=2, steps=30, output_every=15)

        serial = SerialLbm(LBM)
        expected_frames = []
        for _ in range(config.n_frames):
            serial.step(config.output_every)
            curl = serial.vorticity().astype(np.float32)
            expected_frames.append(
                render_scalar_field(
                    curl, vmin=-config.vorticity_limit, vmax=config.vorticity_limit
                )
            )

        def fn(comm):
            return run_pipeline(comm, config)

        results = spmd(5, fn)
        root = next(r for r in results if r.role == "analysis_root")
        for rendered, expected in zip(root.frames_rendered, expected_frames):
            assert np.array_equal(rendered, expected)

    def test_nonuniform_mapping(self):
        """M not divisible by N (the paper's 10-to-4 point)."""
        config = make_config(m=5, n=2, steps=10, output_every=10)

        def fn(comm):
            return run_pipeline(comm, config)

        results = spmd(7, fn)
        root = next(r for r in results if r.role == "analysis_root")
        assert root.frames == 1

    def test_jpeg_frames_written_and_decodable(self, tmp_path):
        config = make_config(save_dir=tmp_path / "frames", save_raw=True)

        def fn(comm):
            return run_pipeline(comm, config)

        spmd(6, fn)
        jpgs = sorted((tmp_path / "frames").glob("*.jpg"))
        raws = sorted((tmp_path / "frames").glob("*.raw"))
        assert len(jpgs) == 2 and len(raws) == 2
        image = decode(jpgs[0].read_bytes())
        assert image.shape == (16, 32, 3)
        assert raws[0].stat().st_size == 32 * 16 * 4

    def test_raw_file_matches_serial_field(self, tmp_path):
        config = make_config(m=4, n=2, steps=10, output_every=10,
                             save_dir=tmp_path / "o", save_raw=True)

        def fn(comm):
            return run_pipeline(comm, config)

        spmd(6, fn)
        serial = SerialLbm(LBM)
        serial.step(10)
        expected = serial.vorticity().astype(np.float32)
        from repro.io.raw import read_raw

        raw = read_raw(tmp_path / "o" / "frame_00000.raw", (16, 32))
        assert np.array_equal(raw, expected)

    def test_data_reduction_substantial(self):
        """Even at toy scale the JPEG path must save the bulk of the bytes
        (Table IV reports >= 99% at production scale)."""
        config = make_config(lbm=LbmConfig(nx=128, ny=64), m=4, n=2,
                             steps=40, output_every=20)

        def fn(comm):
            return run_pipeline(comm, config)

        results = spmd(6, fn)
        root = next(r for r in results if r.role == "analysis_root")
        assert root.data_reduction > 0.80
