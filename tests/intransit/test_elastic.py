"""Elastic pipeline (``on_load="resize"``): live role re-splits.

The malleability acceptance for the pipeline layer: a run that resizes
its M-to-N split mid-flight — growing or shrinking either side, parking
leftover pool ranks — must render frames bitwise identical to a
fixed-split run, because the state migration is an exact DDR exchange of
the live simulation state, not a checkpoint restore.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.intransit import PipelineConfig, run_pipeline
from repro.lbm.simulation import LbmConfig
from tests.conftest import spmd

LBM = LbmConfig(nx=48, ny=24)


def _run(config: PipelineConfig):
    return spmd(config.m + config.n, lambda comm: run_pipeline(comm, config))


def _root(results):
    return next(r for r in results if r.role == "analysis_root")


@pytest.fixture(scope="module")
def baseline():
    config = PipelineConfig(
        lbm=LBM, m=3, n=1, steps=12, output_every=2, keep_frames=True
    )
    return _root(_run(config))


class TestElasticPipeline:
    def test_resized_run_is_bitwise_equal_to_fixed(self, baseline):
        """3+1 -> 2+2 at frame 2 -> 3+1 at frame 4: both sides resized,
        every rendered frame bitwise-equal to the never-resized run."""
        config = PipelineConfig(
            lbm=LBM, m=3, n=1, steps=12, output_every=2, keep_frames=True,
            on_load="resize", resize_schedule=((2, 2, 2), (4, 3, 1)),
        )
        root = _root(_run(config))
        assert root.resizes == 2
        assert root.frames == baseline.frames
        assert len(root.frames_rendered) == len(baseline.frames_rendered)
        for ours, theirs in zip(root.frames_rendered, baseline.frames_rendered):
            assert np.array_equal(ours, theirs)
        assert root.jpeg_bytes == baseline.jpeg_bytes

    def test_parked_ranks_rejoin(self, baseline):
        """Shrink below the pool size (one rank parks at frame 2), then
        draft the parked rank back at frame 4 — still bitwise."""
        config = PipelineConfig(
            lbm=LBM, m=3, n=1, steps=12, output_every=2, keep_frames=True,
            on_load="resize", resize_schedule=((2, 2, 1), (4, 2, 2)),
        )
        results = _run(config)
        root = _root(results)
        for ours, theirs in zip(root.frames_rendered, baseline.frames_rendered):
            assert np.array_equal(ours, theirs)
        # Final split is 2+2: every pool rank ends active again.
        assert sorted(r.role for r in results) == [
            "analysis", "analysis_root", "sim", "sim",
        ]
        assert all(r.resizes == 2 for r in results)

    def test_analysis_only_resize(self, baseline):
        """Only the analysis side changes (3+1 -> 3+... stays m=3)."""
        config = PipelineConfig(
            lbm=LBM, m=4, n=1, steps=12, output_every=2, keep_frames=True,
            on_load="resize", resize_schedule=((3, 3, 2),),
        )
        root = _root(_run(config))
        assert root.resizes == 1
        assert root.frames == baseline.frames


class TestConfigValidation:
    def test_on_load_must_be_known(self):
        with pytest.raises(ValueError, match="on_load"):
            PipelineConfig(lbm=LBM, m=2, n=1, steps=4, output_every=2,
                           on_load="explode")

    def test_schedule_requires_resize_mode(self):
        with pytest.raises(ValueError):
            PipelineConfig(lbm=LBM, m=2, n=1, steps=4, output_every=2,
                           resize_schedule=((1, 2, 1),))

    def test_resize_mode_requires_schedule(self):
        with pytest.raises(ValueError):
            PipelineConfig(lbm=LBM, m=2, n=1, steps=4, output_every=2,
                           on_load="resize")

    def test_frames_strictly_increasing(self):
        with pytest.raises(ValueError):
            PipelineConfig(
                lbm=LBM, m=3, n=1, steps=4, output_every=2, on_load="resize",
                resize_schedule=((2, 2, 1), (2, 3, 1)),
            )

    def test_split_must_fit_pool(self):
        with pytest.raises(ValueError):
            PipelineConfig(
                lbm=LBM, m=2, n=1, steps=4, output_every=2, on_load="resize",
                resize_schedule=((1, 3, 2),),
            )

    def test_m_at_least_n(self):
        with pytest.raises(ValueError):
            PipelineConfig(
                lbm=LBM, m=2, n=2, steps=4, output_every=2, on_load="resize",
                resize_schedule=((1, 1, 3),),
            )

    def test_shrink_mode_does_not_compose(self):
        with pytest.raises(ValueError):
            PipelineConfig(
                lbm=LBM, m=3, n=1, steps=4, output_every=2, on_load="resize",
                on_rank_loss="shrink", resize_schedule=((1, 2, 1),),
            )
