"""Streaming-path hygiene: abandoned-frame straggler purge + buffer reuse.

Regression tests for two leaks on the degraded streaming path:

* a slab whose receive timed out (``try_recv_frame`` -> ``None``) used to
  land in the mailbox later under its unique tag and sit there forever;
* every ``recv_frame``/``try_recv_frame`` call used to allocate fresh
  ``np.empty`` output slabs, so steady-state streaming allocated per frame.
"""

from __future__ import annotations

import time

import numpy as np

from repro.intransit import StreamReceiver, StreamSender, StreamTopology, frame_tag
from repro.utils.membudget import MEMORY_BUDGET, budget_scope
from tests.conftest import spmd, thread_only

GAVE_UP_TAG = 7
SENT_TAG = 8


class TestStragglerPurge:
    def test_straggler_slab_is_purged_not_leaked(self):
        """A slab arriving after its receive was abandoned gets drained."""
        topo = StreamTopology(m=1, n=1, nx=4, ny=4)

        def fn(comm):
            if comm.rank == 0:
                sender = StreamSender(comm, topo, 0)
                comm.recv(source=1, tag=GAVE_UP_TAG)  # receiver timed out
                sender.send_frame(0, np.full((4, 4), 5.0, dtype=np.float32))
                sender.send_frame(1, np.full((4, 4), 6.0, dtype=np.float32))
                comm.send("sent", 1, tag=SENT_TAG)
                return None
            receiver = StreamReceiver(comm, topo, 0)
            assert receiver.try_recv_frame(0, deadline_s=0.05) is None
            assert receiver.abandoned_count() == 1
            comm.send("gave up", 0, tag=GAVE_UP_TAG)
            comm.recv(source=0, tag=SENT_TAG)  # frame 0 is now in the mailbox
            my_world = comm.world_rank_of(comm.rank)
            leaked_before = comm.fabric.mailbox_depth(world_rank=my_world)
            slabs = receiver.recv_frame(1)  # purges the straggler on entry
            assert np.all(slabs[0] == 6.0)
            assert receiver.purged_slabs == 1
            assert receiver.abandoned_count() == 0
            leaked_after = comm.fabric.mailbox_depth(world_rank=my_world)
            return (leaked_before, leaked_after)

        results = spmd(2, fn)
        leaked_before, leaked_after = results[1]
        assert leaked_before >= 1  # the straggler really was queued
        assert leaked_after == 0  # ...and really was drained

    def test_purge_abandoned_direct_call(self):
        """purge_abandoned drains without needing another receive."""
        topo = StreamTopology(m=1, n=1, nx=4, ny=4)

        def fn(comm):
            if comm.rank == 0:
                sender = StreamSender(comm, topo, 0)
                comm.recv(source=1, tag=GAVE_UP_TAG)
                sender.send_frame(0, np.zeros((4, 4), dtype=np.float32))
                comm.send("sent", 1, tag=SENT_TAG)
                return None
            receiver = StreamReceiver(comm, topo, 0)
            assert receiver.try_recv_frame(0, deadline_s=0.05) is None
            comm.send("gave up", 0, tag=GAVE_UP_TAG)
            comm.recv(source=0, tag=SENT_TAG)
            assert receiver.purge_abandoned() == 1
            assert receiver.purge_abandoned() == 0  # idempotent once drained
            assert comm.fabric.mailbox_depth(
                world_rank=comm.world_rank_of(comm.rank)
            ) == 0
            return True

        assert spmd(2, fn)[1] is True

    def test_partial_frame_abandons_only_missing_sources(self):
        """With one sim rank on time and one late, only the late slab is
        abandoned; the on-time slab is delivered (and releases transport
        resources) at timeout."""
        topo = StreamTopology(m=2, n=1, nx=4, ny=4)

        def fn(comm):
            if comm.rank == 0:  # punctual producer
                StreamSender(comm, topo, 0).send_frame(
                    0, np.zeros(topo.sim_slab(0).np_shape(), dtype=np.float32)
                )
                return None
            if comm.rank == 1:  # late producer
                comm.recv(source=2, tag=GAVE_UP_TAG)
                StreamSender(comm, topo, 1).send_frame(
                    0, np.zeros(topo.sim_slab(1).np_shape(), dtype=np.float32)
                )
                comm.send("sent", 2, tag=SENT_TAG)
                return None
            receiver = StreamReceiver(comm, topo, 0)
            # Wait until rank 0's slab is queued, so exactly rank 1's is late.
            while not comm.Iprobe(source=0, tag=frame_tag(0)):
                time.sleep(0.001)
            assert receiver.try_recv_frame(0, deadline_s=0.05) is None
            assert receiver.abandoned_count() == 1
            comm.send("gave up", 1, tag=GAVE_UP_TAG)
            comm.recv(source=1, tag=SENT_TAG)
            assert receiver.purge_abandoned() == 1
            return True

        assert spmd(3, fn)[2] is True

    @thread_only
    def test_purged_straggler_releases_budget_charge(self):
        """A straggler's staged payload is charged to the DDR memory budget
        at send time; purging the abandoned frame must release the charge,
        so a long degraded run's resident staging stays bounded (the
        invariant the memory-chaos pipeline worker asserts)."""
        topo = StreamTopology(m=1, n=1, nx=4, ny=4)
        frame_bytes = 4 * 4 * np.dtype(np.float32).itemsize

        def fn(comm):
            if comm.rank == 0:
                sender = StreamSender(comm, topo, 0)
                comm.recv(source=1, tag=GAVE_UP_TAG)
                sender.send_frame(0, np.zeros((4, 4), dtype=np.float32))
                comm.send("sent", 1, tag=SENT_TAG)
                return None
            receiver = StreamReceiver(comm, topo, 0)
            assert receiver.try_recv_frame(0, deadline_s=0.05) is None
            comm.send("gave up", 0, tag=GAVE_UP_TAG)
            comm.recv(source=0, tag=SENT_TAG)
            sender_world = comm.world_rank_of(0)
            staged = MEMORY_BUDGET.used_bytes(sender_world)
            assert staged >= frame_bytes  # the straggler is charged
            assert receiver.purge_abandoned() == 1
            assert MEMORY_BUDGET.used_bytes(sender_world) == staged - frame_bytes
            return True

        with budget_scope(limit_mb=16):
            assert spmd(2, fn)[1] is True
        assert MEMORY_BUDGET.total_used_bytes() == 0


class TestBufferReuse:
    def test_steady_state_reuses_two_slab_sets(self):
        """Double buffering: frames k and k+2 land in the same arrays, and
        the set returned for frame k is not written by frame k+1's receive
        (callers keep references — the stale-frame policy)."""
        topo = StreamTopology(m=2, n=1, nx=8, ny=4)

        def fn(comm):
            if topo.is_sim(comm.rank):
                sender = StreamSender(comm, topo, comm.rank)
                for frame in range(4):
                    sender.send_frame(
                        frame,
                        np.full(sender.slab.np_shape(), frame, dtype=np.float32),
                    )
                return None
            receiver = StreamReceiver(comm, topo, 0)
            sets = [receiver.recv_frame(frame) for frame in range(4)]
            # Identity: two alternating sets, no per-frame allocation.
            for a, b in zip(sets[0], sets[2]):
                assert a is b
            for a, b in zip(sets[1], sets[3]):
                assert a is b
            for a, b in zip(sets[0], sets[1]):
                assert a is not b
            # Contract: frame 2's values live where frame 0's were, and
            # frame 3 never touched them.
            for slab in sets[2]:
                assert np.all(slab == 2.0)
            for slab in sets[3]:
                assert np.all(slab == 3.0)
            return True

        assert spmd(3, fn)[2] is True

    def test_timed_out_receive_does_not_corrupt_returned_slabs(self):
        """A timeout writes only into the back set: the last *returned*
        slabs (what the pipeline re-exchanges under frame_drop="stale")
        keep their values even while a partial frame lands."""
        topo = StreamTopology(m=1, n=1, nx=4, ny=4)

        def fn(comm):
            if comm.rank == 0:
                sender = StreamSender(comm, topo, 0)
                sender.send_frame(0, np.full((4, 4), 1.0, dtype=np.float32))
                comm.recv(source=1, tag=GAVE_UP_TAG)
                sender.send_frame(1, np.full((4, 4), 2.0, dtype=np.float32))
                comm.send("sent", 1, tag=SENT_TAG)
                return None
            receiver = StreamReceiver(comm, topo, 0)
            good = receiver.recv_frame(0)
            assert np.all(good[0] == 1.0)
            # Frame 1 times out; whatever partially lands must not touch
            # the frame-0 set the caller still references.
            assert receiver.try_recv_frame(1, deadline_s=0.05) is None
            assert np.all(good[0] == 1.0)
            comm.send("gave up", 0, tag=GAVE_UP_TAG)
            comm.recv(source=0, tag=SENT_TAG)
            # The straggler for frame 1 is purged, not delivered into good.
            receiver.purge_abandoned()
            assert np.all(good[0] == 1.0)
            return True

        assert spmd(2, fn)[1] is True
