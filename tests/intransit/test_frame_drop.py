"""Degraded-mode streaming: frame-drop policies under an injected drop.

A scripted ``FaultSpec`` silently discards one sim rank's slab for frame 1
(tag-targeted via ``frame_tag``, so no op counting).  Each policy must then
deliver its contract: ``skip`` abandons that frame and keeps rendering,
``stale`` substitutes the last good data so every frame still encodes, and
``fail`` surfaces a typed timeout instead of hanging.
"""

from __future__ import annotations

import pytest

from repro.faults import FaultPlan, FaultSpec, ReliabilityPolicy, fault_plan
from repro.intransit import (
    FRAME_DROP_SKIP,
    FRAME_DROP_STALE,
    PipelineConfig,
    frame_tag,
    run_pipeline,
)
from repro.lbm import LbmConfig
from repro.mpisim import RankFailure, TimeoutError_
from tests.conftest import spmd

LBM = LbmConfig(nx=32, ny=16)

#: Fast recovery knobs so a lost frame resolves in well under a second.
POLICY = ReliabilityPolicy(
    backoff_base_s=0.0001, backoff_cap_s=0.001, frame_deadline_s=0.3,
)


def _config(**overrides):
    defaults = dict(
        lbm=LBM, m=2, n=1, steps=30, output_every=10, keep_frames=True,
        reliability=POLICY,
    )
    defaults.update(overrides)
    return PipelineConfig(**defaults)


def _drop_frame_plan(frame_index: int) -> FaultPlan:
    """Sim world-rank 0 loses its slab send for ``frame_index``."""
    return FaultPlan(
        seed=0, nranks=3,
        events=(FaultSpec(kind="drop", rank=0, tag=frame_tag(frame_index)),),
    )


def _run(config):
    def fn(comm):
        return run_pipeline(comm, config)

    return spmd(3, fn, deadlock_timeout=10.0)


class TestSkipPolicy:
    def test_dropped_frame_skipped_later_frames_render(self):
        config = _config(frame_drop=FRAME_DROP_SKIP)
        with fault_plan(_drop_frame_plan(1), POLICY):
            results = _run(config)
        root = results[2]
        assert root.frames_dropped == 1
        assert root.frames_stale == 0
        assert root.frames == config.n_frames  # streamed, even if not encoded
        assert len(root.frames_rendered) == config.n_frames - 1
        assert root.jpeg_bytes > 0


class TestStalePolicy:
    def test_dropped_frame_rendered_from_stale_data(self):
        config = _config(frame_drop=FRAME_DROP_STALE)
        with fault_plan(_drop_frame_plan(1), POLICY):
            results = _run(config)
        root = results[2]
        assert root.frames_stale == 1
        assert root.frames_dropped == 0
        assert len(root.frames_rendered) == config.n_frames  # every frame encodes
        for frame in root.frames_rendered:
            assert frame.shape == (LBM.ny, LBM.nx, 3)


class TestFailPolicy:
    def test_default_policy_surfaces_typed_timeout(self):
        """frame_drop="fail" keeps the pre-fault-fabric strictness: the
        analysis rank raises a typed error instead of rendering onward."""
        config = _config(reliability=ReliabilityPolicy(op_deadline_s=0.3))
        with fault_plan(_drop_frame_plan(1), ReliabilityPolicy(op_deadline_s=0.3)):
            with pytest.raises(RankFailure) as excinfo:
                _run(config)
        assert isinstance(excinfo.value.original, TimeoutError_)


class TestCleanRunParity:
    def test_no_faults_means_no_degradation(self):
        for mode in (FRAME_DROP_SKIP, FRAME_DROP_STALE):
            root = _run(_config(frame_drop=mode))[2]
            assert root.frames_dropped == 0
            assert root.frames_stale == 0
            assert len(root.frames_rendered) == 3


class TestValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="frame_drop"):
            _config(frame_drop="hope")

    def test_bad_deadline_rejected(self):
        with pytest.raises(ValueError):
            _config(frame_deadline_s=0.0)
