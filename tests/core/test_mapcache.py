"""MappingCache: layout-keyed LRU of LocalMapping handles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Box, MappingCache, Redistributor, StaleMappingError
from repro.mpisim import world_communicators


def _hub_redistributor():
    comm = world_communicators(1)[0]
    return Redistributor(comm, ndims=2, dtype=np.float32)


OWN = [Box((0, 0), (4, 8)), Box((4, 0), (4, 8))]


def _build(red, need):
    return lambda: [red.new_mapping(own=OWN, need=need)]


class TestLruSemantics:
    def test_build_once_then_hit(self):
        red = _hub_redistributor()
        cache = MappingCache(max_entries=4)
        calls = {"n": 0}

        def build():
            calls["n"] += 1
            return [red.new_mapping(own=OWN, need=Box((0, 0), (2, 2)))]

        first = cache.get("roi-a", build)
        again = cache.get("roi-a", build)
        assert first is again
        assert calls["n"] == 1
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5

    def test_eviction_is_lru_and_invalidates(self):
        red = _hub_redistributor()
        cache = MappingCache(max_entries=2)
        a = cache.get("a", _build(red, Box((0, 0), (2, 2))))
        cache.get("b", _build(red, Box((0, 0), (4, 4))))
        cache.get("a", lambda: pytest.fail("'a' must still be cached"))
        cache.get("c", _build(red, Box((2, 2), (2, 2))))  # evicts b (LRU)
        assert cache.evictions == 1
        assert "b" not in cache and "a" in cache and "c" in cache
        # 'a' survived usable (the hit refreshed its recency)...
        out = np.empty((2, 2), dtype=np.float32)
        bufs = [np.ones(b.np_shape(), dtype=np.float32) for b in OWN]
        red.exchange(bufs, out, mapping=a[0])
        assert np.all(out == 1.0)
        # ...and the evicted entry's mappings were invalidated, so 'b' is a
        # genuine miss that rebuilds (evicting 'a', now the LRU entry).
        b_rebuilt = {"n": 0}

        def rebuild_b():
            b_rebuilt["n"] += 1
            return [red.new_mapping(own=OWN, need=Box((0, 0), (4, 4)))]

        cache.get("b", rebuild_b)
        assert b_rebuilt["n"] == 1
        assert cache.evictions == 2 and "a" not in cache
        assert a[0].stale

    def test_stale_entry_treated_as_miss(self):
        red = _hub_redistributor()
        cache = MappingCache(max_entries=4)
        entry = cache.get("a", _build(red, Box((0, 0), (2, 2))))
        entry[0].invalidate()  # e.g. a resize/retarget elsewhere
        rebuilt = cache.get("a", _build(red, Box((0, 0), (2, 2))))
        assert rebuilt is not entry
        assert not rebuilt[0].stale

    def test_drop_and_clear_invalidate(self):
        red = _hub_redistributor()
        cache = MappingCache(max_entries=4)
        a = cache.get("a", _build(red, Box((0, 0), (2, 2))))
        b = cache.get("b", _build(red, Box((0, 0), (4, 4))))
        assert cache.drop("a") is True
        assert cache.drop("a") is False
        assert a[0].stale
        cache.clear()
        assert b[0].stale
        assert len(cache) == 0

    def test_max_entries_validated(self):
        with pytest.raises(ValueError, match="max_entries"):
            MappingCache(max_entries=0)


class TestBoundedBytes:
    def test_pool_bytes_bounded_under_layout_churn(self):
        """Churning through many distinct layouts keeps total staging-pool
        bytes bounded by what max_entries live layouts can hold."""
        red = _hub_redistributor()
        cache = MappingCache(max_entries=4)
        bufs = [np.ones(b.np_shape(), dtype=np.float32) for b in OWN]
        peak = 0
        for i in range(40):
            need = Box((0, 0), (2 + (i % 7), 2 + (i % 5)))
            (mapping,) = cache.get(
                ("roi", i), lambda need=need: [red.new_mapping(own=OWN, need=need)]
            )
            red.gather_need(bufs, mapping=mapping, reuse_out=True)
            peak = max(peak, cache.pool_bytes())
        assert len(cache) == 4
        assert cache.evictions == 36
        # 4 live layouts x one float32 need array (<= 8x6) apiece.
        assert cache.pool_bytes() <= 4 * 8 * 6 * 4
        stats = cache.stats()
        assert stats["entries"] == 4
        assert stats["pool_bytes"] == cache.pool_bytes()

    def test_peak_and_cache_bytes_exported(self):
        """The hub's observability gauges: staging-pool / buffer-cache
        resident bytes and their high-water marks, via ``stats()``."""
        red = _hub_redistributor()
        cache = MappingCache(max_entries=4)
        bufs = [np.ones(b.np_shape(), dtype=np.float32) for b in OWN]
        (mapping,) = cache.get(
            "roi", lambda: [red.new_mapping(own=OWN, need=Box((0, 0), (4, 4)))]
        )
        red.gather_need(bufs, mapping=mapping, reuse_out=True)
        stats = cache.stats()
        assert stats["pool_peak_bytes"] >= stats["pool_bytes"] > 0
        # The buffer cache pins the validated own buffers plus the need.
        need_nbytes = 4 * 4 * np.dtype(np.float32).itemsize
        assert stats["cache_bytes"] == sum(b.nbytes for b in bufs) + need_nbytes
        assert stats["cache_peak_bytes"] >= stats["cache_bytes"]
        # Peaks survive a clear of the resident state.
        mapping.buffer_cache.clear()
        mapping.pool.clear()
        after = cache.stats()
        assert after["pool_bytes"] == 0 and after["cache_bytes"] == 0
        assert after["pool_peak_bytes"] == stats["pool_peak_bytes"]
        assert after["cache_peak_bytes"] == stats["cache_peak_bytes"]

    def test_evicted_mapping_use_raises_typed_error(self):
        red = _hub_redistributor()
        cache = MappingCache(max_entries=1)
        (a,) = cache.get("a", _build(red, Box((0, 0), (2, 2))))
        cache.get("b", _build(red, Box((0, 0), (4, 4))))  # evicts a
        bufs = [np.ones(b.np_shape(), dtype=np.float32) for b in OWN]
        with pytest.raises(StaleMappingError):
            red.gather_need(bufs, mapping=a)
