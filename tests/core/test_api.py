"""End-to-end tests of the paper's three-call API and the Redistributor."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Box,
    DATA_TYPE_2D,
    DDR_NewDataDescriptor,
    DDR_ReorganizeData,
    DDR_SetupDataMapping,
    Redistributor,
)
from repro.core import reorganize_rounds
from repro.mpisim import FLOAT
from tests.conftest import spmd


def run_e1(backend: str = "alltoallw"):
    """Algorithm 1 verbatim: 8x8 domain, 4 ranks, rows -> quadrants."""

    def fn(comm):
        rank = comm.rank
        desc = DDR_NewDataDescriptor(4, DATA_TYPE_2D, FLOAT, 4)
        # Table I values for this rank:
        dims_own = [8, 1, 8, 1]
        offsets_own = [0, rank, 0, rank + 4]
        right, bottom = rank % 2, rank // 2
        DDR_SetupDataMapping(
            comm, rank, 4, 2, dims_own, offsets_own, [4, 4], [4 * right, 4 * bottom], desc
        )
        g = np.arange(64, dtype=np.float32).reshape(8, 8)  # g[y, x] = 8y + x
        data_own = [g[rank].copy(), g[rank + 4].copy()]
        data_need = np.zeros((4, 4), dtype=np.float32)
        if backend == "p2p":
            from repro.core import reorganize_data_p2p

            reorganize_data_p2p(comm, desc, data_own, data_need)
        else:
            DDR_ReorganizeData(comm, 4, data_own, data_need, desc)
        expect = g[4 * bottom : 4 * bottom + 4, 4 * right : 4 * right + 4]
        assert np.array_equal(data_need, expect), (rank, data_need, expect)
        return reorganize_rounds(desc)

    return spmd(4, fn)


class TestPaperE1:
    def test_alltoallw_backend(self):
        assert run_e1("alltoallw") == [2, 2, 2, 2]

    def test_p2p_backend(self):
        assert run_e1("p2p") == [2, 2, 2, 2]

    def test_rank_argument_checked(self):
        def fn(comm):
            desc = DDR_NewDataDescriptor(2, DATA_TYPE_2D, FLOAT, 4)
            with pytest.raises(ValueError, match="rank argument"):
                DDR_SetupDataMapping(
                    comm, (comm.rank + 1) % 2, 2, 1, [4, 4], [0, 0], [4, 4], [0, 0], desc
                )

        spmd(2, fn)

    def test_nprocs_argument_checked(self):
        def fn(comm):
            desc = DDR_NewDataDescriptor(2, DATA_TYPE_2D, FLOAT, 4)
            with pytest.raises(ValueError, match="nprocs"):
                DDR_SetupDataMapping(
                    comm, comm.rank, 3, 1, [4, 4], [0, 0], [4, 4], [0, 0], desc
                )

        spmd(2, fn)

    def test_reorganize_before_setup_raises(self):
        def fn(comm):
            desc = DDR_NewDataDescriptor(2, DATA_TYPE_2D, FLOAT, 4)
            with pytest.raises(RuntimeError, match="SetupDataMapping"):
                DDR_ReorganizeData(comm, 2, np.zeros(1, np.float32), np.zeros(1, np.float32), desc)

        spmd(2, fn)

    def test_descriptor_nprocs_vs_comm_size(self):
        def fn(comm):
            desc = DDR_NewDataDescriptor(8, DATA_TYPE_2D, FLOAT, 4)
            from repro.core import setup_data_mapping

            with pytest.raises(ValueError, match="communicator"):
                setup_data_mapping(comm, desc, [Box((0, comm.rank), (4, 1))], Box((0, 0), (2, 2)))

        spmd(2, fn)


class TestRedistributor:
    def test_reuse_across_timesteps(self):
        """Paper §III-C: with layout fixed, exchange repeats on new data
        without re-running setup — the in-transit use case's core property."""

        def fn(comm):
            rank, size = comm.rank, comm.size
            red = Redistributor(comm, ndims=1, dtype=np.float64)
            n = 16
            per = n // size
            red.setup(
                own=[Box((rank * per,), (per,))],
                need=Box(((size - 1 - rank) * per,), (per,)),
            )
            for step in range(5):
                data = np.arange(rank * per, (rank + 1) * per, dtype=np.float64) + 100 * step
                out = red.gather_need([data])
                lo = (size - 1 - rank) * per
                expect = np.arange(lo, lo + per, dtype=np.float64) + 100 * step
                assert np.array_equal(out, expect)
            return True

        assert all(spmd(4, fn))

    def test_backend_switch(self):
        def fn(comm):
            red = Redistributor(comm, ndims=1, dtype=np.float32, backend="p2p")
            red.set_backend("alltoallw")
            with pytest.raises(ValueError):
                red.set_backend("smoke-signals")

        spmd(2, fn)

    def test_mapping_before_setup_raises(self):
        def fn(comm):
            red = Redistributor(comm, ndims=1, dtype=np.float32)
            with pytest.raises(RuntimeError):
                _ = red.mapping

        spmd(2, fn)

    def test_buffer_validation(self):
        def fn(comm):
            rank = comm.rank
            red = Redistributor(comm, ndims=1, dtype=np.float32)
            red.setup(own=[Box((rank * 4,), (4,))], need=Box((rank * 4,), (4,)))
            with pytest.raises(ValueError, match="buffers"):
                red.exchange([], np.zeros(4, np.float32))
            with pytest.raises(ValueError, match="dtype"):
                red.exchange([np.zeros(4, np.float64)], np.zeros(4, np.float32))
            with pytest.raises(ValueError, match="values"):
                red.exchange([np.zeros(3, np.float32)], np.zeros(4, np.float32))
            with pytest.raises(ValueError, match="need buffer"):
                red.exchange([np.zeros(4, np.float32)], np.zeros(9, np.float32))

        spmd(2, fn)

    def test_validation_catches_overlapping_owners(self):
        def fn(comm):
            from repro.core import MappingValidationError

            red = Redistributor(comm, ndims=1, dtype=np.float32)
            with pytest.raises(MappingValidationError):
                red.setup(own=[Box((0,), (5,))], need=Box((0,), (2,)))  # both own [0,5)

        spmd(2, fn)

    def test_validation_can_be_disabled(self):
        def fn(comm):
            red = Redistributor(comm, ndims=1, dtype=np.float32)
            # Overlapping owners: undefined which copy wins, but setup passes.
            red.setup(own=[Box((0,), (4,))], need=Box((0,), (4,)), validate=False)
            out = red.gather_need([np.full(4, comm.rank, dtype=np.float32)])
            assert out.shape == (4,)

        spmd(2, fn)

    def test_gather_need_with_no_need(self):
        def fn(comm):
            red = Redistributor(comm, ndims=1, dtype=np.float32)
            if comm.rank == 0:
                red.setup(own=[Box((0,), (8,))], need=Box((0,), (8,)))
                out = red.gather_need([np.arange(8, dtype=np.float32)])
                assert out.tolist() == list(range(8))
            else:
                red.setup(own=[], need=None)
                assert red.gather_need([]) is None

        spmd(2, fn)
