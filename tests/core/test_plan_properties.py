"""Property tests of planner invariants on random decompositions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Box, compute_global_plan
from tests.core.test_reorganize_property import bisect_tiling, random_subbox


def random_problem(seed: int, ndim: int = 2, nprocs: int = 4):
    rng = np.random.default_rng(seed)
    dims = tuple(int(rng.integers(2, 10)) for _ in range(ndim))
    domain = Box((0,) * ndim, dims)
    tiles = bisect_tiling(domain, int(rng.integers(nprocs, 3 * nprocs)), rng)
    assignment = rng.integers(0, nprocs, size=len(tiles))
    owns = [[tiles[i] for i in np.nonzero(assignment == r)[0]] for r in range(nprocs)]
    if all(not chunks for chunks in owns):
        owns[0] = tiles
    needs = [random_subbox(domain, rng) for _ in range(nprocs)]
    return domain, owns, needs


@given(seed=st.integers(0, 5000))
@settings(max_examples=60, deadline=None)
def test_rounds_equal_max_chunk_count(seed):
    """Paper §III-C: #Alltoallw calls == max #chunks owned by any rank."""
    _, owns, needs, = random_problem(seed)
    plan = compute_global_plan(owns, needs, 4)
    assert plan.nrounds == max(len(chunks) for chunks in owns)


@given(seed=st.integers(0, 5000))
@settings(max_examples=60, deadline=None)
def test_traffic_matrix_conserves_bytes(seed):
    _, owns, needs = random_problem(seed)
    plan = compute_global_plan(owns, needs, 4)
    matrix = plan.traffic_matrix()
    # Row sums = bytes each rank sends (incl. to itself).
    for rank_plan in plan.rank_plans:
        assert matrix[rank_plan.rank].sum() == rank_plan.bytes_sent(4, exclude_self=False)
    # Column sums = bytes each rank receives.
    for rank_plan in plan.rank_plans:
        assert matrix[:, rank_plan.rank].sum() == rank_plan.bytes_received(
            4, exclude_self=False
        )


@given(seed=st.integers(0, 5000))
@settings(max_examples=40, deadline=None)
def test_recv_entries_exactly_tile_each_need(seed):
    """The union of a rank's recv overlaps equals its need box, with no
    double coverage — because the owned chunks tile the domain."""
    domain, owns, needs = random_problem(seed)
    plan = compute_global_plan(owns, needs, 1)
    for rank_plan in plan.rank_plans:
        if rank_plan.need is None:
            continue
        covered: set = set()
        for entry in rank_plan.recvs:
            cells = set(entry.overlap.cells())
            assert not (covered & cells), "cell received twice"
            covered |= cells
        assert covered == set(rank_plan.need.cells())


@given(seed=st.integers(0, 5000))
@settings(max_examples=40, deadline=None)
def test_sends_and_recvs_are_mirror_images(seed):
    _, owns, needs = random_problem(seed)
    plan = compute_global_plan(owns, needs, 2)
    sends = {
        (p.rank, s.dest, s.round, s.overlap) for p in plan.rank_plans for s in p.sends
    }
    recvs = {
        (r.source, p.rank, r.round, r.overlap) for p in plan.rank_plans for r in p.recvs
    }
    assert sends == recvs


@given(seed=st.integers(0, 5000))
@settings(max_examples=40, deadline=None)
def test_send_entries_stay_inside_their_chunk(seed):
    _, owns, needs = random_problem(seed)
    plan = compute_global_plan(owns, needs, 2)
    for rank_plan in plan.rank_plans:
        for entry in rank_plan.sends:
            assert entry.chunk.contains_box(entry.overlap)
            assert needs[entry.dest].contains_box(entry.overlap)
            assert entry.round == entry.chunk_index


@given(seed=st.integers(0, 5000))
@settings(max_examples=30, deadline=None)
def test_statistics_consistent(seed):
    _, owns, needs = random_problem(seed)
    plan = compute_global_plan(owns, needs, 8)
    total = plan.total_bytes_moved(exclude_self=True)
    if plan.nrounds:
        mean_rr = plan.mean_bytes_per_rank_per_round()
        assert mean_rr * plan.nprocs * plan.nrounds == pytest.approx(total)
    occupied = sum(len(c) for c in owns)
    if occupied:
        assert plan.mean_bytes_per_chunk_round() * occupied == pytest.approx(total)
    assert plan.max_bytes_per_rank_per_round() >= 0
    partners = plan.partners_per_rank()
    assert len(partners) == plan.nprocs
    assert all(0 <= p < plan.nprocs for p in partners)
