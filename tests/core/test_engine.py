"""Execution engines and the mapping lifecycle.

Covers the engine registry and ``DDR_BACKEND`` override, the auto engine's
plan-driven protocol selection (sparse -> direct sends, dense -> collective,
mixed plans -> both in one exchange), and the first-class mapping handles:
re-``setup()`` invalidates the previous mapping, independent handles from
``new_mapping()`` stay live concurrently, and stale use fails loudly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Box,
    Redistributor,
    StaleMappingError,
    default_backend,
    get_engine,
)
from repro.core.engine import ENGINES, AutoEngine
from tests.conftest import spmd


class TestEngineRegistry:
    def test_known_engines(self):
        assert set(ENGINES) == {"alltoallw", "p2p", "auto", "bounded"}
        for name in ENGINES:
            assert get_engine(name).name == name

    def test_engines_are_singletons(self):
        assert get_engine("auto") is get_engine("auto")

    def test_unknown_engine_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_engine("carrier-pigeon")

    def test_default_backend_plain(self, monkeypatch):
        monkeypatch.delenv("DDR_BACKEND", raising=False)
        assert default_backend() == "alltoallw"

    def test_default_backend_env_override(self, monkeypatch):
        monkeypatch.setenv("DDR_BACKEND", "auto")
        assert default_backend() == "auto"

        def fn(comm):
            return Redistributor(comm, ndims=1, dtype=np.float32).backend

        assert spmd(2, fn) == ["auto", "auto"]

    def test_default_backend_env_invalid(self, monkeypatch):
        monkeypatch.setenv("DDR_BACKEND", "smoke-signals")
        with pytest.raises(ValueError, match="DDR_BACKEND"):
            default_backend()


def ring_layout(nprocs: int, rank: int):
    """Sparse: rank owns cell ``rank``, needs cell ``rank + 1`` (mod P)."""
    return [Box((rank,), (1,))], Box(((rank + 1) % nprocs,), (1,))


def dense_layout(nprocs: int, rank: int):
    """Dense: rank owns cell ``rank``, needs the whole domain."""
    return [Box((rank,), (1,))], Box((0,), (nprocs,))


class TestAutoEngine:
    def test_picks_p2p_on_sparse_plan(self):
        def fn(comm):
            red = Redistributor(comm, ndims=1, dtype=np.float32, backend="auto")
            own, need = ring_layout(comm.size, comm.rank)
            red.setup(own=own, need=need)
            data = np.full(1, float(comm.rank), dtype=np.float32)
            out = red.gather_need([data])
            assert out[0] == (comm.rank + 1) % comm.size
            return red.engine_choices()

        for choices in spmd(6, fn):
            assert choices == ["p2p"]

    def test_picks_alltoallw_on_dense_plan(self):
        def fn(comm):
            red = Redistributor(comm, ndims=1, dtype=np.float32, backend="auto")
            own, need = dense_layout(comm.size, comm.rank)
            red.setup(own=own, need=need)
            data = np.full(1, float(comm.rank), dtype=np.float32)
            out = red.gather_need([data])
            assert np.array_equal(out, np.arange(comm.size, dtype=np.float32))
            return red.engine_choices()

        for choices in spmd(6, fn):
            assert choices == ["alltoallw"]

    def test_mixed_plan_uses_both_protocols_in_one_exchange(self):
        # Rank 0 owns a wide chunk feeding three ranks (collective round) and
        # a narrow chunk feeding exactly one (direct round); the other ranks
        # own nothing and just receive.
        nprocs = 4

        def fn(comm):
            red = Redistributor(comm, ndims=1, dtype=np.float32, backend="auto")
            own = [Box((0,), (6,)), Box((6,), (2,))] if comm.rank == 0 else []
            need = Box((comm.rank * 2,), (2,))
            red.setup(own=own, need=need)
            assert red.engine_choices() == ["alltoallw", "p2p"]
            buffers = (
                [np.arange(6, dtype=np.float32), np.arange(6, 8, dtype=np.float32)]
                if comm.rank == 0
                else []
            )
            out = red.gather_need(buffers)
            assert np.array_equal(
                out, np.arange(comm.rank * 2, comm.rank * 2 + 2, dtype=np.float32)
            )
            return True

        assert all(spmd(nprocs, fn))

    def test_choices_helper_matches_schedule(self):
        def fn(comm):
            red = Redistributor(comm, ndims=1, dtype=np.float32, backend="auto")
            own, need = dense_layout(comm.size, comm.rank)
            red.setup(own=own, need=need)
            return AutoEngine.choices(red.mapping) == red.engine_choices()

        assert all(spmd(4, fn))


class TestMappingLifecycle:
    def test_resetup_invalidates_previous_mapping(self):
        def fn(comm):
            red = Redistributor(comm, ndims=1, dtype=np.float32)
            own, need = ring_layout(comm.size, comm.rank)
            first = red.setup(own=own, need=need)
            data = np.zeros(1, dtype=np.float32)
            out = np.zeros(1, dtype=np.float32)
            red.exchange([data], out)  # populates first's buffer cache
            assert first.buffer_cache.signature([data], out) == first.buffer_cache._signature

            second = red.setup(own=own, need=need)
            assert first.stale and not second.stale
            assert red.mapping is second
            # The superseded mapping dropped its caches.
            assert first.buffer_cache._signature is None
            with pytest.raises(StaleMappingError, match="invalidated"):
                red.exchange([data], out, mapping=first)
            return True

        assert all(spmd(3, fn))

    def test_concurrent_mappings_exchange_independently(self):
        def fn(comm):
            nprocs, rank = comm.size, comm.rank
            red = Redistributor(comm, ndims=1, dtype=np.float32)
            ring_own, ring_need = ring_layout(nprocs, rank)
            red.setup(own=ring_own, need=ring_need)
            dense_own, dense_need = dense_layout(nprocs, rank)
            dense = red.new_mapping(own=dense_own, need=dense_need)

            data = np.full(1, float(rank), dtype=np.float32)
            for _ in range(2):  # repeat: per-mapping caches must not thrash
                ring_out = red.gather_need([data])
                assert ring_out[0] == (rank + 1) % nprocs
                dense_out = red.gather_need([data], mapping=dense)
                assert np.array_equal(dense_out, np.arange(nprocs, dtype=np.float32))
            return True

        assert all(spmd(4, fn))

    def test_new_mapping_survives_resetup(self):
        def fn(comm):
            nprocs, rank = comm.size, comm.rank
            red = Redistributor(comm, ndims=1, dtype=np.float32)
            dense_own, dense_need = dense_layout(nprocs, rank)
            handle = red.new_mapping(own=dense_own, need=dense_need)
            ring_own, ring_need = ring_layout(nprocs, rank)
            red.setup(own=ring_own, need=ring_need)
            red.setup(own=ring_own, need=ring_need)  # churn the active slot
            assert not handle.stale
            data = np.full(1, float(rank), dtype=np.float32)
            out = red.gather_need([data], mapping=handle)
            assert np.array_equal(out, np.arange(nprocs, dtype=np.float32))
            return True

        assert all(spmd(3, fn))

    def test_stale_error_is_loud_and_specific(self):
        def fn(comm):
            red = Redistributor(comm, ndims=1, dtype=np.float32)
            own, need = ring_layout(comm.size, comm.rank)
            first = red.setup(own=own, need=need)
            red.setup(own=own, need=need)
            data = np.zeros(1, dtype=np.float32)
            out = np.zeros(1, dtype=np.float32)
            try:
                red.exchange([data], out, mapping=first)
            except StaleMappingError as error:
                return str(error)
            return None

        for message in spmd(2, fn):
            assert message is not None
            assert "new_mapping" in message and "setup()" in message
        return None
