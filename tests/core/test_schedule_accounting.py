"""Accounting invariants of the exchange-schedule IR.

The memory-budget machinery trusts three properties of the schedule
statistics: bytes are conserved globally (every staged send is somebody's
staged receive), the bounded engine's lowered peak estimate shrinks — never
grows — as the budget-derived chunk shrinks, and the auto rule's per-round
engine choices are a pure function of the plan (identical across ranks and
across rebuilds, so no negotiation is ever needed).
"""

from __future__ import annotations

import pytest

from repro.core import (
    Box,
    MIN_CHUNK_BYTES,
    chunk_bytes_for,
    compute_global_plan,
    global_schedules,
)
from repro.core.schedule import PIECE_INFLIGHT
from repro.lbm.decompose import slab_box
from repro.volren.decompose import grid_boxes, grid_shape


def slab_to_tile_plan(nprocs: int, nx: int = 256, ny: int = 128):
    """The paper's motivating remap: row slabs in, grid tiles out."""
    shape = (nx, ny)
    tiles = grid_boxes(shape, grid_shape(nprocs, shape))
    return compute_global_plan(
        [[slab_box(nx, ny, nprocs, r)] for r in range(nprocs)],
        [tiles[r] for r in range(nprocs)],
        element_size=4,
    )


def multi_chunk_plan(nprocs: int):
    """Each rank owns two chunks -> a multi-round schedule."""
    owns = [
        [Box((2 * r,), (1,)), Box((2 * r + 1,), (1,))] for r in range(nprocs)
    ]
    needs = [
        Box(((2 * r + 3) % (2 * nprocs),), (2,) if 2 * r + 3 < 2 * nprocs - 1 else (1,))
        for r in range(nprocs)
    ]
    return compute_global_plan(owns, needs, element_size=8)


class TestGlobalConservation:
    @pytest.mark.parametrize("nprocs", [2, 4, 7])
    def test_bytes_in_equals_bytes_out(self, nprocs):
        schedules = global_schedules(slab_to_tile_plan(nprocs))
        total_out = sum(s.total_bytes_out for s in schedules)
        total_in = sum(r.bytes_in for s in schedules for r in s.rounds)
        assert total_out > 0
        assert total_out == total_in

    def test_per_round_conservation(self):
        # Rounds are synchronized: a lane sent in round k is received in
        # round k, so conservation holds round by round, not just in total.
        schedules = global_schedules(multi_chunk_plan(4))
        nrounds = max(s.nrounds for s in schedules)
        for k in range(nrounds):
            sent = sum(
                r.bytes_out for s in schedules for r in s.rounds if r.index == k
            )
            received = sum(
                r.bytes_in for s in schedules for r in s.rounds if r.index == k
            )
            assert sent == received

    def test_self_bytes_never_on_the_wire(self):
        schedules = global_schedules(slab_to_tile_plan(4))
        for schedule in schedules:
            for rnd in schedule.rounds:
                peers = {lane.peer for lane in rnd.sends}
                peers |= {lane.peer for lane in rnd.recvs}
                assert schedule.rank not in peers
                if rnd.self_send is not None:
                    assert rnd.self_send.peer == schedule.rank


class TestLoweredPeak:
    def test_monotone_in_chunk_bytes(self):
        # Shrinking the budget-derived chunk can only shrink the footprint.
        for schedule in global_schedules(slab_to_tile_plan(4)):
            for rnd in schedule.rounds:
                peaks = [
                    rnd.lowered_peak_bytes(chunk)
                    for chunk in (1, 64, 4096, 65536, 1 << 20, 1 << 30)
                ]
                assert peaks == sorted(peaks)
                assert all(p <= rnd.peak_bytes() for p in peaks)

    def test_lowering_caps_at_inflight_pieces(self):
        schedules = global_schedules(slab_to_tile_plan(4))
        rnd = next(
            r for s in schedules for r in s.rounds if r.sends or r.recvs
        )
        chunk = 4096
        assert rnd.lowered_peak_bytes(chunk) <= PIECE_INFLIGHT * chunk

    def test_zerocopy_stages_only_self_copy(self):
        for schedule in global_schedules(slab_to_tile_plan(4)):
            for rnd in schedule.rounds:
                assert rnd.peak_bytes("zerocopy") == rnd.self_bytes

    def test_schedule_peak_is_worst_round(self):
        for schedule in global_schedules(multi_chunk_plan(4)):
            assert schedule.peak_bytes() == max(
                (r.peak_bytes() for r in schedule.rounds), default=0
            )


class TestChunkBytesFor:
    def test_floor(self):
        assert chunk_bytes_for(0) == MIN_CHUNK_BYTES
        assert chunk_bytes_for(MIN_CHUNK_BYTES) == MIN_CHUNK_BYTES

    def test_monotone_and_below_limit(self):
        limits = [1 << 20, 8 << 20, 64 << 20, 1 << 30]
        chunks = [chunk_bytes_for(limit) for limit in limits]
        assert chunks == sorted(chunks)
        for limit, chunk in zip(limits, chunks):
            # PIECE_INFLIGHT resident pieces (x2 slack) stay within budget.
            assert PIECE_INFLIGHT * chunk <= limit


class TestEngineChoicesStable:
    def test_stable_across_rebuilds(self):
        plan = slab_to_tile_plan(4)
        first = [s.engine_choices() for s in global_schedules(plan)]
        second = [s.engine_choices() for s in global_schedules(plan)]
        assert first == second

    def test_identical_across_ranks(self):
        # The choice feeds the wire protocol: every rank must agree.
        for schedules in (
            global_schedules(slab_to_tile_plan(5)),
            global_schedules(multi_chunk_plan(4)),
        ):
            choices = {tuple(s.engine_choices()) for s in schedules}
            assert len(choices) == 1
