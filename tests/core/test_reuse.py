"""Buffer-validation caching and steady-state allocation behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Box, BufferCache, GhostExchanger, Redistributor
from repro.utils import StagingPool
from tests.conftest import counted_region, spmd, thread_only


class TestBufferCache:
    def test_hit_requires_same_identity_and_geometry(self):
        cache = BufferCache()
        own = [np.zeros(8), np.ones(8)]
        need = np.zeros(4)
        sig = cache.signature(own, need)
        cache.store(sig, own, need)
        assert cache.lookup(cache.signature(own, need)) == (own, need)
        # A different (equal-valued) array is a different buffer set.
        assert cache.lookup(cache.signature([np.zeros(8), own[1]], need)) is None
        # In-place reshaping changes the key even though the id is stable.
        own[0].shape = (2, 4)
        assert cache.lookup(cache.signature(own, need)) is None

    def test_non_ndarray_inputs_never_cached(self):
        cache = BufferCache()
        own = [[1.0, 2.0]]
        sig = cache.signature(own, None)
        assert sig is None
        cache.store(sig, own, None)  # no-op
        assert cache.lookup(sig) is None

    def test_no_need_buffer_is_part_of_the_key(self):
        cache = BufferCache()
        own = [np.zeros(8)]
        need = np.zeros(8)
        cache.store(cache.signature(own, need), own, need)
        assert cache.lookup(cache.signature(own, None)) is None


class TestStagingPool:
    def test_reuses_per_geometry(self):
        pool = StagingPool()
        a = pool.take((4, 4), np.float64)
        assert pool.take((4, 4), np.float64) is a
        assert pool.take((4, 4), np.float32) is not a
        assert pool.take((16,), np.float64) is not a
        pool.clear()
        assert pool.take((4, 4), np.float64) is not a

    def test_take_filled(self):
        pool = StagingPool()
        a = pool.take_filled((3,), np.int32, 7)
        assert a.tolist() == [7, 7, 7]
        a[:] = 0
        assert pool.take_filled((3,), np.int32, 7).tolist() == [7, 7, 7]

    def test_byte_budget_evicts_least_recently_taken(self):
        pool = StagingPool(max_bytes=2 * 64)  # room for two float64 (8,) arrays
        a = pool.take((8,), np.float64)
        b = pool.take((8,), np.float32)  # 32 bytes, still under budget
        a2 = pool.take((8,), np.float64)  # refresh a: now b is oldest
        assert a2 is a
        pool.take((16,), np.float32)  # 64 bytes -> over budget, evict b
        assert pool.evictions == 1
        assert pool.take((8,), np.float64) is a  # a survived (recently used)
        assert pool.take((8,), np.float32) is not b  # b was evicted
        assert pool.current_bytes <= pool.max_bytes

    def test_oversized_request_never_evicts_itself(self):
        pool = StagingPool(max_bytes=16)
        big = pool.take((100,), np.float64)  # 800 bytes > budget
        assert pool.take((100,), np.float64) is big  # still cached
        assert pool.current_bytes == 800

    def test_eviction_counted_in_transfer_counters_and_metrics(self):
        from repro.obs import MetricsRegistry
        from repro.utils.timing import counting_transfers

        pool = StagingPool(max_bytes=64)
        with counting_transfers() as counters:
            pool.take((8,), np.float64)
            pool.take((4,), np.float64)  # evicts the (8,) array
        assert pool.evictions == 1
        snap = counters.snapshot()
        assert snap["evictions"] == 1
        assert snap["bytes_evicted"] == 64
        registry = MetricsRegistry()
        registry.absorb_transfers(snap)
        assert registry.counters["transfer.pool_evictions"] == 1
        assert registry.counters["transfer.bytes_evicted"] == 64
        # Pre-eviction snapshots (no such keys) still absorb cleanly.
        registry.absorb_transfers(
            {"copies": {}, "bytes_copied": {}, "allocations": 0, "bytes_allocated": 0}
        )

    def test_clear_resets_accounting(self):
        pool = StagingPool(max_bytes=1024)
        pool.take((8,), np.float64)
        pool.clear()
        assert pool.current_bytes == 0


def _setup_redistributor(comm, **kwargs):
    r = comm.rank
    red = Redistributor(comm, ndims=2, dtype=np.float64, **kwargs)
    red.setup(own=[Box((0, 4 * r), (16, 4))], need=Box((4 * r, 0), (4, 16)))
    own = np.arange(64, dtype=np.float64).reshape(4, 16) + 1000 * r
    return red, own


@pytest.mark.parametrize("backend", ["alltoallw", "p2p"])
class TestSteadyStateAllocations:
    @thread_only
    def test_repeated_exchange_allocates_nothing(self, backend):
        """The headline guarantee: a warmed-up redistribution loop performs
        no staging allocations and only direct copies (zero-copy default)."""

        def fn(comm):
            red, own = _setup_redistributor(comm, backend=backend)
            out = np.zeros((16, 4))
            red.exchange([own], out)
            expect = out.copy()
            _, snap = counted_region(
                comm, lambda: [red.exchange([own], out) for _ in range(5)]
            )
            assert np.array_equal(out, expect)
            return snap

        snap = spmd(4, fn)[0]
        assert snap["allocations"] == 0
        assert snap["copies"]["pack"] == 0
        assert snap["copies"]["unpack"] == 0
        assert snap["copies"]["payload"] == 0
        assert snap["copies"]["direct"] > 0

    @thread_only
    def test_gather_need_reuse_out(self, backend):
        def fn(comm):
            red, own = _setup_redistributor(comm, backend=backend)
            first = red.gather_need([own], reuse_out=True)
            (_, second), snap = counted_region(
                comm, lambda: (None, red.gather_need([own], reuse_out=True))
            )
            assert second is first
            fresh = red.gather_need([own])
            assert fresh is not first and np.array_equal(fresh, first)
            return snap

        snap = spmd(4, fn)[0]
        assert snap["allocations"] == 0

    def test_swapping_buffers_revalidates_correctly(self, backend):
        """A cache miss (new arrays) must still validate and still work."""

        def fn(comm):
            red, own = _setup_redistributor(comm, backend=backend)
            out = np.zeros((16, 4))
            red.exchange([own], out)
            other = own.copy() + 0.5
            out2 = np.zeros((16, 4))
            red.exchange([other], out2)
            assert np.array_equal(out2, out + 0.5)
            # Bad geometry is still rejected after the cache was warmed.
            with pytest.raises(ValueError):
                red.exchange([np.zeros(63)], out)
            return True

        assert all(spmd(4, fn))


class TestGhostExchangerReuse:
    @thread_only
    def test_reuse_buffer_returns_same_array(self):
        domain = Box((0,), (16,))

        def fn(comm):
            own = Box((4 * comm.rank,), (4,))
            ghosts = GhostExchanger(comm, ndims=1, dtype=np.float64, reuse_buffer=True)
            ghosts.setup(own=own, halo=1, domain=domain)
            interior = np.arange(4, dtype=np.float64) + 10 * comm.rank
            a = ghosts.exchange(interior)
            (_, b), snap = counted_region(
                comm, lambda: (None, ghosts.exchange(interior))
            )
            assert b is a
            # Interior cells plus up-to-date neighbours.
            assert np.array_equal(ghosts.interior_view(b), interior)
            return snap

        snap = spmd(4, fn)[0]
        assert snap["allocations"] == 0

    def test_default_returns_fresh_arrays(self):
        domain = Box((0,), (8,))

        def fn(comm):
            own = Box((4 * comm.rank,), (4,))
            ghosts = GhostExchanger(comm, ndims=1, dtype=np.float64)
            ghosts.setup(own=own, halo=1, domain=domain)
            interior = np.arange(4, dtype=np.float64)
            a = ghosts.exchange(interior)
            b = ghosts.exchange(interior)
            assert a is not b and np.array_equal(a, b)
            return True

        assert all(spmd(2, fn))


class TestTransportParameter:
    def test_invalid_transport_rejected(self):
        def fn(comm):
            with pytest.raises(ValueError):
                Redistributor(comm, ndims=1, dtype=np.float64, transport="bogus")
            red = Redistributor(comm, ndims=1, dtype=np.float64)
            with pytest.raises(ValueError):
                red.set_transport("smoke-signals")
            return True

        assert all(spmd(1, fn))

    def test_packed_transport_still_selectable(self):
        def fn(comm):
            red, own = _setup_redistributor(comm, transport="packed")
            out = np.zeros((16, 4))
            red.exchange([own], out)
            _, snap = counted_region(comm, lambda: red.exchange([own], out))
            return out, snap

        results = spmd(4, fn)
        snap = results[0][1]
        assert snap["copies"]["direct"] == 0
        assert snap["copies"]["pack"] > 0 and snap["copies"]["unpack"] > 0
