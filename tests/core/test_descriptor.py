"""DataDescriptor (DDR_NewDataDescriptor) unit tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DATA_TYPE_1D,
    DATA_TYPE_2D,
    DATA_TYPE_3D,
    DDR_NewDataDescriptor,
    DataDescriptor,
    DataLayout,
)
from repro.mpisim import DOUBLE, FLOAT


class TestCreate:
    def test_paper_call(self):
        # Algorithm 1 line 1: DDR_NewDataDescriptor(nProcesses, DATA_TYPE_2D,
        # MPI_FLOAT, sizeof(float))
        desc = DDR_NewDataDescriptor(4, DATA_TYPE_2D, FLOAT, 4)
        assert desc.nprocs == 4
        assert desc.ndims == 2
        assert desc.dtype == np.float32
        assert desc.element_size == 4
        assert not desc.is_mapped

    def test_numpy_dtype_accepted(self):
        desc = DDR_NewDataDescriptor(8, DATA_TYPE_3D, np.uint8)
        assert desc.element_size == 1
        assert desc.ndims == 3

    def test_element_size_inferred(self):
        desc = DDR_NewDataDescriptor(2, DATA_TYPE_1D, DOUBLE)
        assert desc.element_size == 8

    def test_element_size_mismatch_rejected(self):
        # Multiples of the base size are legal (interleaved components);
        # non-multiples are not.
        with pytest.raises(ValueError):
            DDR_NewDataDescriptor(4, DATA_TYPE_2D, FLOAT, 6)
        with pytest.raises(ValueError):
            DDR_NewDataDescriptor(4, DATA_TYPE_2D, FLOAT, 0)

    def test_element_size_multiple_gives_components(self):
        desc = DDR_NewDataDescriptor(4, DATA_TYPE_2D, FLOAT, 8)
        assert desc.components == 2

    def test_bad_nprocs(self):
        with pytest.raises(ValueError):
            DDR_NewDataDescriptor(0, DATA_TYPE_2D, FLOAT, 4)

    def test_layout_from_int(self):
        desc = DataDescriptor.create(2, 2, np.float32)
        assert desc.layout is DataLayout.DATA_TYPE_2D

    def test_bad_layout(self):
        with pytest.raises(ValueError):
            DataDescriptor.create(2, 7, np.float32)

    def test_layout_ndims(self):
        assert DataLayout.DATA_TYPE_1D.ndims == 1
        assert DataLayout.DATA_TYPE_2D.ndims == 2
        assert DataLayout.DATA_TYPE_3D.ndims == 3
