"""The central DDR correctness property, tested on random decompositions:

    after reorganization, every cell of every rank's need buffer equals the
    value that cell had in the (conceptual) global array, regardless of how
    the owned chunks tiled the domain.

Tilings are produced by recursive bisection so they are always mutually
exclusive and complete (the paper's §III-B precondition); needs are
arbitrary sub-boxes and may overlap across ranks.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Box, Redistributor
from repro.mpisim import TRANSPORT_PACKED, TRANSPORT_ZEROCOPY, transport
from tests.conftest import spmd


def bisect_tiling(domain: Box, count: int, rng: np.random.Generator) -> list[Box]:
    """Split ``domain`` into exactly ``count`` mutually exclusive boxes."""
    boxes = [domain]
    while len(boxes) < count:
        splittable = [i for i, b in enumerate(boxes) if max(b.dims) > 1]
        if not splittable:
            break
        index = int(rng.choice(splittable))
        box = boxes.pop(index)
        axes = [a for a in range(box.ndim) if box.dims[a] > 1]
        axis = int(rng.choice(axes))
        cut = int(rng.integers(1, box.dims[axis]))
        lo_dims = list(box.dims)
        lo_dims[axis] = cut
        hi_dims = list(box.dims)
        hi_dims[axis] = box.dims[axis] - cut
        hi_off = list(box.offset)
        hi_off[axis] += cut
        boxes.append(Box(box.offset, tuple(lo_dims)))
        boxes.append(Box(tuple(hi_off), tuple(hi_dims)))
    return boxes


def random_subbox(domain: Box, rng: np.random.Generator) -> Box:
    offset = []
    dims = []
    for full_off, full_dim in zip(domain.offset, domain.dims):
        size = int(rng.integers(1, full_dim + 1))
        start = int(rng.integers(0, full_dim - size + 1))
        offset.append(full_off + start)
        dims.append(size)
    return Box(tuple(offset), tuple(dims))


def global_reference(domain: Box, dtype) -> np.ndarray:
    """Global array with unique cell values, shaped C-order (reversed dims)."""
    return np.arange(domain.volume(), dtype=dtype).reshape(domain.np_shape())


def extract(global_array: np.ndarray, domain: Box, region: Box) -> np.ndarray:
    starts = region.np_starts_within(domain)
    slices = tuple(slice(s, s + d) for s, d in zip(starts, region.np_shape()))
    return global_array[slices]


def run_case(ndim: int, nprocs: int, seed: int, backend: str) -> None:
    rng = np.random.default_rng(seed)
    dims = tuple(int(rng.integers(2, 9)) for _ in range(ndim))
    domain = Box((0,) * ndim, dims)
    nchunks = int(rng.integers(nprocs, 3 * nprocs + 1))
    tiles = bisect_tiling(domain, nchunks, rng)
    assignment = rng.integers(0, nprocs, size=len(tiles))
    owns = [[tiles[i] for i in np.nonzero(assignment == r)[0]] for r in range(nprocs)]
    # Guarantee at least one rank owns something (bisect always yields >= 1).
    if all(len(chunks) == 0 for chunks in owns):
        owns[0] = tiles
    needs = [random_subbox(domain, rng) for _ in range(nprocs)]
    reference = global_reference(domain, np.float32)

    def fn(comm):
        rank = comm.rank
        red = Redistributor(comm, ndims=ndim, dtype=np.float32, backend=backend)
        red.setup(own=owns[rank], need=needs[rank])
        own_buffers = [
            np.ascontiguousarray(extract(reference, domain, chunk)) for chunk in owns[rank]
        ]
        out = red.gather_need(own_buffers, fill=-1)
        expect = extract(reference, domain, needs[rank])
        assert np.array_equal(out, expect), (
            rank,
            owns[rank],
            needs[rank],
            out,
            expect,
        )
        return True

    assert all(spmd(nprocs, fn))


@pytest.mark.parametrize("backend", ["alltoallw", "p2p", "auto"])
class TestRedistributionProperty:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_1d(self, backend, seed):
        run_case(1, 3, seed, backend)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_2d(self, backend, seed):
        run_case(2, 4, seed, backend)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_3d(self, backend, seed):
        run_case(3, 4, seed, backend)

    def test_single_rank(self, backend):
        run_case(2, 1, 7, backend)

    def test_many_ranks(self, backend):
        run_case(2, 8, 11, backend)


class TestBackendsAgree:
    """All three engines must produce identical buffers for the same plan."""

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_identical_output(self, seed):
        rng = np.random.default_rng(seed)
        ndim, nprocs = 2, 4
        dims = tuple(int(rng.integers(3, 8)) for _ in range(ndim))
        domain = Box((0,) * ndim, dims)
        tiles = bisect_tiling(domain, 2 * nprocs, rng)
        assignment = rng.integers(0, nprocs, size=len(tiles))
        owns = [[tiles[i] for i in np.nonzero(assignment == r)[0]] for r in range(nprocs)]
        needs = [random_subbox(domain, rng) for _ in range(nprocs)]
        reference = global_reference(domain, np.float32)

        def fn(comm, backend):
            red = Redistributor(comm, ndims=ndim, dtype=np.float32, backend=backend)
            red.setup(own=owns[comm.rank], need=needs[comm.rank])
            buffers = [
                np.ascontiguousarray(extract(reference, domain, c)) for c in owns[comm.rank]
            ]
            return red.gather_need(buffers, fill=-1)

        out_a = spmd(nprocs, fn, "alltoallw")
        for backend in ("p2p", "auto"):
            out_b = spmd(nprocs, fn, backend)
            for a, b in zip(out_a, out_b):
                assert np.array_equal(a, b)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_identical_output_under_both_transports(self, seed):
        rng = np.random.default_rng(seed)
        ndim, nprocs = 2, 4
        dims = tuple(int(rng.integers(3, 8)) for _ in range(ndim))
        domain = Box((0,) * ndim, dims)
        tiles = bisect_tiling(domain, 2 * nprocs, rng)
        assignment = rng.integers(0, nprocs, size=len(tiles))
        owns = [[tiles[i] for i in np.nonzero(assignment == r)[0]] for r in range(nprocs)]
        needs = [random_subbox(domain, rng) for _ in range(nprocs)]
        reference = global_reference(domain, np.float32)

        def fn(comm, backend, mode):
            red = Redistributor(
                comm, ndims=ndim, dtype=np.float32, backend=backend, transport=mode
            )
            red.setup(own=owns[comm.rank], need=needs[comm.rank])
            buffers = [
                np.ascontiguousarray(extract(reference, domain, c)) for c in owns[comm.rank]
            ]
            return red.gather_need(buffers, fill=-1)

        baseline = spmd(nprocs, fn, "alltoallw", TRANSPORT_ZEROCOPY)
        for backend in ("alltoallw", "p2p", "auto"):
            for mode in (TRANSPORT_ZEROCOPY, TRANSPORT_PACKED):
                out = spmd(nprocs, fn, backend, mode)
                for a, b in zip(baseline, out):
                    assert np.array_equal(a, b), (backend, mode)


class TestTransportsAgree:
    """The property must hold identically under both wire transports."""

    @pytest.mark.parametrize("mode", [TRANSPORT_ZEROCOPY, TRANSPORT_PACKED])
    @pytest.mark.parametrize("backend", ["alltoallw", "p2p", "auto"])
    @pytest.mark.parametrize("seed", [3, 17])
    def test_property_under_transport(self, mode, backend, seed):
        with transport(mode):
            run_case(2, 4, seed, backend)

    @pytest.mark.parametrize("mode", [TRANSPORT_ZEROCOPY, TRANSPORT_PACKED])
    def test_3d_under_transport(self, mode):
        with transport(mode):
            run_case(3, 4, 23, "alltoallw")

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_transports_bit_identical(self, seed):
        rng = np.random.default_rng(seed)
        ndim, nprocs = 2, 4
        dims = tuple(int(rng.integers(3, 8)) for _ in range(ndim))
        domain = Box((0,) * ndim, dims)
        tiles = bisect_tiling(domain, 2 * nprocs, rng)
        assignment = rng.integers(0, nprocs, size=len(tiles))
        owns = [[tiles[i] for i in np.nonzero(assignment == r)[0]] for r in range(nprocs)]
        needs = [random_subbox(domain, rng) for _ in range(nprocs)]
        reference = global_reference(domain, np.float32)

        def fn(comm, mode):
            red = Redistributor(
                comm, ndims=ndim, dtype=np.float32, transport=mode
            )
            red.setup(own=owns[comm.rank], need=needs[comm.rank])
            buffers = [
                np.ascontiguousarray(extract(reference, domain, c)) for c in owns[comm.rank]
            ]
            return red.gather_need(buffers, fill=-1)

        out_zc = spmd(nprocs, fn, TRANSPORT_ZEROCOPY)
        out_pk = spmd(nprocs, fn, TRANSPORT_PACKED)
        for a, b in zip(out_zc, out_pk):
            assert np.array_equal(a, b)
