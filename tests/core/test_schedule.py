"""The exchange-schedule IR: lowering, statistics, and the auto-selection rule."""

from __future__ import annotations

import numpy as np

from repro.core import (
    Box,
    DataDescriptor,
    DataLayout,
    build_schedule,
    collective_preferred,
    compute_global_plan,
    global_schedules,
    round_max_partners,
)
from repro.core.mapping import local_mapping_from_global


def ring_plan(nprocs: int):
    """Sparse 1-D pattern: rank r owns cell r, needs cell (r+1) % nprocs."""
    owns = [[Box((r,), (1,))] for r in range(nprocs)]
    needs = [Box(((r + 1) % nprocs,), (1,)) for r in range(nprocs)]
    return compute_global_plan(owns, needs, element_size=4)


def dense_plan(nprocs: int):
    """Dense 1-D pattern: rank r owns cell r, everyone needs all cells."""
    owns = [[Box((r,), (1,))] for r in range(nprocs)]
    needs = [Box((0,), (nprocs,)) for _ in range(nprocs)]
    return compute_global_plan(owns, needs, element_size=4)


class TestCollectivePreferred:
    def test_single_rank_never_collective(self):
        assert not collective_preferred(0, 1)
        assert not collective_preferred(5, 1)

    def test_threshold_boundary(self):
        # 9 ranks: threshold 0.5 * 8 = 4 partners.
        assert collective_preferred(4, 9)
        assert not collective_preferred(3, 9)

    def test_custom_threshold(self):
        assert collective_preferred(1, 9, threshold=0.1)
        assert not collective_preferred(7, 9, threshold=1.0)
        assert collective_preferred(8, 9, threshold=1.0)


class TestRoundMaxPartners:
    def test_ring_is_sparse(self):
        # Each rank sends to one neighbour and receives from the other.
        plan = ring_plan(6)
        assert round_max_partners(plan) == [2]

    def test_dense_is_everyone(self):
        plan = dense_plan(6)
        assert round_max_partners(plan) == [5]

    def test_statistic_is_rank_independent(self):
        # Every rank would compute the same values from the same global plan —
        # the property that lets AutoEngine pick protocols with no negotiation.
        plan = ring_plan(5)
        again = round_max_partners(plan)
        assert again == round_max_partners(plan)


class TestBuildSchedule:
    def test_lanes_and_bytes(self):
        plan = ring_plan(4)
        schedules = global_schedules(plan)
        for rank, schedule in enumerate(schedules):
            assert schedule.rank == rank
            assert schedule.nrounds == 1
            rnd = schedule.rounds[0]
            # One remote send (to the rank that needs my cell), one remote recv.
            assert [lane.peer for lane in rnd.sends] == [(rank - 1) % 4]
            assert [lane.peer for lane in rnd.recvs] == [(rank + 1) % 4]
            assert rnd.bytes_out == 4
            assert rnd.bytes_in == 4
            assert rnd.self_send is None and rnd.self_recv is None
            assert rnd.partners == 2
            assert rnd.message_count == 1

    def test_self_lane_split_out(self):
        # Rank 0 keeps its own cell: the transfer is a self lane, not a message.
        owns = [[Box((0,), (1,))], [Box((1,), (1,))]]
        needs = [Box((0,), (2,)), None]
        plan = compute_global_plan(owns, needs, element_size=8)
        schedule = global_schedules(plan)[0]
        rnd = schedule.rounds[0]
        assert rnd.self_send is not None and rnd.self_send.nbytes == 8
        assert rnd.sends == []
        assert [lane.peer for lane in rnd.recvs] == [1]
        assert rnd.self_bytes == 8
        assert schedule.total_self_bytes == 8

    def test_cost_model_form_has_no_datatypes(self):
        plan = dense_plan(3)
        for schedule in global_schedules(plan):
            for rnd in schedule.rounds:
                for lane in rnd.sends + rnd.recvs:
                    assert lane.datatype is None

    def test_execution_form_has_datatypes(self):
        plan = dense_plan(3)
        descriptor = DataDescriptor.create(3, DataLayout.DATA_TYPE_1D, np.float32)
        mapping = local_mapping_from_global(plan, None, 0, descriptor)
        rnd = mapping.rounds[0]
        for lane in rnd.sends + rnd.recvs:
            assert lane.datatype is not None
        # Dense per-peer tables include the self lane on the diagonal.
        assert rnd.sendtypes()[0] is rnd.self_send.datatype
        assert len(rnd.sendtypes()) == 3 and len(rnd.recvtypes()) == 3

    def test_sendtypes_cached(self):
        plan = dense_plan(3)
        descriptor = DataDescriptor.create(3, DataLayout.DATA_TYPE_1D, np.float32)
        mapping = local_mapping_from_global(plan, None, 1, descriptor)
        rnd = mapping.rounds[0]
        assert rnd.sendtypes() is rnd.sendtypes()
        assert rnd.recvtypes() is rnd.recvtypes()


class TestEngineChoices:
    def test_ring_prefers_p2p(self):
        plan = ring_plan(6)
        for schedule in global_schedules(plan):
            assert schedule.engine_choices() == ["p2p"]

    def test_dense_prefers_alltoallw(self):
        plan = dense_plan(6)
        for schedule in global_schedules(plan):
            assert schedule.engine_choices() == ["alltoallw"]

    def test_mixed_plan_mixes_choices(self):
        # Rank 0 owns two chunks: a wide one feeding three ranks (dense round)
        # and a narrow one feeding exactly one rank (sparse round).
        owns = [[Box((0,), (6,)), Box((6,), (2,))], [], [], []]
        needs = [Box((r * 2,), (2,)) for r in range(4)]
        plan = compute_global_plan(owns, needs, element_size=4, ndims=1)
        assert round_max_partners(plan) == [2, 1]
        for schedule in global_schedules(plan):
            assert schedule.engine_choices() == ["alltoallw", "p2p"]

    def test_without_global_stats_defaults_to_p2p(self):
        # Schedules built from a lone RankPlan carry max_partners == 0.
        plan = dense_plan(4)
        schedule = build_schedule(plan.rank_plans[0], 4, 1, 4)
        assert schedule.rounds[0].max_partners == 0
        assert schedule.engine_choices() == ["p2p"]
