"""Unit + property tests for the Box algebra underlying DDR's mapping."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Box, boxes_from_flat, intersect_many


def box_strategy(ndim: int, lo: int = 0, hi: int = 20):
    offs = st.tuples(*[st.integers(lo, hi)] * ndim)
    dims = st.tuples(*[st.integers(1, hi)] * ndim)
    return st.builds(Box, offs, dims)


class TestConstruction:
    def test_basic(self):
        b = Box((1, 2), (3, 4))
        assert b.ndim == 2
        assert b.end == (4, 6)
        assert b.volume() == 12

    def test_rank_mismatch(self):
        with pytest.raises(ValueError):
            Box((0,), (1, 2))

    def test_negative_dims(self):
        with pytest.raises(ValueError):
            Box((0, 0), (1, -1))

    def test_zero_rank(self):
        with pytest.raises(ValueError):
            Box((), ())

    def test_empty_box(self):
        assert Box((0,), (0,)).is_empty()
        assert not Box((0,), (1,)).is_empty()

    def test_numpy_ints_accepted(self):
        b = Box(tuple(np.array([1, 2])), tuple(np.array([3, 4])))
        assert b.offset == (1, 2)
        assert isinstance(b.offset[0], int)


class TestGeometry:
    def test_intersect_overlap(self):
        a = Box((0, 0), (4, 4))
        b = Box((2, 2), (4, 4))
        hit = a.intersect(b)
        assert hit == Box((2, 2), (2, 2))

    def test_intersect_disjoint(self):
        assert Box((0,), (2,)).intersect(Box((5,), (2,))) is None

    def test_intersect_touching_is_disjoint(self):
        # Half-open boxes: [0,2) and [2,4) do not overlap.
        assert Box((0,), (2,)).intersect(Box((2,), (2,))) is None

    def test_contains(self):
        outer = Box((0, 0, 0), (10, 10, 10))
        assert outer.contains_box(Box((1, 2, 3), (2, 2, 2)))
        assert not outer.contains_box(Box((9, 0, 0), (2, 1, 1)))
        assert outer.contains_point((0, 0, 0))
        assert not outer.contains_point((10, 0, 0))

    def test_contains_empty(self):
        assert Box((0,), (2,)).contains_box(Box((100,), (0,)))

    def test_translate_relative(self):
        b = Box((5, 6), (2, 3))
        assert b.translate((-5, -6)) == Box((0, 0), (2, 3))
        origin = Box((4, 4), (10, 10))
        assert b.relative_to(origin) == Box((1, 2), (2, 3))

    def test_union_bounds(self):
        a = Box((0, 0), (2, 2))
        b = Box((5, 1), (1, 4))
        assert a.union_bounds(b) == Box((0, 0), (6, 5))

    def test_np_shape_is_reversed(self):
        # Paper order [i, j, k] (i fastest) -> C shape (k, j, i).
        assert Box((0, 0, 0), (4096, 2048, 1)).np_shape() == (1, 2048, 4096)

    def test_np_starts_within(self):
        container = Box((0, 0), (8, 8))
        region = Box((4, 2), (2, 3))
        assert region.np_starts_within(container) == (2, 4)

    def test_np_starts_outside_raises(self):
        with pytest.raises(ValueError):
            Box((7, 0), (4, 1)).np_starts_within(Box((0, 0), (8, 8)))

    def test_cells(self):
        cells = list(Box((1, 10), (2, 2)).cells())
        assert cells == [(1, 10), (1, 11), (2, 10), (2, 11)]


class TestProperties:
    @given(a=box_strategy(2), b=box_strategy(2))
    @settings(max_examples=200, deadline=None)
    def test_intersection_commutative_and_contained(self, a, b):
        ab, ba = a.intersect(b), b.intersect(a)
        assert ab == ba
        if ab is not None:
            assert a.contains_box(ab) and b.contains_box(ab)
            assert ab.volume() <= min(a.volume(), b.volume())
            assert not ab.is_empty()

    @given(a=box_strategy(3), b=box_strategy(3))
    @settings(max_examples=100, deadline=None)
    def test_intersection_cellwise(self, a, b):
        """Geometric intersection equals set intersection of cells."""
        if a.volume() > 400 or b.volume() > 400:
            return
        hit = a.intersect(b)
        cells = set(a.cells()) & set(b.cells())
        if hit is None:
            assert not cells
        else:
            assert set(hit.cells()) == cells

    @given(a=box_strategy(2))
    @settings(max_examples=50, deadline=None)
    def test_self_intersection_identity(self, a):
        assert a.intersect(a) == a

    @given(a=box_strategy(2), b=box_strategy(2))
    @settings(max_examples=100, deadline=None)
    def test_union_bounds_contains_both(self, a, b):
        u = a.union_bounds(b)
        assert u.contains_box(a) and u.contains_box(b)


class TestIntersectMany:
    def test_matches_scalar_intersect(self):
        box = Box((2, 2), (5, 5))
        others = [Box((0, 0), (3, 3)), Box((10, 10), (2, 2)), Box((4, 4), (9, 9))]
        offsets = np.array([o.offset for o in others])
        dims = np.array([o.dims for o in others])
        mask, lo, extent = intersect_many(box, offsets, dims)
        for i, other in enumerate(others):
            hit = box.intersect(other)
            assert mask[i] == (hit is not None)
            if hit is not None:
                assert tuple(lo[i]) == hit.offset
                assert tuple(extent[i]) == hit.dims

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            intersect_many(Box((0,), (1,)), np.zeros((2, 2)), np.zeros((2, 2)))


class TestBoxesFromFlat:
    def test_paper_table1_rank0(self):
        # Table I, rank 0: P4 = {[8,1],[8,1]}, P5 = {[0,0],[0,4]}
        boxes = boxes_from_flat(2, 2, [8, 1, 8, 1], [0, 0, 0, 4])
        assert boxes == [Box((0, 0), (8, 1)), Box((0, 4), (8, 1))]

    def test_nested_input_accepted(self):
        boxes = boxes_from_flat(2, 2, [[8, 1], [8, 1]], [[0, 0], [0, 4]])
        assert boxes[1] == Box((0, 4), (8, 1))

    def test_wrong_length_raises(self):
        with pytest.raises(ValueError):
            boxes_from_flat(2, 2, [8, 1, 8], [0, 0, 0, 4])
        with pytest.raises(ValueError):
            boxes_from_flat(2, 2, [8, 1, 8, 1], [0, 0, 0])
