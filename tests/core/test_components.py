"""Interleaved multi-component elements (extension of the paper's fixed-size
element model toward its related-work 'array interleaving' layout)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Box, DataDescriptor, Redistributor
from tests.conftest import spmd


class TestDescriptorComponents:
    def test_components_derived(self):
        desc = DataDescriptor.create(4, 2, np.float32, components=3)
        assert desc.components == 3
        assert desc.element_size == 12

    def test_scalar_default(self):
        desc = DataDescriptor.create(4, 2, np.float32)
        assert desc.components == 1

    def test_element_size_multiple_accepted(self):
        desc = DataDescriptor.create(4, 2, np.float32, element_size=8)
        assert desc.components == 2

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            DataDescriptor.create(4, 2, np.float32, element_size=6)  # not a multiple
        with pytest.raises(ValueError):
            DataDescriptor.create(4, 2, np.float32, components=0)
        with pytest.raises(ValueError):
            DataDescriptor.create(4, 2, np.float32, element_size=8, components=2)


class TestVectorFieldRedistribution:
    def test_rgb_pixels_travel_together(self):
        """2-D RGB image: rows in, quadrants out, all 3 channels intact."""
        k = 3
        reference = np.arange(8 * 8 * k, dtype=np.float32).reshape(8, 8, k)

        def fn(comm):
            rank = comm.rank
            red = Redistributor(comm, ndims=2, dtype=np.float32, components=k)
            red.setup(
                own=[Box((0, rank), (8, 1)), Box((0, rank + 4), (8, 1))],
                need=Box((4 * (rank % 2), 4 * (rank // 2)), (4, 4)),
            )
            own = [
                reference[rank : rank + 1].copy(),
                reference[rank + 4 : rank + 5].copy(),
            ]
            out = red.gather_need(own)
            assert out.shape == (4, 4, k)
            right, bottom = rank % 2, rank // 2
            expect = reference[4 * bottom : 4 * bottom + 4, 4 * right : 4 * right + 4]
            assert np.array_equal(out, expect)
            return True

        assert all(spmd(4, fn))

    def test_velocity_pairs_1d(self):
        """(ux, uy) records over a 1-D domain, reversed distribution."""
        n, k = 12, 2
        reference = np.arange(n * k, dtype=np.float64).reshape(n, k)

        def fn(comm):
            rank, size = comm.rank, comm.size
            per = n // size
            red = Redistributor(comm, ndims=1, dtype=np.float64, components=k)
            red.setup(
                own=[Box((rank * per,), (per,))],
                need=Box(((size - 1 - rank) * per,), (per,)),
            )
            out = red.gather_need([reference[rank * per : (rank + 1) * per].copy()])
            lo = (size - 1 - rank) * per
            assert np.array_equal(out, reference[lo : lo + per])
            return True

        assert all(spmd(3, fn))

    def test_p2p_backend_agrees(self):
        k = 2
        reference = np.arange(6 * 4 * k, dtype=np.float32).reshape(4, 6, k)

        def fn(comm, backend):
            rank = comm.rank
            red = Redistributor(comm, ndims=2, dtype=np.float32,
                                components=k, backend=backend)
            red.setup(
                own=[Box((0, rank * 2), (6, 2))],
                need=Box((3 * (rank % 2), 2 * (rank // 2)), (3, 2)),
            )
            return red.gather_need([reference[rank * 2 : rank * 2 + 2].copy()])

        a = spmd(2, fn, "alltoallw")
        b = spmd(2, fn, "p2p")
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_byte_accounting_scales_with_components(self):
        from repro.core import compute_global_plan

        owns = [[Box((0,), (4,))], [Box((4,), (4,))]]
        needs = [Box((4,), (4,)), Box((0,), (4,))]
        plan_scalar = compute_global_plan(owns, needs, element_size=4)
        plan_vec = compute_global_plan(owns, needs, element_size=12)
        assert plan_vec.total_bytes_moved() == 3 * plan_scalar.total_bytes_moved()

    def test_wrong_buffer_size_rejected(self):
        def fn(comm):
            red = Redistributor(comm, ndims=1, dtype=np.float32, components=3)
            red.setup(own=[Box((comm.rank * 4,), (4,))], need=Box((comm.rank * 4,), (4,)))
            with pytest.raises(ValueError, match="x 3"):
                red.exchange([np.zeros(4, np.float32)], np.zeros(12, np.float32))

        spmd(2, fn)

    @given(k=st.integers(1, 4), seed=st.integers(0, 200))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_property_matches_per_component_exchanges(self, k, seed):
        """One k-component exchange == k independent scalar exchanges."""
        rng = np.random.default_rng(seed)
        n = 8
        reference = rng.random((n, n, k)).astype(np.float32)
        nprocs = 2

        def vector(comm):
            rank = comm.rank
            red = Redistributor(comm, ndims=2, dtype=np.float32, components=k)
            red.setup(own=[Box((0, rank * 4), (n, 4))], need=Box((0, (1 - rank) * 4), (n, 4)))
            return red.gather_need([reference[rank * 4 : rank * 4 + 4].copy()])

        def scalar(comm, channel):
            rank = comm.rank
            red = Redistributor(comm, ndims=2, dtype=np.float32)
            red.setup(own=[Box((0, rank * 4), (n, 4))], need=Box((0, (1 - rank) * 4), (n, 4)))
            data = np.ascontiguousarray(reference[rank * 4 : rank * 4 + 4, :, channel])
            return red.gather_need([data])

        vec_out = spmd(nprocs, vector)
        for channel in range(k):
            ch_out = spmd(nprocs, scalar, channel)
            for v, s in zip(vec_out, ch_out):
                # k == 1 keeps the scalar shape (no trailing component axis).
                got = v[..., channel] if k > 1 else v
                assert np.array_equal(got, s)
