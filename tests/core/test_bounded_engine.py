"""Memory-budget enforcement end to end: strict refusal, bounded lowering.

The acceptance story of the budget machinery: a slab-to-tile redistribution
whose staged peak exceeds ``DDR_MEM_BUDGET_MB`` must *refuse* (typed, before
allocating) under the strict engines, and *complete bitwise-equal* under the
``bounded`` engine at roughly half the unbounded peak — with the ledger
drained back to zero afterwards (no staging leaks).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Redistributor, compute_global_plan, global_schedules
from repro.core.engine import AutoEngine
from repro.core.schedule import MIN_CHUNK_BYTES, PIECE_INFLIGHT
from repro.lbm.decompose import slab_box
from repro.mpisim import RankFailure
from repro.mpisim.errors import MemoryBudgetError
from repro.utils.membudget import MEMORY_BUDGET, budget_scope
from repro.volren.decompose import grid_boxes, grid_shape
from tests.conftest import spmd, thread_only

NPROCS = 4
NX, NY = 256, 128
#: Geometry big enough that ``PIECE_INFLIGHT * MIN_CHUNK_BYTES`` fits under
#: half the unbounded peak — the regime where the Pareto rule can *model*
#: bounded as within budget (small rounds fall back to best effort).
BIG_NX, BIG_NY = 1024, 512


def _layout(nprocs: int, rank: int, nx: int, ny: int):
    own = slab_box(nx, ny, nprocs, rank)
    need = grid_boxes((nx, ny), grid_shape(nprocs, (nx, ny)))[rank]
    return own, need


def _exchange(comm, backend: str, nx: int = NX, ny: int = NY, generations: int = 2):
    """Slab-to-tile remap; returns the gathered tiles, one per generation."""
    own_box, need_box = _layout(comm.size, comm.rank, nx, ny)
    red = Redistributor(
        comm, ndims=2, dtype=np.float32, backend=backend, transport="packed"
    )
    red.setup(own=[own_box], need=need_box)
    field = np.arange(nx * ny, dtype=np.float32).reshape(ny, nx)
    ox, oy = own_box.offset
    h, w = own_box.np_shape()
    own = np.ascontiguousarray(field[oy : oy + h, ox : ox + w])
    outs = []
    for generation in range(1, generations + 1):
        out = red.gather_need([own * np.float32(generation)], fill=-1.0)
        outs.append(np.array(out, copy=True))
    return outs


def _global_plan(nprocs: int, nx: int, ny: int):
    layouts = [_layout(nprocs, r, nx, ny) for r in range(nprocs)]
    return compute_global_plan(
        [[own] for own, _ in layouts],
        [need for _, need in layouts],
        element_size=4,
    )


def unbounded_peak_bytes(nprocs: int = NPROCS, nx: int = NX, ny: int = NY) -> int:
    """The strict engines' conservative per-round staging estimate."""
    plan = _global_plan(nprocs, nx, ny)
    return max(
        rnd.max_round_bytes for s in global_schedules(plan) for rnd in s.rounds
    )


def _assert_bitwise(expected, got):
    for want, have in zip(expected, got):
        for w, h in zip(want, have):
            assert np.array_equal(w, h)


@thread_only
class TestBudgetEnforcement:
    def test_strict_engine_refuses_over_budget_typed(self):
        budget = unbounded_peak_bytes() // 2
        with budget_scope(limit_bytes=budget):
            with pytest.raises(RankFailure) as info:
                spmd(NPROCS, _exchange, "alltoallw")
        assert isinstance(info.value.original, MemoryBudgetError)
        # The refusal message routes the user to the way out.
        assert "bounded" in str(info.value.original)

    def test_bounded_completes_bitwise_at_half_budget(self):
        # The acceptance criterion: the same redistribution that the strict
        # engine refuses at half the unbounded peak completes byte-for-byte
        # identically via bounded lowering.
        expected = spmd(NPROCS, _exchange, "alltoallw")
        budget = unbounded_peak_bytes() // 2
        with budget_scope(limit_bytes=budget):
            got = spmd(NPROCS, _exchange, "bounded")
            assert MEMORY_BUDGET.peak_bytes() <= budget
            assert MEMORY_BUDGET.total_used_bytes() == 0  # ledger drained
        _assert_bitwise(expected, got)

    def test_auto_routes_through_bounded_under_budget(self):
        expected = spmd(NPROCS, _exchange, "auto", BIG_NX, BIG_NY)
        budget = unbounded_peak_bytes(NPROCS, BIG_NX, BIG_NY) // 2
        assert budget >= PIECE_INFLIGHT * MIN_CHUNK_BYTES  # bounded can fit
        with budget_scope(limit_bytes=budget):
            got = spmd(NPROCS, _exchange, "auto", BIG_NX, BIG_NY)
            assert MEMORY_BUDGET.peak_bytes() <= budget
        _assert_bitwise(expected, got)

    def test_bounded_without_budget_is_pure_ablation(self):
        expected = spmd(NPROCS, _exchange, "alltoallw")
        got = spmd(NPROCS, _exchange, "bounded")
        _assert_bitwise(expected, got)

    def test_generous_budget_admits_strict_engine(self):
        with budget_scope(limit_bytes=4 * unbounded_peak_bytes()):
            got = spmd(NPROCS, _exchange, "alltoallw")
            assert MEMORY_BUDGET.total_used_bytes() == 0
        assert len(got) == NPROCS


class TestAutoPick:
    def _dense_round(self, nx: int, ny: int):
        schedule = global_schedules(_global_plan(NPROCS, nx, ny))[0]
        return max(schedule.rounds, key=lambda r: r.max_round_bytes)

    def test_tight_budget_picks_bounded(self):
        rnd = self._dense_round(BIG_NX, BIG_NY)
        with budget_scope(limit_bytes=rnd.max_round_bytes // 2):
            assert AutoEngine._pick(rnd, zero_copy=False) == "bounded"

    def test_small_round_falls_back_best_effort(self):
        # Lanes below the MIN_CHUNK floor cannot be lowered further; no
        # candidate fits and the rule degrades to a strict backend (the
        # ledger still enforces the hard line at run time).
        rnd = self._dense_round(NX, NY)
        assert rnd.max_round_bytes // 2 < PIECE_INFLIGHT * MIN_CHUNK_BYTES
        with budget_scope(limit_bytes=rnd.max_round_bytes // 2):
            assert AutoEngine._pick(rnd, zero_copy=False) in (
                "alltoallw", "p2p", "bounded",
            )

    def test_generous_budget_keeps_static_rule(self):
        rnd = self._dense_round(NX, NY)
        unbudgeted = AutoEngine._pick(rnd, zero_copy=False)
        assert unbudgeted in ("alltoallw", "p2p")
        with budget_scope(limit_bytes=64 * rnd.max_round_bytes):
            assert AutoEngine._pick(rnd, zero_copy=False) == unbudgeted
