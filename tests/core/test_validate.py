"""Mapping precondition checks (paper §III-B exclusivity/completeness)."""

from __future__ import annotations

import pytest

from repro.core import Box, MappingValidationError, check_send_coverage, infer_domain
from repro.core.validate import check_receives_within_domain


class TestInferDomain:
    def test_bounding_box(self):
        owns = [[Box((0, 0), (4, 2))], [Box((0, 2), (4, 2))]]
        assert infer_domain(owns) == Box((0, 0), (4, 4))

    def test_empty(self):
        assert infer_domain([[], []]) is None

    def test_ignores_zero_volume(self):
        owns = [[Box((0,), (4,)), Box((100,), (0,))]]
        assert infer_domain(owns) == Box((0,), (4,))


class TestSendCoverage:
    def test_valid_tiling(self):
        owns = [[Box((0, r), (8, 1)), Box((0, r + 4), (8, 1))] for r in range(4)]
        domain = check_send_coverage(owns)
        assert domain == Box((0, 0), (8, 8))

    def test_overlap_detected(self):
        owns = [[Box((0,), (5,))], [Box((4,), (4,))]]
        with pytest.raises(MappingValidationError, match="overlap"):
            check_send_coverage(owns)

    def test_gap_detected(self):
        owns = [[Box((0,), (3,))], [Box((5,), (3,))]]
        with pytest.raises(MappingValidationError, match="incomplete"):
            check_send_coverage(owns)

    def test_gap_plus_overlap_same_volume_detected(self):
        """Total volume equals the domain volume but the tiling is wrong:
        cells 0-1 owned twice, cell 3 unowned."""
        owns = [[Box((0,), (2,))], [Box((0,), (3,))], [Box((4,), (3,))]]
        # bounding box [0,7) has 7 cells; boxes have 2+3+3 = 8 > 7 -> overlap
        with pytest.raises(MappingValidationError):
            check_send_coverage(owns)

    def test_no_data_rejected(self):
        with pytest.raises(MappingValidationError, match="no rank owns"):
            check_send_coverage([[], []])

    def test_explicit_domain_outside_chunk(self):
        owns = [[Box((0,), (4,))]]
        with pytest.raises(MappingValidationError):
            check_send_coverage(owns, domain=Box((0,), (2,)))

    def test_2d_checkerboard(self):
        owns = [
            [Box((0, 0), (2, 2)), Box((2, 2), (2, 2))],
            [Box((2, 0), (2, 2)), Box((0, 2), (2, 2))],
        ]
        assert check_send_coverage(owns) == Box((0, 0), (4, 4))

    def test_3d_slabs(self):
        owns = [[Box((0, 0, 2 * r), (4, 4, 2))] for r in range(4)]
        assert check_send_coverage(owns) == Box((0, 0, 0), (4, 4, 8))

    def test_overlap_in_3d_detected(self):
        owns = [[Box((0, 0, 0), (4, 4, 3))], [Box((0, 0, 2), (4, 4, 3))]]
        with pytest.raises(MappingValidationError):
            check_send_coverage(owns)

    def test_many_slabs_fast(self):
        """Sweep validation must handle hundreds of slabs without O(n^2) pain."""
        owns = [[Box((0, 0, z), (64, 64, 1))] for z in range(512)]
        assert check_send_coverage(owns).dims == (64, 64, 512)


class TestReceivesWithinDomain:
    def test_ok(self):
        domain = Box((0, 0), (8, 8))
        check_receives_within_domain([Box((0, 0), (4, 4)), None], domain)

    def test_outside_rejected(self):
        domain = Box((0, 0), (8, 8))
        with pytest.raises(MappingValidationError, match="rank 1"):
            check_receives_within_domain(
                [Box((0, 0), (4, 4)), Box((6, 6), (4, 4))], domain
            )

    def test_empty_need_skipped(self):
        check_receives_within_domain([Box((100, 100), (0, 0))], Box((0, 0), (2, 2)))
