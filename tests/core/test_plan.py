"""Planner tests: geometry -> rounds/entries, plus paper Table III checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Box, compute_global_plan
from repro.utils import MiB


def e1_plan():
    """The paper's running example E1 (Figure 1 / Table I)."""
    owns = [
        [Box((0, r), (8, 1)), Box((0, r + 4), (8, 1))] for r in range(4)
    ]
    needs = [Box((4 * (r % 2), 4 * (r // 2)), (4, 4)) for r in range(4)]
    return compute_global_plan(owns, needs, element_size=4)


class TestE1:
    def test_rounds_equal_max_chunks(self):
        plan = e1_plan()
        assert plan.nrounds == 2  # every rank owns two chunks

    def test_rank0_send_map_matches_figure1_panel_b(self):
        """Figure 1 panel B: rank 0 owns rows y=0 and y=4.  Row 0 splits
        between ranks 0 (left) and 1 (right); row 4 between ranks 2 and 3."""
        plan = e1_plan().rank_plans[0]
        sends = {(s.round, s.dest): s.overlap for s in plan.sends}
        assert sends[(0, 0)] == Box((0, 0), (4, 1))
        assert sends[(0, 1)] == Box((4, 0), (4, 1))
        assert sends[(1, 2)] == Box((0, 4), (4, 1))
        assert sends[(1, 3)] == Box((4, 4), (4, 1))
        assert len(plan.sends) == 4

    def test_rank0_recv_map_matches_figure1_panel_b(self):
        """Rank 0 needs the top-left quadrant: rows 0-3, i.e. one row slice
        from each rank's first chunk (ranks 0..3 own rows 0..3)."""
        plan = e1_plan().rank_plans[0]
        recvs = {(r.round, r.source): r.overlap for r in plan.recvs}
        for src in range(4):
            assert recvs[(0, src)] == Box((0, src), (4, 1))
        assert len(plan.recvs) == 4

    def test_every_needed_cell_is_received_once_per_source_region(self):
        plan = e1_plan()
        for rank_plan in plan.rank_plans:
            covered = set()
            for entry in rank_plan.recvs:
                cells = set(entry.overlap.cells())
                assert not (covered & cells), "duplicate coverage"
                covered |= cells
            assert covered == set(rank_plan.need.cells())

    def test_byte_accounting(self):
        plan = e1_plan()
        # Each rank sends 16 cells total; self-sends: rank r keeps the part
        # of its rows inside its own quadrant (4 cells from one chunk).
        p0 = plan.rank_plans[0]
        assert p0.bytes_sent(4, exclude_self=False) == 16 * 4
        assert p0.bytes_sent(4, exclude_self=True) == 12 * 4
        assert p0.bytes_received(4, exclude_self=False) == 16 * 4

    def test_traffic_matrix_symmetry_of_totals(self):
        plan = e1_plan()
        matrix = plan.traffic_matrix()
        assert matrix.sum() == plan.total_bytes_moved(exclude_self=False)
        # every rank receives exactly its quadrant
        assert np.all(matrix.sum(axis=0) == 16 * 4)

    def test_partners_per_rank(self):
        plan = e1_plan()
        assert plan.partners_per_rank() == [3, 3, 3, 3]


class TestPlannerEdgeCases:
    def test_empty_need_receives_nothing(self):
        owns = [[Box((0,), (4,))], [Box((4,), (4,))]]
        needs = [Box((0,), (8,)), None]
        plan = compute_global_plan(owns, needs, 1)
        assert plan.rank_plans[1].recvs == []
        assert len(plan.rank_plans[0].recvs) == 2

    def test_zero_volume_need(self):
        owns = [[Box((0,), (4,))], [Box((4,), (4,))]]
        needs = [Box((0,), (8,)), Box((0,), (0,))]
        plan = compute_global_plan(owns, needs, 1)
        assert plan.rank_plans[1].recvs == []

    def test_overlapping_needs_allowed(self):
        """Paper §III-B: receives may overlap (ghost zones)."""
        owns = [[Box((0,), (4,))], [Box((4,), (4,))]]
        needs = [Box((0,), (6,)), Box((2,), (6,))]
        plan = compute_global_plan(owns, needs, 1)
        total_recv = sum(
            p.bytes_received(1, exclude_self=False) for p in plan.rank_plans
        )
        assert total_recv == 12  # 6 cells each, duplicated coverage

    def test_uneven_chunk_counts(self):
        owns = [
            [Box((0,), (2,)), Box((4,), (2,)), Box((8,), (2,))],
            [Box((2,), (2,)), Box((6,), (2,))],
        ]
        needs = [Box((0,), (5,)), Box((5,), (5,))]
        plan = compute_global_plan(owns, needs, 4)
        assert plan.nrounds == 3

    def test_rank_with_no_chunks(self):
        owns = [[Box((0,), (8,))], []]
        needs = [Box((0,), (4,)), Box((4,), (4,))]
        plan = compute_global_plan(owns, needs, 1)
        assert plan.nrounds == 1
        assert plan.rank_plans[1].sends == []
        assert len(plan.rank_plans[1].recvs) == 1

    def test_dimensionality_mismatch_rejected(self):
        with pytest.raises(ValueError):
            compute_global_plan(
                [[Box((0,), (4,))]], [Box((0, 0), (2, 2))], 1
            )

    def test_needs_length_mismatch(self):
        with pytest.raises(ValueError):
            compute_global_plan([[Box((0,), (4,))]], [], 1)

    def test_empty_problem_rejected(self):
        with pytest.raises(ValueError):
            compute_global_plan([[], []], [None, None], 1)

    def test_entries_sorted_deterministically(self):
        plan = e1_plan()
        for rank_plan in plan.rank_plans:
            keys = [(s.round, s.dest) for s in rank_plan.sends]
            assert keys == sorted(keys)
            rkeys = [(r.round, r.source) for r in rank_plan.recvs]
            assert rkeys == sorted(rkeys)


def split(n, parts):
    base, rem = divmod(n, parts)
    sizes = [base + (1 if i < rem else 0) for i in range(parts)]
    offsets = np.cumsum([0] + sizes[:-1])
    return list(zip(offsets.tolist(), sizes))


def tiff_geometry(grid, nx=4096, ny=2048, nz=4096):
    """Full-scale paper geometry for Table III (grid^3 processes)."""
    xs, ys, zs = split(nx, grid), split(ny, grid), split(nz, grid)
    needs = []
    for k in range(grid):
        for j in range(grid):
            for i in range(grid):
                needs.append(
                    Box((xs[i][0], ys[j][0], zs[k][0]), (xs[i][1], ys[j][1], zs[k][1]))
                )
    return needs


@pytest.mark.slow
class TestPaperTable3:
    """Schedule math at the paper's full 128 GB scale (pure planning)."""

    NX, NY, NZ, ESIZE = 4096, 2048, 4096, 4

    def test_consecutive_27(self):
        grid = 3
        nprocs = grid**3
        needs = tiff_geometry(grid)
        owns = [
            [Box((0, 0, z0), (self.NX, self.NY, zn))]
            for z0, zn in split(self.NZ, nprocs)
        ]
        plan = compute_global_plan(owns, needs, self.ESIZE)
        assert plan.nrounds == 1  # paper Table III
        mb = plan.mean_bytes_per_chunk_round() / MiB
        assert mb == pytest.approx(4315.12, abs=2.0)

    def test_round_robin_27(self):
        grid = 3
        nprocs = grid**3
        needs = tiff_geometry(grid)
        owns = [
            [Box((0, 0, z), (self.NX, self.NY, 1)) for z in range(r, self.NZ, nprocs)]
            for r in range(nprocs)
        ]
        plan = compute_global_plan(owns, needs, self.ESIZE)
        assert plan.nrounds == 152  # paper Table III
        mb = plan.mean_bytes_per_chunk_round() / MiB
        assert mb == pytest.approx(30.81, abs=0.1)
