"""Plan persistence: roundtrip, file I/O, and reuse by a fresh descriptor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Box,
    DataDescriptor,
    attach_loaded_plan,
    compute_global_plan,
    load_plan,
    plan_from_dict,
    plan_to_dict,
    reorganize_data,
    save_plan,
)
from tests.conftest import spmd


def e1_plan():
    owns = [[Box((0, r), (8, 1)), Box((0, r + 4), (8, 1))] for r in range(4)]
    needs = [Box((4 * (r % 2), 4 * (r // 2)), (4, 4)) for r in range(4)]
    return compute_global_plan(owns, needs, element_size=4)


class TestRoundtrip:
    def test_dict_roundtrip_is_lossless(self):
        plan = e1_plan()
        restored = plan_from_dict(plan_to_dict(plan))
        assert restored.nprocs == plan.nprocs
        assert restored.ndims == plan.ndims
        assert restored.element_size == plan.element_size
        assert restored.nrounds == plan.nrounds
        for a, b in zip(restored.rank_plans, plan.rank_plans):
            assert a.rank == b.rank
            assert a.own_chunks == b.own_chunks
            assert a.need == b.need
            assert a.sends == b.sends
            assert a.recvs == b.recvs

    def test_statistics_survive(self):
        plan = e1_plan()
        restored = plan_from_dict(plan_to_dict(plan))
        assert restored.total_bytes_moved() == plan.total_bytes_moved()
        assert np.array_equal(restored.traffic_matrix(), plan.traffic_matrix())

    def test_none_need_roundtrip(self):
        plan = compute_global_plan(
            [[Box((0,), (4,))], [Box((4,), (4,))]], [Box((0,), (8,)), None], 1
        )
        restored = plan_from_dict(plan_to_dict(plan))
        assert restored.rank_plans[1].need is None

    def test_file_roundtrip(self, tmp_path):
        plan = e1_plan()
        path = tmp_path / "plan.json"
        save_plan(path, plan)
        restored = load_plan(path)
        assert restored.rank_plans[0].sends == plan.rank_plans[0].sends

    def test_version_checked(self):
        data = plan_to_dict(e1_plan())
        data["version"] = 99
        with pytest.raises(ValueError, match="version"):
            plan_from_dict(data)


class TestAttachLoadedPlan:
    def test_reorganize_with_precomputed_plan(self, tmp_path):
        """Full cached-mapping workflow: plan offline, save, reload, run —
        skipping the collective setup entirely."""
        path = tmp_path / "plan.json"
        save_plan(path, e1_plan())

        def fn(comm):
            plan = load_plan(path)
            desc = DataDescriptor.create(4, 2, np.float32)
            attach_loaded_plan(desc, plan, comm.rank)
            g = np.arange(64, dtype=np.float32).reshape(8, 8)
            need = np.zeros((4, 4), dtype=np.float32)
            reorganize_data(comm, desc, [g[comm.rank].copy(), g[comm.rank + 4].copy()], need)
            r = comm.rank
            expect = g[4 * (r // 2) : 4 * (r // 2) + 4, 4 * (r % 2) : 4 * (r % 2) + 4]
            assert np.array_equal(need, expect)
            return True

        assert all(spmd(4, fn))

    def test_mismatches_rejected(self):
        plan = e1_plan()
        with pytest.raises(ValueError, match="ranks"):
            attach_loaded_plan(DataDescriptor.create(8, 2, np.float32), plan, 0)
        with pytest.raises(ValueError, match="-D"):
            attach_loaded_plan(DataDescriptor.create(4, 3, np.float32), plan, 0)
        with pytest.raises(ValueError, match="element size"):
            attach_loaded_plan(DataDescriptor.create(4, 2, np.float64), plan, 0)
