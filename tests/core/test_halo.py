"""Ghost-zone exchange tests (DDR's overlapping receives, paper §III-B)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Box, GhostExchanger, inflate_box
from repro.volren import grid_boxes
from tests.conftest import spmd


class TestInflateBox:
    DOMAIN = Box((0, 0), (16, 12))

    def test_interior_grows_all_sides(self):
        out = inflate_box(Box((4, 4), (4, 4)), 2, self.DOMAIN)
        assert out == Box((2, 2), (8, 8))

    def test_clipped_at_domain_edge(self):
        out = inflate_box(Box((0, 0), (4, 4)), 2, self.DOMAIN)
        assert out == Box((0, 0), (6, 6))

    def test_per_axis_widths(self):
        out = inflate_box(Box((4, 4), (4, 4)), (1, 3), self.DOMAIN)
        assert out == Box((3, 1), (6, 10))

    def test_zero_halo_is_identity(self):
        box = Box((4, 4), (4, 4))
        assert inflate_box(box, 0, self.DOMAIN) == box

    def test_validation(self):
        with pytest.raises(ValueError):
            inflate_box(Box((0, 0), (2, 2)), (1,), self.DOMAIN)
        with pytest.raises(ValueError):
            inflate_box(Box((0, 0), (2, 2)), -1, self.DOMAIN)

    @given(
        x0=st.integers(0, 12), y0=st.integers(0, 8),
        w=st.integers(1, 4), h=st.integers(1, 4), halo=st.integers(0, 5),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_contains_original_within_domain(self, x0, y0, w, h, halo):
        box = Box((min(x0, 12), min(y0, 8)), (w, h))
        if not self.DOMAIN.contains_box(box):
            return
        out = inflate_box(box, halo, self.DOMAIN)
        assert out.contains_box(box)
        assert self.DOMAIN.contains_box(out)


class TestGhostExchanger:
    def test_2d_ghosts_match_neighbors(self):
        """4 ranks in a 2x2 grid over a 8x8 domain; halo 1; after exchange
        each padded block must equal the corresponding window of the global
        array."""
        domain = Box((0, 0), (8, 8))
        boxes = grid_boxes((8, 8), (2, 2))
        reference = np.arange(64, dtype=np.float64).reshape(8, 8)

        def fn_safe(comm):
            ghosts = GhostExchanger(comm, ndims=2, dtype=np.float64)
            own = boxes[comm.rank]
            padded_box = ghosts.setup(own, halo=1, domain=domain)
            x0, y0 = own.offset
            interior = reference[y0 : y0 + own.dims[1], x0 : x0 + own.dims[0]]
            padded = ghosts.exchange(interior)
            px0, py0 = padded_box.offset
            expected = reference[
                py0 : py0 + padded_box.dims[1], px0 : px0 + padded_box.dims[0]
            ]
            assert np.array_equal(padded, expected)
            view = ghosts.interior_view(padded)
            assert np.array_equal(view, interior)
            assert view.base is padded  # no copy
            return True

        assert all(spmd(4, fn_safe))

    def test_repeated_exchanges_follow_data(self):
        """Ghosts must track evolving interiors without re-setup."""
        domain = Box((0,), (12,))

        def fn(comm):
            rank, size = comm.rank, comm.size
            per = 12 // size
            own = Box((rank * per,), (per,))
            ghosts = GhostExchanger(comm, ndims=1, dtype=np.float64)
            padded_box = ghosts.setup(own, halo=2, domain=domain)
            for step in range(3):
                interior = np.arange(per, dtype=np.float64) + rank * per + 100 * step
                padded = ghosts.exchange(interior)
                lo = padded_box.offset[0]
                expected = np.arange(lo, lo + padded_box.dims[0], dtype=np.float64) + 100 * step
                assert np.array_equal(padded, expected)
            return True

        assert all(spmd(3, fn))

    def test_3d_halo(self):
        domain = Box((0, 0, 0), (4, 4, 8))
        reference = np.arange(128, dtype=np.float32).reshape(8, 4, 4)  # (z, y, x)

        def fn(comm):
            rank, size = comm.rank, comm.size
            dz = 8 // size
            own = Box((0, 0, rank * dz), (4, 4, dz))
            ghosts = GhostExchanger(comm, ndims=3, dtype=np.float32)
            padded_box = ghosts.setup(own, halo=(0, 0, 1), domain=domain)
            interior = reference[rank * dz : (rank + 1) * dz]
            padded = ghosts.exchange(interior)
            z0 = padded_box.offset[2]
            assert np.array_equal(padded, reference[z0 : z0 + padded_box.dims[2]])
            return True

        assert all(spmd(4, fn))

    def test_errors(self):
        def fn(comm):
            ghosts = GhostExchanger(comm, ndims=1, dtype=np.float64)
            with pytest.raises(RuntimeError):
                ghosts.exchange(np.zeros(4))
            with pytest.raises(ValueError, match="domain"):
                ghosts.setup(Box((10,), (4,)), 1, Box((0,), (8,)))

        spmd(1, fn)

    def test_shape_mismatch_rejected(self):
        def fn(comm):
            ghosts = GhostExchanger(comm, ndims=1, dtype=np.float64)
            ghosts.setup(Box((0,), (8,)), 1, Box((0,), (8,)))
            with pytest.raises(ValueError, match="interior shape"):
                ghosts.exchange(np.zeros(5))

        spmd(1, fn)
