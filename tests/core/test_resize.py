"""``Redistributor.resize``: grow, shrink, and remap live data in place.

The malleability acceptance criteria: resizing to a larger or smaller
rank set works without restart, the migrated data is bitwise-equal to a
fresh scatter of the global array, old mappings raise
:class:`StaleMappingError` after the resize, and resized worlds may have
non-contiguous origin (world) rank sets.  Everything here runs under both
executors — CI repeats this module with ``DDR_EXECUTOR=process``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Redistributor, StaleMappingError
from repro.core.box import Box
from tests.conftest import spmd

BACKENDS = ("alltoallw", "p2p", "auto")

SIDE = 48  # divisible by every world size used here


def _slab(rank: int, n: int) -> Box:
    base, extra = divmod(SIDE, n)
    start = rank * base + min(rank, extra)
    rows = base + (1 if rank < extra else 0)
    return Box((0, start), (SIDE, rows))


def _field() -> np.ndarray:
    return np.arange(SIDE * SIDE, dtype=np.float32).reshape(SIDE, SIDE)


def _rows(box: Box) -> np.ndarray:
    return _field()[box.offset[1] : box.offset[1] + box.dims[1], :]


def _join_verify(result) -> None:
    """Spawned-rank worker: the adopted slice must be a fresh scatter."""
    data = result.data.reshape(result.own.np_shape())
    assert np.array_equal(data, _rows(result.own))


def _join_verify_and_exchange(result) -> None:
    """Spawned-rank worker mirroring the members' post-resize collectives
    (one setup + one exchange) — required, since a joiner that returns
    early retires and the members' next collective would wait forever."""
    _join_verify(result)
    red = result.redistributor
    red.setup([result.own], result.own)
    data = np.ascontiguousarray(result.data.reshape(result.own.np_shape()))
    again = red.gather_need([data])
    assert np.array_equal(again, _rows(result.own))


def _resize_once(comm, backend: str, new_n: int):
    """Setup, resize to ``new_n``, verify bitwise, then exchange again."""
    red = Redistributor(comm, ndims=2, dtype=np.float32, backend=backend)
    own = _slab(comm.rank, comm.size)
    red.setup([own], own)
    data = _rows(own).copy()
    result = red.resize(new_n, [data], _slab, worker=_join_verify_and_exchange)
    if not result.member:
        return ("left",)
    out = result.data.reshape(result.own.np_shape())
    assert np.array_equal(out, _rows(result.own))
    assert result.redistributor is red or result.comm.size > comm.size
    # Post-resize the redistributor is unmapped: setup() starts the next
    # mapping generation and ordinary exchanges resume.
    red = result.redistributor
    red.setup([result.own], result.own)
    again = red.gather_need([np.ascontiguousarray(out)])
    assert np.array_equal(again, _rows(result.own))
    return (
        "stayed",
        result.comm.rank,
        result.comm.size,
        tuple(result.comm.world_ranks),
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_grow_is_bitwise_fresh_scatter(backend):
    results = spmd(3, _resize_once, backend, 5, spawn_slots=2)
    stayed = [r for r in results if r[0] == "stayed"]
    assert len(stayed) == 3
    assert all(r[2] == 5 for r in stayed)
    assert sorted(r[1] for r in stayed) == [0, 1, 2]


@pytest.mark.parametrize("backend", BACKENDS)
def test_shrink_is_bitwise_fresh_scatter(backend):
    results = spmd(4, _resize_once, backend, 2)
    stayed = [r for r in results if r[0] == "stayed"]
    left = [r for r in results if r == ("left",)]
    assert len(stayed) == 2 and len(left) == 2
    assert all(r[2] == 2 for r in stayed)
    assert sorted(r[1] for r in stayed) == [0, 1]


@pytest.mark.parametrize("backend", BACKENDS)
def test_same_size_remap(backend):
    results = spmd(4, _resize_once, backend, 4)
    assert all(r[0] == "stayed" and r[2] == 4 for r in results)


def _shrink_then_grow(comm, backend: str):
    """4 -> 2 -> 4: the re-grown world's origin ranks are non-contiguous
    (survivors keep world ranks 0..1, spawned ranks get fresh slots)."""
    red = Redistributor(comm, ndims=2, dtype=np.float32, backend=backend)
    own = _slab(comm.rank, comm.size)
    red.setup([own], own)
    first = red.resize(2, [_rows(own).copy()], _slab)
    if not first.member:
        return ("left",)
    red = first.redistributor
    red.setup([first.own], first.own)
    data = first.data.reshape(first.own.np_shape()).copy()
    second = red.resize(4, [data], _slab, worker=_join_verify)
    assert second.member
    out = second.data.reshape(second.own.np_shape())
    assert np.array_equal(out, _rows(second.own))
    return ("stayed", second.comm.rank, tuple(second.comm.world_ranks))


@pytest.mark.parametrize("backend", BACKENDS)
def test_noncontiguous_origin_ranks(backend):
    results = spmd(4, _shrink_then_grow, backend, spawn_slots=2)
    stayed = [r for r in results if r[0] == "stayed"]
    assert len(stayed) == 2
    world_ranks = stayed[0][2]
    assert len(world_ranks) == 4
    # Survivors kept their original world slots; the re-grown members got
    # fresh ones past the retired 2 and 3 — the set is non-contiguous.
    assert world_ranks[:2] == (0, 1)
    assert all(w >= 4 for w in world_ranks[2:])
    assert sorted(world_ranks) != list(
        range(min(world_ranks), min(world_ranks) + 4)
    )


def _stale_after_resize(comm, backend: str):
    red = Redistributor(comm, ndims=2, dtype=np.float32, backend=backend)
    own = _slab(comm.rank, comm.size)
    red.setup([own], own)
    old_mapping = red.mapping
    result = red.resize(comm.size - 1, [_rows(own).copy()], _slab)
    if not result.member:
        return True
    with pytest.raises(StaleMappingError):
        red.gather_need([_rows(result.own).copy()], mapping=old_mapping)
    # The active-mapping accessor is also gone until the next setup().
    with pytest.raises((StaleMappingError, RuntimeError)):
        red.gather_need([_rows(result.own).copy()])
    return True


@pytest.mark.parametrize("backend", BACKENDS)
def test_old_mapping_is_stale_after_resize(backend):
    assert all(spmd(3, _stale_after_resize, backend))
