"""CLI tests (direct invocation of the entry point, no subprocess)."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        sub = next(
            a for a in parser._actions if isinstance(a, type(parser._actions[-1]))
        )
        # Smoke: parse each known command.
        for command in ("e1", "table3", "fig3", "fig45", "sensitivity"):
            args = parser.parse_args([command])
            assert args.command == command
            assert callable(args.fn)

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table2_flags(self):
        args = build_parser().parse_args(["table2", "--network", "des"])
        assert args.network == "des"
        assert not args.native


class TestExecution:
    def test_e1(self, capsys):
        assert main(["e1"]) == 0
        out = capsys.readouterr().out
        assert "matches paper Table I: True" in out

    def test_fig45(self, capsys):
        assert main(["fig45"]) == 0
        out = capsys.readouterr().out
        assert "3/3/2/2" in out

    @pytest.mark.slow
    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "4315.12" in out  # paper column present

    def test_sensitivity(self, capsys):
        assert main(["sensitivity"]) == 0
        out = capsys.readouterr().out
        assert "read_decode_bw" in out

    def test_table4_fast(self, capsys):
        assert main(["table4", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Table IV" in out


class TestServe:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.source == "lbm"
        assert args.port == 8737
        assert args.smoke_viewers == 0

    def test_serve_overload_flag_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.max_viewers is None
        assert args.max_conns is None
        assert args.slo_ms is None
        assert args.degrade == "ladder"

    def test_serve_overload_flags_parse(self):
        args = build_parser().parse_args(
            ["serve", "--max-viewers", "16", "--max-conns", "64",
             "--slo-ms", "250", "--degrade", "off"]
        )
        assert args.max_viewers == 16
        assert args.max_conns == 64
        assert args.slo_ms == 250.0
        assert args.degrade == "off"

    def test_serve_smoke_gates_on_delivery(self, capsys):
        assert (
            main(
                [
                    "serve", "--nx", "32", "--ny", "16", "--m", "2",
                    "--frames", "4", "--fps", "0", "--source", "synthetic",
                    "--port", "0", "--smoke-viewers", "10",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "10/10 viewers saw frame 3" in out
        assert "mapping-cache hit rate" in out
        assert "healthz ok" in out
        assert "viewers shed 0" in out


class TestEdgeChaos:
    def test_chaos_edge_flags_parse(self):
        args = build_parser().parse_args(["chaos", "--edge", "--clients", "3"])
        assert args.edge is True
        assert args.clients == 3
        assert args.runs == 50  # shared default with transport chaos

    def test_chaos_edge_excludes_transport_modes(self, capsys):
        assert main(["chaos", "--edge", "--crashes"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_chaos_edge_single_run_writes_report(self, tmp_path, capsys):
        out = tmp_path / "edge.json"
        assert (
            main(
                ["chaos", "--edge", "--runs", "1", "--clients", "2",
                 "--seed", "4", "--quiet", "--json", str(out)]
            )
            == 0
        )
        report = json.loads(out.read_text())
        assert report["passed"] is True
        (run,) = report["runs"]
        assert run["workload"] == "edge-storm"
        assert run["outcome"] in ("ok", "degraded", "typed-error")
        assert "chaos: 1 runs" in capsys.readouterr().out


class TestTrace:
    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace", "intransit"])
        assert args.demo == "intransit"
        assert args.out == "trace.json"
        assert args.backend == "auto"

    def test_trace_intransit_writes_perfetto_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert (
            main(
                [
                    "trace", "intransit", "--out", str(out),
                    "--nx", "32", "--ny", "16", "--steps", "10",
                    "--output-every", "10",
                ]
            )
            == 0
        )
        trace = json.loads(out.read_text())
        events = trace["traceEvents"]
        # one process_name per rank (4 sim + 2 analysis)
        meta = [e for e in events if e["ph"] == "M" and e["name"] == "process_name"]
        assert {e["args"]["name"] for e in meta} >= {f"rank {r}" for r in range(6)}
        rounds = [e for e in events if e["ph"] == "X" and e["name"] == "ddr.round"]
        assert rounds
        assert all(e["args"]["backend"] in ("alltoallw", "p2p") for e in rounds)
        stdout = capsys.readouterr().out
        assert "ddr.round" in stdout  # summary table printed
        assert "perfetto" in stdout

    def test_trace_redistribute_smoke(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert (
            main(
                [
                    "trace", "redistribute", "--out", str(out),
                    "--backend", "p2p", "--n", "2", "--nx", "16",
                ]
            )
            == 0
        )
        events = json.loads(out.read_text())["traceEvents"]
        assert any(
            e["ph"] == "X" and e["name"] == "ddr.exchange"
            and e["args"]["backend"] == "p2p"
            for e in events
        )
        assert "captured" in capsys.readouterr().out
