"""FrameHub: per-layout DDR mappings, coalescing queues, typed disconnects."""

import numpy as np
import pytest

from repro.core import Redistributor
from repro.mpisim.executor import world_communicators
from repro.serve import (
    ConsumerLayout,
    FrameHub,
    ServedFrame,
    SyntheticSource,
    ViewerDisconnectedError,
    ViewerQueue,
)

NX, NY, M = 32, 16, 3

LAYOUTS = [
    ConsumerLayout.make(NX, NY),
    ConsumerLayout.make(NX, NY, x=4, y=2, w=24, h=12),
    ConsumerLayout.make(NX, NY, mip=1, parts=2),
]


def _frame(index=0, jpeg=b"\xff\xd8stub"):
    return ServedFrame(index, ("k",), jpeg, (4, 4))


class TestViewerQueue:
    def test_coalesces_oldest_when_full(self):
        queue = ViewerQueue(0, LAYOUTS[0], capacity=2)
        for i in range(5):
            assert queue.push(_frame(i))
        assert queue.coalesced == 3
        assert queue.try_pop().index == 3
        assert queue.try_pop().index == 4
        assert queue.try_pop() is None
        assert queue.last_index == 4

    def test_closed_queue_raises_typed_error_after_drain(self):
        queue = ViewerQueue(0, LAYOUTS[0])
        queue.push(_frame(0))
        queue.close()
        assert queue.try_pop().index == 0  # buffered frame still delivered
        with pytest.raises(ViewerDisconnectedError):
            queue.try_pop()
        with pytest.raises(ViewerDisconnectedError):
            queue.pop(timeout=0.1)
        assert not queue.push(_frame(1))

    def test_on_frame_fires_outside_lock_on_push_and_close(self):
        calls = []
        queue = ViewerQueue(0, LAYOUTS[0], on_frame=lambda: calls.append(1))
        queue.push(_frame(0))
        queue.close()
        queue.close()  # idempotent: no second close callback
        assert len(calls) == 2


class TestHub:
    def test_publish_fans_out_to_every_layout(self):
        source = SyntheticSource(NX, NY, m=M)
        hub = FrameHub(NX, NY, m=M)
        queues = [hub.register(layout) for layout in LAYOUTS for _ in range(3)]
        assert hub.viewer_count() == 9
        served = hub.publish(0, source.slabs(0))
        assert served == len(LAYOUTS)  # one render+encode per distinct layout
        for queue in queues:
            frame = queue.try_pop()
            assert frame.index == 0
            assert frame.jpeg[:2] == b"\xff\xd8"
            assert frame.shape == queue.layout.frame_shape()
        hub.close()

    def test_mapping_cache_shared_across_viewers_and_frames(self):
        source = SyntheticSource(NX, NY, m=M)
        hub = FrameHub(NX, NY, m=M)
        for layout in LAYOUTS:
            for _ in range(4):
                hub.register(layout)
        for index, slabs in source.frames(5):
            hub.publish(index, slabs)
        stats = hub.mapping_cache.stats()
        assert stats["entries"] == len(LAYOUTS)
        assert stats["misses"] == len(LAYOUTS)  # built exactly once each
        assert stats["hits"] == 5 * len(LAYOUTS) - len(LAYOUTS)
        # Publishing exports the staging high-water marks as gauges, so the
        # autoscaler/overload controller can see memory pressure.
        gauges = hub.metrics.counters
        assert gauges["serve.pool_peak_bytes"] >= gauges["serve.pool_bytes"]
        assert gauges["serve.cache_peak_bytes"] >= gauges["serve.cache_bytes"] > 0
        hub.close()

    def test_view_matches_direct_single_consumer_redistribution(self):
        source = SyntheticSource(NX, NY, m=M)
        hub = FrameHub(NX, NY, m=M)
        slabs = source.slabs(7)
        comm = world_communicators(1)[0]
        red = Redistributor(comm, ndims=2, dtype=np.float32)
        for layout in LAYOUTS:
            got = hub.view(layout, slabs)
            mapping = red.new_mapping(own=hub.producer_boxes, need=layout.roi)
            want = red.gather_need(slabs, mapping=mapping)
            want = want[:: layout.step, :: layout.step]
            np.testing.assert_array_equal(got, want)
        hub.close()

    def test_slow_viewer_converges_to_latest_frame(self):
        source = SyntheticSource(NX, NY, m=M)
        hub = FrameHub(NX, NY, m=M, queue_capacity=2)
        queue = hub.register(LAYOUTS[0])
        for index, slabs in source.frames(6):
            hub.publish(index, slabs)
        seen = []
        while True:
            frame = queue.try_pop()
            if frame is None:
                break
            seen.append(frame.index)
        assert seen == [4, 5]  # intermediates coalesced, final frame kept
        assert queue.coalesced == 4
        hub.close()

    def test_dead_viewer_is_unregistered_on_publish(self):
        source = SyntheticSource(NX, NY, m=M)
        hub = FrameHub(NX, NY, m=M)
        queue = hub.register(LAYOUTS[0])
        survivor = hub.register(LAYOUTS[0])
        queue.close()  # transport went away
        hub.publish(0, source.slabs(0))
        assert hub.viewer_count() == 1
        assert survivor.try_pop().index == 0
        hub.close()

    def test_register_after_close_raises(self):
        hub = FrameHub(NX, NY, m=M)
        hub.close()
        with pytest.raises(ViewerDisconnectedError):
            hub.register(LAYOUTS[0])

    def test_wrong_slab_count_raises(self):
        source = SyntheticSource(NX, NY, m=M)
        hub = FrameHub(NX, NY, m=M)
        with pytest.raises(ValueError, match="producer slabs"):
            hub.publish(0, source.slabs(0)[:-1])
        hub.close()

    def test_layout_churn_keeps_cache_bounded(self):
        source = SyntheticSource(NX, NY, m=M)
        hub = FrameHub(NX, NY, m=M, max_layouts=4)
        slabs = source.slabs(0)
        for i in range(12):
            layout = ConsumerLayout.make(NX, NY, x=i, w=8, h=8)
            hub.view(layout, slabs)
        stats = hub.mapping_cache.stats()
        assert stats["entries"] == 4
        assert stats["evictions"] == 8
        hub.close()
