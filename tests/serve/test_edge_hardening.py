"""Edge hardening: hostile clients get typed refusals, never a hung edge."""

import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.serve import (
    ConsumerLayout,
    EdgeLimits,
    FrameHub,
    OverloadController,
    SloPolicy,
    StreamEdge,
    SyntheticSource,
)

NX, NY, M = 32, 16, 2


@pytest.fixture
def harden():
    """Factory for a live edge with custom hub/limit knobs."""
    built = []

    def build(limits=None, **hub_kwargs):
        hub = FrameHub(NX, NY, m=M, **hub_kwargs)
        edge = StreamEdge(hub, frame_timeout_s=5.0, limits=limits)
        edge.serve_in_thread()
        built.append((hub, edge))
        return hub, edge

    yield build
    for hub, edge in built:
        edge.shutdown()
        hub.close()


def _raw_get(port, payload, timeout=10.0):
    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as s:
        s.sendall(payload)
        s.settimeout(timeout)
        data = b""
        try:
            while chunk := s.recv(65536):
                data += chunk
        except (socket.timeout, OSError):
            pass
        return data


def _status(response):
    return int(response.split(b" ", 2)[1])


class TestSlowLoris:
    def test_header_drip_feed_hits_the_request_deadline(self, harden):
        _, edge = harden(limits=EdgeLimits(request_deadline_s=0.3))
        started = time.monotonic()
        with socket.create_connection(("127.0.0.1", edge.port), timeout=10) as s:
            s.settimeout(10.0)
            s.sendall(b"GET / HTTP/1.1\r\n")
            response = b""
            try:
                # Drip one header byte per 50 ms, slower than any per-line
                # timeout would catch but far past the overall deadline.
                for ch in b"X-Slow: " + b"a" * 200:
                    s.sendall(bytes([ch]))
                    time.sleep(0.05)
            except OSError:
                pass  # server hung up mid-drip
            try:
                while chunk := s.recv(4096):
                    response += chunk
            except (socket.timeout, OSError):
                pass
        elapsed = time.monotonic() - started
        assert _status(response) == 408
        assert elapsed < 5.0, "slow-loris held the connection open"

    def test_header_line_count_cap(self, harden):
        _, edge = harden(limits=EdgeLimits(max_header_lines=8))
        flood = b"".join(b"X-H%d: v\r\n" % i for i in range(20))
        response = _raw_get(edge.port, b"GET / HTTP/1.1\r\n" + flood, timeout=5.0)
        assert _status(response) == 400

    def test_header_byte_cap(self, harden):
        _, edge = harden(limits=EdgeLimits(max_header_bytes=512))
        fat = b"X-Fat: " + b"x" * 2048 + b"\r\n"
        response = _raw_get(edge.port, b"GET / HTTP/1.1\r\n" + fat, timeout=5.0)
        assert _status(response) == 400

    def test_cooperative_request_is_untouched(self, harden):
        _, edge = harden(limits=EdgeLimits(request_deadline_s=0.5))
        response = _raw_get(
            edge.port, b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n", timeout=5.0
        )
        assert _status(response) == 200


class TestGarbage:
    def test_garbage_request_line_is_405(self, harden):
        _, edge = harden()
        response = _raw_get(edge.port, b"\x01\x02garbage junk\r\n\r\n", timeout=5.0)
        assert _status(response) == 405

    def test_bad_query_parameter_is_400(self, harden):
        _, edge = harden()
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(
                f"http://127.0.0.1:{edge.port}/frame?mip=banana", timeout=10
            )
        assert info.value.code == 400


class TestConnectionCap:
    def test_over_cap_connections_get_typed_503(self, harden):
        _, edge = harden(limits=EdgeLimits(max_conns=2))
        holders = [
            socket.create_connection(("127.0.0.1", edge.port), timeout=10)
            for _ in range(2)
        ]
        try:
            time.sleep(0.05)  # let the holders' handlers start
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{edge.port}/healthz", timeout=10
                )
            assert info.value.code == 503
            assert int(info.value.headers["Retry-After"]) >= 1
        finally:
            for s in holders:
                s.close()
        # With the holders gone, the edge serves again.
        deadline = time.monotonic() + 5.0
        while edge.connection_count() > 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        with urllib.request.urlopen(
            f"http://127.0.0.1:{edge.port}/healthz", timeout=10
        ) as response:
            assert response.status == 200


class TestAdmission:
    def test_hub_cap_rejects_http_viewers_with_503(self, harden):
        hub, edge = harden(max_viewers=1)
        with socket.create_connection(("127.0.0.1", edge.port), timeout=10) as s:
            s.sendall(b"GET /mjpeg HTTP/1.1\r\nHost: x\r\n\r\n")
            deadline = time.monotonic() + 5.0
            while hub.viewer_count() < 1 and time.monotonic() < deadline:
                time.sleep(0.01)
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{edge.port}/frame", timeout=10
                )
            assert info.value.code == 503
            assert "Retry-After" in info.value.headers

    def test_layout_cap_rejects_with_429(self, harden):
        hub, edge = harden(max_viewers_per_layout=1)
        with socket.create_connection(("127.0.0.1", edge.port), timeout=10) as s:
            s.sendall(b"GET /mjpeg HTTP/1.1\r\nHost: x\r\n\r\n")
            deadline = time.monotonic() + 5.0
            while hub.viewer_count() < 1 and time.monotonic() < deadline:
                time.sleep(0.01)
            # Same (default) layout: per-layout cap. A different layout
            # would still be admitted.
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{edge.port}/frame", timeout=10
                )
            assert info.value.code == 429
            assert "Retry-After" in info.value.headers

    def test_ws_admission_refusal_is_plain_http_not_mid_protocol(self, harden):
        hub, edge = harden(max_viewers=0)
        response = _raw_get(
            edge.port,
            b"GET /ws HTTP/1.1\r\nHost: x\r\nUpgrade: websocket\r\n"
            b"Connection: Upgrade\r\n"
            b"Sec-WebSocket-Key: dGhlIHNhbXBsZSBub25jZQ==\r\n\r\n",
            timeout=5.0,
        )
        assert _status(response) == 503  # refused before the 101 upgrade
        assert b"Retry-After" in response


class TestHealthAndReadiness:
    def test_healthz_and_readyz_answer_ok_when_live(self, harden):
        hub, edge = harden()
        for path in ("/healthz", "/readyz"):
            with urllib.request.urlopen(
                f"http://127.0.0.1:{edge.port}{path}", timeout=10
            ) as response:
                assert response.status == 200

    def test_readyz_flips_on_producer_stall(self, harden):
        controller = OverloadController(SloPolicy(stall_timeout_s=0.1))
        hub, edge = harden(overload=controller)
        source = SyntheticSource(NX, NY, m=M)
        hub.register(ConsumerLayout.make(NX, NY))
        hub.publish(0, source.slabs(0))
        time.sleep(0.2)  # past the stall timeout
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(
                f"http://127.0.0.1:{edge.port}/readyz", timeout=10
            )
        assert info.value.code == 503
        assert b"producer-stalled" in info.value.read()

    def test_stalled_frame_route_serves_last_good_with_stale_header(self, harden):
        controller = OverloadController(SloPolicy(stall_timeout_s=0.1))
        hub, edge = harden(overload=controller)
        source = SyntheticSource(NX, NY, m=M)
        queue = hub.register(ConsumerLayout.make(NX, NY))
        hub.publish(0, source.slabs(0))  # seeds last-good for this layout
        hub.unregister(queue)
        time.sleep(0.2)  # breaker opens
        with urllib.request.urlopen(
            f"http://127.0.0.1:{edge.port}/frame", timeout=10
        ) as response:
            assert response.status == 200
            assert response.headers["X-Frame-Stale"] == "1"
            assert response.headers["X-Frame-Index"] == "0"
            assert response.read()[:2] == b"\xff\xd8"  # JPEG SOI

    def test_stats_surface_overload_and_admission(self, harden):
        import json

        controller = OverloadController()
        hub, edge = harden(max_viewers=7, overload=controller)
        with urllib.request.urlopen(
            f"http://127.0.0.1:{edge.port}/stats", timeout=10
        ) as response:
            stats = json.loads(response.read())
        assert stats["admission"]["max_viewers"] == 7
        assert stats["overload"]["level_name"] == "normal"
        assert stats["overload"]["transitions"] == []
        assert stats["ready"] is True


class TestGracefulDrain:
    def test_shutdown_drains_streams_and_refuses_new_work(self, harden):
        hub, edge = harden()
        source = SyntheticSource(NX, NY, m=M)
        ended = threading.Event()

        def stream():
            try:
                with socket.create_connection(
                    ("127.0.0.1", edge.port), timeout=10
                ) as s:
                    s.settimeout(10.0)
                    s.sendall(b"GET /mjpeg HTTP/1.1\r\nHost: x\r\n\r\n")
                    while s.recv(65536):
                        pass
            except OSError:
                pass
            finally:
                ended.set()

        viewer = threading.Thread(target=stream, daemon=True)
        viewer.start()
        deadline = time.monotonic() + 5.0
        while hub.viewer_count() < 1 and time.monotonic() < deadline:
            time.sleep(0.01)
        hub.publish(0, source.slabs(0))
        edge.shutdown()  # drain=True: stream must end cleanly, not hang
        assert ended.wait(timeout=10.0)
        assert hub.draining
        assert hub.viewer_count() == 0
        assert hub.ready() == (False, "draining")
