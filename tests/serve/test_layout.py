"""ConsumerLayout: canonicalization, clamping, and derived geometry."""

import pytest

from repro.core.box import Box
from repro.serve import ConsumerLayout


class TestMake:
    def test_defaults_cover_full_domain(self):
        layout = ConsumerLayout.make(64, 32)
        assert layout.roi == Box((0, 0), (64, 32))
        assert layout.mip == 0
        assert layout.parts == 1

    def test_roi_clamps_to_domain(self):
        layout = ConsumerLayout.make(64, 32, x=48, y=24, w=100, h=100)
        assert layout.roi == Box((48, 24), (16, 8))

    def test_negative_origin_clamps(self):
        layout = ConsumerLayout.make(64, 32, x=-10, y=-5, w=20, h=10)
        assert layout.roi == Box((0, 0), (10, 5))

    def test_roi_outside_domain_raises(self):
        with pytest.raises(ValueError, match="outside"):
            ConsumerLayout.make(64, 32, x=100, y=0, w=8, h=8)

    def test_mip_clamps_to_keep_a_pixel(self):
        layout = ConsumerLayout.make(64, 32, w=8, h=4, mip=10)
        assert (1 << layout.mip) <= 4
        assert layout.frame_shape()[0] >= 1
        assert layout.frame_shape()[1] >= 1

    def test_parts_clamps_to_roi_height(self):
        layout = ConsumerLayout.make(64, 32, h=3, parts=99)
        assert layout.parts == 3

    def test_one_pixel_roi(self):
        layout = ConsumerLayout.make(64, 32, x=17, y=9, w=1, h=1, mip=3, parts=4)
        assert layout.roi == Box((17, 9), (1, 1))
        assert layout.mip == 0
        assert layout.parts == 1
        assert layout.frame_shape() == (1, 1)


class TestValidation:
    def test_direct_construction_validates(self):
        with pytest.raises(ValueError, match="parts"):
            ConsumerLayout(roi=Box((0, 0), (8, 4)), parts=5)
        with pytest.raises(ValueError, match="mip"):
            ConsumerLayout(roi=Box((0, 0), (8, 4)), mip=-1)
        with pytest.raises(ValueError, match="empty"):
            ConsumerLayout(roi=Box((0, 0), (0, 4)))


class TestFromQuery:
    def test_parses_all_parameters(self):
        layout = ConsumerLayout.from_query(
            {"x": "4", "y": "2", "w": "24", "h": "12", "mip": "1", "parts": "2"},
            64, 32,
        )
        assert layout.roi == Box((4, 2), (24, 12))
        assert layout.mip == 1
        assert layout.parts == 2

    def test_empty_query_is_full_domain(self):
        assert ConsumerLayout.from_query({}, 64, 32) == ConsumerLayout.make(64, 32)

    def test_non_integer_raises(self):
        with pytest.raises(ValueError, match="not an integer"):
            ConsumerLayout.from_query({"w": "wide"}, 64, 32)

    def test_equivalent_queries_share_a_canonical_key(self):
        # Over-large w/h clamp to the same ROI as the exact request.
        a = ConsumerLayout.from_query({"w": "9999", "h": "9999"}, 64, 32)
        b = ConsumerLayout.from_query({}, 64, 32)
        assert a.canonical_key() == b.canonical_key()


class TestGeometry:
    def test_part_boxes_tile_the_roi(self):
        layout = ConsumerLayout.make(64, 32, x=4, y=2, w=24, h=13, parts=3)
        parts = layout.part_boxes()
        assert len(parts) == 3
        assert sum(p.dims[1] for p in parts) == 13
        y = 2
        for part in parts:
            assert part.offset == (4, y)
            assert part.dims[0] == 24
            y += part.dims[1]

    def test_frame_shape_ceil_divides(self):
        layout = ConsumerLayout.make(64, 32, w=10, h=7, mip=1)
        assert layout.frame_shape() == (4, 5)

    def test_describe_mentions_everything(self):
        text = ConsumerLayout.make(64, 32, x=4, y=2, w=24, h=12, mip=1,
                                   parts=2).describe()
        assert "4,2" in text and "24x12" in text
        assert "mip=1" in text and "parts=2" in text
