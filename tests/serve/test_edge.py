"""End-to-end: live StreamEdge served to real sockets over HTTP and WS."""

import json
import socket
import threading
import time
import urllib.request

import pytest

from repro.jpeg import decode
from repro.serve import (
    FrameHub,
    StreamEdge,
    SyntheticSource,
    run_viewers,
)

NX, NY, M = 32, 16, 2


@pytest.fixture
def served():
    """A live edge plus a publisher helper; torn down after the test."""
    source = SyntheticSource(NX, NY, m=M)
    hub = FrameHub(NX, NY, m=M)
    edge = StreamEdge(hub)
    edge.serve_in_thread()

    def publish(n_frames, wait_viewers=0, period_s=0.01):
        deadline = time.monotonic() + 15.0
        while hub.viewer_count() < wait_viewers and time.monotonic() < deadline:
            time.sleep(0.005)
        assert hub.viewer_count() >= wait_viewers, "viewers failed to attach"
        for index, slabs in source.frames(n_frames):
            hub.publish(index, slabs)
            time.sleep(period_s)

    yield hub, edge, publish
    edge.shutdown()
    hub.close()


def _get(port, path):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=10
    ) as response:
        return response.status, dict(response.headers), response.read()


class TestHttpRoutes:
    def test_index_page_embeds_stream(self, served):
        hub, edge, _ = served
        status, _, body = _get(edge.port, "/?mip=1")
        assert status == 200
        assert b"/mjpeg?mip=1" in body

    def test_stats_round_trips_json(self, served):
        hub, edge, _ = served
        status, _, body = _get(edge.port, "/stats")
        assert status == 200
        stats = json.loads(body)
        assert stats["viewers"] == 0
        assert "mapping_cache" in stats

    def test_unknown_route_404s(self, served):
        _, edge, _ = served
        with pytest.raises(urllib.error.HTTPError) as info:
            _get(edge.port, "/nope")
        assert info.value.code == 404

    def test_single_frame_endpoint_serves_decodable_jpeg(self, served):
        hub, edge, publish = served
        publisher = threading.Thread(
            target=publish, args=(3,), kwargs={"wait_viewers": 1}, daemon=True
        )
        publisher.start()
        status, headers, body = _get(edge.port, "/frame?x=4&y=2&w=16&h=8")
        publisher.join(timeout=20)
        assert status == 200
        assert headers["Content-Type"] == "image/jpeg"
        assert "X-Frame-Index" in headers
        image = decode(body)
        assert image.shape[:2] == (8, 16)

    def test_bad_ws_upgrade_is_400(self, served):
        _, edge, _ = served
        with socket.create_connection(("127.0.0.1", edge.port), timeout=10) as s:
            s.sendall(b"GET /ws HTTP/1.1\r\nHost: x\r\n\r\n")
            head = s.recv(4096)
        assert b" 400 " in head.split(b"\r\n")[0]


class TestMixedViewers:
    def test_every_viewer_sees_final_frame(self, served):
        hub, edge, publish = served
        n_viewers, n_frames = 12, 5
        holder = {}
        attach = threading.Thread(
            target=lambda: holder.setdefault(
                "reports",
                run_viewers(edge.port, n_viewers, n_frames - 1, timeout_s=20.0),
            ),
            daemon=True,
        )
        attach.start()
        publish(n_frames, wait_viewers=n_viewers)
        attach.join(timeout=40)
        reports = holder["reports"]
        assert len(reports) == n_viewers
        failures = [
            (r.viewer, r.transport, r.error, r.last_frame)
            for r in reports
            if r.error or r.last_frame != n_frames - 1
        ]
        assert not failures
        assert {r.transport for r in reports} == {"ws", "http"}
        # 5 smoke layouts over 12 viewers -> every layout exercised, and the
        # mapping cache holds exactly the distinct ones.
        assert hub.mapping_cache.stats()["entries"] == 5

    def test_viewers_disconnecting_midstream_are_reaped(self, served):
        hub, edge, publish = served
        quitter = threading.Thread(
            target=lambda: run_viewers(edge.port, 4, 1, timeout_s=20.0),
            daemon=True,
        )
        quitter.start()
        publish(3, wait_viewers=4)  # viewers leave after frame 1
        quitter.join(timeout=20)
        deadline = time.monotonic() + 10.0
        while hub.viewer_count() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert hub.viewer_count() == 0
        disconnects = hub.metrics.counters.get("serve.viewers_disconnected", 0)
        assert disconnects >= 4
