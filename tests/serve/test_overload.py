"""OverloadController: ladder dynamics, admission, shed, circuit breaker."""

import time

import pytest

from repro.obs import tracing
from repro.serve import (
    ConsumerLayout,
    FrameHub,
    HubSaturatedError,
    LayoutSaturatedError,
    OverloadController,
    SloPolicy,
    SyntheticSource,
    ViewerShedError,
)
from repro.serve.overload import LADDER

NX, NY, M = 32, 16, 2

FAST = SloPolicy(publish_slo_s=0.01, encode_slo_s=0.01, breach_steps=2,
                 clear_steps=2, ewma_alpha=1.0)


def climb(controller, rungs):
    """Feed breaching epochs until the ladder reaches ``rungs``."""
    for _ in range(rungs * controller.policy.breach_steps):
        controller.observe(publish_s=1.0)
    return controller.level


class TestLadder:
    def test_hysteresis_requires_consecutive_breaches(self):
        controller = OverloadController(FAST)
        controller.observe(publish_s=1.0)  # one breach: not enough
        assert controller.level == 0
        controller.observe(publish_s=1.0)  # second consecutive: degrade
        assert controller.level == 1
        assert LADDER[controller.level] == "quality"

    def test_single_noisy_epoch_never_moves_the_ladder(self):
        controller = OverloadController(FAST)
        for _ in range(10):
            controller.observe(publish_s=1.0)  # breach
            controller.observe(publish_s=0.0)  # healthy resets the streak
        assert controller.level == 0
        assert controller.transitions == []

    def test_full_climb_and_recovery(self):
        controller = OverloadController(FAST)
        assert climb(controller, 4) == LADDER.index("shed")
        # Sustained health walks back down one rung per clear_steps.
        for _ in range(4 * FAST.clear_steps):
            controller.observe(publish_s=0.0)
        assert controller.level == 0
        directions = [t["direction"] for t in controller.transitions]
        assert directions == ["degrade"] * 4 + ["recover"] * 4

    def test_knobs_follow_the_rungs(self):
        controller = OverloadController(FAST)
        assert controller.quality(80) == 80
        assert controller.min_mip == 0
        assert controller.frame_stride == 1
        climb(controller, 1)  # quality
        assert controller.quality(80) == FAST.degraded_quality
        climb(controller, 1)  # mip
        assert controller.min_mip == FAST.forced_mip
        climb(controller, 1)  # fps
        assert controller.frame_stride == FAST.frame_stride

    def test_transitions_emit_degrade_spans(self):
        with tracing() as tracer:
            controller = OverloadController(FAST)
            climb(controller, 2)
            for _ in range(2 * FAST.clear_steps):
                controller.observe(publish_s=0.0)
        spans = [r for r in tracer.records() if r.name == "serve.degrade"]
        assert len(spans) == 4  # 2 down + 2 up
        assert spans[0].attrs["direction"] == "degrade"
        assert spans[0].attrs["from_level"] == "normal"
        assert spans[0].attrs["to_level"] == "quality"
        assert "publish_latency" in spans[0].attrs["reason"]
        assert spans[-1].attrs["direction"] == "recover"

    def test_reasons_name_every_breached_slo(self):
        policy = SloPolicy(publish_slo_s=0.01, encode_slo_s=0.01,
                          drop_rate_slo=0.5, pool_budget_bytes=100,
                          ewma_alpha=1.0)
        controller = OverloadController(policy)
        controller.observe(publish_s=1.0, encode_s=1.0, drop_rate=0.9,
                           pool_bytes=200)
        assert set(controller.stats()["active_reasons"]) == {
            "publish_latency", "encode_time", "queue_drops", "mapping_pool",
        }

    def test_shed_request_fires_once_per_breach_cycle(self):
        controller = OverloadController(FAST)
        climb(controller, 4)  # reach shed
        climb(controller, 1)  # breach again while at shed -> pending
        n = controller.take_shed_request(viewer_count=8)
        assert n == max(FAST.min_shed, int(8 * FAST.shed_fraction))
        assert controller.take_shed_request(viewer_count=8) == 0  # consumed


class TestRegistryDeltas:
    def test_observe_registry_reads_epoch_deltas(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        controller = OverloadController(FAST)
        registry.observe("serve.publish", 1.0)
        controller.observe_registry(registry)
        assert controller.publish_ewma == pytest.approx(1.0)
        # A fast second epoch must not be polluted by the slow first one.
        registry.observe("serve.publish", 0.001)
        controller.observe_registry(registry)
        assert controller.publish_ewma == pytest.approx(0.001)

    def test_drop_rate_comes_from_counter_deltas(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        controller = OverloadController(FAST)
        registry.incr("serve.frames_delivered", 10)
        registry.incr("serve.frames_coalesced", 30)
        controller.observe_registry(registry)
        assert controller.drop_ewma == pytest.approx(0.75)


class TestHubIntegration:
    def test_admission_caps_raise_typed(self):
        hub = FrameHub(NX, NY, m=M, max_viewers=2, max_viewers_per_layout=1)
        full = ConsumerLayout.make(NX, NY)
        hub.register(full)
        with pytest.raises(LayoutSaturatedError) as info:
            hub.register(full)
        assert info.value.status == 429
        assert info.value.retry_after_s > 0
        hub.register(ConsumerLayout.make(NX, NY, mip=1))
        with pytest.raises(HubSaturatedError) as info:
            hub.register(ConsumerLayout.make(NX, NY, mip=2))
        assert info.value.status == 503
        assert hub.stats()["admission"]["rejected"] == 2
        hub.close()

    def test_mip_rung_coarsens_new_registrations(self):
        controller = OverloadController(FAST)
        climb(controller, 2)  # mip rung
        hub = FrameHub(NX, NY, m=M, overload=controller)
        queue = hub.register(ConsumerLayout.make(NX, NY))  # asked for mip 0
        assert queue.layout.mip == FAST.forced_mip
        assert hub.metrics.counters["serve.mip_forced"] == 1
        hub.close()

    def test_fps_rung_strides_but_force_publishes(self):
        controller = OverloadController(FAST)
        climb(controller, 3)  # fps rung: stride 2
        source = SyntheticSource(NX, NY, m=M)
        hub = FrameHub(NX, NY, m=M, overload=controller)
        queue = hub.register(ConsumerLayout.make(NX, NY))
        # Healthy epochs now, so the ladder does not climb further.
        controller.observe(publish_s=0.0)
        assert hub.publish(1, source.slabs(1)) == 0  # off-stride: skipped
        assert hub.frames_ratelimited == 1
        assert hub.publish(2, source.slabs(2)) == 1  # on-stride
        assert hub.publish(3, source.slabs(3), force=True) == 1  # final frame
        assert queue.last_index == 3
        hub.close()

    def test_shed_closes_slowest_viewers_typed(self):
        hub = FrameHub(NX, NY, m=M)
        source = SyntheticSource(NX, NY, m=M)
        fast = hub.register(ConsumerLayout.make(NX, NY))
        slow = hub.register(ConsumerLayout.make(NX, NY, mip=1))
        for index, slabs in source.frames(6):
            hub.publish(index, slabs)
            while fast.try_pop() is not None:  # fast viewer keeps up
                pass
        assert slow.coalesced > 0
        assert hub.shed_viewers(1) == 1
        assert hub.viewer_count() == 1
        with pytest.raises(ViewerShedError):
            while True:
                slow.pop(timeout=0.1)
        assert fast.try_pop() is None  # survivor still registered, not shed
        assert hub.metrics.counters["serve.viewers_shed"] == 1
        hub.close()

    def test_publish_applies_pending_shed(self):
        controller = OverloadController(FAST)
        source = SyntheticSource(NX, NY, m=M)
        hub = FrameHub(NX, NY, m=M, overload=controller)
        queues = [hub.register(ConsumerLayout.make(NX, NY)) for _ in range(4)]
        climb(controller, 5)  # at shed rung with a shed pending
        hub.publish(0, source.slabs(0))
        assert hub.viewer_count() < 4
        assert controller.shed_total >= 1
        assert any(q.closed for q in queues)
        hub.close()


class TestCircuitBreaker:
    def test_stall_flips_readiness_and_serves_last_good(self):
        policy = SloPolicy(stall_timeout_s=0.05)
        controller = OverloadController(policy)
        source = SyntheticSource(NX, NY, m=M)
        hub = FrameHub(NX, NY, m=M, overload=controller)
        layout = ConsumerLayout.make(NX, NY)
        hub.register(layout)
        assert not hub.stalled()  # never published: not stalled
        hub.publish(0, source.slabs(0))
        assert hub.ready() == (True, "ready")
        time.sleep(0.1)  # producer goes quiet past the stall timeout
        assert hub.stalled()
        ready, reason = hub.ready()
        assert not ready and reason == "producer-stalled"
        stale = hub.last_frame(layout)
        assert stale is not None and stale.index == 0
        # A fresh publish closes the breaker again.
        hub.publish(1, source.slabs(1))
        assert hub.ready() == (True, "ready")
        hub.close()

    def test_drain_refuses_readiness_but_keeps_hub_alive(self):
        hub = FrameHub(NX, NY, m=M)
        queue = hub.register(ConsumerLayout.make(NX, NY))
        hub.drain()
        assert hub.ready() == (False, "draining")
        assert not hub.closed
        assert hub.viewer_count() == 0
        with pytest.raises(Exception):
            queue.pop(timeout=0.1)
        hub.close()
