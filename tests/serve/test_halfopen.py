"""Half-open and never-reading clients: no stuck handlers, no task leaks."""

import socket
import struct
import threading
import time

import pytest

from repro.serve import (
    EdgeLimits,
    FrameHub,
    StreamEdge,
    SyntheticSource,
)

NX, NY, M = 32, 16, 2

#: Small buffers + a short stall timeout so a never-reading client trips
#: the write-stall guard deterministically inside a test's budget.
TIGHT = EdgeLimits(
    write_stall_timeout_s=0.5,
    write_buffer_bytes=8192,
    sock_sndbuf=4096,
)


@pytest.fixture
def served():
    source = SyntheticSource(NX, NY, m=M)
    hub = FrameHub(NX, NY, m=M)
    edge = StreamEdge(hub, frame_timeout_s=5.0, limits=TIGHT)
    edge.serve_in_thread()
    stop = threading.Event()

    def produce():
        frame = 0
        while not stop.is_set():
            hub.publish(frame, source.slabs(frame))
            frame += 1
            time.sleep(0.01)

    producer = threading.Thread(target=produce, daemon=True)
    producer.start()
    yield hub, edge
    stop.set()
    producer.join(timeout=10.0)
    edge.shutdown()
    hub.close()


def _await_zero_viewers(hub, timeout=10.0):
    deadline = time.monotonic() + timeout
    while hub.viewer_count() > 0 and time.monotonic() < deadline:
        time.sleep(0.02)
    return hub.viewer_count()


def _await_tasks(edge, baseline, timeout=10.0):
    deadline = time.monotonic() + timeout
    while edge.task_count() > baseline and time.monotonic() < deadline:
        time.sleep(0.02)
    return edge.task_count()


class TestHalfOpen:
    def test_abortive_close_mid_stream_reaps_the_viewer(self, served):
        hub, edge = served
        baseline = edge.task_count()
        sock = socket.create_connection(("127.0.0.1", edge.port), timeout=10)
        sock.settimeout(10.0)
        sock.sendall(b"GET /mjpeg HTTP/1.1\r\nHost: x\r\n\r\n")
        sock.recv(1024)  # read a little, prove the stream started
        # RST instead of FIN: the rudest possible exit.
        sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
        )
        sock.close()
        assert _await_zero_viewers(hub) == 0
        assert _await_tasks(edge, baseline) <= baseline

    def test_write_half_closed_socket_is_noticed_via_eof(self, served):
        hub, edge = served
        sock = socket.create_connection(("127.0.0.1", edge.port), timeout=10)
        sock.settimeout(10.0)
        sock.sendall(b"GET /mjpeg HTTP/1.1\r\nHost: x\r\n\r\n")
        sock.recv(1024)
        sock.shutdown(socket.SHUT_WR)  # we stop talking but keep reading
        sock.close()
        assert _await_zero_viewers(hub) == 0

    def test_ws_client_vanishing_is_reaped(self, served):
        hub, edge = served
        sock = socket.create_connection(("127.0.0.1", edge.port), timeout=10)
        sock.settimeout(10.0)
        sock.sendall(
            b"GET /ws HTTP/1.1\r\nHost: x\r\nUpgrade: websocket\r\n"
            b"Connection: Upgrade\r\n"
            b"Sec-WebSocket-Key: dGhlIHNhbXBsZSBub25jZQ==\r\n\r\n"
        )
        head = sock.recv(4096)
        assert head.startswith(b"HTTP/1.1 101")
        sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
        )
        sock.close()
        assert _await_zero_viewers(hub) == 0


class TestNeverReading:
    def test_never_reading_mjpeg_consumer_trips_the_stall_guard(self, served):
        hub, edge = served
        baseline = edge.task_count()
        sock = socket.create_connection(("127.0.0.1", edge.port), timeout=30)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 2048)
        sock.sendall(b"GET /mjpeg HTTP/1.1\r\nHost: x\r\n\r\n")
        try:
            deadline = time.monotonic() + 10.0
            while hub.viewer_count() < 1 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert hub.viewer_count() == 1, "viewer never registered"
            # Never read.  The producer keeps publishing; once kernel and
            # transport buffers fill, drain() stalls and the guard fires.
            assert _await_zero_viewers(hub, timeout=15.0) == 0
            assert hub.metrics.counters.get("serve.viewer_stalls", 0) >= 1
            assert _await_tasks(edge, baseline) <= baseline
        finally:
            sock.close()

    def test_no_async_viewer_task_leaks_across_a_client_storm(self, served):
        hub, edge = served
        baseline = edge.task_count()
        for _ in range(8):
            sock = socket.create_connection(("127.0.0.1", edge.port), timeout=10)
            sock.settimeout(5.0)
            sock.sendall(b"GET /mjpeg HTTP/1.1\r\nHost: x\r\n\r\n")
            sock.recv(512)
            sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
            )
            sock.close()
        assert _await_zero_viewers(hub) == 0
        assert _await_tasks(edge, baseline) <= baseline
        # And the edge still serves: a fresh cooperative client gets bytes.
        with socket.create_connection(
            ("127.0.0.1", edge.port), timeout=10
        ) as sock:
            sock.settimeout(10.0)
            sock.sendall(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            assert b"200" in sock.recv(4096)
