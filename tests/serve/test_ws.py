"""RFC 6455 framing helpers: handshake key, encode/decode round-trips,
and protocol hardening (payload caps, reserved bits/opcodes, close codes)."""

import struct

import pytest

from repro.serve.ws import (
    CLOSE_PROTOCOL_ERROR,
    CLOSE_TOO_BIG,
    OP_BINARY,
    OP_CLOSE,
    OP_PING,
    OP_TEXT,
    WsProtocolError,
    accept_key,
    decode_frame,
    encode_close,
    encode_frame,
)


def test_accept_key_matches_rfc_example():
    # RFC 6455 section 1.3's worked handshake.
    assert accept_key("dGhlIHNhbXBsZSBub25jZQ==") == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="


@pytest.mark.parametrize("size", [0, 1, 125, 126, 127, 65535, 65536, 70000])
@pytest.mark.parametrize("mask", [False, True])
def test_encode_decode_round_trip(size, mask):
    payload = bytes(i % 251 for i in range(size))
    wire = encode_frame(payload, OP_BINARY, mask=mask)
    opcode, decoded, consumed = decode_frame(wire + b"tail")
    assert opcode == OP_BINARY
    assert decoded == payload
    assert consumed == len(wire)


def test_decode_incomplete_returns_none():
    wire = encode_frame(b"x" * 200, OP_TEXT)
    for cut in (0, 1, 2, 3, len(wire) - 1):
        assert decode_frame(wire[:cut]) is None


def test_two_frames_back_to_back():
    wire = encode_frame(b"one") + encode_frame(b"", OP_CLOSE)
    opcode, payload, consumed = decode_frame(wire)
    assert (opcode, payload) == (OP_BINARY, b"one")
    opcode, payload, _ = decode_frame(wire[consumed:])
    assert (opcode, payload) == (OP_CLOSE, b"")


def test_fragmented_frame_rejected():
    wire = bytearray(encode_frame(b"frag"))
    wire[0] &= 0x7F  # clear FIN
    with pytest.raises(WsProtocolError, match="fragmented") as info:
        decode_frame(bytes(wire))
    assert info.value.code == CLOSE_PROTOCOL_ERROR


def test_oversized_declared_length_rejected_before_buffering():
    # Header declares 1 GiB but carries no payload: the cap must fire on
    # the *declared* length, not wait for a gigabyte to accumulate.
    wire = bytes([0x80 | OP_BINARY, 127]) + struct.pack(">Q", 1 << 30)
    with pytest.raises(WsProtocolError, match="exceeds") as info:
        decode_frame(wire, max_payload=1 << 20)
    assert info.value.code == CLOSE_TOO_BIG


def test_payload_at_the_cap_is_accepted():
    payload = b"x" * 1024
    wire = encode_frame(payload, OP_BINARY)
    opcode, decoded, _ = decode_frame(wire, max_payload=1024)
    assert (opcode, decoded) == (OP_BINARY, payload)


def test_reserved_rsv_bits_rejected():
    wire = bytearray(encode_frame(b"x"))
    wire[0] |= 0x40  # RSV1 without a negotiated extension
    with pytest.raises(WsProtocolError, match="RSV") as info:
        decode_frame(bytes(wire))
    assert info.value.code == CLOSE_PROTOCOL_ERROR


@pytest.mark.parametrize("opcode", [0x3, 0x7, 0xB, 0xF])
def test_reserved_opcodes_rejected(opcode):
    wire = encode_frame(b"", opcode)
    with pytest.raises(WsProtocolError, match="opcode") as info:
        decode_frame(wire)
    assert info.value.code == CLOSE_PROTOCOL_ERROR


def test_control_frame_over_125_bytes_rejected():
    # A control frame with an extended (126) length header is malformed
    # per RFC 6455 section 5.5 even when the payload would be small.
    wire = bytes([0x80 | OP_PING, 126]) + struct.pack(">H", 200) + b"x" * 200
    with pytest.raises(WsProtocolError, match="control frame") as info:
        decode_frame(wire)
    assert info.value.code == CLOSE_PROTOCOL_ERROR


def test_encode_close_round_trips_code_and_reason():
    wire = encode_close(CLOSE_TOO_BIG, b"too big")
    opcode, payload, _ = decode_frame(wire)
    assert opcode == OP_CLOSE
    (code,) = struct.unpack(">H", payload[:2])
    assert code == CLOSE_TOO_BIG
    assert payload[2:] == b"too big"


def test_encode_close_truncates_long_reasons_to_control_limit():
    wire = encode_close(CLOSE_PROTOCOL_ERROR, b"r" * 500)
    opcode, payload, _ = decode_frame(wire)
    assert opcode == OP_CLOSE
    assert len(payload) <= 125  # stays a legal control frame
