"""RFC 6455 framing helpers: handshake key, encode/decode round-trips."""

import pytest

from repro.serve.ws import (
    OP_BINARY,
    OP_CLOSE,
    OP_TEXT,
    accept_key,
    decode_frame,
    encode_frame,
)


def test_accept_key_matches_rfc_example():
    # RFC 6455 section 1.3's worked handshake.
    assert accept_key("dGhlIHNhbXBsZSBub25jZQ==") == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="


@pytest.mark.parametrize("size", [0, 1, 125, 126, 127, 65535, 65536, 70000])
@pytest.mark.parametrize("mask", [False, True])
def test_encode_decode_round_trip(size, mask):
    payload = bytes(i % 251 for i in range(size))
    wire = encode_frame(payload, OP_BINARY, mask=mask)
    opcode, decoded, consumed = decode_frame(wire + b"tail")
    assert opcode == OP_BINARY
    assert decoded == payload
    assert consumed == len(wire)


def test_decode_incomplete_returns_none():
    wire = encode_frame(b"x" * 200, OP_TEXT)
    for cut in (0, 1, 2, 3, len(wire) - 1):
        assert decode_frame(wire[:cut]) is None


def test_two_frames_back_to_back():
    wire = encode_frame(b"one") + encode_frame(b"", OP_CLOSE)
    opcode, payload, consumed = decode_frame(wire)
    assert (opcode, payload) == (OP_BINARY, b"one")
    opcode, payload, _ = decode_frame(wire[consumed:])
    assert (opcode, payload) == (OP_CLOSE, b"")


def test_fragmented_frame_rejected():
    wire = bytearray(encode_frame(b"frag"))
    wire[0] &= 0x7F  # clear FIN
    with pytest.raises(ValueError, match="fragmented"):
        decode_frame(bytes(wire))
