"""Codec edge shapes: dimensions that are not MCU multiples.

The serving edge encodes arbitrary viewer ROIs — including 1-px crops and
mip-subsampled frames whose dimensions are nothing like a multiple of the
8x8 block (or the 16x16 MCU that 4:2:0 subsampling implies).  These tests
pin the padding/cropping contract: the decoder must return exactly the
requested shape, and round-trip error must stay bounded at every quality.
"""

import numpy as np
import pytest

from repro.jpeg import decode
from repro.jpeg.encoder import encode_gray, encode_rgb

# Shapes straddling block (8) and MCU (16) boundaries, down to a single pixel.
EDGE_SHAPES = [
    (1, 1),
    (1, 7),
    (7, 1),
    (3, 5),
    (8, 8),
    (9, 17),
    (15, 16),
    (16, 15),
    (17, 31),
    (33, 9),
]


def _gradient(shape):
    h, w = shape
    ys, xs = np.meshgrid(np.arange(h), np.arange(w), indexing="ij")
    return ((xs * 255 // max(w - 1, 1) + ys * 13) % 256).astype(np.uint8)


@pytest.mark.parametrize("shape", EDGE_SHAPES)
def test_gray_round_trip_returns_exact_shape(shape):
    image = _gradient(shape)
    decoded = decode(encode_gray(image, quality=90))
    assert decoded.shape == shape
    assert decoded.dtype == np.uint8
    # High quality: padding must not bleed into the real pixels.
    assert np.max(np.abs(decoded.astype(int) - image.astype(int))) <= 24


@pytest.mark.parametrize("shape", EDGE_SHAPES)
@pytest.mark.parametrize("subsampling", ["444", "420"])
def test_rgb_round_trip_returns_exact_shape(shape, subsampling):
    h, w = shape
    image = np.stack(
        [_gradient(shape), _gradient(shape)[::-1], np.full(shape, 128, np.uint8)],
        axis=-1,
    )
    decoded = decode(encode_rgb(image, quality=90, subsampling=subsampling))
    assert decoded.shape == (h, w, 3)
    assert decoded.dtype == np.uint8


@pytest.mark.parametrize("quality", [25, 50, 75, 95])
def test_quality_sweep_on_odd_shape(quality):
    image = _gradient((17, 31))
    blob = encode_gray(image, quality=quality)
    decoded = decode(blob)
    assert decoded.shape == (17, 31)
    error = np.mean(np.abs(decoded.astype(int) - image.astype(int)))
    # Quantization gets coarser as quality drops, but the image must stay
    # recognizably the same gradient.
    assert error <= {25: 40.0, 50: 30.0, 75: 20.0, 95: 10.0}[quality]


def test_one_pixel_images_survive_both_paths():
    gray = np.array([[200]], dtype=np.uint8)
    assert decode(encode_gray(gray, quality=95)).shape == (1, 1)
    rgb = np.array([[[250, 10, 120]]], dtype=np.uint8)
    for subsampling in ("444", "420"):
        decoded = decode(encode_rgb(rgb, quality=95, subsampling=subsampling))
        assert decoded.shape == (1, 1, 3)
        assert np.max(np.abs(decoded.astype(int) - rgb.astype(int))) <= 32


def test_single_row_and_column_strips():
    row = _gradient((1, 37))
    col = _gradient((37, 1))
    assert decode(encode_gray(row, quality=85)).shape == (1, 37)
    assert decode(encode_gray(col, quality=85)).shape == (37, 1)


def test_flat_field_is_near_lossless_at_any_edge_shape():
    for shape in ((5, 9), (13, 3)):
        image = np.full(shape, 77, dtype=np.uint8)
        decoded = decode(encode_gray(image, quality=75))
        assert np.max(np.abs(decoded.astype(int) - 77)) <= 2
