"""Bit I/O and Huffman layer tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jpeg.bitio import BitReader, BitWriter
from repro.jpeg.huffman import (
    HuffmanTable,
    STD_AC_CHROMINANCE,
    STD_AC_LUMINANCE,
    STD_DC_CHROMINANCE,
    STD_DC_LUMINANCE,
    decode_magnitude,
    encode_magnitude,
    magnitude_category,
)


class TestBitWriter:
    def test_msb_first_packing(self):
        w = BitWriter()
        w.write(0b101, 3)
        w.write(0b01100, 5)
        assert w.flush() == bytes([0b10101100])

    def test_flush_pads_with_ones(self):
        w = BitWriter()
        w.write(0b0, 1)
        assert w.flush() == bytes([0b01111111])

    def test_byte_stuffing(self):
        w = BitWriter()
        w.write(0xFF, 8)
        assert w.flush() == b"\xff\x00"

    def test_value_range_checked(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write(4, 2)
        with pytest.raises(ValueError):
            w.write(-1, 3)
        with pytest.raises(ValueError):
            w.write(0, 40)

    def test_zero_bits_noop(self):
        w = BitWriter()
        w.write(0, 0)
        assert w.flush() == b""


class TestBitReader:
    def test_read_back(self):
        r = BitReader(bytes([0b10101100]))
        assert r.read(3) == 0b101
        assert r.read(5) == 0b01100

    def test_unstuffing(self):
        r = BitReader(b"\xff\x00\x80")
        assert r.read(8) == 0xFF
        assert r.read(1) == 1

    def test_eof(self):
        r = BitReader(b"\x00")
        r.read(8)
        with pytest.raises(EOFError):
            r.read(1)

    def test_marker_in_scan_rejected(self):
        r = BitReader(b"\xff\xd9")
        with pytest.raises(EOFError, match="marker"):
            r.read(8)

    @given(values=st.lists(st.tuples(st.integers(1, 16), st.integers(0, 2**16 - 1)),
                           min_size=1, max_size=40))
    @settings(max_examples=80, deadline=None)
    def test_property_roundtrip(self, values):
        w = BitWriter()
        clipped = [(n, v & ((1 << n) - 1)) for n, v in values]
        for n, v in clipped:
            w.write(v, n)
        r = BitReader(w.flush())
        for n, v in clipped:
            assert r.read(n) == v


class TestMagnitude:
    @pytest.mark.parametrize(
        "value,size", [(0, 0), (1, 1), (-1, 1), (2, 2), (-3, 2), (255, 8), (-1024, 11)]
    )
    def test_category(self, value, size):
        assert magnitude_category(value) == size

    @given(value=st.integers(-2047, 2047))
    @settings(max_examples=120, deadline=None)
    def test_property_roundtrip(self, value):
        size = magnitude_category(value)
        w = BitWriter()
        encode_magnitude(w, value, size)
        w.write(0xF, 4)  # guard bits so flush padding can't alias
        r = BitReader(w.flush())
        assert decode_magnitude(r, size) == value


class TestHuffmanTables:
    ALL = [STD_DC_LUMINANCE, STD_DC_CHROMINANCE, STD_AC_LUMINANCE, STD_AC_CHROMINANCE]

    def test_standard_table_sizes(self):
        assert len(STD_DC_LUMINANCE.values) == 12
        assert len(STD_DC_CHROMINANCE.values) == 12
        assert len(STD_AC_LUMINANCE.values) == 162
        assert len(STD_AC_CHROMINANCE.values) == 162

    def test_known_codes(self):
        """Spot-check Annex K: DC lum symbol 0 -> code 00 (2 bits)."""
        w = BitWriter()
        STD_DC_LUMINANCE.encode_symbol(w, 0)
        w.write(1, 1)
        r = BitReader(w.flush())
        assert r.read(2) == 0b00

    @pytest.mark.parametrize("table", ALL)
    def test_all_symbols_roundtrip(self, table):
        w = BitWriter()
        for symbol in table.values:
            table.encode_symbol(w, symbol)
        r = BitReader(w.flush())
        for symbol in table.values:
            assert table.decode_symbol(r) == symbol

    def test_prefix_free(self):
        """No code may be a prefix of another (canonical construction)."""
        for table in self.ALL:
            codes = sorted(
                table._encode.values(), key=lambda cl: cl[1]  # type: ignore[attr-defined]
            )
            for i, (code_a, len_a) in enumerate(codes):
                for code_b, len_b in codes[i + 1 :]:
                    assert not (
                        len_b >= len_a and (code_b >> (len_b - len_a)) == code_a
                    ), "prefix violation"

    def test_unknown_symbol_rejected(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            STD_DC_LUMINANCE.encode_symbol(w, 0x99)

    def test_construction_validation(self):
        with pytest.raises(ValueError):
            HuffmanTable(bits=(1,) * 8, values=(0,))
        with pytest.raises(ValueError):
            HuffmanTable(bits=(0,) * 16, values=(1,))
