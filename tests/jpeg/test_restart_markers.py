"""Restart-marker (DRI/RSTn) support in the JPEG codec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jpeg import decode, encode_gray, encode_rgb
from repro.jpeg.decoder import JpegError, _split_restart_segments


def psnr(a, b):
    mse = ((a.astype(np.float64) - b.astype(np.float64)) ** 2).mean()
    return float("inf") if mse == 0 else 10 * np.log10(255.0**2 / mse)


def gradient(h, w):
    ys, xs = np.mgrid[0:h, 0:w]
    return ((np.sin(xs / 11) + np.cos(ys / 9)) * 55 + 128).clip(0, 255).astype(np.uint8)


class TestSplitSegments:
    def test_no_markers_single_segment(self):
        assert _split_restart_segments(b"\x01\x02\x03") == [b"\x01\x02\x03"]

    def test_split_on_rst(self):
        scan = b"\xaa\xbb" + b"\xff\xd0" + b"\xcc" + b"\xff\xd1" + b"\xdd"
        assert _split_restart_segments(scan) == [b"\xaa\xbb", b"\xcc", b"\xdd"]

    def test_stuffed_ff_not_split(self):
        scan = b"\xff\x00\xaa" + b"\xff\xd3" + b"\xff\x00"
        assert _split_restart_segments(scan) == [b"\xff\x00\xaa", b"\xff\x00"]


class TestRestartRoundtrip:
    def test_gray_with_restarts(self):
        image = gradient(64, 80)
        plain = encode_gray(image, quality=85)
        restarted = encode_gray(image, quality=85, restart_interval=4)
        assert b"\xff\xdd" in restarted  # DRI present
        assert any(bytes([0xFF, 0xD0 + i]) in restarted for i in range(8))
        assert b"\xff\xdd" not in plain
        out_plain = decode(plain)
        out_restart = decode(restarted)
        # Restart markers must not change the decoded pixels at all.
        assert np.array_equal(out_plain, out_restart)

    def test_rgb_with_restarts(self):
        gray = gradient(48, 48)
        rgb = np.stack([gray, 255 - gray, np.roll(gray, 7, 1)], axis=-1)
        blob = encode_rgb(rgb, quality=85, restart_interval=2)
        out = decode(blob)
        assert psnr(out, rgb) > 28

    def test_interval_of_one(self):
        image = gradient(24, 24)
        blob = encode_gray(image, quality=90, restart_interval=1)
        assert np.array_equal(decode(blob), decode(encode_gray(image, quality=90)))

    def test_interval_larger_than_mcu_count(self):
        """No restart ever fires; stream stays valid."""
        image = gradient(16, 16)  # 4 MCUs
        blob = encode_gray(image, quality=90, restart_interval=100)
        assert decode(blob).shape == (16, 16)

    @given(interval=st.integers(1, 20), seed=st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_property_restarts_are_transparent(self, interval, seed):
        rng = np.random.default_rng(seed)
        h, w = int(rng.integers(8, 48)), int(rng.integers(8, 48))
        image = rng.integers(0, 255, (h, w)).astype(np.uint8)
        plain = decode(encode_gray(image, quality=70))
        restarted = decode(encode_gray(image, quality=70, restart_interval=interval))
        assert np.array_equal(plain, restarted)

    def test_rst_cycle_wraps_past_eight(self):
        """More than 8 restarts: RST indices wrap D0..D7 and decode fine."""
        image = gradient(8, 8 * 20)  # 20 MCUs in one row
        blob = encode_gray(image, quality=85, restart_interval=2)  # 9 restarts
        assert np.array_equal(decode(blob), decode(encode_gray(image, quality=85)))

    def test_missing_restart_detected(self):
        image = gradient(32, 32)
        blob = bytearray(encode_gray(image, quality=85, restart_interval=1))
        # Remove the first RST marker to corrupt the cadence.
        for i in range(len(blob) - 1):
            if blob[i] == 0xFF and 0xD0 <= blob[i + 1] <= 0xD7:
                del blob[i : i + 2]
                break
        with pytest.raises((JpegError, EOFError, ValueError)):
            decode(bytes(blob))
