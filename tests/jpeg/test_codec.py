"""JPEG codec tests: DCT/quant units and full encode-decode loops."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jpeg import (
    BASE_CHROMINANCE,
    BASE_LUMINANCE,
    decode,
    encode_gray,
    encode_rgb,
    rgb_to_ycbcr,
    scale_table,
    subsample_420,
    upsample_420,
    ycbcr_to_rgb,
)
from repro.jpeg.dct import (
    blockify,
    forward_dct,
    from_zigzag,
    inverse_dct,
    to_zigzag,
    unblockify,
    ZIGZAG_FLAT,
)
from repro.jpeg.decoder import JpegError


def psnr(a: np.ndarray, b: np.ndarray) -> float:
    mse = ((a.astype(np.float64) - b.astype(np.float64)) ** 2).mean()
    return float("inf") if mse == 0 else 10 * np.log10(255.0**2 / mse)


def smooth_gray(h: int, w: int) -> np.ndarray:
    ys, xs = np.mgrid[0:h, 0:w]
    return ((np.sin(xs / 17) + np.cos(ys / 13)) * 55 + 128).clip(0, 255).astype(np.uint8)


class TestDct:
    def test_zigzag_prefix(self):
        # First entries of the standard zig-zag: 0, 1, 8, 16, 9, 2, 3, 10 ...
        assert ZIGZAG_FLAT[:8].tolist() == [0, 1, 8, 16, 9, 2, 3, 10]

    def test_zigzag_is_permutation(self):
        assert sorted(ZIGZAG_FLAT.tolist()) == list(range(64))

    def test_zigzag_roundtrip(self, rng):
        block = rng.random((8, 8))
        assert np.allclose(from_zigzag(to_zigzag(block)), block)

    def test_dct_roundtrip(self, rng):
        blocks = rng.random((5, 8, 8)) * 255
        assert np.allclose(inverse_dct(forward_dct(blocks)), blocks)

    def test_dct_dc_of_constant(self):
        block = np.full((8, 8), 64.0)
        coeffs = forward_dct(block)
        assert coeffs[0, 0] == pytest.approx(64.0 * 8)  # ortho norm: mean * 8
        assert np.allclose(coeffs.reshape(-1)[1:], 0.0)

    def test_blockify_roundtrip(self, rng):
        channel = rng.random((19, 30))
        blocks, bh, bw = blockify(channel)
        assert (bh, bw) == (3, 4)
        assert blocks.shape == (12, 8, 8)
        assert np.allclose(unblockify(blocks, bh, bw, 19, 30), channel)

    def test_blockify_pads_with_edge(self):
        channel = np.arange(9.0).reshape(3, 3)
        blocks, _, _ = blockify(channel)
        assert blocks[0, 2, 7] == channel[2, 2]  # replicated corner


class TestQuantTables:
    def test_quality_50_is_base(self):
        assert np.array_equal(scale_table(BASE_LUMINANCE, 50), BASE_LUMINANCE)

    def test_higher_quality_finer_steps(self):
        q90 = scale_table(BASE_LUMINANCE, 90)
        q10 = scale_table(BASE_LUMINANCE, 10)
        assert (q90 <= BASE_LUMINANCE).all()
        assert (q10 >= BASE_LUMINANCE).all()

    def test_range_clipped(self):
        assert scale_table(BASE_LUMINANCE, 100).min() >= 1
        assert scale_table(BASE_CHROMINANCE, 1).max() <= 255

    def test_quality_validated(self):
        with pytest.raises(ValueError):
            scale_table(BASE_LUMINANCE, 0)
        with pytest.raises(ValueError):
            scale_table(BASE_LUMINANCE, 101)


class TestColor:
    def test_ycbcr_roundtrip(self, rng):
        rgb = rng.integers(0, 255, (16, 16, 3)).astype(np.uint8)
        out = ycbcr_to_rgb(rgb_to_ycbcr(rgb))
        assert np.abs(out.astype(int) - rgb.astype(int)).max() <= 1

    def test_gray_has_no_chroma(self):
        gray_rgb = np.full((4, 4, 3), 77, dtype=np.uint8)
        ycbcr = rgb_to_ycbcr(gray_rgb)
        assert np.allclose(ycbcr[..., 1:], 128.0, atol=1e-9)

    def test_subsample_upsample(self):
        channel = np.arange(16.0).reshape(4, 4)
        down = subsample_420(channel)
        assert down.shape == (2, 2)
        assert down[0, 0] == pytest.approx(channel[:2, :2].mean())
        up = upsample_420(down, 4, 4)
        assert up.shape == (4, 4)

    def test_subsample_odd_dims(self):
        channel = np.ones((5, 7))
        assert subsample_420(channel).shape == (3, 4)


class TestCodecEndToEnd:
    def test_gray_structure(self):
        blob = encode_gray(smooth_gray(40, 56))
        assert blob[:2] == b"\xff\xd8"
        assert blob[-2:] == b"\xff\xd9"
        assert b"JFIF" in blob[:30]

    @pytest.mark.parametrize("shape", [(8, 8), (64, 64), (33, 50), (7, 100), (100, 7)])
    def test_gray_roundtrip_quality(self, shape):
        image = smooth_gray(*shape)
        out = decode(encode_gray(image, quality=90))
        assert out.shape == image.shape
        assert out.dtype == np.uint8
        assert psnr(out, image) > 35

    @pytest.mark.parametrize("subsampling", ["444", "420"])
    def test_rgb_roundtrip_quality(self, subsampling):
        gray = smooth_gray(48, 64)
        rgb = np.stack([gray, np.roll(gray, 5, axis=1), 255 - gray], axis=-1)
        out = decode(encode_rgb(rgb, quality=90, subsampling=subsampling))
        assert out.shape == rgb.shape
        assert psnr(out, rgb) > 28

    def test_constant_image_tiny_file(self):
        image = np.full((256, 256), 128, dtype=np.uint8)
        blob = encode_gray(image)
        assert len(blob) < 2500  # DC-only blocks, mostly EOBs
        assert np.abs(decode(blob).astype(int) - 128).max() <= 1

    def test_quality_monotone_in_size(self):
        image = smooth_gray(128, 128)
        sizes = [len(encode_gray(image, quality=q)) for q in (10, 50, 90)]
        assert sizes[0] < sizes[1] < sizes[2]

    def test_noise_bigger_than_smooth(self, rng):
        noise = rng.integers(0, 255, (64, 64)).astype(np.uint8)
        assert len(encode_gray(noise)) > len(encode_gray(smooth_gray(64, 64)))

    @given(seed=st.integers(0, 100), q=st.integers(30, 95))
    @settings(max_examples=15, deadline=None)
    def test_property_roundtrip_never_crashes(self, seed, q):
        rng = np.random.default_rng(seed)
        h, w = int(rng.integers(8, 40)), int(rng.integers(8, 40))
        image = rng.integers(0, 255, (h, w)).astype(np.uint8)
        out = decode(encode_gray(image, quality=q))
        assert out.shape == (h, w)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            encode_gray(np.zeros((4, 4, 3), dtype=np.uint8))
        with pytest.raises(ValueError):
            encode_gray(np.zeros((4, 4), dtype=np.float32))
        with pytest.raises(ValueError):
            encode_rgb(np.zeros((4, 4), dtype=np.uint8))
        with pytest.raises(ValueError):
            encode_rgb(np.zeros((4, 4, 3), dtype=np.uint8), subsampling="422")

    def test_decoder_rejects_garbage(self):
        with pytest.raises(JpegError):
            decode(b"not a jpeg")
        with pytest.raises(JpegError):
            decode(b"\xff\xd8\xff\xd9")  # SOI+EOI, no frame
