"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpisim import default_executor, run_spmd
from repro.utils import transfer_counters

#: Marker for tests that only make sense when SPMD ranks share one address
#: space: live zero-copy rendezvous, process-wide counter/blackboard
#: singletons, driver-side ``threading.Event`` control of ranks.  Skipped
#: when ``DDR_EXECUTOR=process`` makes the whole run use forked ranks;
#: tests/mpisim/test_process_executor.py covers the process-side twins.
thread_only = pytest.mark.skipif(
    default_executor() == "process",
    reason="thread-executor semantics (shared address space)",
)


def spmd(nprocs, fn, *args, **kwargs):
    """run_spmd with a short deadlock timeout so broken tests fail fast."""
    kwargs.setdefault("deadlock_timeout", 20.0)
    return run_spmd(nprocs, fn, *args, **kwargs)


def counted_region(comm, fn):
    """Collective: run ``fn()`` with transfer counting on, return a snapshot.

    The counters are one process-wide singleton while SPMD ranks are
    threads, so enable/reset must happen on exactly one rank and be fenced
    by barriers — otherwise a late rank's reset wipes counts already made
    by an early one.  The snapshot covers *all* ranks' traffic.
    """
    counters = transfer_counters()
    comm.Barrier()
    if comm.rank == 0:
        counters.reset()
        counters.enabled = True
    comm.Barrier()
    result = fn()
    comm.Barrier()
    snapshot = counters.snapshot()
    comm.Barrier()
    if comm.rank == 0:
        counters.enabled = False
    return result, snapshot


@pytest.fixture
def rng():
    return np.random.default_rng(20170529)  # IPPS 2017 venue date
