"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpisim import run_spmd


def spmd(nprocs, fn, *args, **kwargs):
    """run_spmd with a short deadlock timeout so broken tests fail fast."""
    kwargs.setdefault("deadlock_timeout", 20.0)
    return run_spmd(nprocs, fn, *args, **kwargs)


@pytest.fixture
def rng():
    return np.random.default_rng(20170529)  # IPPS 2017 venue date
