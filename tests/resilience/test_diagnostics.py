"""Hang diagnostics must distinguish crashed ranks from genuinely stuck ones."""

from __future__ import annotations

from repro.mpisim.executor import _stuck_detail


def test_dead_ranks_reported_crashed_not_stuck():
    detail = _stuck_detail([0, 1], dead=frozenset({1}))
    assert "rank 1 crashed" in detail
    assert "killed by the fault plan" in detail
    assert "rank 0 crashed" not in detail
    # the live rank still gets the usual stuck diagnostics
    assert "rank 0" in detail


def test_no_dead_ranks_means_no_crash_labels():
    detail = _stuck_detail([2], dead=frozenset())
    assert "crashed" not in detail
