"""Pipeline reconfiguration under rank loss (``on_rank_loss="shrink"``).

Each scenario kills one rank at a deterministic op index and compares the
surviving analysis root's output byte counts against a no-fault baseline:
the LBM is deterministic and replayed frames overwrite their ledger slots,
so a clean recovery reproduces the exact same JPEG bytes.
"""

from __future__ import annotations

import pytest

from repro.faults import FaultPlan, ReliabilityPolicy, fault_plan
from repro.intransit import PipelineConfig, run_pipeline
from repro.lbm import LbmConfig
from repro.mpisim import RankCrashError, RankFailure, run_spmd
from repro.resilience import ReconfigurationError

RELIABILITY = ReliabilityPolicy(op_deadline_s=2.0)


def make_config(**overrides):
    defaults = dict(
        lbm=LbmConfig(nx=32, ny=16),
        m=3,
        n=2,
        steps=20,
        output_every=5,
        frame_drop="stale",
        frame_deadline_s=1.0,
        on_rank_loss="shrink",
        reliability=RELIABILITY,
    )
    defaults.update(overrides)
    return PipelineConfig(**defaults)


def worker(comm, config):
    return run_pipeline(comm, config)


def run_with_crash(config, crash_rank, crash_at_op):
    plan = FaultPlan(
        seed=0, nranks=5, crash_rank=crash_rank, crash_at_op=crash_at_op
    )
    with fault_plan(plan, RELIABILITY):
        return run_spmd(
            5, worker, config, resilient=True, deadlock_timeout=15.0
        )


def analysis_root(results):
    return next(
        r
        for r in results
        if not isinstance(r, RankCrashError) and r.role == "analysis_root"
    )


@pytest.fixture(scope="module")
def baseline():
    return analysis_root(run_spmd(5, worker, make_config(), deadlock_timeout=15.0))


def assert_recovered_bitwise(results, baseline, crash_rank):
    assert isinstance(results[crash_rank], RankCrashError)
    root = analysis_root(results)
    assert root.recoveries >= 1
    assert root.ranks_lost >= 1
    assert root.frames == baseline.frames
    assert root.jpeg_bytes == baseline.jpeg_bytes
    assert root.frames_dropped == 0
    assert root.frames_stale == 0


class TestSimCrash:
    def test_state_migrates_and_output_is_identical(self, baseline):
        results = run_with_crash(make_config(), crash_rank=1, crash_at_op=40)
        assert_recovered_bitwise(results, baseline, crash_rank=1)

    def test_losing_rank0_sim(self, baseline):
        results = run_with_crash(make_config(), crash_rank=0, crash_at_op=60)
        assert_recovered_bitwise(results, baseline, crash_rank=0)


class TestAnalysisCrash:
    def test_non_root_loss_repartitions_layout(self, baseline):
        results = run_with_crash(make_config(), crash_rank=4, crash_at_op=10)
        assert_recovered_bitwise(results, baseline, crash_rank=4)

    def test_root_loss_rebuilds_ledger_from_frame_zero(self, baseline):
        results = run_with_crash(make_config(), crash_rank=3, crash_at_op=10)
        assert_recovered_bitwise(results, baseline, crash_rank=3)


class TestReconfigurationLimits:
    def test_unservable_survivor_set_raises_typed(self):
        """A late analysis death - after every sim retired - leaves no
        producers to replay from; that must surface as a typed error."""
        with pytest.raises(RankFailure) as info:
            run_with_crash(make_config(), crash_rank=4, crash_at_op=18)
        assert isinstance(info.value.original, ReconfigurationError)

    def test_fail_mode_is_untouched_default(self):
        config = PipelineConfig(
            lbm=LbmConfig(nx=32, ny=16), m=3, n=2, steps=20, output_every=5
        )
        assert config.on_rank_loss == "fail"

    def test_mode_validation(self):
        with pytest.raises(ValueError, match="on_rank_loss"):
            make_config(on_rank_loss="panic")
