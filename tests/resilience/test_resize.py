"""``ResilientRedistributor.resize``: voluntary reconfiguration.

Crash recovery and voluntary resize share one code path
(``_resize_world`` + ``Redistributor.retarget``); these tests pin the
voluntary half: grow/shrink round-trips on both executors, bitwise
migration, epoch alignment for spawned joiners (required for the replay
agreement), and the crash-recovery loop still working *after* a
voluntary resize.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.box import Box
from repro.mpisim.errors import RankCrashError
from repro.mpisim.executor import run_spmd
from repro.resilience import CheckpointPolicy, ResilientRedistributor

SIDE = 24


def _slab(rank: int, n: int) -> Box:
    base, extra = divmod(SIDE, n)
    start = rank * base + min(rank, extra)
    rows = base + (1 if rank < extra else 0)
    return Box((0, start), (SIDE, rows))


def _field() -> np.ndarray:
    return np.arange(SIDE * SIDE, dtype=np.float32).reshape(SIDE, SIDE)


def _rows(box: Box) -> np.ndarray:
    return _field()[box.offset[1] : box.offset[1] + box.dims[1], :]


def _joiner(rr, result):
    """Spawned rank: verify migrated bytes, run one epoch with members."""
    data = result.data.reshape(result.own.np_shape())
    assert np.array_equal(data, _rows(result.own))
    rr.setup(own=[result.own], need=result.own)
    out = rr.gather_need(data.copy())
    assert np.array_equal(out, _rows(result.own))
    # Epoch alignment: 1 pre-resize member epoch + 1 joint epoch.  Without
    # it, the post-crash replay agreement (min over members) would break.
    assert rr.epoch == 2, rr.epoch
    return ("joined", rr.comm.rank)


def _resize_worker(comm, new_n: int):
    own = _slab(comm.rank, comm.size)
    rr = ResilientRedistributor(
        comm, ndims=2, dtype=np.float32, policy=CheckpointPolicy()
    )
    rr.setup(own=[own], need=own)
    out = rr.gather_need(_rows(own).copy())  # epoch 1
    result = rr.resize(new_n, out, _slab, worker=_joiner)
    if not result.member:
        return ("left", comm.rank)
    migrated = result.data.reshape(result.own.np_shape())
    assert np.array_equal(migrated, _rows(result.own))
    rr.setup(own=[result.own], need=result.own)
    out = rr.gather_need(migrated.copy())  # epoch 2, with any joiners
    assert np.array_equal(out, _rows(result.own))
    assert rr.epoch == 2
    return ("stayed", rr.comm.rank, rr.comm.size)


@pytest.mark.parametrize("executor", ["thread", "process"])
@pytest.mark.parametrize("start,target", [(4, 2), (2, 4), (3, 3)])
def test_resize_round_trips(executor, start, target):
    results = run_spmd(
        start, _resize_worker, target, executor=executor, spawn_slots=4,
        deadlock_timeout=20.0,
    )
    stayed = [r for r in results if r[0] == "stayed"]
    left = [r for r in results if r[0] == "left"]
    assert len(stayed) == min(start, target)
    assert len(left) == max(0, start - target)
    assert all(r[2] == target for r in stayed)


def _resize_then_crash(comm):
    """Shrink 4 -> 3 voluntarily, then lose a rank: recovery still works
    through the same (retarget-based) reconfiguration path."""
    own = _slab(comm.rank, comm.size)
    rr = ResilientRedistributor(
        comm, ndims=2, dtype=np.float32,
        policy=CheckpointPolicy(replicas=1, retain=2),
    )
    rr.setup(own=[own], need=own)
    out = rr.gather_need(_rows(own).copy())  # epoch 1
    result = rr.resize(3, out, _slab)
    if not result.member:
        return ("left",)
    rr.setup(own=[result.own], need=result.own)
    data = result.data.reshape(result.own.np_shape()).copy()
    out = rr.gather_need(data)  # epoch 2: checkpointed
    if rr.comm.rank == 2:
        raise RankCrashError("test: rank dies after voluntary resize")
    buffers = [
        np.ascontiguousarray(_rows(box)) for box in rr.own_boxes
    ]
    out = rr.gather_need(buffers)  # epoch 3: crash -> shrink -> replay
    assert np.array_equal(out, _rows(result.own))
    return ("survived", rr.recoveries, len(rr.adopted_boxes))


def test_crash_recovery_after_voluntary_resize():
    results = run_spmd(
        4, _resize_then_crash, resilient=True, deadlock_timeout=20.0
    )
    survivors = [r for r in results if isinstance(r, tuple) and r[0] == "survived"]
    assert len(survivors) == 2  # 4 -> 3 voluntary, then one death
    assert all(r[1] == 1 for r in survivors)
    assert sum(r[2] for r in survivors) == 1


def _stats_worker(comm):
    from repro.resilience.redistributor import RESILIENCE_STATS

    rr = ResilientRedistributor(comm, ndims=2, dtype=np.float32)
    own = _slab(comm.rank, comm.size)
    rr.setup(own=[own], need=own)
    out = rr.gather_need(_rows(own).copy())
    before = RESILIENCE_STATS.snapshot().get("voluntary_resizes", 0)
    result = rr.resize(2, out, _slab)
    after = RESILIENCE_STATS.snapshot().get("voluntary_resizes", 0)
    if not result.member:
        return None
    return after - before


def test_voluntary_resize_is_counted():
    results = run_spmd(3, _stats_worker)
    deltas = [r for r in results if r is not None]
    assert deltas and all(d >= 1 for d in deltas)
