"""CheckpointPolicy buddy placement and BuddyStore semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Box
from repro.resilience import BuddyStore, CheckpointPolicy, shared_store
from tests.conftest import spmd

BOX = Box((0, 0), (4, 2))
OTHER = Box((4, 0), (4, 2))
NOBODY = frozenset()


def data(fill=1.0):
    return np.full(BOX.np_shape(), fill, dtype=np.float64)


class TestPolicy:
    def test_holders_are_self_then_buddies(self):
        policy = CheckpointPolicy(stride=1, replicas=2)
        assert policy.holder_world_ranks(0, [10, 11, 12, 13]) == (10, 11, 12)
        assert policy.holder_world_ranks(3, [10, 11, 12, 13]) == (13, 10, 11)

    def test_stride_spreads_replicas(self):
        policy = CheckpointPolicy(stride=2, replicas=1)
        assert policy.holder_world_ranks(1, [10, 11, 12, 13]) == (11, 13)

    def test_wraparound_deduplicates(self):
        policy = CheckpointPolicy(stride=1, replicas=5)
        assert policy.holder_world_ranks(0, [7, 9]) == (7, 9)

    def test_validation(self):
        with pytest.raises(ValueError, match="stride"):
            CheckpointPolicy(stride=0)
        with pytest.raises(ValueError, match="replicas"):
            CheckpointPolicy(replicas=-1)
        with pytest.raises(ValueError, match="retain"):
            CheckpointPolicy(retain=0)


class TestBuddyStore:
    def test_fetch_exact_epoch_returns_copy(self):
        store = BuddyStore()
        store.deposit(0, 3, (0, 1), [(BOX, data(7.0))])
        fetched, exact = store.fetch(BOX, 3, NOBODY)
        assert exact
        assert np.array_equal(fetched, data(7.0))
        fetched[:] = 0.0  # mutating the fetched copy must not touch the store
        again, _ = store.fetch(BOX, 3, NOBODY)
        assert np.array_equal(again, data(7.0))

    def test_deposit_copies_the_source(self):
        store = BuddyStore()
        source = data(2.0)
        store.deposit(0, 0, (0,), [(BOX, source)])
        source[:] = -1.0
        fetched, _ = store.fetch(BOX, 0, NOBODY)
        assert np.array_equal(fetched, data(2.0))

    def test_retention_prunes_old_epochs(self):
        store = BuddyStore()
        for epoch in range(3):
            store.deposit(0, epoch, (0,), [(BOX, data(float(epoch)))], retain=2)
        assert store.epochs_for(0) == (1, 2)
        assert store.fetch(BOX, 0, NOBODY) is None

    def test_stale_fallback_flags_inexact(self):
        store = BuddyStore()
        store.deposit(0, 1, (0,), [(BOX, data(5.0))])
        fetched, exact = store.fetch(BOX, 4, NOBODY)
        assert not exact
        assert np.array_equal(fetched, data(5.0))

    def test_dead_holder_falls_back_to_buddy(self):
        store = BuddyStore()
        store.deposit(0, 0, (0, 1), [(BOX, data(9.0))])
        fetched, exact = store.fetch(BOX, 0, frozenset({0}))
        assert exact and np.array_equal(fetched, data(9.0))
        assert store.has_box(BOX, frozenset({0}))

    def test_all_holders_dead_means_lost(self):
        store = BuddyStore()
        store.deposit(0, 0, (0, 1), [(BOX, data())])
        assert store.fetch(BOX, 0, frozenset({0, 1})) is None
        assert not store.has_box(BOX, frozenset({0, 1}))
        assert not store.has_box(OTHER, NOBODY)

    def test_fetch_is_c_contiguous_even_from_views(self):
        store = BuddyStore()
        view = np.arange(8, dtype=np.float64).reshape(4, 2).T  # permuted strides
        assert not view.flags["C_CONTIGUOUS"]
        store.deposit(0, 0, (0,), [(BOX, view)])
        fetched, _ = store.fetch(BOX, 0, NOBODY)
        assert fetched.flags["C_CONTIGUOUS"]
        assert np.array_equal(fetched, view)

    def test_clear(self):
        store = BuddyStore()
        store.deposit(0, 0, (0,), [(BOX, data())])
        store.clear()
        assert store.fetch(BOX, 0, NOBODY) is None


class TestSharedStore:
    def test_one_store_per_fabric(self):
        def fn(comm):
            store = shared_store(comm.fabric)
            ids = comm.allgather(id(store))
            assert len(set(ids)) == 1
            return True

        assert all(spmd(3, fn))
