"""ULFM primitives: revoke, fault-aware agreement, shrink re-ranking."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.mpisim import (
    TRANSPORT_PACKED,
    TRANSPORT_ZEROCOPY,
    CommunicatorError,
    ProcessFailedError,
    RankCrashError,
    RevokedError,
    run_spmd,
)
from tests.conftest import spmd

TRANSPORTS = [TRANSPORT_ZEROCOPY, TRANSPORT_PACKED]


def wait_for_deaths(comm, count, timeout=10.0):
    """Spin until the liveness table records ``count`` crashed ranks."""
    deadline = time.monotonic() + timeout
    while len(comm.fabric.dead_ranks()) < count:
        if time.monotonic() > deadline:
            raise AssertionError("victims never recorded as dead")
        time.sleep(0.005)


class TestRevoke:
    @pytest.mark.parametrize("mode", TRANSPORTS)
    def test_pending_and_future_ops_raise_typed(self, mode):
        def fn(comm):
            comm.transport = mode
            if comm.rank == 0:
                time.sleep(0.05)  # let peers block in the barrier first
                comm.revoke()
            with pytest.raises(RevokedError):
                comm.Barrier()
            return True

        assert all(spmd(3, fn))

    def test_revoke_cascades_to_derived_comms(self):
        def fn(comm):
            child = comm.Split(0, key=comm.rank)
            child.Barrier()
            if comm.rank == 0:
                comm.revoke()
            wait = time.monotonic() + 5.0
            while not child.revoked and time.monotonic() < wait:
                time.sleep(0.005)
            with pytest.raises(RevokedError):
                child.Barrier()
            return True

        assert all(spmd(3, fn))

    def test_agree_completes_on_revoked_comm(self):
        def fn(comm):
            comm.revoke()
            return comm.agree(comm.rank, combine=max)

        assert spmd(3, fn) == [2, 2, 2]


class TestAgree:
    def test_folds_all_live_contributions(self):
        def fn(comm):
            return comm.agree({comm.rank}, combine=lambda a, b: a | b)

        assert spmd(4, fn) == [{0, 1, 2, 3}] * 4

    def test_crashed_member_unblocks_survivors(self):
        def fn(comm):
            if comm.rank == 3:
                raise RankCrashError("scripted death before contributing")
            return comm.agree({comm.rank}, combine=lambda a, b: a | b)

        results = run_spmd(4, fn, resilient=True, deadlock_timeout=20.0)
        assert isinstance(results[3], RankCrashError)
        assert results[:3] == [{0, 1, 2}] * 3


class TestShrink:
    @pytest.mark.parametrize("mode", TRANSPORTS)
    def test_dense_renumbering_preserves_order(self, mode):
        def fn(comm):
            comm.transport = mode
            if comm.rank in (1, 3):
                raise RankCrashError("scripted death")
            new = comm.shrink(dead=frozenset({1, 3}))
            assert new.size == 3
            assert new.world_ranks == (0, 2, 4)
            assert new.world_rank_of(new.rank) == comm.rank
            # the shrunken comm is fully operational under this transport
            assert new.allgather(new.rank) == [0, 1, 2]
            total = np.zeros(1)
            new.Allreduce(np.array([float(new.rank)]), total)
            assert total[0] == 3.0
            return new.rank

        results = run_spmd(5, fn, resilient=True, deadlock_timeout=20.0)
        survivors = [r for r in results if not isinstance(r, RankCrashError)]
        assert survivors == [0, 1, 2]

    def test_internal_agreement_finds_the_dead(self):
        def fn(comm):
            if comm.rank == 2:
                raise RankCrashError("scripted death")
            wait_for_deaths(comm, 1)
            new = comm.shrink()
            return new.rank, new.world_ranks

        results = run_spmd(4, fn, resilient=True, deadlock_timeout=20.0)
        survivors = [r for r in results if not isinstance(r, RankCrashError)]
        assert [w for _, w in survivors] == [(0, 1, 3)] * 3
        assert [r for r, _ in survivors] == [0, 1, 2]

    def test_agreed_dead_rank_cannot_join(self):
        def fn(comm):
            if comm.rank == 1:
                with pytest.raises(CommunicatorError, match="failed set"):
                    comm.shrink(dead=frozenset({1}))
                return "refused"
            return comm.shrink(dead=frozenset({1})).size

        assert spmd(3, fn) == [2, "refused", 2]

    def test_ops_on_old_comm_fail_typed_after_death(self):
        def fn(comm):
            if comm.rank == 1:
                raise RankCrashError("scripted death")
            wait_for_deaths(comm, 1)
            with pytest.raises(ProcessFailedError, match="never respond"):
                comm.Recv(np.empty(1), source=1)
            return True

        results = run_spmd(3, fn, resilient=True, deadlock_timeout=20.0)
        assert results[0] is True and results[2] is True
