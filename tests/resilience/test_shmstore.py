"""ShmBuddyStore: buddy checkpoints that survive rank *processes*.

Unit tests pin the store semantics (same contract as the in-memory
``BuddyStore``: exact/stale fetch, holder liveness, supersede on
re-deposit, retain pruning) against real ``/dev/shm`` segments; the
end-to-end test runs crash recovery under the process executor, which is
exactly the case the shm backing exists for — a survivor restoring a dead
*process's* deposits.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.box import Box
from repro.mpisim.errors import RankCrashError
from repro.mpisim.executor import run_spmd
from repro.resilience import CheckpointPolicy, ResilientRedistributor, ShmBuddyStore


@pytest.fixture
def store():
    s = ShmBuddyStore(f"ddrtest{os.getpid()}")
    try:
        yield s
    finally:
        s.clear()


def _pair(value: float, rows: int = 2, cols: int = 3):
    box = Box((0, 0), (cols, rows))
    return box, np.full((rows, cols), value, dtype=np.float32)


class TestShmBuddyStore:
    def test_requires_prefix(self):
        with pytest.raises(ValueError):
            ShmBuddyStore("")

    def test_fetch_exact_epoch(self, store):
        box, arr = _pair(1.0)
        store.deposit(0, 1, holders=(1,), pairs=[(box, arr)])
        got = store.fetch(box, 1, dead=frozenset())
        assert got is not None
        data, exact = got
        assert exact and np.array_equal(data, arr)
        assert data.flags["C_CONTIGUOUS"]

    def test_fetch_falls_back_to_newest_older_epoch(self, store):
        box, old = _pair(1.0)
        _, older = _pair(0.5)
        store.deposit(0, 1, holders=(1,), pairs=[(box, older)])
        store.deposit(0, 2, holders=(1,), pairs=[(box, old)])
        data, exact = store.fetch(box, 5, dead=frozenset())
        assert not exact
        assert np.array_equal(data, old)  # newest epoch <= requested

    def test_fetch_ignores_future_epochs(self, store):
        box, arr = _pair(3.0)
        store.deposit(0, 7, holders=(1,), pairs=[(box, arr)])
        assert store.fetch(box, 3, dead=frozenset()) is None

    def test_all_holders_dead_means_unreadable(self, store):
        box, arr = _pair(2.0)
        store.deposit(0, 1, holders=(1, 2), pairs=[(box, arr)])
        assert store.fetch(box, 1, dead=frozenset({1, 2})) is None
        assert store.fetch(box, 1, dead=frozenset({1})) is not None
        assert store.has_box(box, dead=frozenset({1}))
        assert not store.has_box(box, dead=frozenset({1, 2}))

    def test_redeposit_supersedes(self, store):
        box, first = _pair(1.0)
        _, second = _pair(9.0)
        store.deposit(0, 1, holders=(1,), pairs=[(box, first)])
        store.deposit(0, 1, holders=(1,), pairs=[(box, second)])
        data, exact = store.fetch(box, 1, dead=frozenset())
        assert exact and np.array_equal(data, second)
        assert store.epochs_for(0) == (1,)

    def test_retain_prunes_old_epochs(self, store):
        box, arr = _pair(1.0)
        for epoch in (1, 2, 3, 4):
            store.deposit(0, epoch, holders=(1,), pairs=[(box, arr)], retain=2)
        assert store.epochs_for(0) == (3, 4)

    def test_deposit_copies(self, store):
        box, arr = _pair(5.0)
        store.deposit(0, 1, holders=(1,), pairs=[(box, arr)])
        arr[:] = -1.0  # caller mutates after deposit; store is unaffected
        data, _ = store.fetch(box, 1, dead=frozenset())
        assert np.all(data == 5.0)

    def test_survives_owner_tracking(self, store):
        # Segments live in /dev/shm under the prefix; clear() reaps them.
        box, arr = _pair(1.0)
        store.deposit(3, 2, holders=(0,), pairs=[(box, arr)])
        names = [n for n in os.listdir("/dev/shm") if n.startswith(store.prefix)]
        assert len(names) == 1
        store.clear()
        assert not [
            n for n in os.listdir("/dev/shm") if n.startswith(store.prefix)
        ]


# -- end to end: crash recovery across process boundaries ---------------------

SIDE = 24


def _slab(rank: int, n: int) -> Box:
    base, extra = divmod(SIDE, n)
    start = rank * base + min(rank, extra)
    rows = base + (1 if rank < extra else 0)
    return Box((0, start), (SIDE, rows))


def _field() -> np.ndarray:
    return np.arange(SIDE * SIDE, dtype=np.float32).reshape(SIDE, SIDE)


def _rows(box: Box) -> np.ndarray:
    return _field()[box.offset[1] : box.offset[1] + box.dims[1], :]


def _crash_worker(comm):
    own = _slab(comm.rank, comm.size)
    rr = ResilientRedistributor(
        comm, ndims=2, dtype=np.float32,
        policy=CheckpointPolicy(replicas=1, retain=2),
    )
    rr.setup(own=[own], need=own)
    data = _rows(own).copy()
    out = rr.gather_need(data)  # epoch 1: everyone healthy
    assert np.array_equal(out, _rows(own))
    if comm.rank == 2:
        raise RankCrashError("test: rank 2 killed")
    out = rr.gather_need(data)  # epoch 2: rank 2 dies; survivors recover
    assert np.array_equal(out, _rows(own))
    return {
        "rank": comm.rank,
        "recoveries": rr.recoveries,
        "adopted": len(rr.adopted_boxes),
        "stale": len(rr.stale_boxes),
        "store": type(rr.store).__name__,
    }


def test_process_executor_crash_recovery_uses_shm_store():
    """A forked rank dies; survivors restore its slab from /dev/shm.

    Under the process executor ``fabric.shared`` is per-process, so the
    in-memory BuddyStore could never serve a dead peer's deposits —
    ``shared_store`` must hand out the shm-backed twin, and recovery must
    complete bitwise.  Rank 2 died *before* depositing its epoch-2
    generation, so the adopter restores the epoch-1 checkpoint: exactly
    one adopted box, reported stale.
    """
    results = run_spmd(
        4, _crash_worker, resilient=True, executor="process",
        deadlock_timeout=20.0,
    )
    survivors = [r for r in results if isinstance(r, dict)]
    assert len(survivors) == 3
    assert all(r["store"] == "ShmBuddyStore" for r in survivors)
    assert all(r["recoveries"] == 1 for r in survivors)
    assert sum(r["adopted"] for r in survivors) == 1
    assert sum(r["stale"] for r in survivors) == 1


def test_thread_executor_keeps_inmemory_store():
    """No blackboard prefix (thread fabric) -> the in-memory BuddyStore."""

    def fn(comm):
        rr = ResilientRedistributor(comm, ndims=2, dtype=np.float32)
        own = _slab(comm.rank, comm.size)
        rr.setup(own=[own], need=own)
        rr.gather_need(_rows(own).copy())
        return type(rr.store).__name__

    results = run_spmd(2, fn, resilient=True, executor="thread")
    assert results == ["BuddyStore", "BuddyStore"]
