"""Plan persistence over a shrunken comm with non-contiguous world origins.

After two crashes a 6-rank world shrinks to survivors with world ranks
(0, 2, 3, 5).  The redistribution plan is computed in the *dense* shrunken
rank space, round-trips through JSON, and drives a real exchange on the
shrunken communicator — proving serialized plans are portable across a
recovery boundary where dense ranks no longer equal world ranks.
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    Box,
    DataDescriptor,
    attach_loaded_plan,
    compute_global_plan,
    load_plan,
    plan_from_dict,
    plan_to_dict,
    reorganize_data,
    save_plan,
)
from repro.mpisim import RankCrashError, run_spmd

DEAD = frozenset({1, 4})


def e1_plan():
    """The paper's E1 example over the four survivors."""
    owns = [[Box((0, r), (8, 1)), Box((0, r + 4), (8, 1))] for r in range(4)]
    needs = [Box((4 * (r % 2), 4 * (r // 2)), (4, 4)) for r in range(4)]
    return compute_global_plan(owns, needs, element_size=4)


def test_roundtripped_plan_runs_on_shrunken_comm(tmp_path):
    path = tmp_path / "plan.json"
    save_plan(path, e1_plan())

    def fn(comm):
        if comm.rank in DEAD:
            raise RankCrashError("scripted death")
        sub = comm.shrink(dead=DEAD)
        assert sub.world_ranks == (0, 2, 3, 5)  # non-contiguous origins
        plan = load_plan(path)
        desc = DataDescriptor.create(4, 2, np.float32)
        # the plan is indexed by the *dense* shrunken rank, not world rank
        attach_loaded_plan(desc, plan, sub.rank)
        g = np.arange(64, dtype=np.float32).reshape(8, 8)
        need = np.zeros((4, 4), dtype=np.float32)
        reorganize_data(
            sub, desc, [g[sub.rank].copy(), g[sub.rank + 4].copy()], need
        )
        r = sub.rank
        expect = g[4 * (r // 2) : 4 * (r // 2) + 4, 4 * (r % 2) : 4 * (r % 2) + 4]
        assert np.array_equal(need, expect)
        return sub.rank

    results = run_spmd(6, fn, resilient=True, deadlock_timeout=20.0)
    survivors = [r for r in results if not isinstance(r, RankCrashError)]
    assert survivors == [0, 1, 2, 3]


def test_dict_roundtrip_matches_over_survivor_plan():
    plan = e1_plan()
    restored = plan_from_dict(plan_to_dict(plan))
    assert restored.nprocs == plan.nprocs
    for a, b in zip(restored.rank_plans, plan.rank_plans):
        assert a.sends == b.sends
        assert a.recvs == b.recvs
