"""Crash recovery in ResilientRedistributor: replay, adoption, data loss."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Box
from repro.faults import FaultPlan, ReliabilityPolicy, fault_plan
from repro.mpisim import RankCrashError, run_spmd
from repro.resilience import CheckpointPolicy, DataLossError, ResilientRedistributor

NX, NY = 16, 8
NPROCS = 4
BACKENDS = ["alltoallw", "p2p", "auto"]
POLICY = ReliabilityPolicy(op_deadline_s=5.0)


def own_slab(rank):
    return Box((0, rank * 2), (NX, 2))


def need_column(rank):
    return Box((rank * 4, 0), (4, NY))


def reference():
    return np.arange(NX * NY, dtype=np.float64).reshape(NY, NX)


def extract(field, box):
    c0, r0 = box.offset
    w, h = box.dims
    return np.ascontiguousarray(field[r0 : r0 + h, c0 : c0 + w])


def exchange_worker(comm, backend, generations=3):
    """Three exchange generations, each verified against the reference.

    Regenerates data for every current own box (adopted boxes included),
    so a recovered run must be bitwise-equal unless a stale restore
    degraded it.
    """
    red = ResilientRedistributor(comm, ndims=2, dtype=np.float64, backend=backend)
    red.setup([own_slab(comm.rank)], need_column(comm.rank))
    ref = reference()
    for generation in range(1, generations + 1):
        buffers = [extract(ref, box) * generation for box in red.own_boxes]
        out = red.gather_need(buffers, fill=-1.0)
        if not red.stale_boxes:
            assert np.array_equal(out, extract(ref, need_column(comm.rank)) * generation)
    return red.recoveries, red.degraded, list(red.adopted_boxes)


class TestCrashMidExchange:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_recovery_is_bitwise_exact(self, backend):
        plan = FaultPlan(seed=0, nranks=NPROCS, crash_rank=2, crash_at_op=8)
        with fault_plan(plan, POLICY):
            results = run_spmd(
                NPROCS, exchange_worker, backend, resilient=True, deadlock_timeout=10.0
            )
        assert isinstance(results[2], RankCrashError)
        survivors = [r for r in results if not isinstance(r, RankCrashError)]
        assert len(survivors) == 3
        assert all(recoveries == 1 for recoveries, _, _ in survivors)
        # exact-epoch checkpoints existed for the replay: nothing degraded
        assert not any(degraded for _, degraded, _ in survivors)
        # exactly one survivor adopted the victim's slab
        adopted = [boxes for _, _, boxes in survivors if boxes]
        assert adopted == [[own_slab(2)]]


class TestCrashBetweenEpochs:
    def test_stale_restore_degrades_but_stays_correct(self):
        """A victim that never deposited the pending epoch forces a stale
        restore; with static per-epoch data the output is still correct,
        and the degradation is reported, not hidden."""

        def fn(comm):
            red = ResilientRedistributor(comm, ndims=2, dtype=np.float64)
            red.setup([own_slab(comm.rank)], need_column(comm.rank))
            ref = reference()
            out = red.gather_need([extract(ref, own_slab(comm.rank))], fill=-1.0)
            assert np.array_equal(out, extract(ref, need_column(comm.rank)))
            if comm.rank == 1:
                raise RankCrashError("scripted death between epochs")
            buffers = [extract(ref, box) for box in red.own_boxes]
            out = red.gather_need(buffers, fill=-1.0)
            # the victim's slab replayed from its previous-epoch deposit;
            # the data is static, so the values are still exact
            assert np.array_equal(out, extract(ref, need_column(comm.rank)))
            return red.degraded, list(red.stale_boxes)

        results = run_spmd(NPROCS, fn, resilient=True, deadlock_timeout=10.0)
        survivors = [r for r in results if not isinstance(r, RankCrashError)]
        # only the adopter performed the stale restore, and it reports it
        assert any(degraded for degraded, _ in survivors)
        assert [stale for _, stale in survivors if stale] == [[own_slab(1)]]


class TestDataLoss:
    def test_owner_and_buddy_both_dead_raises_typed(self):
        """With stride-1 single-replica buddies, killing a rank *and* its
        buddy destroys every copy of the first victim's slab."""

        def fn(comm):
            red = ResilientRedistributor(
                comm,
                ndims=2,
                dtype=np.float64,
                policy=CheckpointPolicy(stride=1, replicas=1),
            )
            red.setup([own_slab(comm.rank)], need_column(comm.rank))
            ref = reference()
            red.gather_need([extract(ref, own_slab(comm.rank))], fill=-1.0)
            if comm.rank in (1, 2):
                raise RankCrashError("scripted death")
            try:
                red.gather_need([extract(ref, b) for b in red.own_boxes], fill=-1.0)
            except DataLossError as exc:
                return list(exc.lost_boxes)
            return None

        results = run_spmd(NPROCS, fn, resilient=True, deadlock_timeout=10.0)
        survivors = [r for r in results if not isinstance(r, RankCrashError)]
        # rank 1's slab: holders {1, 2} both dead -> unrecoverable, named.
        # rank 2's slab: buddy 3 survived -> adopted, not lost.
        assert survivors == [[own_slab(1)], [own_slab(1)]]

    def test_setup_crash_raises_typed(self):
        """A death before any checkpoint exists cannot be recovered."""
        plan = FaultPlan(seed=0, nranks=NPROCS, crash_rank=1, crash_at_op=1)
        with fault_plan(plan, POLICY):

            def fn(comm):
                red = ResilientRedistributor(comm, ndims=2, dtype=np.float64)
                try:
                    red.setup([own_slab(comm.rank)], need_column(comm.rank))
                except DataLossError:
                    return "typed"
                return "ok"

            results = run_spmd(
                NPROCS, fn, resilient=True, deadlock_timeout=10.0
            )
        survivors = [r for r in results if not isinstance(r, RankCrashError)]
        assert survivors and all(r == "typed" for r in survivors)


class TestStats:
    def test_stats_expose_recovery_counters(self):
        def fn(comm):
            red = ResilientRedistributor(comm, ndims=2, dtype=np.float64)
            red.setup([own_slab(comm.rank)], need_column(comm.rank))
            ref = reference()
            red.gather_need([extract(ref, own_slab(comm.rank))], fill=-1.0)
            return red.stats()

        results = run_spmd(NPROCS, fn, deadlock_timeout=10.0)
        for stats in results:
            assert stats["recoveries"] == 0
            assert stats["epoch"] == 1
