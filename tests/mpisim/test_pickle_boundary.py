"""Pickle round-trips for every object that may cross the fork boundary.

The process executor ships control-plane objects to children (``FaultPlan``,
``ReliabilityPolicy`` inside ``_ProcCfg``) and back to the parent
(``SpanRecord`` lists, exceptions), and user workloads routinely close over
geometry/schedule objects.  Anything here breaking pickling would die
silently in a queue feeder thread, so lock the contract down explicitly.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core import Box, compute_global_plan, global_schedules
from repro.faults import FaultPlan
from repro.faults.policy import ReliabilityPolicy
from repro.mpisim import FLOAT, SubarrayType
from repro.mpisim.shm import ShmTicket
from repro.obs.tracer import SpanRecord
from repro.resilience import CheckpointPolicy


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


class TestGeometry:
    def test_box(self):
        box = Box((3, 5), (8, 16))
        back = roundtrip(box)
        assert back == box
        assert back.offset == (3, 5) and back.dims == (8, 16)

    def test_exchange_schedule(self):
        nprocs, side = 4, 64
        rows = side // nprocs
        plan = compute_global_plan(
            [[Box((0, r * rows), (side, rows))] for r in range(nprocs)],
            [Box((r * rows, 0), (rows, side)) for r in range(nprocs)],
            element_size=4,
        )
        for sched in global_schedules(plan):
            back = roundtrip(sched)
            assert back.rank == sched.rank
            assert back.nrounds == sched.nrounds
            assert back.total_bytes_out == sched.total_bytes_out
            assert back.engine_choices() == sched.engine_choices()

    def test_subarray_type_packs_identically(self):
        datatype = SubarrayType(FLOAT, (16, 16), (4, 8), (2, 3))
        back = roundtrip(datatype)
        buf = np.arange(256, dtype=np.float32).reshape(16, 16)
        np.testing.assert_array_equal(back.pack(buf), datatype.pack(buf))


class TestPolicies:
    def test_fault_plan(self):
        plan = FaultPlan(
            seed=42, nranks=4, ops=64, p_delay=0.25, p_drop=0.05,
            crash_rank=2, crash_at_op=10,
        )
        back = roundtrip(plan)
        assert back.seed == 42 and back.nranks == 4
        assert back.crash_rank == 2 and back.crash_at_op == 10
        assert back.p_delay == plan.p_delay

    def test_fault_plan_random(self):
        back = roundtrip(FaultPlan.random(seed=9, nranks=3, ops=32))
        assert back.nranks == 3

    def test_checkpoint_policy(self):
        policy = CheckpointPolicy(stride=2, replicas=2, retain=None)
        back = roundtrip(policy)
        assert back == policy

    def test_reliability_policy(self):
        policy = ReliabilityPolicy(max_retries=5, op_deadline_s=1.5)
        back = roundtrip(policy)
        assert back.max_retries == 5
        assert back.op_deadline_s == 1.5
        assert back.backoff_s(2) == policy.backoff_s(2)


class TestObservability:
    def test_span_record(self):
        span = SpanRecord(
            name="mpi.Alltoallw", rank=3, tid=140, start_us=10.5, dur_us=99.0,
            attrs={"bytes": 4096},
        )
        back = roundtrip(span)
        assert back == span
        assert back.category == "mpi"


class TestShmTicket:
    def test_ticket_drops_segment_handle(self):
        """The creator-side segment reference must never cross the pickle
        boundary — the receiver attaches by name instead."""

        class Boom:
            def __reduce__(self):
                raise AssertionError("segment handle crossed the boundary")

        ticket = ShmTicket("ddr_test_1", "float32", 100, segment=Boom())
        back = roundtrip(ticket)
        assert back.name == "ddr_test_1"
        assert back.dtype == "float32"
        assert back.count == 100
        assert back.nbytes == 400
        assert back._segment is None

    def test_detached_ticket_complete_is_noop(self):
        back = roundtrip(ShmTicket("ddr_test_2", "int64", 8))
        back.complete()  # no segment attached: must not raise


class TestExceptions:
    def test_rank_failure_chain(self):
        from repro.mpisim import RankFailure

        err = roundtrip(RankFailure(2, ValueError("boom")))
        assert err.rank == 2
        assert isinstance(err.original, ValueError)

    def test_process_failed_error(self):
        from repro.mpisim.errors import ProcessFailedError

        err = roundtrip(ProcessFailedError("rank 1 (pid 99) exited with code 3"))
        assert "pid 99" in str(err)


@pytest.mark.parametrize("protocol", [2, pickle.HIGHEST_PROTOCOL])
def test_box_all_protocols(protocol):
    box = Box((0, 1, 2), (3, 4, 5))
    assert pickle.loads(pickle.dumps(box, protocol)) == box
