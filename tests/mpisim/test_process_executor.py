"""Process executor: real-OS-process ranks, shm transport, failure modes."""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.mpisim import (
    CommunicatorError,
    RankCrashError,
    RankFailure,
    SpmdHangError,
    TRANSPORT_PACKED,
    TRANSPORT_SHM,
    TRANSPORT_ZEROCOPY,
    default_executor,
    run_spmd,
)
from repro.mpisim.errors import ProcessFailedError

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="process executor needs fork"
)


def pspmd(nprocs, fn, *args, **kwargs):
    kwargs.setdefault("deadlock_timeout", 20.0)
    kwargs.setdefault("executor", "process")
    return run_spmd(nprocs, fn, *args, **kwargs)


class TestBasics:
    def test_results_in_rank_order(self):
        assert pspmd(4, lambda comm: comm.rank * 2) == [0, 2, 4, 6]

    def test_ranks_are_separate_processes(self):
        pids = pspmd(3, lambda comm: os.getpid())
        assert len(set(pids)) == 3
        assert os.getpid() not in pids

    def test_args_kwargs_forwarded(self):
        def fn(comm, a, b=0):
            return a + b + comm.rank

        assert pspmd(3, fn, 10, b=5) == [15, 16, 17]

    def test_point_to_point(self):
        def fn(comm):
            other = 1 - comm.rank
            comm.Send(np.array([float(comm.rank)], dtype=np.float64), dest=other)
            buf = np.zeros(1)
            comm.Recv(buf, source=other)
            return buf[0]

        assert pspmd(2, fn) == [1.0, 0.0]

    def test_collectives(self):
        def fn(comm):
            total = comm.allreduce(comm.rank + 1)
            root_val = comm.bcast(comm.rank * 10 if comm.rank == 0 else None, root=0)
            return (total, root_val)

        assert pspmd(4, fn) == [(10, 0)] * 4

    def test_alltoallw_large_payload(self):
        """Above SHM_MIN_BYTES the lanes ride shared-memory tickets."""
        from repro.mpisim import FLOAT, SubarrayType

        n = 256

        def fn(comm):
            size = comm.size
            send = np.full((n, n), comm.rank, dtype=np.float32)
            recv = np.zeros((n, n), dtype=np.float32)
            rows = n // size
            stypes = [
                SubarrayType(FLOAT, (n, n), (rows, n), (d * rows, 0))
                for d in range(size)
            ]
            rtypes = [
                SubarrayType(FLOAT, (n, n), (rows, n), (s * rows, 0))
                for s in range(size)
            ]
            comm.Alltoallw(send, stypes, recv, rtypes)
            expect = np.repeat(np.arange(size, dtype=np.float32), rows)[:, None]
            return bool((recv == expect).all())

        assert all(pspmd(4, fn))

    def test_redistributor_end_to_end(self):
        from repro.core import Box, Redistributor

        def fn(comm):
            rank, size = comm.rank, comm.size
            n = 128
            rows = n // size
            red = Redistributor(comm, ndims=2, dtype=np.float32)
            red.setup(
                own=[Box((0, rank * rows), (n, rows))],
                need=Box((0, (size - 1 - rank) * rows), (n, rows)),
            )
            data = np.full((rows, n), rank, dtype=np.float32)
            out = np.empty((rows, n), dtype=np.float32)
            red.exchange([data], out)
            return bool((out == size - 1 - rank).all())

        assert all(pspmd(4, fn))


class TestTransports:
    def test_zerocopy_degrades_to_shm(self):
        """Live-buffer rendezvous cannot cross address spaces."""

        def fn(comm):
            return comm.resolve_transport(TRANSPORT_ZEROCOPY)

        assert pspmd(2, fn) == [TRANSPORT_SHM, TRANSPORT_SHM]

    def test_packed_stays_packed(self):
        def fn(comm):
            return comm.resolve_transport(TRANSPORT_PACKED)

        assert pspmd(2, fn) == [TRANSPORT_PACKED, TRANSPORT_PACKED]

    def test_no_shm_leak_after_clean_run(self):
        from repro.mpisim import FLOAT, SubarrayType

        def fn(comm):
            n = 256
            send = np.zeros((n, n), dtype=np.float32)
            recv = np.zeros((n, n), dtype=np.float32)
            rows = n // comm.size
            types = [
                SubarrayType(FLOAT, (n, n), (rows, n), (d * rows, 0))
                for d in range(comm.size)
            ]
            comm.Alltoallw(send, types, recv, list(types))
            return True

        before = set(os.listdir("/dev/shm")) if os.path.isdir("/dev/shm") else set()
        assert all(pspmd(2, fn))
        after = set(os.listdir("/dev/shm")) if os.path.isdir("/dev/shm") else set()
        leaked = {n for n in after - before if n.startswith("ddr")}
        assert not leaked, f"leaked shm segments: {leaked}"


class TestFailures:
    def test_exception_propagates_with_rank(self):
        def fn(comm):
            if comm.rank == 2:
                raise ValueError("boom")
            return comm.rank

        with pytest.raises(RankFailure) as excinfo:
            pspmd(4, fn)
        assert excinfo.value.rank == 2
        assert isinstance(excinfo.value.original, ValueError)

    def test_failure_aborts_blocked_peers(self):
        def fn(comm):
            if comm.rank == 0:
                comm.Recv(np.zeros(1), source=1)  # never satisfied
            else:
                raise RuntimeError("dead rank")

        with pytest.raises(RankFailure) as excinfo:
            pspmd(2, fn)
        assert excinfo.value.rank == 1

    def test_resilient_crash_keeps_survivors(self):
        def fn(comm):
            if comm.rank == 2:
                raise RankCrashError("scripted death")
            return comm.rank

        results = pspmd(4, fn, resilient=True)
        assert isinstance(results[2], RankCrashError)
        assert [results[r] for r in (0, 1, 3)] == [0, 1, 3]

    def test_hard_death_reports_pid_and_exitcode(self):
        """os._exit skips the result envelope entirely: the parent must
        synthesize a typed ProcessFailedError, not hang."""

        def fn(comm):
            if comm.rank == 1:
                os._exit(3)
            time.sleep(0.2)
            return comm.rank

        with pytest.raises(RankFailure) as excinfo:
            pspmd(2, fn)
        original = excinfo.value.original
        assert isinstance(original, ProcessFailedError)
        assert "rank 1" in str(original)
        assert "code 3" in str(original)
        assert "pid" in str(original)

    def test_resilient_hard_death_fills_slot(self):
        def fn(comm):
            if comm.rank == 1:
                os._exit(9)
            time.sleep(0.2)
            return comm.rank

        results = pspmd(3, fn, resilient=True)
        assert isinstance(results[1], ProcessFailedError)
        assert results[0] == 0 and results[2] == 2

    def test_hang_reports_executor_and_pids(self):
        def fn(comm):
            if comm.rank == 1:
                time.sleep(30.0)  # wedged outside any fabric call
            return comm.rank

        start = time.monotonic()
        with pytest.raises(SpmdHangError) as excinfo:
            pspmd(2, fn, deadlock_timeout=0.2, join_timeout=1.0)
        assert time.monotonic() - start < 20.0  # terminated, not slept out
        err = excinfo.value
        assert err.stuck_ranks == [1]
        assert err.executor == "process"
        assert err.pids[1] is not None
        assert "process executor" in str(err)
        assert f"pid {err.pids[1]}" in str(err)


class TestSelection:
    def test_invalid_executor_rejected(self):
        with pytest.raises(CommunicatorError):
            run_spmd(2, lambda comm: comm.rank, executor="fiber")

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("DDR_EXECUTOR", "process")
        assert default_executor() == "process"
        pids = run_spmd(2, lambda comm: os.getpid(), deadlock_timeout=20.0)
        assert os.getpid() not in pids

    def test_explicit_thread_overrides_env(self, monkeypatch):
        monkeypatch.setenv("DDR_EXECUTOR", "process")
        pids = run_spmd(
            2, lambda comm: os.getpid(), executor="thread", deadlock_timeout=20.0
        )
        assert pids == [os.getpid()] * 2


class TestObservability:
    def test_trace_spans_merge_across_processes(self):
        from repro.obs import tracing

        def fn(comm):
            from repro.obs import TRACER

            with TRACER.span("user.work"):
                comm.Barrier()
            return comm.rank

        with tracing() as tracer:
            pspmd(3, fn)
        records = tracer.records()
        user = [r for r in records if r.name == "user.work"]
        assert sorted(r.rank for r in user) == [0, 1, 2]

    def test_fault_stats_merge(self):
        from repro.faults import FaultPlan, fault_plan
        from repro.faults.injector import FAULTS

        def fn(comm):
            other = 1 - comm.rank
            buf = np.zeros(4)
            for _ in range(5):
                comm.Sendrecv(
                    np.full(4, float(comm.rank)), other, recvbuf=buf, source=other
                )
            return True

        plan = FaultPlan(seed=7, nranks=2, p_delay=0.9, delay_max_s=0.001)
        with fault_plan(plan):
            assert all(pspmd(2, fn))
            stats = FAULTS.stats.snapshot()
        assert stats.get("delays", 0) > 0
