"""Point-to-point semantics of the in-process MPI runtime."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpisim import (
    ANY_SOURCE,
    ANY_TAG,
    CommunicatorError,
    FLOAT,
    TruncationError,
)
from tests.conftest import spmd


class TestSendRecv:
    def test_basic_roundtrip(self):
        def fn(comm):
            if comm.rank == 0:
                comm.Send(np.arange(10, dtype=np.float64), dest=1, tag=3)
            elif comm.rank == 1:
                buf = np.zeros(10)
                status = comm.Recv(buf, source=0, tag=3)
                assert status.source == 0 and status.tag == 3
                assert buf.tolist() == list(range(10))
            return comm.rank

        assert spmd(2, fn) == [0, 1]

    def test_send_copies_buffer(self):
        """Mutating the send buffer after Send must not affect the receiver."""

        def fn(comm):
            if comm.rank == 0:
                data = np.ones(4)
                comm.Send(data, dest=1)
                data[:] = 99.0
                comm.Barrier()
            else:
                comm.Barrier()
                buf = np.zeros(4)
                comm.Recv(buf, source=0)
                assert buf.tolist() == [1, 1, 1, 1]

        spmd(2, fn)

    def test_tag_matching_out_of_order(self):
        """A receive for tag B must skip an earlier tag-A message."""

        def fn(comm):
            if comm.rank == 0:
                comm.Send(np.array([1.0]), dest=1, tag=10)
                comm.Send(np.array([2.0]), dest=1, tag=20)
            else:
                buf = np.zeros(1)
                comm.Recv(buf, source=0, tag=20)
                assert buf[0] == 2.0
                comm.Recv(buf, source=0, tag=10)
                assert buf[0] == 1.0

        spmd(2, fn)

    def test_fifo_per_source_tag(self):
        def fn(comm):
            if comm.rank == 0:
                for i in range(5):
                    comm.Send(np.array([float(i)]), dest=1, tag=0)
            else:
                buf = np.zeros(1)
                for i in range(5):
                    comm.Recv(buf, source=0, tag=0)
                    assert buf[0] == float(i)

        spmd(2, fn)

    def test_any_source_any_tag(self):
        def fn(comm):
            if comm.rank == 2:
                got = set()
                buf = np.zeros(1)
                for _ in range(2):
                    status = comm.Recv(buf, source=ANY_SOURCE, tag=ANY_TAG)
                    got.add((status.source, int(buf[0])))
                assert got == {(0, 100), (1, 101)}
            else:
                comm.Send(np.array([100.0 + comm.rank]), dest=2, tag=comm.rank)

        spmd(3, fn)

    def test_truncation_raises(self):
        def fn(comm):
            if comm.rank == 0:
                comm.Send(np.zeros(10), dest=1)
            else:
                with pytest.raises(TruncationError):
                    comm.Recv(np.zeros(3), source=0)

        spmd(2, fn)

    def test_invalid_dest_raises(self):
        def fn(comm):
            if comm.rank == 0:
                with pytest.raises(CommunicatorError):
                    comm.Send(np.zeros(1), dest=5)

        spmd(2, fn)

    def test_negative_user_tag_rejected(self):
        def fn(comm):
            if comm.rank == 0:
                with pytest.raises(CommunicatorError):
                    comm.Send(np.zeros(1), dest=1, tag=-3)

        spmd(2, fn)

    def test_datatype_send_recv(self):
        """Send a 2x2 corner of a 4x4 via subarray types on both ends."""

        def fn(comm):
            t_src = FLOAT.Create_subarray((4, 4), (2, 2), (0, 0))
            t_dst = FLOAT.Create_subarray((4, 4), (2, 2), (2, 2))
            if comm.rank == 0:
                grid = np.arange(16, dtype=np.float32)
                comm.Send(grid, dest=1, datatype=t_src)
            else:
                out = np.zeros(16, dtype=np.float32)
                comm.Recv(out, source=0, datatype=t_dst)
                assert out.reshape(4, 4)[2:, 2:].tolist() == [[0, 1], [4, 5]]

        spmd(2, fn)


class TestNonblocking:
    def test_isend_completes_immediately(self):
        def fn(comm):
            if comm.rank == 0:
                req = comm.Isend(np.array([3.0]), dest=1)
                assert req.test()
                req.wait()
            else:
                buf = np.zeros(1)
                comm.Recv(buf, source=0)
                assert buf[0] == 3.0

        spmd(2, fn)

    def test_irecv_wait(self):
        def fn(comm):
            if comm.rank == 0:
                comm.Send(np.array([5.0]), dest=1, tag=9)
            else:
                buf = np.zeros(1)
                req = comm.Irecv(buf, source=0, tag=9)
                status = req.wait()
                assert buf[0] == 5.0 and status.tag == 9

        spmd(2, fn)

    def test_irecv_test_then_wait(self):
        def fn(comm):
            if comm.rank == 0:
                comm.Send(np.array([8.0]), dest=1, tag=1)
                comm.Barrier()
            else:
                buf = np.zeros(1)
                req = comm.Irecv(buf, source=0, tag=1)
                comm.Barrier()  # guarantees the message has been posted
                assert req.test()
                req.wait()
                assert buf[0] == 8.0

        spmd(2, fn)

    def test_iprobe(self):
        def fn(comm):
            if comm.rank == 0:
                comm.Send(np.array([1.0]), dest=1, tag=4)
                comm.Barrier()
            else:
                comm.Barrier()
                assert comm.Iprobe(source=0, tag=4)
                assert not comm.Iprobe(source=0, tag=5)
                buf = np.zeros(1)
                comm.Recv(buf, source=0, tag=4)  # message still there
                assert buf[0] == 1.0

        spmd(2, fn)

    def test_sendrecv(self):
        """Ring shift: each rank passes its value right."""

        def fn(comm):
            size, rank = comm.size, comm.rank
            out = np.array([float(rank)])
            buf = np.zeros(1)
            comm.Sendrecv(out, (rank + 1) % size, buf, (rank - 1) % size)
            assert buf[0] == float((rank - 1) % size)

        spmd(4, fn)


class TestObjectApi:
    def test_send_recv_objects(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send({"cfg": [1, 2, 3]}, dest=1, tag=2)
            else:
                obj = comm.recv(source=0, tag=2)
                assert obj == {"cfg": [1, 2, 3]}

        spmd(2, fn)

    def test_objects_are_isolated(self):
        """Receiver mutations must not leak back into sender state."""

        def fn(comm):
            if comm.rank == 0:
                payload = {"xs": [1]}
                comm.send(payload, dest=1)
                comm.Barrier()
                assert payload == {"xs": [1]}
            else:
                got = comm.recv(source=0)
                got["xs"].append(99)
                comm.Barrier()

        spmd(2, fn)
