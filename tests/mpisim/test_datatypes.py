"""Unit + property tests for MPI-like derived datatypes."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpisim import (
    BYTE,
    ContiguousType,
    DOUBLE,
    DatatypeError,
    FLOAT,
    INT,
    NamedType,
    SubarrayType,
    VectorType,
    named_type_for,
)


class TestNamedTypes:
    def test_constants_map_to_numpy(self):
        assert FLOAT.dtype == np.float32
        assert DOUBLE.dtype == np.float64
        assert INT.dtype == np.int32
        assert BYTE.dtype == np.uint8

    def test_get_size(self):
        assert FLOAT.Get_size() == 4
        assert DOUBLE.Get_size() == 8

    def test_named_type_for_roundtrip(self):
        assert named_type_for(np.float32) is FLOAT
        assert named_type_for("float64") is DOUBLE

    def test_named_type_for_novel_dtype(self):
        t = named_type_for(np.complex128)
        assert t.dtype == np.complex128
        assert named_type_for(np.complex128) is t  # cached

    def test_pack_unpack_single(self):
        buf = np.array([1.5, 2.5], dtype=np.float32)
        out = FLOAT.pack(buf)
        assert out.tolist() == [1.5]
        FLOAT.unpack(buf, np.array([9.0], dtype=np.float32))
        assert buf[0] == 9.0


class TestContiguous:
    def test_pack(self):
        t = FLOAT.Create_contiguous(3)
        buf = np.arange(5, dtype=np.float32)
        assert t.pack(buf).tolist() == [0, 1, 2]

    def test_unpack(self):
        t = FLOAT.Create_contiguous(2)
        buf = np.zeros(4, dtype=np.float32)
        t.unpack(buf, np.array([7, 8], dtype=np.float32))
        assert buf.tolist() == [7, 8, 0, 0]

    def test_size(self):
        assert FLOAT.Create_contiguous(6).size_bytes() == 24

    def test_buffer_too_small(self):
        t = FLOAT.Create_contiguous(10)
        with pytest.raises(DatatypeError):
            t.pack(np.zeros(3, dtype=np.float32))

    def test_negative_count_rejected(self):
        with pytest.raises(DatatypeError):
            ContiguousType(FLOAT, -1)

    def test_dtype_mismatch_rejected(self):
        t = FLOAT.Create_contiguous(2)
        with pytest.raises(DatatypeError):
            t.pack(np.zeros(4, dtype=np.float64))


class TestVector:
    def test_pack_strided(self):
        # 3 blocks of 2 elements, stride 4: indices 0,1,4,5,8,9
        t = INT.Create_vector(3, 2, 4)
        buf = np.arange(12, dtype=np.int32)
        assert t.pack(buf).tolist() == [0, 1, 4, 5, 8, 9]

    def test_unpack_strided(self):
        t = INT.Create_vector(2, 1, 3)
        buf = np.zeros(4, dtype=np.int32)
        t.unpack(buf, np.array([5, 6], dtype=np.int32))
        assert buf.tolist() == [5, 0, 0, 6]

    def test_roundtrip(self):
        t = DOUBLE.Create_vector(4, 3, 5)
        src = np.arange(20, dtype=np.float64)
        dst = np.zeros(20, dtype=np.float64)
        t.unpack(dst, t.pack(src))
        assert t.pack(dst).tolist() == t.pack(src).tolist()

    def test_extent_check(self):
        t = INT.Create_vector(3, 2, 4)  # extent = 2*4 + 2 = 10
        with pytest.raises(DatatypeError):
            t.pack(np.zeros(9, dtype=np.int32))
        t.pack(np.zeros(10, dtype=np.int32))  # exactly enough


class TestSubarray:
    def test_2d_block(self):
        t = FLOAT.Create_subarray((4, 4), (2, 2), (1, 1))
        buf = np.arange(16, dtype=np.float32)
        assert t.pack(buf).tolist() == [5, 6, 9, 10]

    def test_3d_block(self):
        t = INT.Create_subarray((2, 3, 4), (1, 2, 2), (1, 0, 1))
        buf = np.arange(24, dtype=np.int32)
        grid = buf.reshape(2, 3, 4)
        expect = grid[1:2, 0:2, 1:3].reshape(-1)
        assert t.pack(buf).tolist() == expect.tolist()

    def test_unpack_writes_only_block(self):
        t = FLOAT.Create_subarray((3, 3), (2, 1), (0, 2))
        buf = np.zeros(9, dtype=np.float32)
        t.unpack(buf, np.array([1, 2], dtype=np.float32))
        assert buf.reshape(3, 3)[:, 2].tolist() == [1, 2, 0]
        assert buf.reshape(3, 3)[:, :2].sum() == 0

    def test_geometry_validation(self):
        with pytest.raises(DatatypeError):
            SubarrayType(FLOAT, (4, 4), (2, 2), (3, 0))  # start+sub > full
        with pytest.raises(DatatypeError):
            SubarrayType(FLOAT, (4,), (2, 2), (0, 0))  # rank mismatch
        with pytest.raises(DatatypeError):
            SubarrayType(FLOAT, (4,), (-1,), (0,))
        with pytest.raises(DatatypeError):
            SubarrayType(FLOAT, (4, 4), (2, 2), (0, 0), order="F")

    def test_commit_free_are_noops(self):
        t = SubarrayType(FLOAT, (4,), (2,), (1,))
        assert t.Commit() is t
        t.Free()

    @given(
        sizes=st.tuples(*[st.integers(1, 8)] * 3),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_roundtrip(self, sizes, data):
        """unpack(pack(x)) restores the selected region exactly and leaves
        the rest of the destination untouched."""
        subsizes = tuple(data.draw(st.integers(1, s)) for s in sizes)
        starts = tuple(
            data.draw(st.integers(0, s - sub)) for s, sub in zip(sizes, subsizes)
        )
        t = DOUBLE.Create_subarray(sizes, subsizes, starts)
        n = int(np.prod(sizes))
        src = np.arange(n, dtype=np.float64)
        dst = np.full(n, -1.0)
        t.unpack(dst, t.pack(src))
        grid_s = src.reshape(sizes)
        grid_d = dst.reshape(sizes)
        sl = tuple(slice(o, o + s) for o, s in zip(starts, subsizes))
        assert np.array_equal(grid_d[sl], grid_s[sl])
        untouched = np.full(n, -1.0).reshape(sizes)
        untouched[sl] = grid_s[sl]
        assert np.array_equal(grid_d, untouched)
