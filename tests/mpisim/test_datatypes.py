"""Unit + property tests for MPI-like derived datatypes."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpisim import (
    BYTE,
    ContiguousType,
    DOUBLE,
    DatatypeError,
    FLOAT,
    INT,
    NamedType,
    SubarrayType,
    VectorType,
    named_type_for,
)


class TestNamedTypes:
    def test_constants_map_to_numpy(self):
        assert FLOAT.dtype == np.float32
        assert DOUBLE.dtype == np.float64
        assert INT.dtype == np.int32
        assert BYTE.dtype == np.uint8

    def test_get_size(self):
        assert FLOAT.Get_size() == 4
        assert DOUBLE.Get_size() == 8

    def test_named_type_for_roundtrip(self):
        assert named_type_for(np.float32) is FLOAT
        assert named_type_for("float64") is DOUBLE

    def test_named_type_for_novel_dtype(self):
        t = named_type_for(np.complex128)
        assert t.dtype == np.complex128
        assert named_type_for(np.complex128) is t  # cached

    def test_pack_unpack_single(self):
        buf = np.array([1.5, 2.5], dtype=np.float32)
        out = FLOAT.pack(buf)
        assert out.tolist() == [1.5]
        FLOAT.unpack(buf, np.array([9.0], dtype=np.float32))
        assert buf[0] == 9.0


class TestContiguous:
    def test_pack(self):
        t = FLOAT.Create_contiguous(3)
        buf = np.arange(5, dtype=np.float32)
        assert t.pack(buf).tolist() == [0, 1, 2]

    def test_unpack(self):
        t = FLOAT.Create_contiguous(2)
        buf = np.zeros(4, dtype=np.float32)
        t.unpack(buf, np.array([7, 8], dtype=np.float32))
        assert buf.tolist() == [7, 8, 0, 0]

    def test_size(self):
        assert FLOAT.Create_contiguous(6).size_bytes() == 24

    def test_buffer_too_small(self):
        t = FLOAT.Create_contiguous(10)
        with pytest.raises(DatatypeError):
            t.pack(np.zeros(3, dtype=np.float32))

    def test_negative_count_rejected(self):
        with pytest.raises(DatatypeError):
            ContiguousType(FLOAT, -1)

    def test_dtype_mismatch_rejected(self):
        t = FLOAT.Create_contiguous(2)
        with pytest.raises(DatatypeError):
            t.pack(np.zeros(4, dtype=np.float64))


class TestVector:
    def test_pack_strided(self):
        # 3 blocks of 2 elements, stride 4: indices 0,1,4,5,8,9
        t = INT.Create_vector(3, 2, 4)
        buf = np.arange(12, dtype=np.int32)
        assert t.pack(buf).tolist() == [0, 1, 4, 5, 8, 9]

    def test_unpack_strided(self):
        t = INT.Create_vector(2, 1, 3)
        buf = np.zeros(4, dtype=np.int32)
        t.unpack(buf, np.array([5, 6], dtype=np.int32))
        assert buf.tolist() == [5, 0, 0, 6]

    def test_roundtrip(self):
        t = DOUBLE.Create_vector(4, 3, 5)
        src = np.arange(20, dtype=np.float64)
        dst = np.zeros(20, dtype=np.float64)
        t.unpack(dst, t.pack(src))
        assert t.pack(dst).tolist() == t.pack(src).tolist()

    def test_extent_check(self):
        t = INT.Create_vector(3, 2, 4)  # extent = 2*4 + 2 = 10
        with pytest.raises(DatatypeError):
            t.pack(np.zeros(9, dtype=np.int32))
        t.pack(np.zeros(10, dtype=np.int32))  # exactly enough


class TestSubarray:
    def test_2d_block(self):
        t = FLOAT.Create_subarray((4, 4), (2, 2), (1, 1))
        buf = np.arange(16, dtype=np.float32)
        assert t.pack(buf).tolist() == [5, 6, 9, 10]

    def test_3d_block(self):
        t = INT.Create_subarray((2, 3, 4), (1, 2, 2), (1, 0, 1))
        buf = np.arange(24, dtype=np.int32)
        grid = buf.reshape(2, 3, 4)
        expect = grid[1:2, 0:2, 1:3].reshape(-1)
        assert t.pack(buf).tolist() == expect.tolist()

    def test_unpack_writes_only_block(self):
        t = FLOAT.Create_subarray((3, 3), (2, 1), (0, 2))
        buf = np.zeros(9, dtype=np.float32)
        t.unpack(buf, np.array([1, 2], dtype=np.float32))
        assert buf.reshape(3, 3)[:, 2].tolist() == [1, 2, 0]
        assert buf.reshape(3, 3)[:, :2].sum() == 0

    def test_geometry_validation(self):
        with pytest.raises(DatatypeError):
            SubarrayType(FLOAT, (4, 4), (2, 2), (3, 0))  # start+sub > full
        with pytest.raises(DatatypeError):
            SubarrayType(FLOAT, (4,), (2, 2), (0, 0))  # rank mismatch
        with pytest.raises(DatatypeError):
            SubarrayType(FLOAT, (4,), (-1,), (0,))
        with pytest.raises(DatatypeError):
            SubarrayType(FLOAT, (4, 4), (2, 2), (0, 0), order="F")

    def test_commit_free_are_noops(self):
        t = SubarrayType(FLOAT, (4,), (2,), (1,))
        assert t.Commit() is t
        t.Free()

    @given(
        sizes=st.tuples(*[st.integers(1, 8)] * 3),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_roundtrip(self, sizes, data):
        """unpack(pack(x)) restores the selected region exactly and leaves
        the rest of the destination untouched."""
        subsizes = tuple(data.draw(st.integers(1, s)) for s in sizes)
        starts = tuple(
            data.draw(st.integers(0, s - sub)) for s, sub in zip(sizes, subsizes)
        )
        t = DOUBLE.Create_subarray(sizes, subsizes, starts)
        n = int(np.prod(sizes))
        src = np.arange(n, dtype=np.float64)
        dst = np.full(n, -1.0)
        t.unpack(dst, t.pack(src))
        grid_s = src.reshape(sizes)
        grid_d = dst.reshape(sizes)
        sl = tuple(slice(o, o + s) for o, s in zip(starts, subsizes))
        assert np.array_equal(grid_d[sl], grid_s[sl])
        untouched = np.full(n, -1.0).reshape(sizes)
        untouched[sl] = grid_s[sl]
        assert np.array_equal(grid_d, untouched)


class TestViewProtocol:
    """``view``/``copy_into``: the zero-copy transport's datatype contract."""

    def test_named_and_contiguous_views_share_memory(self):
        buf = np.arange(6, dtype=np.float32)
        assert FLOAT.is_contiguous()
        v = FLOAT.view(buf)
        assert v.size == 1 and np.shares_memory(v, buf)
        t = FLOAT.Create_contiguous(4)
        assert t.is_contiguous()
        v = t.view(buf)
        assert v.size == 4 and np.shares_memory(v, buf)
        v[0] = 99.0
        assert buf[0] == 99.0

    def test_vector_strided_view(self):
        t = INT.Create_vector(3, 2, 4)
        buf = np.arange(13, dtype=np.int32)  # one past the 12-element extent
        assert not t.is_contiguous()
        v = t.view(buf)
        assert v is not None and np.shares_memory(v, buf)
        assert v.reshape(-1).tolist() == t.pack(buf).tolist()

    def test_vector_view_unexpressible_cases(self):
        # Buffer ending exactly at the extent: the (count, stride) reshape
        # would read past the end, so no view — pack still works.
        t = INT.Create_vector(3, 2, 4)
        exact = np.arange(10, dtype=np.int32)
        assert t.view(exact) is None
        assert t.pack(exact).tolist() == [0, 1, 4, 5, 8, 9]
        # Overlapping blocks can never be a basic-slicing view.
        o = VectorType(INT, 2, 3, 1)
        buf = np.arange(8, dtype=np.int32)
        assert o.view(buf) is None
        assert o.pack(buf).tolist() == [0, 1, 2, 1, 2, 3]

    def test_vector_unit_count_is_contiguous(self):
        assert INT.Create_vector(1, 5, 9).is_contiguous()
        assert INT.Create_vector(4, 3, 3).is_contiguous()

    def test_subarray_view_matches_pack(self):
        t = FLOAT.Create_subarray((4, 5), (2, 3), (1, 1))
        buf = np.arange(20, dtype=np.float32)
        v = t.view(buf)
        assert v.shape == (2, 3) and np.shares_memory(v, buf)
        assert v.reshape(-1).tolist() == t.pack(buf).tolist()

    def test_subarray_contiguity_detection(self):
        assert FLOAT.Create_subarray((4, 4), (4, 4), (0, 0)).is_contiguous()
        assert FLOAT.Create_subarray((4, 4), (1, 4), (2, 0)).is_contiguous()
        assert FLOAT.Create_subarray((4, 4), (2, 4), (1, 0)).is_contiguous()
        assert not FLOAT.Create_subarray((4, 4), (2, 2), (0, 0)).is_contiguous()
        assert not FLOAT.Create_subarray((2, 3, 4), (2, 2, 4), (0, 0, 0)).is_contiguous()
        # Single-element selections are trivially contiguous.
        assert FLOAT.Create_subarray((4, 4), (1, 1), (3, 3)).is_contiguous()

    def test_cached_geometry_is_precomputed(self):
        vec = INT.Create_vector(3, 2, 4)
        assert vec._indices() is vec._indices()  # one array, built at __init__
        sub = FLOAT.Create_subarray((4, 4), (2, 2), (1, 1))
        assert sub._slices() is sub._slices()

    def test_copy_into_same_geometry(self):
        t = FLOAT.Create_subarray((4, 4), (2, 2), (1, 1))
        src = np.arange(16, dtype=np.float32)
        dst = np.zeros(16, dtype=np.float32)
        t.copy_into(src, dst)
        assert np.array_equal(t.pack(dst), t.pack(src))
        assert dst.reshape(4, 4)[0].sum() == 0  # outside the block untouched

    def test_copy_into_differing_type_shapes(self):
        # A (2, 2) block moved into a contiguous run and a strided vector.
        s = INT.Create_subarray((4, 4), (2, 2), (0, 0))
        src = np.arange(16, dtype=np.int32)
        run = INT.Create_contiguous(4)
        dst = np.full(6, -1, dtype=np.int32)
        s.copy_into(src, dst, run)
        assert dst.tolist() == [0, 1, 4, 5, -1, -1]
        vec = INT.Create_vector(4, 1, 2)
        strided = np.full(8, -1, dtype=np.int32)
        s.copy_into(src, strided, vec)
        assert strided.tolist() == [0, -1, 1, -1, 4, -1, 5, -1]

    def test_copy_into_casts_like_pack_unpack(self):
        t = DOUBLE.Create_contiguous(3)
        ti = INT.Create_contiguous(3)
        src = np.array([1.9, -2.9, 3.1])
        direct = np.zeros(3, dtype=np.int32)
        t.copy_into(src, direct, ti)
        staged = np.zeros(3, dtype=np.int32)
        ti.unpack(staged, t.pack(src))
        assert direct.tolist() == staged.tolist()

    def test_copy_into_size_mismatch_raises(self):
        with pytest.raises(DatatypeError):
            INT.Create_contiguous(3).copy_into(
                np.zeros(3, dtype=np.int32),
                np.zeros(4, dtype=np.int32),
                INT.Create_contiguous(4),
            )

    def test_pack_into_preallocated_out(self):
        t = FLOAT.Create_subarray((3, 3), (2, 2), (0, 0))
        buf = np.arange(9, dtype=np.float32)
        out = np.empty(4, dtype=np.float32)
        result = t.pack(buf, out=out)
        assert np.shares_memory(result, out)
        assert result.tolist() == [0, 1, 3, 4]
        with pytest.raises(DatatypeError):
            t.pack(buf, out=np.empty(2, dtype=np.float32))  # too small
        with pytest.raises(DatatypeError):
            t.pack(buf, out=np.empty(4, dtype=np.float64))  # wrong dtype
