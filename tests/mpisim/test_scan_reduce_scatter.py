"""Scan / Exscan / Reduce_scatter_block tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpisim import CommunicatorError, MAX, SUM
from tests.conftest import spmd


class TestScan:
    @pytest.mark.parametrize("size", [1, 2, 5])
    def test_inclusive_prefix_sum(self, size):
        def fn(comm):
            out = np.zeros(1)
            comm.Scan(np.array([float(comm.rank + 1)]), out, op=SUM)
            expect = sum(range(1, comm.rank + 2))
            assert out[0] == expect

        spmd(size, fn)

    def test_prefix_max(self):
        values = [3.0, 1.0, 7.0, 2.0]

        def fn(comm):
            out = np.zeros(1)
            comm.Scan(np.array([values[comm.rank]]), out, op=MAX)
            assert out[0] == max(values[: comm.rank + 1])

        spmd(4, fn)

    def test_array_payload(self):
        def fn(comm):
            send = np.full(3, float(comm.rank))
            out = np.zeros(3)
            comm.Scan(send, out, op=SUM)
            assert np.all(out == sum(range(comm.rank + 1)))

        spmd(4, fn)


class TestExscan:
    def test_exclusive_prefix_sum(self):
        def fn(comm):
            out = np.full(1, -99.0)
            comm.Exscan(np.array([float(comm.rank + 1)]), out, op=SUM)
            if comm.rank == 0:
                assert out[0] == -99.0  # untouched, MPI semantics
            else:
                assert out[0] == sum(range(1, comm.rank + 1))

        spmd(5, fn)

    def test_two_ranks(self):
        def fn(comm):
            out = np.zeros(1)
            comm.Exscan(np.array([5.0 + comm.rank]), out, op=SUM)
            if comm.rank == 1:
                assert out[0] == 5.0

        spmd(2, fn)

    def test_scan_exscan_relation(self):
        """Scan(r) == op(Exscan(r), x_r) for r > 0."""

        def fn(comm):
            x = np.array([float(2 * comm.rank + 1)])
            inclusive = np.zeros(1)
            comm.Scan(x, inclusive, op=SUM)
            exclusive = np.zeros(1)
            comm.Exscan(x, exclusive, op=SUM)
            if comm.rank > 0:
                assert inclusive[0] == exclusive[0] + x[0]

        spmd(4, fn)


class TestReduceScatterBlock:
    def test_sum_and_scatter(self):
        def fn(comm):
            size, rank = comm.size, comm.rank
            # Block d of rank r's contribution = r*10 + d, twice per block.
            send = np.repeat(
                np.array([rank * 10.0 + d for d in range(size)]), 2
            )
            recv = np.zeros(2)
            comm.Reduce_scatter_block(send, recv, op=SUM)
            expect = sum(r * 10.0 + rank for r in range(size))
            assert np.all(recv == expect)

        spmd(4, fn)

    def test_size_checked(self):
        def fn(comm):
            with pytest.raises(CommunicatorError, match="Reduce_scatter_block"):
                comm.Reduce_scatter_block(np.zeros(5), np.zeros(2))

        spmd(2, fn)

    def test_single_rank(self):
        def fn(comm):
            send = np.array([1.0, 2.0])
            recv = np.zeros(2)
            comm.Reduce_scatter_block(send, recv)
            assert recv.tolist() == [1.0, 2.0]

        spmd(1, fn)
