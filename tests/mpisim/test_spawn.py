"""``Communicator.spawn``: growing a running world (MPI_Comm_spawn + merge).

Spawn is the primitive under ``Redistributor.resize`` grows; these tests
pin its contract directly: collective call, dense rank append, shared
lineage (the merged communicator runs ordinary collectives), and repeated
growth.  Spawned ranks' return values are discarded by the driver, so
every assertion about them travels through union collectives.  CI repeats
this module under ``DDR_EXECUTOR=process``, where spawned ranks are
forked into reserve queue slots (``spawn_slots``).
"""

from __future__ import annotations

import pytest

from repro.mpisim.errors import CommunicatorError
from tests.conftest import spmd


def _child(comm, marker):
    comm.allgather((comm.rank, "child", marker))
    return None  # discarded: spawned ranks have no driver result slot


def _parent(comm, count, marker):
    union = comm.spawn(count, _child, marker)
    gathered = union.allgather((union.rank, "parent", marker))
    return {
        "rank": union.rank,
        "size": union.size,
        "world_ranks": tuple(union.world_ranks),
        "gathered": tuple(gathered),
    }


def test_spawn_merges_and_appends_densely():
    results = spmd(3, _parent, 2, "m", spawn_slots=2)
    assert all(r["size"] == 5 for r in results)
    # Existing members keep their rank order; spawned ranks are appended.
    assert [r["rank"] for r in results] == [0, 1, 2]
    roles = [role for _, role, _ in results[0]["gathered"]]
    assert roles == ["parent"] * 3 + ["child"] * 2
    assert [rank for rank, _, _ in results[0]["gathered"]] == list(range(5))
    # All members agree on the merged world.
    assert len({r["world_ranks"] for r in results}) == 1
    assert len(results[0]["world_ranks"]) == 5


def _first_child(comm, marker):
    # A spawned rank is a full member: it joins the next spawn collective.
    union = comm.spawn(1, _child, marker)
    union.allgather((union.rank, "first-child", marker))
    return None


def _double_parent(comm, marker):
    union1 = comm.spawn(1, _first_child, marker)
    union2 = union1.spawn(1, _child, marker)
    gathered = union2.allgather((union2.rank, "parent", marker))
    return {"size": union2.size, "n": len(gathered)}


def test_spawn_twice_keeps_growing():
    results = spmd(2, _double_parent, "g", spawn_slots=2)
    assert all(r["size"] == 4 and r["n"] == 4 for r in results)


def _bad_count(comm):
    try:
        comm.spawn(0, _child, "x")
    except CommunicatorError:
        return "typed"
    return "no error"


def test_spawn_count_validation():
    assert spmd(2, _bad_count) == ["typed", "typed"]


def _bcast_from_spawned(comm, marker):
    union = comm.spawn(1, _spawned_root_sender, marker)
    value = union.bcast(None, root=union.size - 1)
    return value


def _spawned_root_sender(comm, marker):
    # The freshly spawned rank is the highest rank; broadcast from it.
    comm.bcast((marker, comm.rank), root=comm.size - 1)
    return None


def test_collectives_root_at_spawned_rank():
    results = spmd(3, _bcast_from_spawned, "payload", spawn_slots=1)
    assert results == [("payload", 3)] * 3


@pytest.mark.parametrize("count", [1, 3])
def test_spawn_counts(count):
    results = spmd(2, _parent, count, "c", spawn_slots=3)
    assert all(r["size"] == 2 + count for r in results)
