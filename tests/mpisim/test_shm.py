"""Shared-memory staging: segment lifecycle, pool reuse, leak regression."""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.mpisim import run_spmd
from repro.mpisim.errors import CommunicatorError, ProcessFailedError
from repro.mpisim.shm import (
    HEADER_BYTES,
    MIN_SEGMENT_BYTES,
    ShmArena,
    ShmStagingPool,
    ShmTicket,
    attach,
    sweep_prefix,
)


def shm_names(prefix: str = "ddr") -> set[str]:
    if not os.path.isdir("/dev/shm"):
        return set()
    return {n for n in os.listdir("/dev/shm") if n.startswith(prefix)}


class TestSegment:
    def test_create_view_destroy(self):
        arena = ShmArena("ddrtestseg")
        try:
            segment = arena.create(1024)
            assert segment.capacity == 1024
            view = segment.view(np.float32, 256)
            view[:] = np.arange(256, dtype=np.float32)
            again = segment.view(np.float32, 256)
            np.testing.assert_array_equal(again, np.arange(256, dtype=np.float32))
        finally:
            arena.close()
        assert not shm_names("ddrtestseg")

    def test_view_overflow_raises(self):
        arena = ShmArena("ddrtestovf")
        try:
            segment = arena.create(64)
            with pytest.raises(CommunicatorError):
                segment.view(np.float64, 9)  # 72 bytes > 64 capacity
        finally:
            arena.close()

    def test_drained_flag_round_trip(self):
        arena = ShmArena("ddrtestflag")
        try:
            segment = arena.create(128)
            assert not segment.drained
            segment.mark_drained()
            assert segment.drained
            segment.mark_in_flight()
            assert not segment.drained
        finally:
            arena.close()

    def test_header_reserved(self):
        arena = ShmArena("ddrtesthdr")
        try:
            segment = arena.create(64)
            assert segment.shm.size == 64 + HEADER_BYTES
            view = segment.view(np.uint8, 64)
            view[:] = 0xAB
            segment.mark_drained()  # flag write must not touch the payload
            assert (np.asarray(view) == 0xAB).all()
        finally:
            arena.close()


class TestAttach:
    def test_attach_by_name(self):
        arena = ShmArena("ddrtestatt")
        try:
            segment = arena.create(256)
            segment.view(np.int32, 4)[:] = [1, 2, 3, 4]
            found = attach(segment.name)
            np.testing.assert_array_equal(
                found.view(np.int32, 4), [1, 2, 3, 4]
            )
        finally:
            arena.close()

    def test_attach_missing_is_typed(self):
        with pytest.raises(ProcessFailedError, match="gone"):
            attach("ddrtestnope_does_not_exist")


class TestStagingPool:
    def test_drained_segment_reused(self):
        pool = ShmStagingPool("ddrtestpool")
        try:
            first = pool.acquire(1000)
            assert pool.outstanding() == 1
            first.mark_drained()
            second = pool.acquire(1000)
            assert second is first  # steady state: no new shm_open
            assert pool.outstanding() == 1
        finally:
            pool.close()
        assert not shm_names("ddrtestpool")

    def test_in_flight_segment_not_reused(self):
        pool = ShmStagingPool("ddrtestpool2")
        try:
            first = pool.acquire(1000)
            second = pool.acquire(1000)  # first still in flight
            assert second is not first
            assert pool.outstanding() == 2
        finally:
            pool.close()

    def test_size_classes_are_pow2(self):
        assert ShmStagingPool._size_class(1) == MIN_SEGMENT_BYTES
        assert ShmStagingPool._size_class(MIN_SEGMENT_BYTES) == MIN_SEGMENT_BYTES
        assert ShmStagingPool._size_class(MIN_SEGMENT_BYTES + 1) == 2 * MIN_SEGMENT_BYTES
        assert ShmStagingPool._size_class(100_000) == 131072

    def test_different_classes_do_not_mix(self):
        pool = ShmStagingPool("ddrtestpool3")
        try:
            small = pool.acquire(100)
            small.mark_drained()
            big = pool.acquire(100_000)
            assert big is not small
        finally:
            pool.close()


class TestTicketLifecycle:
    def test_complete_releases_segment(self):
        """A sender-side drop (fault injection) must return the segment to
        the pool even though no receiver ever attached."""
        pool = ShmStagingPool("ddrtesttkt")
        try:
            segment = pool.acquire(512)
            ticket = ShmTicket(segment.name, "float32", 16, segment=segment)
            assert pool.outstanding() == 1
            ticket.complete()
            assert pool.outstanding() == 0
        finally:
            pool.close()


class TestLeakRegression:
    """Satellite: abnormal rank exit must not leak /dev/shm entries."""

    def test_hard_killed_rank_segments_swept(self):
        """A rank that os._exit()s mid-exchange never runs its cleanup;
        the parent's prefix sweep must reap its segments."""
        from repro.mpisim import RankFailure

        def fn(comm):
            other = 1 - comm.rank
            payload = np.zeros(65536, dtype=np.float32)  # well above SHM_MIN_BYTES
            if comm.rank == 0:
                comm.Send(payload, dest=other, transport="shm")
                os._exit(7)  # die with the segment still staged
            time.sleep(1.0)  # rank 1 never receives; segment stays in flight
            return True

        before = shm_names()
        with pytest.raises(RankFailure):
            run_spmd(2, fn, executor="process", deadlock_timeout=10.0)
        leaked = shm_names() - before
        assert not leaked, f"leaked shm segments: {leaked}"

    def test_crashing_rank_segments_swept(self):
        from repro.mpisim import RankFailure

        def fn(comm):
            other = 1 - comm.rank
            payload = np.zeros(65536, dtype=np.float32)
            comm.Send(payload, dest=other, transport="shm")
            if comm.rank == 0:
                raise RuntimeError("boom after staging")
            comm.Recv(np.zeros(65536, dtype=np.float32), source=other)
            return True

        before = shm_names()
        with pytest.raises(RankFailure):
            run_spmd(2, fn, executor="process", deadlock_timeout=10.0)
        leaked = shm_names() - before
        assert not leaked, f"leaked shm segments: {leaked}"

    def test_sweep_prefix_returns_removed_names(self):
        arena = ShmArena("ddrtestsweep")
        segment = arena.create(256)
        name = segment.name
        # Simulate an abnormal exit: the arena never runs close().
        removed = sweep_prefix("ddrtestsweep")
        assert name in removed
        assert not shm_names("ddrtestsweep")
        assert sweep_prefix("ddrtestsweep") == []  # idempotent
