"""Gatherv / Scatterv / Alltoall tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpisim import CommunicatorError, TruncationError
from tests.conftest import spmd


class TestGatherv:
    def test_variable_blocks(self):
        def fn(comm):
            rank, size = comm.rank, comm.size
            send = np.full(rank + 1, float(rank))
            counts = [r + 1 for r in range(size)]
            if rank == 0:
                recv = np.zeros(sum(counts))
                comm.Gatherv(send, recv, counts)
                cursor = 0
                for r in range(size):
                    seg = recv[cursor : cursor + r + 1]
                    assert np.all(seg == r), (r, recv)
                    cursor += r + 1
            else:
                comm.Gatherv(send, None, None)

        spmd(4, fn)

    def test_explicit_displs(self):
        def fn(comm):
            rank, size = comm.rank, comm.size
            send = np.array([float(rank)])
            counts = [1] * size
            displs = [(size - 1 - r) for r in range(size)]  # reversed layout
            if rank == 0:
                recv = np.zeros(size)
                comm.Gatherv(send, recv, counts, displs)
                assert recv.tolist() == [float(size - 1 - i) for i in range(size)]
            else:
                comm.Gatherv(send, None, None)

        spmd(4, fn)

    def test_root_count_mismatch(self):
        def fn(comm):
            if comm.rank == 0:
                with pytest.raises(CommunicatorError, match="root sends"):
                    comm.Gatherv(np.zeros(3), np.zeros(4), [2, 2])
            else:
                # Partner never participates; root fails before receiving.
                pass

        spmd(2, fn)

    def test_missing_recv_args(self):
        def fn(comm):
            if comm.rank == 0:
                with pytest.raises(CommunicatorError, match="recvbuf"):
                    comm.Gatherv(np.zeros(1), None, None)

        spmd(2, fn)


class TestScatterv:
    def test_variable_blocks(self):
        def fn(comm):
            rank, size = comm.rank, comm.size
            counts = [r + 2 for r in range(size)]
            recv = np.zeros(rank + 2)
            if rank == 0:
                send = np.concatenate(
                    [np.full(r + 2, float(10 * r)) for r in range(size)]
                )
                comm.Scatterv(send, counts, recv)
            else:
                comm.Scatterv(None, None, recv)
            assert np.all(recv == 10.0 * rank)

        spmd(4, fn)

    def test_truncation(self):
        def fn(comm):
            if comm.rank == 0:
                comm.Scatterv(np.zeros(4), [2, 2], np.zeros(2))
            else:
                with pytest.raises(TruncationError):
                    comm.Scatterv(None, None, np.zeros(1))

        spmd(2, fn)

    def test_root_missing_args(self):
        def fn(comm):
            if comm.rank == 0:
                with pytest.raises(CommunicatorError, match="sendbuf"):
                    comm.Scatterv(None, None, np.zeros(1))

        spmd(2, fn)

    def test_roundtrip_with_gatherv(self):
        """Scatterv then Gatherv restores the root's buffer."""

        def fn(comm):
            rank, size = comm.rank, comm.size
            counts = [2 * r + 1 for r in range(size)]
            recv = np.zeros(2 * rank + 1)
            original = np.arange(sum(counts), dtype=np.float64)
            if rank == 0:
                comm.Scatterv(original, counts, recv)
            else:
                comm.Scatterv(None, None, recv)
            recv += 0.0  # no-op transform
            if rank == 0:
                back = np.zeros(sum(counts))
                comm.Gatherv(recv, back, counts)
                assert np.array_equal(back, original)
            else:
                comm.Gatherv(recv, None, None)

        spmd(3, fn)


class TestAlltoallArrays:
    def test_block_exchange(self):
        def fn(comm):
            rank, size = comm.rank, comm.size
            send = np.array(
                [100.0 * rank + d for d in range(size)]
            )  # one element per dest
            recv = np.zeros(size)
            comm.Alltoall(send, recv)
            assert recv.tolist() == [100.0 * s + rank for s in range(size)]

        spmd(5, fn)

    def test_multi_element_blocks(self):
        def fn(comm):
            rank, size = comm.rank, comm.size
            send = np.repeat(np.arange(size, dtype=np.float64) + 10 * rank, 3)
            recv = np.zeros(3 * size)
            comm.Alltoall(send, recv)
            for s in range(size):
                assert np.all(recv[3 * s : 3 * s + 3] == 10 * s + rank)

        spmd(3, fn)

    def test_bad_sizes(self):
        def fn(comm):
            with pytest.raises(CommunicatorError):
                comm.Alltoall(np.zeros(5), np.zeros(5))  # 5 not divisible by 3

        spmd(3, fn)
