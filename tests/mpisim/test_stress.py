"""Randomized stress tests of the runtime's matching and collective layers."""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.mpisim import ANY_SOURCE, ANY_TAG, SUM
from tests.conftest import spmd


class TestMessageStorm:
    @given(seed=st.integers(0, 500))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_all_to_all_storm_delivers_everything(self, seed):
        """Every rank fires a random number of tagged messages at every
        other rank in random order; every payload must arrive exactly once
        at the matching (source, tag) receive."""
        nprocs = 4
        rng = np.random.default_rng(seed)
        # counts[src][dst][tag] = how many messages with that tag
        counts = rng.integers(0, 3, size=(nprocs, nprocs, 3))

        def fn(comm):
            rank = comm.rank
            local_rng = np.random.default_rng(seed * nprocs + rank)
            sends = []
            for dst in range(nprocs):
                if dst == rank:
                    continue
                for tag in range(3):
                    for k in range(counts[rank, dst, tag]):
                        sends.append((dst, tag, k))
            local_rng.shuffle(sends)
            for dst, tag, k in sends:
                comm.Send(np.array([rank * 1000.0 + tag * 100 + k]), dst, tag=tag)

            received: dict[tuple[int, int], list[float]] = {}
            for src in range(nprocs):
                if src == rank:
                    continue
                for tag in range(3):
                    for _ in range(counts[src, rank, tag]):
                        buf = np.zeros(1)
                        comm.Recv(buf, source=src, tag=tag)
                        received.setdefault((src, tag), []).append(float(buf[0]))
            for (src, tag), values in received.items():
                # Exactly-once delivery: each sequence number appears once.
                # (Posting order was shuffled, so arrival order is arbitrary
                # across sequence numbers — only the multiset is guaranteed.)
                ks = sorted(v - src * 1000 - tag * 100 for v in values)
                assert ks == list(range(counts[src, rank, tag]))
            return True

        assert all(spmd(nprocs, fn))

    def test_wildcard_receive_storm(self):
        """ANY_SOURCE/ANY_TAG receives must drain a storm without loss."""
        nprocs = 5
        per_rank = 8

        def fn(comm):
            rank = comm.rank
            if rank == 0:
                total = (comm.size - 1) * per_rank
                seen = []
                buf = np.zeros(1)
                for _ in range(total):
                    status = comm.Recv(buf, source=ANY_SOURCE, tag=ANY_TAG)
                    seen.append((status.source, int(buf[0])))
                from collections import Counter

                by_source = Counter(src for src, _ in seen)
                assert all(by_source[s] == per_rank for s in range(1, comm.size))
                return sorted(seen)
            for i in range(per_rank):
                comm.Send(np.array([float(i)]), 0, tag=i % 4)
            return None

        spmd(nprocs, fn)


class TestCollectiveSequences:
    @given(seed=st.integers(0, 200))
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_collective_program(self, seed):
        """A random program of collectives executed in lockstep must give
        the arithmetic answer at every step, with p2p traffic interleaved."""
        rng = np.random.default_rng(seed)
        program = rng.integers(0, 4, size=12).tolist()
        nprocs = 4

        def fn(comm):
            rank = comm.rank
            for step, op in enumerate(program):
                if op == 0:
                    out = np.zeros(1)
                    comm.Allreduce(np.array([float(rank + step)]), out, op=SUM)
                    expect = sum(r + step for r in range(comm.size))
                    assert out[0] == expect
                elif op == 1:
                    got = comm.bcast(step if rank == step % comm.size else None,
                                     root=step % comm.size)
                    assert got == step
                elif op == 2:
                    gathered = comm.allgather((rank, step))
                    assert gathered == [(r, step) for r in range(comm.size)]
                else:
                    # interleave point-to-point in a ring
                    dest = (rank + 1) % comm.size
                    src = (rank - 1) % comm.size
                    comm.Send(np.array([float(rank)]), dest, tag=50 + step)
                    buf = np.zeros(1)
                    comm.Recv(buf, source=src, tag=50 + step)
                    assert buf[0] == float(src)
            return True

        assert all(spmd(nprocs, fn))

    def test_many_subcommunicators(self):
        """Repeated splits create isolated traffic domains."""

        def fn(comm):
            subs = [comm.Split(comm.rank % 2, key=comm.rank) for _ in range(4)]
            for index, sub in enumerate(subs):
                total = sub.allreduce(index)
                assert total == index * sub.size
            return True

        assert all(spmd(6, fn))

    def test_deep_alltoallw_sequence(self):
        """Many consecutive Alltoallw calls must not cross-match rounds."""
        from repro.mpisim import FLOAT, SubarrayType

        def fn(comm):
            size, rank = comm.size, comm.size and comm.rank
            n = 4 * size
            for round_index in range(10):
                send = np.full((n,), rank * 100.0 + round_index, dtype=np.float32)
                recv = np.zeros((n,), dtype=np.float32)
                stypes = [
                    SubarrayType(FLOAT, (n,), (4,), (4 * d,)) for d in range(size)
                ]
                rtypes = [
                    SubarrayType(FLOAT, (n,), (4,), (4 * s,)) for s in range(size)
                ]
                comm.Alltoallw(send, stypes, recv, rtypes)
                for s in range(size):
                    assert np.all(recv[4 * s : 4 * s + 4] == s * 100.0 + round_index)
            return True

        assert all(spmd(4, fn))
