"""Zero-copy vs packed transport: selection, equivalence, error paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpisim import (
    FLOAT,
    INT,
    CommunicatorError,
    SubarrayType,
    TRANSPORT_PACKED,
    TRANSPORT_ZEROCOPY,
    TruncationError,
    get_transport,
    set_transport,
    transport,
)
from tests.conftest import counted_region, spmd, thread_only

TRANSPORTS = [TRANSPORT_ZEROCOPY, TRANSPORT_PACKED]


class TestSelection:
    def test_default_is_zerocopy(self):
        assert get_transport() == TRANSPORT_ZEROCOPY

    def test_context_manager_restores(self):
        before = get_transport()
        with transport(TRANSPORT_PACKED):
            assert get_transport() == TRANSPORT_PACKED
        assert get_transport() == before

    def test_set_rejects_unknown(self):
        with pytest.raises(CommunicatorError):
            set_transport("carrier-pigeon")
        with pytest.raises(CommunicatorError):
            with transport("bogus"):
                pass

    @thread_only
    def test_per_communicator_override(self):
        def fn(comm):
            assert comm.resolve_transport() == get_transport()
            comm.transport = TRANSPORT_PACKED
            assert comm.resolve_transport() == TRANSPORT_PACKED
            # per-call override beats the communicator attribute
            assert comm.resolve_transport(TRANSPORT_ZEROCOPY) == TRANSPORT_ZEROCOPY
            with pytest.raises(CommunicatorError):
                comm.resolve_transport("bogus")
            return True

        assert all(spmd(2, fn))


def _transpose(comm, mode):
    """Row->column redistribution; returns the received matrix."""
    size, rank = comm.size, comm.rank
    g = np.arange(size * size, dtype=np.float32).reshape(size, size) + 100 * rank
    recv = np.full((size, size), -1, dtype=np.float32)
    stypes = [
        SubarrayType(FLOAT, (size, size), (size, 1), (0, d)) for d in range(size)
    ]
    rtypes = [
        SubarrayType(FLOAT, (size, size), (size, 1), (0, s)) for s in range(size)
    ]
    comm.Alltoallw(g, stypes, recv, rtypes, transport=mode)
    return recv


class TestEquivalence:
    @pytest.mark.parametrize("size", [1, 2, 3, 5])
    def test_alltoallw_bit_identical(self, size):
        def fn(comm):
            a = _transpose(comm, TRANSPORT_ZEROCOPY)
            b = _transpose(comm, TRANSPORT_PACKED)
            assert np.array_equal(a, b)
            # column s of the result is column rank of source s's matrix
            for s in range(comm.size):
                expect = np.arange(size * size, dtype=np.float32).reshape(size, size)
                assert np.array_equal(a[:, s], expect[:, comm.rank] + 100 * s)
            return True

        assert all(spmd(size, fn))

    def test_mixed_transports_interoperate(self):
        """Receive is handle-aware regardless of mode, so ranks may disagree."""

        def fn(comm):
            mode = TRANSPORTS[comm.rank % 2]
            return _transpose(comm, mode)

        results = spmd(4, fn)
        reference = spmd(4, lambda comm: _transpose(comm, TRANSPORT_PACKED))
        for got, expect in zip(results, reference):
            assert np.array_equal(got, expect)

    @thread_only
    def test_counter_profiles(self):
        """Zero-copy: one direct copy per lane, no staging allocations."""

        def fn(comm):
            _, zc = counted_region(comm, lambda: _transpose(comm, TRANSPORT_ZEROCOPY))
            _, pk = counted_region(comm, lambda: _transpose(comm, TRANSPORT_PACKED))
            return zc, pk

        zc, pk = spmd(4, fn)[0]
        assert zc["copies"]["pack"] == 0 and zc["copies"]["unpack"] == 0
        assert zc["copies"]["direct"] == 16  # 4 ranks x 4 lanes
        assert zc["allocations"] == 0
        assert pk["copies"]["direct"] == 0
        assert pk["copies"]["pack"] == 16 and pk["copies"]["unpack"] == 16
        assert pk["allocations"] == 16


class TestRendezvousP2P:
    @pytest.mark.parametrize("mode", TRANSPORTS)
    def test_sendrecv_ring(self, mode):
        def fn(comm):
            comm.transport = mode
            size, rank = comm.size, comm.rank
            send = np.full(8, rank, dtype=np.int32)
            recv = np.zeros(8, dtype=np.int32)
            comm.Sendrecv(
                send, (rank + 1) % size, recv, (rank - 1) % size,
                sendtag=7, recvtag=7,
            )
            assert recv.tolist() == [(rank - 1) % size] * 8
            return True

        assert all(spmd(4, fn))

    @pytest.mark.parametrize("mode", TRANSPORTS)
    def test_sendrecv_self_overlapping(self, mode):
        """Self-exchange may alias; must behave like a simultaneous exchange."""

        def fn(comm):
            comm.transport = mode
            buf = np.arange(4, dtype=np.int32)
            comm.Sendrecv(buf, comm.rank, buf, comm.rank, sendtag=3, recvtag=3)
            assert buf.tolist() == [0, 1, 2, 3]
            return True

        assert all(spmd(2, fn))

    @thread_only
    def test_isend_rendezvous_blocks_until_drained(self):
        def fn(comm):
            if comm.rank == 0:
                send = np.arange(16, dtype=np.float64)
                req = comm.Isend(send, 1, tag=5, rendezvous=True)
                assert not req.Test()  # receiver has not copied yet
                comm.Barrier()
                req.Wait()
            else:
                comm.Barrier()  # hold the send un-drained across the barrier
                recv = np.zeros(16)
                comm.Recv(recv, 0, tag=5)
                assert recv.tolist() == list(range(16))
            return True

        assert all(spmd(2, fn))

    def test_isend_rendezvous_strided_falls_back_eager(self):
        """A non-contiguous buffer cannot be posted by reference."""

        def fn(comm):
            if comm.rank == 0:
                strided = np.arange(8, dtype=np.int32)[::2]
                req = comm.Isend(strided, 1, tag=2, rendezvous=True)
                req.Wait()
            else:
                recv = np.zeros(4, dtype=np.int32)
                comm.Recv(recv, 0, tag=2)
                assert recv.tolist() == [0, 2, 4, 6]
            return True

        assert all(spmd(2, fn))


@pytest.mark.parametrize("mode", TRANSPORTS)
class TestAlltoallwErrorPaths:
    def test_self_type_mismatch(self, mode):
        def fn(comm):
            size = comm.size
            stypes: list = [None] * size
            rtypes: list = [None] * size
            stypes[comm.rank] = FLOAT.Create_contiguous(4)
            rtypes[comm.rank] = FLOAT.Create_contiguous(3)
            with pytest.raises(CommunicatorError, match="self send/recv"):
                comm.Alltoallw(
                    np.zeros(4, dtype=np.float32), stypes,
                    np.zeros(4, dtype=np.float32), rtypes,
                    transport=mode,
                )
            return True

        assert all(spmd(2, fn))

    def test_truncation_releases_sender(self, mode):
        """Receiver-local truncation must not strand a rendezvous sender."""

        def fn(comm):
            stypes: list = [None] * comm.size
            rtypes: list = [None] * comm.size
            if comm.rank == 0:
                stypes[1] = INT.Create_contiguous(2)
                comm.Alltoallw(
                    np.arange(2, dtype=np.int32), stypes, None, rtypes,
                    transport=mode,
                )
            else:
                rtypes[0] = INT.Create_contiguous(4)  # expects more than sent
                with pytest.raises(TruncationError, match="lane 0->1"):
                    comm.Alltoallw(
                        None, stypes, np.zeros(4, dtype=np.int32), rtypes,
                        transport=mode,
                    )
            return True

        assert all(spmd(2, fn))

    def test_all_none_rows(self, mode):
        def fn(comm):
            none_row: list = [None] * comm.size
            comm.Alltoallw(None, none_row, None, none_row, transport=mode)
            return True

        assert all(spmd(3, fn))

    def test_zero_size_lanes(self, mode):
        """Zero-element types move nothing and need no buffer on that lane."""

        def fn(comm):
            size, rank = comm.size, comm.rank
            empty = SubarrayType(INT, (4, 4), (0, 4), (0, 0))
            stypes: list = [empty] * size
            rtypes: list = [empty] * size
            if rank == 0:
                stypes[1] = SubarrayType(INT, (4, 4), (1, 4), (2, 0))
            if rank == 1:
                rtypes[0] = SubarrayType(INT, (4, 4), (1, 4), (0, 0))
            send = np.arange(16, dtype=np.int32)
            recv = np.full(16, -1, dtype=np.int32)
            comm.Alltoallw(send, stypes, recv, rtypes, transport=mode)
            if rank == 1:
                assert recv[:4].tolist() == [8, 9, 10, 11]
                assert (recv[4:] == -1).all()
            return True

        assert all(spmd(3, fn))
