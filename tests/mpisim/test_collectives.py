"""Collective operations on the in-process MPI runtime."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpisim import FLOAT, MAX, MIN, PROD, SUM, CommunicatorError, SubarrayType
from tests.conftest import spmd

SIZES = [1, 2, 3, 5, 8]


@pytest.mark.parametrize("size", SIZES)
class TestBasicCollectives:
    def test_barrier(self, size):
        def fn(comm):
            for _ in range(3):
                comm.Barrier()
            return True

        assert all(spmd(size, fn))

    def test_bcast_array(self, size):
        def fn(comm):
            buf = (
                np.arange(6, dtype=np.float64)
                if comm.rank == 0
                else np.zeros(6)
            )
            comm.Bcast(buf, root=0)
            assert buf.tolist() == [0, 1, 2, 3, 4, 5]

        spmd(size, fn)

    def test_bcast_object(self, size):
        def fn(comm):
            obj = {"n": 42} if comm.rank == 0 else None
            got = comm.bcast(obj, root=0)
            assert got == {"n": 42}

        spmd(size, fn)

    def test_gather_objects(self, size):
        def fn(comm):
            got = comm.gather(comm.rank * 10, root=0)
            if comm.rank == 0:
                assert got == [r * 10 for r in range(comm.size)]
            else:
                assert got is None

        spmd(size, fn)

    def test_scatter_objects(self, size):
        def fn(comm):
            objs = [f"item{r}" for r in range(comm.size)] if comm.rank == 0 else None
            got = comm.scatter(objs, root=0)
            assert got == f"item{comm.rank}"

        spmd(size, fn)

    def test_allgather_objects(self, size):
        def fn(comm):
            got = comm.allgather(comm.rank**2)
            assert got == [r**2 for r in range(comm.size)]

        spmd(size, fn)

    def test_alltoall_objects(self, size):
        def fn(comm):
            outbox = [(comm.rank, d) for d in range(comm.size)]
            inbox = comm.alltoall(outbox)
            assert inbox == [(s, comm.rank) for s in range(comm.size)]

        spmd(size, fn)

    def test_gather_arrays(self, size):
        def fn(comm):
            send = np.full(3, comm.rank, dtype=np.int64)
            recv = np.zeros((comm.size, 3), dtype=np.int64) if comm.rank == 0 else None
            comm.Gather(send, recv, root=0)
            if comm.rank == 0:
                for r in range(comm.size):
                    assert recv[r].tolist() == [r, r, r]

        spmd(size, fn)

    def test_allgather_arrays(self, size):
        def fn(comm):
            send = np.array([comm.rank + 0.5])
            recv = np.zeros(comm.size)
            comm.Allgather(send, recv)
            assert recv.tolist() == [r + 0.5 for r in range(comm.size)]

        spmd(size, fn)

    def test_reduce_sum(self, size):
        def fn(comm):
            send = np.array([float(comm.rank), 1.0])
            recv = np.zeros(2) if comm.rank == 0 else None
            comm.Reduce(send, recv, op=SUM, root=0)
            if comm.rank == 0:
                s = comm.size
                assert recv.tolist() == [s * (s - 1) / 2, float(s)]

        spmd(size, fn)

    def test_allreduce_ops(self, size):
        def fn(comm):
            val = np.array([float(comm.rank + 1)])
            out = np.zeros(1)
            comm.Allreduce(val, out, op=MAX)
            assert out[0] == comm.size
            comm.Allreduce(val, out, op=MIN)
            assert out[0] == 1.0
            comm.Allreduce(val, out, op=PROD)
            assert out[0] == float(np.prod(np.arange(1, comm.size + 1)))

        spmd(size, fn)

    def test_allreduce_objects(self, size):
        def fn(comm):
            assert comm.allreduce(1) == comm.size

        spmd(size, fn)


class TestAlltoallv:
    def test_uneven_counts(self):
        """Rank r sends r+1 elements to each peer."""

        def fn(comm):
            size, rank = comm.size, comm.rank
            sendcounts = [rank + 1] * size
            sdispls = [d * (rank + 1) for d in range(size)]
            send = np.concatenate(
                [np.full(rank + 1, rank * 100 + d, dtype=np.float64) for d in range(size)]
            )
            recvcounts = [s + 1 for s in range(size)]
            rdispls = np.cumsum([0] + recvcounts[:-1]).tolist()
            recv = np.zeros(sum(recvcounts))
            comm.Alltoallv(send, sendcounts, sdispls, recv, recvcounts, rdispls)
            for s in range(size):
                seg = recv[rdispls[s] : rdispls[s] + s + 1]
                assert np.all(seg == s * 100 + rank)

        spmd(4, fn)

    def test_zero_counts(self):
        def fn(comm):
            size = comm.size
            send = np.zeros(0)
            recv = np.zeros(0)
            zeros = [0] * size
            comm.Alltoallv(send, zeros, zeros, recv, zeros, zeros)

        spmd(3, fn)

    def test_bad_lengths_raise(self):
        def fn(comm):
            with pytest.raises(CommunicatorError):
                comm.Alltoallv(np.zeros(1), [1], [0], np.zeros(1), [1], [0])

        spmd(3, fn)


class TestAlltoallw:
    def test_transpose_distribution(self):
        """Classic row->column redistribution of a PxP matrix."""

        def fn(comm):
            size, rank = comm.size, comm.rank
            g = np.arange(size * size, dtype=np.float32).reshape(size, size)
            recv = np.full((size, size), -1, dtype=np.float32)
            stypes = [
                SubarrayType(FLOAT, (size, size), (1, 1), (rank, d)) for d in range(size)
            ]
            rtypes = [
                SubarrayType(FLOAT, (size, size), (1, 1), (s, rank)) for s in range(size)
            ]
            comm.Alltoallw(g, stypes, recv, rtypes)
            assert np.array_equal(recv[:, rank], g[:, rank])

        spmd(5, fn)

    def test_none_lanes(self):
        """Ranks with nothing to exchange pass None types."""

        def fn(comm):
            size, rank = comm.size, comm.rank
            stypes = [None] * size
            rtypes = [None] * size
            if rank == 0:
                stypes[1] = FLOAT.Create_contiguous(4)
            if rank == 1:
                rtypes[0] = FLOAT.Create_contiguous(4)
            send = np.arange(4, dtype=np.float32)
            recv = np.zeros(4, dtype=np.float32)
            comm.Alltoallw(send if rank == 0 else None, stypes,
                           recv if rank == 1 else None, rtypes)
            if rank == 1:
                assert recv.tolist() == [0, 1, 2, 3]

        spmd(3, fn)

    def test_self_lane_mismatch_raises(self):
        def fn(comm):
            size, rank = comm.size, comm.rank
            stypes = [None] * size
            rtypes = [None] * size
            stypes[rank] = FLOAT.Create_contiguous(4)  # no matching recv type
            with pytest.raises(CommunicatorError):
                comm.Alltoallw(np.zeros(4, dtype=np.float32), stypes,
                               np.zeros(4, dtype=np.float32), rtypes)

        spmd(2, fn)

    def test_wrong_slot_count_raises(self):
        def fn(comm):
            with pytest.raises(CommunicatorError):
                comm.Alltoallw(None, [None], None, [None])

        spmd(3, fn)


class TestSplitDup:
    def test_split_even_odd(self):
        def fn(comm):
            sub = comm.Split(comm.rank % 2, key=comm.rank)
            members = [r for r in range(comm.size) if r % 2 == comm.rank % 2]
            assert sub.size == len(members)
            assert sub.rank == members.index(comm.rank)
            got = sub.allgather(comm.rank)
            assert got == members
            return sub.size

        spmd(5, fn)

    def test_split_undefined_color(self):
        def fn(comm):
            sub = comm.Split(-1 if comm.rank == 0 else 0)
            if comm.rank == 0:
                assert sub is None
            else:
                assert sub.size == comm.size - 1

        spmd(4, fn)

    def test_split_key_reorders(self):
        def fn(comm):
            sub = comm.Split(0, key=-comm.rank)  # reversed order
            assert sub.rank == comm.size - 1 - comm.rank

        spmd(4, fn)

    def test_split_isolated_traffic(self):
        """Messages on a subcommunicator must not match the parent's."""

        def fn(comm):
            sub = comm.Split(0, key=comm.rank)
            if comm.rank == 0:
                comm.Send(np.array([1.0]), dest=1, tag=5)
                sub.Send(np.array([2.0]), dest=1, tag=5)
            elif comm.rank == 1:
                buf = np.zeros(1)
                sub.Recv(buf, source=0, tag=5)
                assert buf[0] == 2.0
                comm.Recv(buf, source=0, tag=5)
                assert buf[0] == 1.0

        spmd(3, fn)

    def test_dup(self):
        def fn(comm):
            dup = comm.Dup()
            assert dup.size == comm.size and dup.rank == comm.rank
            assert dup.comm_id != comm.comm_id
            out = np.zeros(1)
            dup.Allreduce(np.array([1.0]), out)
            assert out[0] == comm.size

        spmd(3, fn)
