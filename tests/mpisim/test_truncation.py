"""TruncationError surfaces identically under both transports.

The packed transport stages a copied payload; the zero-copy transport can
hand the receiver a live rendezvous reference to the sender's buffer.  A
receive buffer too small for the message must raise ``TruncationError`` on
the receiver in either mode — and a rendezvous sender must still be
released (receiver-local errors stay receiver-local, as in MPI).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpisim import (
    FLOAT,
    TRANSPORT_PACKED,
    TRANSPORT_ZEROCOPY,
    TruncationError,
)
from tests.conftest import spmd


@pytest.fixture(params=[TRANSPORT_PACKED, TRANSPORT_ZEROCOPY])
def mode(request):
    return request.param


class TestP2PTruncation:
    def test_recv_buffer_too_small(self, mode):
        def fn(comm):
            comm.transport = mode
            if comm.rank == 0:
                comm.Send(np.arange(10, dtype=np.float64), dest=1)
            else:
                with pytest.raises(TruncationError):
                    comm.Recv(np.zeros(3), source=0)
            return True

        assert all(spmd(2, fn, deadlock_timeout=5.0))

    def test_recv_type_selection_mismatch(self, mode):
        def fn(comm):
            comm.transport = mode
            if comm.rank == 0:
                comm.Send(np.arange(8, dtype=np.float32), dest=1,
                          datatype=FLOAT.Create_contiguous(8))
            else:
                with pytest.raises(TruncationError):
                    comm.Recv(np.zeros(4, dtype=np.float32), source=0,
                              datatype=FLOAT.Create_contiguous(4))
            return True

        assert all(spmd(2, fn, deadlock_timeout=5.0))


class TestRendezvousTruncation:
    def test_truncation_releases_rendezvous_sender(self):
        """The receiver's truncation must not strand the sender inside its
        posted rendezvous Isend."""

        def fn(comm):
            comm.transport = TRANSPORT_ZEROCOPY
            if comm.rank == 0:
                request = comm.Isend(np.arange(10, dtype=np.float64), dest=1,
                                     rendezvous=True)
                request.wait()  # must complete despite the receiver's error
            else:
                with pytest.raises(TruncationError):
                    comm.Recv(np.zeros(3), source=0)
            return True

        assert all(spmd(2, fn, deadlock_timeout=5.0))
