"""SPMD executor: results, failure propagation, abort semantics."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.mpisim import (
    AbortError,
    CommunicatorError,
    Fabric,
    RankFailure,
    SpmdHangError,
    TimeoutError_,
    run_spmd,
    world_communicators,
)
from repro.obs import TRACER, tracing
from tests.conftest import spmd, thread_only


class TestRunSpmd:
    def test_results_in_rank_order(self):
        assert spmd(4, lambda comm: comm.rank * 2) == [0, 2, 4, 6]

    def test_single_rank(self):
        assert spmd(1, lambda comm: comm.size) == [1]

    def test_args_kwargs_forwarded(self):
        def fn(comm, a, b=0):
            return a + b + comm.rank

        assert spmd(3, fn, 10, b=5) == [15, 16, 17]

    def test_zero_ranks_rejected(self):
        with pytest.raises(CommunicatorError):
            run_spmd(0, lambda comm: None)

    def test_exception_propagates_with_rank(self):
        def fn(comm):
            if comm.rank == 2:
                raise ValueError("boom")
            return comm.rank

        with pytest.raises(RankFailure) as excinfo:
            spmd(4, fn)
        assert excinfo.value.rank == 2
        assert isinstance(excinfo.value.original, ValueError)

    def test_failure_aborts_blocked_peers(self):
        """Rank 1 dies; rank 0 is blocked in Recv and must be released,
        not deadlock until the timeout."""

        def fn(comm):
            if comm.rank == 0:
                comm.Recv(np.zeros(1), source=1)  # never satisfied
            else:
                raise RuntimeError("dead rank")

        with pytest.raises(RankFailure) as excinfo:
            spmd(2, fn)
        assert excinfo.value.rank == 1

    def test_deadlock_detected_by_timeout(self):
        def fn(comm):
            comm.Recv(np.zeros(1), source=(comm.rank + 1) % comm.size)

        with pytest.raises(RankFailure) as excinfo:
            run_spmd(2, fn, deadlock_timeout=0.5)
        assert isinstance(excinfo.value.original, TimeoutError_)

    def test_ranks_run_concurrently(self):
        """A rendezvous that requires both ranks in flight simultaneously."""

        def fn(comm):
            other = 1 - comm.rank
            comm.Send(np.array([float(comm.rank)]), dest=other)
            buf = np.zeros(1)
            comm.Recv(buf, source=other)
            return buf[0]

        assert spmd(2, fn) == [1.0, 0.0]

    def test_many_ranks(self):
        result = spmd(32, lambda comm: comm.allreduce(1))
        assert result == [32] * 32


class TestJoinTimeout:
    """Regression: run_spmd used to join workers with no timeout, so a rank
    wedged *outside* the fabric (user compute that never returns) hung the
    driver forever — the fabric watchdog only covers blocking comm calls."""

    @thread_only
    def test_hang_outside_fabric_raises(self):
        release = threading.Event()

        def fn(comm):
            if comm.rank == 1:
                release.wait(30.0)  # wedged outside any fabric call
            return comm.rank

        try:
            with pytest.raises(SpmdHangError) as excinfo:
                run_spmd(2, fn, deadlock_timeout=0.2, join_timeout=0.4)
        finally:
            release.set()
        err = excinfo.value
        assert err.stuck_ranks == [1]
        assert "rank 1" in str(err)
        assert "enable tracing for span context" in str(err)

    @thread_only
    def test_hang_reports_open_trace_spans(self):
        release = threading.Event()

        def fn(comm):
            if comm.rank == 0:
                with TRACER.span("user.load"):
                    with TRACER.span("user.decode_tile"):
                        release.wait(30.0)
            return comm.rank

        try:
            with tracing(), pytest.raises(SpmdHangError) as excinfo:
                run_spmd(2, fn, deadlock_timeout=0.2, join_timeout=0.4)
        finally:
            release.set()
        message = str(excinfo.value)
        assert "rank 0 in user.load > user.decode_tile" in message

    def test_slow_but_progressing_run_is_not_flagged(self):
        """Total runtime far beyond join_timeout must be fine as long as
        ranks keep completing: the window renews on every join."""

        def fn(comm):
            # Ranks finish staggered, one per ~0.15s; each completion renews
            # the 0.4s window even though the whole run takes ~0.6s.
            import time

            time.sleep(0.15 * comm.rank)
            return comm.rank

        assert run_spmd(4, fn, deadlock_timeout=0.2, join_timeout=0.4) == [0, 1, 2, 3]

    def test_hang_releases_peers_blocked_in_fabric(self):
        """The driver aborts the fabric when it declares a hang, so ranks
        blocked on the wedged one are woken rather than left to their own
        watchdog."""
        release = threading.Event()

        def fn(comm):
            if comm.rank == 1:
                release.wait(30.0)
            else:
                comm.Recv(np.zeros(1), source=1)  # never satisfied

        try:
            with pytest.raises(SpmdHangError):
                run_spmd(2, fn, deadlock_timeout=10.0, join_timeout=0.4)
        finally:
            release.set()


class TestWorldCommunicators:
    def test_share_one_fabric(self):
        comms = world_communicators(3)
        assert all(c.fabric is comms[0].fabric for c in comms)
        assert [c.rank for c in comms] == [0, 1, 2]
        assert all(c.size == 3 for c in comms)

    def test_fabric_abort_flag(self):
        fabric = Fabric(2)
        assert fabric.aborted is None
        err = ValueError("x")
        fabric.abort(err)
        assert fabric.aborted is err


class TestAbortPropagation:
    """Regression: when one rank dies, *every* blocked peer must be released
    with AbortError — including ranks parked deep inside a collective —
    and run_spmd must surface the originating exception, not a peer's
    secondary abort."""

    @thread_only
    def test_abort_reaches_recv_and_collective_parked_ranks(self):
        from repro.mpisim import FLOAT

        aborted = []

        def fn(comm):
            rank = comm.rank
            if rank == 0:
                time.sleep(0.2)  # let the peers park first
                raise RuntimeError("originating failure")
            try:
                if rank == 1:
                    comm.Recv(np.zeros(1), source=0, tag=42)  # never sent
                else:
                    # Parked inside Alltoallw waiting on lanes from rank 0,
                    # which never calls the collective at all.
                    types = [FLOAT.Create_contiguous(1) for _ in range(comm.size)]
                    comm.Alltoallw(
                        np.zeros(comm.size, dtype=np.float32), types,
                        np.zeros(comm.size, dtype=np.float32), list(types),
                    )
            except AbortError:
                aborted.append(rank)
                raise

        with pytest.raises(RankFailure) as excinfo:
            spmd(4, fn)
        # The *original* failure wins, not the secondary AbortErrors.
        assert excinfo.value.rank == 0
        assert isinstance(excinfo.value.original, RuntimeError)
        assert "originating failure" in str(excinfo.value.original)
        # Every parked peer was released promptly via AbortError.
        assert sorted(aborted) == [1, 2, 3]


class TestHangReportFaultState:
    def test_hang_report_includes_fault_layer_diagnostics(self):
        """With a fault plan installed, SpmdHangError names the plan and
        per-rank op counters so a wedged chaos run is debuggable."""
        from repro.faults import FaultPlan, fault_plan

        release = threading.Event()

        def fn(comm):
            if comm.rank == 1:
                release.wait(30.0)  # wedged outside any fabric call
            return comm.rank

        plan = FaultPlan(seed=11, nranks=2, p_delay=0.0)
        try:
            with fault_plan(plan):
                with pytest.raises(SpmdHangError) as excinfo:
                    run_spmd(2, fn, deadlock_timeout=0.2, join_timeout=0.4)
        finally:
            release.set()
        message = str(excinfo.value)
        assert "fault layer:" in message
        assert "seed=11" in message

    def test_hang_report_omits_fault_state_when_inactive(self):
        release = threading.Event()

        def fn(comm):
            if comm.rank == 1:
                release.wait(30.0)
            return comm.rank

        try:
            with pytest.raises(SpmdHangError) as excinfo:
                run_spmd(2, fn, deadlock_timeout=0.2, join_timeout=0.4)
        finally:
            release.set()
        assert "fault layer:" not in str(excinfo.value)
