"""Parallel stack -> bricks conversion (the ParaView-motivation workflow)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Box
from repro.imaging import BrickedVolume, VolumeSpec, tooth_slice, write_stack
from repro.io import Assignment, brick_layer_ranges, convert_stack_to_bricks
from tests.conftest import spmd


@pytest.fixture(scope="module")
def stack(tmp_path_factory):
    spec = VolumeSpec(24, 16, 12, np.uint16)
    directory = tmp_path_factory.mktemp("conv")
    tiff_stack = write_stack(directory / "s", 12, lambda z: tooth_slice(spec, z))
    return tiff_stack, spec


class TestLayerRanges:
    def test_partition(self):
        pieces = [brick_layer_ranges(7, 3, r) for r in range(3)]
        assert pieces[0][0] == 0 and pieces[-1][1] == 7
        for (_, a), (b, _) in zip(pieces, pieces[1:]):
            assert a == b

    def test_more_ranks_than_layers(self):
        pieces = [brick_layer_ranges(2, 5, r) for r in range(5)]
        assert pieces[0] == (0, 1)
        assert pieces[1] == (1, 2)
        assert all(lo == hi for lo, hi in pieces[2:])  # empty


class TestConversion:
    @pytest.mark.parametrize("nprocs", [1, 3, 4])
    @pytest.mark.parametrize("strategy", [Assignment.CONSECUTIVE, Assignment.ROUND_ROBIN])
    def test_bricked_equals_stack(self, stack, tmp_path, nprocs, strategy):
        tiff_stack, _ = stack
        out = tmp_path / f"v_{nprocs}_{strategy.value}.bricks"

        def fn(comm):
            timers = convert_stack_to_bricks(
                comm, tiff_stack, out, brick=5, strategy=strategy
            )
            return timers.total("read") >= 0

        assert all(spmd(nprocs, fn))

        reference = tiff_stack.read_volume()  # (z, y, x)
        volume = BrickedVolume(out)
        assert volume.header.dims == (24, 16, 12)
        whole = volume.read_region(Box((0, 0, 0), (24, 16, 12)))
        assert np.array_equal(whole, reference)

    def test_random_block_access_after_conversion(self, stack, tmp_path):
        tiff_stack, _ = stack
        out = tmp_path / "v.bricks"

        def fn(comm):
            convert_stack_to_bricks(comm, tiff_stack, out, brick=4)

        spmd(4, fn)
        reference = tiff_stack.read_volume()
        volume = BrickedVolume(out)
        region = Box((5, 3, 2), (10, 8, 7))
        got = volume.read_region(region)
        assert np.array_equal(got, reference[2:9, 3:11, 5:15])
        # The point of the format: a small region touches few bricks ...
        assert volume.bricks_touched(region) < volume.header.n_bricks
        # ... whereas the TIFF stack would decode 7 whole slices.

    def test_more_ranks_than_brick_layers(self, stack, tmp_path):
        """Extra ranks contribute reads but write no bricks."""
        tiff_stack, _ = stack
        out = tmp_path / "v2.bricks"

        def fn(comm):
            convert_stack_to_bricks(comm, tiff_stack, out, brick=6)  # gz = 2

        spmd(5, fn)
        volume = BrickedVolume(out)
        reference = tiff_stack.read_volume()
        assert np.array_equal(
            volume.read_region(Box((0, 0, 0), (24, 16, 12))), reference
        )
