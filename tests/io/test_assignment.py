"""File-assignment strategy tests (Table II / III workload geometry)."""

from __future__ import annotations

import pytest

from repro.core import check_send_coverage
from repro.io import (
    Assignment,
    PAPER_STACK,
    StackGeometry,
    all_owned_chunks,
    assigned_images,
    owned_chunks,
    reads_per_process_no_ddr,
)
from repro.volren import grid_boxes

SMALL = StackGeometry(width=64, height=32, n_images=20, bytes_per_pixel=4)


class TestStackGeometry:
    def test_paper_stack_is_128_gib(self):
        assert PAPER_STACK.total_bytes == 128 * 2**30
        assert PAPER_STACK.image_bytes == 32 * 2**20

    def test_image_box(self):
        box = SMALL.image_box(3)
        assert box.offset == (0, 0, 3)
        assert box.dims == (64, 32, 1)

    def test_image_box_range(self):
        with pytest.raises(ValueError):
            SMALL.image_box(20)
        with pytest.raises(ValueError):
            SMALL.image_box(-1)

    def test_volume_dims(self):
        assert SMALL.volume_dims == (64, 32, 20)


class TestAssignedImages:
    def test_round_robin(self):
        assert assigned_images(SMALL, 4, 1, Assignment.ROUND_ROBIN) == [1, 5, 9, 13, 17]

    def test_consecutive(self):
        assert assigned_images(SMALL, 4, 0, Assignment.CONSECUTIVE) == [0, 1, 2, 3, 4]
        assert assigned_images(SMALL, 4, 3, Assignment.CONSECUTIVE) == [15, 16, 17, 18, 19]

    def test_block_cyclic(self):
        imgs = assigned_images(SMALL, 2, 0, Assignment.BLOCK_CYCLIC, block=3)
        assert imgs == [0, 1, 2, 6, 7, 8, 12, 13, 14, 18, 19]

    def test_every_image_read_exactly_once(self):
        for strategy in Assignment:
            seen = []
            for rank in range(4):
                seen.extend(assigned_images(SMALL, 4, rank, strategy, block=3))
            assert sorted(seen) == list(range(20)), strategy

    def test_uneven_round_robin(self):
        # 20 images over 3 ranks: 7, 7, 6.
        counts = [len(assigned_images(SMALL, 3, r, Assignment.ROUND_ROBIN)) for r in range(3)]
        assert counts == [7, 7, 6]

    def test_rank_bounds(self):
        with pytest.raises(ValueError):
            assigned_images(SMALL, 4, 4, Assignment.ROUND_ROBIN)

    def test_too_few_images_consecutive(self):
        with pytest.raises(ValueError):
            assigned_images(SMALL, 21, 0, Assignment.CONSECUTIVE)


class TestOwnedChunks:
    def test_consecutive_collapses_to_one_chunk(self):
        for rank in range(4):
            chunks = owned_chunks(SMALL, 4, rank, Assignment.CONSECUTIVE)
            assert len(chunks) == 1
            assert chunks[0].dims == (64, 32, 5)

    def test_round_robin_one_chunk_per_image(self):
        chunks = owned_chunks(SMALL, 4, 0, Assignment.ROUND_ROBIN)
        assert len(chunks) == 5
        assert all(c.dims == (64, 32, 1) for c in chunks)

    def test_block_cyclic_runs(self):
        chunks = owned_chunks(SMALL, 2, 0, Assignment.BLOCK_CYCLIC, block=3)
        # runs: [0-2], [6-8], [12-14], [18-19]
        assert [c.dims[2] for c in chunks] == [3, 3, 3, 2]

    def test_all_chunks_tile_volume(self):
        for strategy in Assignment:
            owns = all_owned_chunks(SMALL, 4, strategy, block=3)
            domain = check_send_coverage(owns)
            assert domain.dims == SMALL.volume_dims


class TestNoDdrReadCount:
    def test_counts_touched_slices(self):
        needs = grid_boxes(SMALL.volume_dims, (2, 2, 2))
        for need in needs:
            assert reads_per_process_no_ddr(SMALL, need) == 10

    def test_paper_no_ddr_read_counts(self):
        """27 procs on the 4096-image stack: each block spans ~1365 slices —
        the whole-image decode waste the paper's intro quantifies."""
        needs = grid_boxes(PAPER_STACK.volume_dims, (3, 3, 3))
        counts = {reads_per_process_no_ddr(PAPER_STACK, n) for n in needs}
        assert counts == {1365, 1366}
