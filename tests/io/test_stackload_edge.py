"""Edge cases of the DDR stack loader."""

from __future__ import annotations

import numpy as np
import pytest

from repro.imaging import VolumeSpec, tooth_slice, write_stack
from repro.io import Assignment, load_stack_ddr
from tests.conftest import spmd


@pytest.fixture(scope="module")
def tiny_stack(tmp_path_factory):
    spec = VolumeSpec(12, 8, 6, np.uint8)
    directory = tmp_path_factory.mktemp("tiny")
    return write_stack(directory / "s", 6, lambda z: tooth_slice(spec, z)), spec


class TestMoreRanksThanImages:
    def test_round_robin_with_idle_readers(self, tiny_stack):
        """8 ranks, 6 images: two ranks own no slices but still need blocks
        (the `dtype is None` fallback path)."""
        stack, _ = tiny_stack
        reference = stack.read_volume()

        def fn(comm):
            block = load_stack_ddr(comm, stack, (2, 2, 2), Assignment.ROUND_ROBIN)
            x0, y0, z0 = block.box.offset
            w, h, d = block.box.dims
            expect = reference[z0 : z0 + d, y0 : y0 + h, x0 : x0 + w]
            assert np.array_equal(block.data, expect)
            return True

        assert all(spmd(8, fn))

    def test_consecutive_rejects_too_many_ranks(self, tiny_stack):
        stack, _ = tiny_stack

        def fn(comm):
            with pytest.raises(ValueError, match="consecutively"):
                load_stack_ddr(comm, stack, (2, 2, 2), Assignment.CONSECUTIVE)

        spmd(8, fn)


class TestDegenerateGrids:
    def test_single_rank_whole_volume(self, tiny_stack):
        stack, _ = tiny_stack
        reference = stack.read_volume()

        def fn(comm):
            block = load_stack_ddr(comm, stack, (1, 1, 1), Assignment.CONSECUTIVE)
            assert np.array_equal(block.data, reference)
            return True

        assert all(spmd(1, fn))

    def test_z_only_decomposition_is_pure_local(self, tiny_stack):
        """Grid (1, 1, P) with consecutive assignment: every rank's need is
        exactly what it read — all traffic is self-copies."""
        stack, _ = tiny_stack

        def fn(comm):
            block = load_stack_ddr(comm, stack, (1, 1, 3), Assignment.CONSECUTIVE)
            return block.box.dims

        dims = spmd(3, fn)
        assert all(d == (12, 8, 2) for d in dims)
