"""End-to-end use case 1: parallel stack loading, DDR vs baseline equality."""

from __future__ import annotations

import numpy as np
import pytest

from repro.imaging import VolumeSpec, tooth_slice, write_stack
from repro.io import Assignment, load_stack_ddr, load_stack_no_ddr, stack_geometry
from tests.conftest import spmd


@pytest.fixture(scope="module")
def stack(tmp_path_factory):
    spec = VolumeSpec(24, 16, 12, np.uint16)
    directory = tmp_path_factory.mktemp("stack")
    return write_stack(directory / "tooth", 12, lambda z: tooth_slice(spec, z)), spec


class TestStackGeometry:
    def test_derived_from_files(self, stack):
        tiff_stack, spec = stack
        geom = stack_geometry(tiff_stack)
        assert geom.width == 24 and geom.height == 16
        assert geom.n_images == 12
        assert geom.bytes_per_pixel == 2


class TestLoaders:
    GRID = (2, 2, 2)

    def reference_volume(self, stack):
        tiff_stack, spec = stack
        return tiff_stack.read_volume()  # (z, y, x)

    def expected_block(self, volume, box):
        x0, y0, z0 = box.offset
        w, h, d = box.dims
        return volume[z0 : z0 + d, y0 : y0 + h, x0 : x0 + w]

    def test_no_ddr_blocks_match_volume(self, stack):
        tiff_stack, _ = stack
        volume = self.reference_volume(stack)

        def fn(comm):
            block = load_stack_no_ddr(comm, tiff_stack, self.GRID)
            assert np.array_equal(block.data, self.expected_block(volume, block.box))
            assert block.read_s > 0
            return block.box

        boxes = spmd(8, fn)
        assert len({b.offset for b in boxes}) == 8  # all distinct blocks

    @pytest.mark.parametrize("strategy", [Assignment.ROUND_ROBIN, Assignment.CONSECUTIVE])
    def test_ddr_blocks_match_volume(self, stack, strategy):
        tiff_stack, _ = stack
        volume = self.reference_volume(stack)

        def fn(comm):
            block = load_stack_ddr(comm, tiff_stack, self.GRID, strategy)
            assert np.array_equal(block.data, self.expected_block(volume, block.box))
            assert block.exchange_s >= 0
            return True

        assert all(spmd(8, fn))

    def test_ddr_equals_no_ddr(self, stack):
        tiff_stack, _ = stack

        def fn(comm):
            base = load_stack_no_ddr(comm, tiff_stack, self.GRID)
            ddr = load_stack_ddr(comm, tiff_stack, self.GRID, Assignment.CONSECUTIVE)
            assert base.box == ddr.box
            assert np.array_equal(base.data, ddr.data)
            return True

        assert all(spmd(8, fn))

    def test_p2p_backend(self, stack):
        tiff_stack, _ = stack

        def fn(comm):
            a = load_stack_ddr(comm, tiff_stack, self.GRID, Assignment.ROUND_ROBIN,
                               backend="p2p")
            b = load_stack_ddr(comm, tiff_stack, self.GRID, Assignment.ROUND_ROBIN)
            assert np.array_equal(a.data, b.data)
            return True

        assert all(spmd(8, fn))

    def test_uneven_grid(self, stack):
        tiff_stack, _ = stack
        volume = self.reference_volume(stack)

        def fn(comm):
            block = load_stack_ddr(comm, tiff_stack, (3, 1, 2), Assignment.ROUND_ROBIN)
            assert np.array_equal(block.data, self.expected_block(volume, block.box))
            return True

        assert all(spmd(6, fn))

    def test_ddr_reads_each_slice_once(self, stack, monkeypatch):
        """Count actual decode calls: DDR must do exactly n_images total."""
        tiff_stack, _ = stack
        from repro.imaging.stack import TiffStack

        counts = []

        original = TiffStack.read_slice

        def counting(self, z):
            counts.append(z)
            return original(self, z)

        monkeypatch.setattr(TiffStack, "read_slice", counting)

        def fn(comm):
            load_stack_ddr(comm, tiff_stack, self.GRID, Assignment.CONSECUTIVE)

        spmd(8, fn)
        assert sorted(counts) == list(range(12))

    def test_no_ddr_reads_slices_redundantly(self, stack, monkeypatch):
        tiff_stack, _ = stack
        from repro.imaging.stack import TiffStack

        counts = []
        original = TiffStack.read_slice

        def counting(self, z):
            counts.append(z)
            return original(self, z)

        monkeypatch.setattr(TiffStack, "read_slice", counting)

        def fn(comm):
            load_stack_no_ddr(comm, tiff_stack, self.GRID)

        spmd(8, fn)
        # 8 ranks x 6 touched slices = 48 decodes of only 12 images: the 4x
        # redundancy DDR eliminates (g^2 = 4 ranks share each slice).
        assert len(counts) == 48
