"""Bricked volume format tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Box
from repro.imaging import BrickFormatError, BrickedHeader, BrickedVolume


class TestHeader:
    def test_grid_and_sizes(self):
        header = BrickedHeader(dims=(100, 50, 70), brick=32, dtype=np.uint16)
        assert header.grid == (4, 2, 3)
        assert header.n_bricks == 24
        assert header.brick_bytes == 32**3 * 2

    def test_pack_unpack(self):
        header = BrickedHeader(dims=(10, 20, 30), brick=8, dtype=np.float32)
        assert BrickedHeader.unpack(header.pack()) == header

    def test_bad_magic(self):
        with pytest.raises(BrickFormatError, match="magic"):
            BrickedHeader.unpack(b"NOTBRICK" + b"\x00" * 50)

    def test_too_small(self):
        with pytest.raises(BrickFormatError):
            BrickedHeader.unpack(b"xx")

    def test_validation(self):
        with pytest.raises(BrickFormatError):
            BrickedHeader(dims=(4, 4, 4), brick=0, dtype=np.uint8)
        with pytest.raises(BrickFormatError):
            BrickedHeader(dims=(0, 4, 4), brick=2, dtype=np.uint8)

    def test_brick_box_clipped_at_edges(self):
        header = BrickedHeader(dims=(10, 10, 10), brick=4, dtype=np.uint8)
        assert header.brick_box(0, 0, 0) == Box((0, 0, 0), (4, 4, 4))
        assert header.brick_box(2, 2, 2) == Box((8, 8, 8), (2, 2, 2))

    def test_brick_bounds_checked(self):
        header = BrickedHeader(dims=(10, 10, 10), brick=4, dtype=np.uint8)
        with pytest.raises(BrickFormatError):
            header.brick_offset(3, 0, 0)

    def test_offsets_distinct_and_ordered(self):
        header = BrickedHeader(dims=(9, 9, 9), brick=4, dtype=np.uint8)
        offsets = [
            header.brick_offset(i, j, k)
            for k in range(3) for j in range(3) for i in range(3)
        ]
        assert offsets == sorted(offsets)
        assert len(set(offsets)) == 27


class TestVolumeRoundtrip:
    def volume(self, tmp_path, dims=(20, 12, 9), brick=4, dtype=np.uint16):
        return BrickedVolume.create(tmp_path / "v.bricks", dims, dtype, brick)

    def test_create_allocates_full_file(self, tmp_path):
        vol = self.volume(tmp_path)
        assert vol.path.stat().st_size == vol.header.file_size

    def test_write_read_brick(self, tmp_path, rng):
        vol = self.volume(tmp_path)
        data = rng.integers(0, 2**16 - 1, (4, 4, 4)).astype(np.uint16)
        vol.write_brick(1, 1, 0, data)
        assert np.array_equal(vol.read_brick(1, 1, 0), data)
        # untouched brick reads as zeros
        assert vol.read_brick(0, 0, 0).sum() == 0

    def test_edge_brick_clipped_shape(self, tmp_path, rng):
        vol = self.volume(tmp_path)  # dims (20,12,9), brick 4 -> grid (5,3,3)
        box = vol.header.brick_box(4, 2, 2)
        assert box.dims == (4, 4, 1)
        data = rng.integers(0, 99, box.np_shape()).astype(np.uint16)
        vol.write_brick(4, 2, 2, data)
        assert np.array_equal(vol.read_brick(4, 2, 2), data)

    def test_wrong_shape_rejected(self, tmp_path):
        vol = self.volume(tmp_path)
        with pytest.raises(BrickFormatError, match="shape"):
            vol.write_brick(0, 0, 0, np.zeros((2, 2, 2), np.uint16))

    def test_wrong_dtype_rejected(self, tmp_path):
        vol = self.volume(tmp_path)
        with pytest.raises(BrickFormatError, match="dtype"):
            vol.write_brick(0, 0, 0, np.zeros((4, 4, 4), np.float32))

    def test_read_region_across_bricks(self, tmp_path, rng):
        dims = (20, 12, 9)
        reference = rng.integers(0, 2**16 - 1, (9, 12, 20)).astype(np.uint16)
        vol = self.volume(tmp_path, dims=dims)
        header = vol.header
        gx, gy, gz = header.grid
        for k in range(gz):
            for j in range(gy):
                for i in range(gx):
                    box = header.brick_box(i, j, k)
                    x0, y0, z0 = box.offset
                    w, h, d = box.dims
                    vol.write_brick(
                        i, j, k,
                        np.ascontiguousarray(
                            reference[z0 : z0 + d, y0 : y0 + h, x0 : x0 + w]
                        ),
                    )
        region = Box((3, 2, 1), (10, 7, 6))
        got = vol.read_region(region)
        assert np.array_equal(got, reference[1:7, 2:9, 3:13])

    def test_region_outside_rejected(self, tmp_path):
        vol = self.volume(tmp_path)
        with pytest.raises(BrickFormatError, match="outside"):
            vol.read_region(Box((18, 0, 0), (4, 2, 2)))

    def test_bricks_touched_counts(self, tmp_path):
        vol = self.volume(tmp_path)  # brick 4
        assert vol.bricks_touched(Box((0, 0, 0), (4, 4, 4))) == 1
        assert vol.bricks_touched(Box((2, 2, 2), (4, 4, 4))) == 8
        assert vol.bricks_touched(Box((0, 0, 0), (20, 12, 9))) == vol.header.n_bricks

    @given(seed=st.integers(0, 300))
    @settings(max_examples=15, deadline=None)
    def test_property_random_regions(self, seed, tmp_path_factory):
        rng = np.random.default_rng(seed)
        dims = tuple(int(rng.integers(5, 15)) for _ in range(3))
        brick = int(rng.integers(2, 6))
        reference = rng.integers(0, 255, tuple(reversed(dims))).astype(np.uint8)
        path = tmp_path_factory.mktemp("b") / "v.bricks"
        vol = BrickedVolume.create(path, dims, np.uint8, brick)
        gx, gy, gz = vol.header.grid
        for k in range(gz):
            for j in range(gy):
                for i in range(gx):
                    box = vol.header.brick_box(i, j, k)
                    x0, y0, z0 = box.offset
                    w, h, d = box.dims
                    vol.write_brick(
                        i, j, k,
                        np.ascontiguousarray(
                            reference[z0 : z0 + d, y0 : y0 + h, x0 : x0 + w]
                        ),
                    )
        # random region
        offset = tuple(int(rng.integers(0, d)) for d in dims)
        size = tuple(
            int(rng.integers(1, d - o + 1)) for o, d in zip(offset, dims)
        )
        region = Box(offset, size)
        got = vol.read_region(region)
        x0, y0, z0 = offset
        w, h, d = size
        assert np.array_equal(got, reference[z0 : z0 + d, y0 : y0 + h, x0 : x0 + w])
