"""TIFF codec tests: roundtrips, format details, error handling."""

from __future__ import annotations

import io
import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.imaging import TiffError, read_tiff, read_tiff_info, write_tiff

DTYPES = [np.uint8, np.uint16, np.uint32, np.float32]


def roundtrip(image: np.ndarray, rows_per_strip: int = 64) -> np.ndarray:
    buf = io.BytesIO()
    write_tiff(buf, image, rows_per_strip=rows_per_strip)
    buf.seek(0)
    return read_tiff(buf)


class TestRoundtrip:
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_exact_roundtrip(self, dtype, rng):
        if np.issubdtype(dtype, np.floating):
            image = rng.random((37, 53)).astype(dtype)
        else:
            image = rng.integers(0, np.iinfo(dtype).max, (37, 53)).astype(dtype)
        out = roundtrip(image)
        assert out.dtype == image.dtype
        assert np.array_equal(out, image)

    def test_single_strip(self, rng):
        image = rng.integers(0, 255, (16, 16)).astype(np.uint8)
        assert np.array_equal(roundtrip(image, rows_per_strip=16), image)

    def test_many_strips(self, rng):
        image = rng.integers(0, 255, (100, 7)).astype(np.uint8)
        assert np.array_equal(roundtrip(image, rows_per_strip=3), image)

    def test_one_pixel(self):
        image = np.array([[42]], dtype=np.uint8)
        assert np.array_equal(roundtrip(image), image)

    def test_single_row(self, rng):
        image = rng.integers(0, 2**16, (1, 300)).astype(np.uint16)
        assert np.array_equal(roundtrip(image), image)

    @given(
        h=st.integers(1, 40),
        w=st.integers(1, 40),
        rows=st.integers(1, 45),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_roundtrip(self, h, w, rows, seed):
        rng = np.random.default_rng(seed)
        image = rng.integers(0, 2**32 - 1, (h, w), dtype=np.uint32)
        assert np.array_equal(roundtrip(image, rows_per_strip=rows), image)

    def test_file_roundtrip(self, tmp_path, rng):
        image = rng.random((20, 30)).astype(np.float32)
        path = tmp_path / "x.tif"
        write_tiff(path, image)
        assert np.array_equal(read_tiff(path), image)


class TestFormatDetails:
    def test_header_is_little_endian_classic(self, rng):
        buf = io.BytesIO()
        write_tiff(buf, rng.integers(0, 255, (4, 4)).astype(np.uint8))
        raw = buf.getvalue()
        assert raw[:2] == b"II"
        assert struct.unpack("<H", raw[2:4])[0] == 42

    def test_info_fields(self, rng):
        buf = io.BytesIO()
        write_tiff(buf, rng.integers(0, 255, (48, 32)).astype(np.uint16), rows_per_strip=16)
        info = read_tiff_info(buf.getvalue())
        assert (info.width, info.height) == (32, 48)
        assert info.dtype == np.uint16
        assert len(info.strip_offsets) == 3
        assert info.rows_per_strip == 16
        assert info.nbytes == 48 * 32 * 2

    def test_float32_sample_format(self, rng):
        buf = io.BytesIO()
        write_tiff(buf, rng.random((8, 8)).astype(np.float32))
        info = read_tiff_info(buf.getvalue())
        assert info.dtype == np.float32

    def test_big_endian_read(self, rng):
        """Hand-build a minimal big-endian ('MM') single-strip TIFF."""
        image = rng.integers(0, 2**16 - 1, (3, 5)).astype(np.uint16)
        pixels = image.astype(">u2").tobytes()
        entries = [
            (256, 4, 1, 5),  # width
            (257, 4, 1, 3),  # height
            (258, 3, 1, 16),
            (259, 3, 1, 1),
            (262, 3, 1, 1),
            (273, 4, 1, 8),  # strip at byte 8
            (277, 3, 1, 1),
            (278, 4, 1, 3),
            (279, 4, 1, len(pixels)),
            (339, 3, 1, 1),
        ]
        ifd_offset = 8 + len(pixels)
        blob = struct.pack(">2sHI", b"MM", 42, ifd_offset) + pixels
        blob += struct.pack(">H", len(entries))
        for tag, ftype, count, value in entries:
            if ftype == 3:
                blob += struct.pack(">HHIHH", tag, ftype, count, value, 0)
            else:
                blob += struct.pack(">HHII", tag, ftype, count, value)
        blob += struct.pack(">I", 0)
        out = read_tiff(io.BytesIO(blob))
        assert np.array_equal(out, image)


class TestErrors:
    def test_non_2d_rejected(self):
        with pytest.raises(TiffError):
            write_tiff(io.BytesIO(), np.zeros((2, 2, 3), dtype=np.uint8))

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(TiffError):
            write_tiff(io.BytesIO(), np.zeros((2, 2), dtype=np.int64))

    def test_bad_rows_per_strip(self):
        with pytest.raises(TiffError):
            write_tiff(io.BytesIO(), np.zeros((2, 2), dtype=np.uint8), rows_per_strip=0)

    def test_bad_magic(self):
        with pytest.raises(TiffError, match="byte-order"):
            read_tiff_info(b"XX" + b"\x00" * 10)

    def test_bad_version(self):
        with pytest.raises(TiffError, match="magic"):
            read_tiff_info(struct.pack("<2sHI", b"II", 43, 8) + b"\x00" * 8)

    def test_truncated(self):
        with pytest.raises(TiffError):
            read_tiff_info(b"II")

    def test_ifd_offset_out_of_range(self):
        with pytest.raises(TiffError, match="IFD"):
            read_tiff_info(struct.pack("<2sHI", b"II", 42, 9999))

    def test_strip_beyond_eof(self, rng):
        buf = io.BytesIO()
        write_tiff(buf, rng.integers(0, 255, (8, 8)).astype(np.uint8))
        raw = bytearray(buf.getvalue())
        # Corrupt: point the strip offset near EOF.
        blob = bytes(raw)
        info = read_tiff_info(blob)
        assert info.strip_offsets[0] == 8
        corrupted = blob[: len(blob) - 70]  # chop the pixel data region indirectly
        with pytest.raises(TiffError):
            read_tiff(io.BytesIO(corrupted[:40]))
