"""Synthetic phantom + on-disk stack tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.imaging import (
    TiffStack,
    VolumeSpec,
    brain_slice,
    phantom_slice,
    phantom_volume,
    stack_nbytes,
    tooth_slice,
    value_noise_slice,
    write_stack,
)


class TestVolumeSpec:
    def test_dtype_normalised(self):
        spec = VolumeSpec(4, 4, 4, "u1")
        assert spec.dtype == np.uint8

    def test_validation(self):
        with pytest.raises(ValueError):
            VolumeSpec(0, 4, 4, np.uint8)


class TestPhantoms:
    SPEC8 = VolumeSpec(64, 48, 32, np.uint8)
    SPEC32 = VolumeSpec(64, 48, 32, np.float32)

    def test_tooth_shape_dtype(self):
        s = tooth_slice(self.SPEC8, 16)
        assert s.shape == (48, 64)
        assert s.dtype == np.uint8

    def test_tooth_float32(self):
        s = tooth_slice(self.SPEC32, 16)
        assert s.dtype == np.float32
        assert 0.0 <= s.min() and s.max() <= 1.0

    def test_tooth_has_structure(self):
        """Enamel (bright), dentin (medium), cavity (dark) all present."""
        s = tooth_slice(self.SPEC32, 16).astype(np.float64)
        inside = s[s > 0]
        assert inside.size > 0
        assert inside.max() > 0.85  # enamel
        assert (s == 0).any()  # background
        assert ((inside > 0.02) & (inside < 0.2)).any()  # pulp/canal

    def test_tooth_deterministic(self):
        a = tooth_slice(self.SPEC8, 10)
        b = tooth_slice(self.SPEC8, 10)
        assert np.array_equal(a, b)

    def test_tooth_varies_with_z(self):
        assert not np.array_equal(tooth_slice(self.SPEC8, 5), tooth_slice(self.SPEC8, 25))

    def test_slice_out_of_range(self):
        with pytest.raises(ValueError):
            tooth_slice(self.SPEC8, 32)
        with pytest.raises(ValueError):
            brain_slice(self.SPEC8, -1)

    def test_brain_shape_and_range(self):
        s = brain_slice(self.SPEC8, 16)
        assert s.shape == (48, 64)
        assert s.max() > 0

    def test_brain_envelope_vanishes_at_corners(self):
        s = brain_slice(self.SPEC32, 16)
        assert s[0, 0] == 0.0 and s[-1, -1] == 0.0

    def test_phantom_dispatch(self):
        assert np.array_equal(
            phantom_slice("tooth", self.SPEC8, 4), tooth_slice(self.SPEC8, 4)
        )
        with pytest.raises(ValueError, match="unknown phantom"):
            phantom_slice("femur", self.SPEC8, 0)

    def test_phantom_volume_stacks_slices(self):
        spec = VolumeSpec(16, 12, 5, np.uint8)
        vol = phantom_volume("tooth", spec)
        assert vol.shape == (5, 12, 16)
        assert np.array_equal(vol[2], tooth_slice(spec, 2))


class TestValueNoise:
    SPEC = VolumeSpec(32, 32, 32, np.float32)

    def test_range(self):
        n = value_noise_slice(self.SPEC, 7, scale=8)
        assert n.min() >= 0.0 and n.max() <= 1.0

    def test_deterministic_and_seeded(self):
        a = value_noise_slice(self.SPEC, 3, seed=1)
        b = value_noise_slice(self.SPEC, 3, seed=1)
        c = value_noise_slice(self.SPEC, 3, seed=2)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_smooth_in_z(self):
        """Adjacent slices must correlate (trilinear continuity)."""
        a = value_noise_slice(self.SPEC, 10, scale=8)
        b = value_noise_slice(self.SPEC, 11, scale=8)
        far = value_noise_slice(self.SPEC, 26, scale=8)
        near_diff = np.abs(a - b).mean()
        far_diff = np.abs(a - far).mean()
        assert near_diff < far_diff


class TestStack:
    def test_write_read_roundtrip(self, tmp_path):
        spec = VolumeSpec(24, 16, 6, np.uint16)
        stack = write_stack(tmp_path / "s", 6, lambda z: tooth_slice(spec, z))
        assert len(stack) == 6
        assert stack.indices() == list(range(6))
        vol = stack.read_volume()
        assert vol.shape == (6, 16, 24)
        assert np.array_equal(vol[3], tooth_slice(spec, 3))

    def test_read_single_slice(self, tmp_path):
        spec = VolumeSpec(8, 8, 3, np.uint8)
        stack = write_stack(tmp_path / "s", 3, lambda z: brain_slice(spec, z))
        assert np.array_equal(stack.read_slice(1), brain_slice(spec, 1))

    def test_missing_stack(self, tmp_path):
        stack = TiffStack(tmp_path)
        with pytest.raises(FileNotFoundError):
            stack.read_volume()

    def test_gap_detected(self, tmp_path):
        spec = VolumeSpec(8, 8, 3, np.uint8)
        stack = write_stack(tmp_path / "s", 3, lambda z: brain_slice(spec, z))
        stack.slice_path(1).unlink()
        with pytest.raises(ValueError, match="gaps"):
            stack.read_volume()

    def test_stack_nbytes(self, tmp_path):
        spec = VolumeSpec(8, 8, 2, np.uint8)
        stack = write_stack(tmp_path / "s", 2, lambda z: tooth_slice(spec, z))
        nbytes = stack_nbytes(stack)
        assert nbytes > 2 * 64  # at least the pixel data
        assert nbytes == sum(p.stat().st_size for p in (tmp_path / "s").iterdir())

    def test_foreign_files_ignored(self, tmp_path):
        spec = VolumeSpec(8, 8, 2, np.uint8)
        stack = write_stack(tmp_path / "s", 2, lambda z: tooth_slice(spec, z))
        (tmp_path / "s" / "notes.txt").write_text("hi")
        assert stack.indices() == [0, 1]
