"""Chaos harness: a short sweep must classify every run, never hang."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.faults.chaos import (
    BACKENDS,
    DEGRADED,
    FAILED,
    OK,
    TYPED_ERROR,
    ChaosReport,
    ChaosRun,
    run_chaos,
)


class TestRunChaos:
    def test_short_sweep_passes_and_covers_backends(self):
        report = run_chaos(seed=0, runs=6, ops=60, nprocs=2)
        assert len(report.runs) == 6
        assert report.passed, report.summary()
        assert {run.backend for run in report.runs} == set(BACKENDS)
        for run in report.runs:
            assert run.outcome in (OK, DEGRADED, TYPED_ERROR)
            if run.outcome != OK:
                assert run.error  # classified outcomes carry their cause

    def test_sweep_is_reproducible(self):
        a = run_chaos(seed=3, runs=3, ops=40, nprocs=2)
        b = run_chaos(seed=3, runs=3, ops=40, nprocs=2)
        assert [r.outcome for r in a.runs] == [r.outcome for r in b.runs]
        assert [r.injected for r in a.runs] == [r.injected for r in b.runs]

    def test_rejects_single_rank(self):
        with pytest.raises(ValueError):
            run_chaos(nprocs=1)


class TestReport:
    def test_empty_report_does_not_pass(self):
        assert not ChaosReport().passed

    def test_failed_run_fails_report_and_is_summarized(self):
        report = ChaosReport(runs=[
            ChaosRun(index=0, seed=9, workload="redistribute", backend="p2p",
                     transport="packed", outcome=FAILED, error="HangError: x"),
        ])
        assert not report.passed
        assert "FAILED run 0 (seed 9" in report.summary()


class TestCli:
    def test_chaos_subcommand_exit_zero(self, capsys):
        code = main(["chaos", "--runs", "3", "--ops", "40", "--nprocs", "2",
                     "--quiet"])
        assert code == 0
        assert "chaos: 3 runs" in capsys.readouterr().out
