"""Chaos harness: a short sweep must classify every run, never hang."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.faults.chaos import (
    BACKENDS,
    DEGRADED,
    FAILED,
    OK,
    RECOVERED,
    TYPED_ERROR,
    ChaosReport,
    ChaosRun,
    run_chaos,
)


class TestRunChaos:
    def test_short_sweep_passes_and_covers_backends(self):
        report = run_chaos(seed=0, runs=6, ops=60, nprocs=2)
        assert len(report.runs) == 6
        assert report.passed, report.summary()
        assert {run.backend for run in report.runs} == set(BACKENDS)
        for run in report.runs:
            assert run.outcome in (OK, DEGRADED, TYPED_ERROR)
            if run.outcome != OK:
                assert run.error  # classified outcomes carry their cause

    def test_sweep_is_reproducible(self):
        a = run_chaos(seed=3, runs=3, ops=40, nprocs=2)
        b = run_chaos(seed=3, runs=3, ops=40, nprocs=2)
        assert [r.outcome for r in a.runs] == [r.outcome for r in b.runs]
        assert [r.injected for r in a.runs] == [r.injected for r in b.runs]

    def test_rejects_single_rank(self):
        with pytest.raises(ValueError):
            run_chaos(nprocs=1)


class TestCrashMode:
    def test_single_crash_sweep_never_hangs_and_recovers(self):
        report = run_chaos(seed=0, runs=8, ops=120, crashes=True)
        assert len(report.runs) == 8
        assert report.passed, report.summary()
        for run in report.runs:
            assert run.outcome in (OK, RECOVERED, DEGRADED, TYPED_ERROR)
        # the tightened crash window makes most runs actually lose a rank
        assert any(run.outcome == RECOVERED for run in report.runs)

    def test_crash_sweep_is_reproducible(self):
        a = run_chaos(seed=5, runs=4, ops=80, crashes=True)
        b = run_chaos(seed=5, runs=4, ops=80, crashes=True)
        assert [r.outcome for r in a.runs] == [r.outcome for r in b.runs]

    def test_runs_record_fault_stats(self):
        report = run_chaos(seed=0, runs=3, ops=80, crashes=True)
        assert all(isinstance(run.stats, dict) for run in report.runs)


class TestResizeMode:
    def test_resize_sweep_is_bitwise_or_typed(self):
        report = run_chaos(seed=0, runs=6, ops=80, resizes=True)
        assert report.passed
        workloads = {run.workload for run in report.runs}
        assert "resize" in workloads
        assert "pipeline-resize" in workloads
        # No crashes are injected, so nothing should *need* recovery.
        assert all(
            run.outcome in ("ok", "typed-error") for run in report.runs
        )

    def test_resize_sweep_is_reproducible(self):
        a = run_chaos(seed=7, runs=3, ops=60, resizes=True)
        b = run_chaos(seed=7, runs=3, ops=60, resizes=True)
        assert [r.outcome for r in a.runs] == [r.outcome for r in b.runs]
        assert [r.injected for r in a.runs] == [r.injected for r in b.runs]

    def test_modes_are_exclusive(self):
        with pytest.raises(ValueError):
            run_chaos(crashes=True, resizes=True)


class TestToDict:
    def test_report_round_trips_to_json(self, tmp_path):
        import json

        report = run_chaos(seed=0, runs=3, ops=40, nprocs=2)
        data = report.to_dict()
        assert data["passed"] is True
        assert sum(data["counts"].values()) == 3
        assert len(data["runs"]) == 3
        assert {"index", "seed", "outcome", "stats"} <= set(data["runs"][0])
        # must be JSON-serializable as-is
        path = tmp_path / "chaos.json"
        path.write_text(json.dumps(data))
        assert json.loads(path.read_text())["counts"] == data["counts"]


class TestReport:
    def test_empty_report_does_not_pass(self):
        assert not ChaosReport().passed

    def test_failed_run_fails_report_and_is_summarized(self):
        report = ChaosReport(runs=[
            ChaosRun(index=0, seed=9, workload="redistribute", backend="p2p",
                     transport="packed", outcome=FAILED, error="HangError: x"),
        ])
        assert not report.passed
        assert "FAILED run 0 (seed 9" in report.summary()


class TestCli:
    def test_chaos_subcommand_exit_zero(self, capsys):
        code = main(["chaos", "--runs", "3", "--ops", "40", "--nprocs", "2",
                     "--quiet"])
        assert code == 0
        assert "chaos: 3 runs" in capsys.readouterr().out

    def test_chaos_resizes_flag(self, capsys):
        code = main(["chaos", "--runs", "3", "--ops", "60", "--resizes",
                     "--quiet"])
        assert code == 0
        assert "chaos: 3 runs" in capsys.readouterr().out

    def test_chaos_crashes_flag_with_json_artifact(self, capsys, tmp_path):
        import json

        path = tmp_path / "report.json"
        code = main(["chaos", "--runs", "4", "--ops", "80", "--crashes",
                     "--quiet", "--json", str(path)])
        assert code == 0
        assert str(path) in capsys.readouterr().out
        data = json.loads(path.read_text())
        assert data["passed"] is True
        assert sum(data["counts"].values()) == 4
