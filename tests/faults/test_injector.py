"""Fault layer end-to-end: each fault kind injected through real exchanges.

Every test runs a tiny SPMD workload under a scripted ``FaultPlan`` via the
``fault_plan`` contextmanager, then asserts on the typed outcome and the
``FaultStats`` counters.  Scripted specs use ``op=None`` plus tag filters
where possible so the assertions do not depend on exact op numbering.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import FaultPlan, FaultSpec, ReliabilityPolicy, fault_plan
from repro.faults.injector import FAULTS, clear_fault_plan, install_fault_plan
from repro.faults.policy import CORRUPTION_RAISE
from repro.mpisim import (
    CorruptionError,
    RankCrashError,
    RankFailure,
    RetriesExhaustedError,
    TimeoutError_,
)
from repro.obs import MetricsRegistry
from tests.conftest import spmd

PING_TAG = 7


def _ping(comm):
    """Rank 0 sends arange(16) to rank 1; rank 1 returns what it received."""
    if comm.rank == 0:
        comm.Send(np.arange(16, dtype=np.float64), dest=1, tag=PING_TAG)
        return None
    buf = np.zeros(16, dtype=np.float64)
    comm.Recv(buf, source=0, tag=PING_TAG)
    return buf


class TestLifecycle:
    def test_layer_inactive_by_default(self):
        clear_fault_plan()
        assert not FAULTS.active
        assert FAULTS.plan is None
        assert _ping_ok()

    def test_install_and_clear(self):
        plan = FaultPlan(seed=1, nranks=2)
        install_fault_plan(plan)
        assert FAULTS.active
        assert FAULTS.plan is plan
        clear_fault_plan()
        assert not FAULTS.active
        assert FAULTS.plan is None

    def test_contextmanager_restores_prior_state(self):
        clear_fault_plan()
        plan = FaultPlan(seed=2, nranks=2)
        with fault_plan(plan) as layer:
            assert layer is FAULTS
            assert FAULTS.active
            assert FAULTS.plan is plan
        assert not FAULTS.active
        assert FAULTS.plan is None
        # Stats outlive the plan for post-mortems.
        assert isinstance(FAULTS.stats.snapshot(), dict)


def _ping_ok() -> bool:
    results = spmd(2, _ping)
    return np.array_equal(results[1], np.arange(16, dtype=np.float64))


class TestDelay:
    def test_scripted_delay_stalls_but_delivers(self):
        plan = FaultPlan(
            seed=0, nranks=2,
            events=(FaultSpec(kind="delay", rank=0, delay_s=0.01),),
        )
        with fault_plan(plan):
            assert _ping_ok()
            assert FAULTS.stats.get("delays") >= 1


class TestDrop:
    def test_dropped_message_times_out_with_typed_error(self):
        """A silently dropped send surfaces on the *receiver* as a typed
        per-op deadline timeout, never a hang."""
        plan = FaultPlan(
            seed=0, nranks=2,
            events=(FaultSpec(kind="drop", rank=0, tag=PING_TAG),),
        )
        policy = ReliabilityPolicy(op_deadline_s=0.3)
        with fault_plan(plan, policy):
            with pytest.raises(RankFailure) as excinfo:
                spmd(2, _ping)
            assert excinfo.value.rank == 1
            assert isinstance(excinfo.value.original, TimeoutError_)
            assert FAULTS.stats.get("drops") == 1


class TestTransient:
    def test_transient_send_healed_by_retries(self):
        plan = FaultPlan(
            seed=0, nranks=2,
            events=(FaultSpec(kind="send", rank=0, count=2),),
        )
        with fault_plan(plan):  # default policy allows 3 retries
            assert _ping_ok()
            assert FAULTS.stats.get("transient_send") == 2
            assert FAULTS.stats.get("retries") == 2
            assert FAULTS.stats.get("retries_exhausted") == 0

    def test_transient_recv_healed_by_retries(self):
        plan = FaultPlan(
            seed=0, nranks=2,
            events=(FaultSpec(kind="recv", rank=1, count=1),),
        )
        with fault_plan(plan):
            assert _ping_ok()
            assert FAULTS.stats.get("transient_recv") == 1

    def test_retry_budget_exhaustion_is_typed(self):
        plan = FaultPlan(
            seed=0, nranks=2,
            events=(FaultSpec(kind="send", rank=0, count=10),),
        )
        policy = ReliabilityPolicy(max_retries=2, backoff_base_s=0.0001)
        with fault_plan(plan, policy):
            with pytest.raises(RankFailure) as excinfo:
                spmd(2, _ping)
            assert excinfo.value.rank == 0
            assert isinstance(excinfo.value.original, RetriesExhaustedError)
            assert FAULTS.stats.get("retries_exhausted") == 1


class TestCorruption:
    def test_corruption_healed_by_reretrieve(self):
        """CRC32 catches the flipped byte; the retained pristine payload
        heals the message transparently (default policy)."""
        plan = FaultPlan(
            seed=0, nranks=2,
            events=(FaultSpec(kind="corrupt", rank=0, tag=PING_TAG),),
        )
        with fault_plan(plan):
            assert _ping_ok()  # bitwise-correct despite the corruption
            assert FAULTS.stats.get("corruptions") >= 1
            assert FAULTS.stats.get("corruption_detected") >= 1
            assert FAULTS.stats.get("reretrieves") >= 1

    def test_corruption_raise_mode(self):
        plan = FaultPlan(
            seed=0, nranks=2,
            events=(FaultSpec(kind="corrupt", rank=0, tag=PING_TAG),),
        )
        policy = ReliabilityPolicy(corruption=CORRUPTION_RAISE)
        with fault_plan(plan, policy):
            with pytest.raises(RankFailure) as excinfo:
                spmd(2, _ping)
            assert isinstance(excinfo.value.original, CorruptionError)
            assert FAULTS.stats.get("reretrieves") == 0


class TestCrash:
    def test_rank_crash_aborts_peers_with_typed_error(self):
        plan = FaultPlan(seed=0, nranks=2, crash_rank=0, crash_at_op=0)
        with fault_plan(plan):
            with pytest.raises(RankFailure) as excinfo:
                spmd(2, _ping)
            assert excinfo.value.rank == 0
            assert isinstance(excinfo.value.original, RankCrashError)
            assert FAULTS.stats.get("crashes") >= 1


class TestMetricsBridge:
    def test_absorb_faults_into_registry(self):
        plan = FaultPlan(
            seed=0, nranks=2,
            events=(FaultSpec(kind="send", rank=0, count=2),),
        )
        with fault_plan(plan):
            assert _ping_ok()
            registry = MetricsRegistry()
            registry.absorb_faults(FAULTS.stats)
            assert registry.counters["fault.transient_send"] == 2
            assert registry.counters["fault.retries"] == 2
            # Zero counters are not exported.
            assert "fault.crashes" not in registry.counters
