"""Engine-level recovery: round retries, exhaustion, and resumable progress.

Round-entry faults (``kind="round"``) fire *before* any message of the
round is posted, so the engine retries them locally without disturbing
collective matching; these tests script such faults and assert the
exchange still produces bitwise-correct output, records its retries in
``ExchangeProgress``, and skips already-completed rounds on resume.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Box, ExchangeProgress, Redistributor
from repro.faults import FaultPlan, FaultSpec, ReliabilityPolicy, fault_plan
from repro.mpisim import RankFailure, RetriesExhaustedError
from tests.conftest import spmd


def ring_layout(nprocs: int, rank: int):
    """Each rank owns cell ``rank`` and needs its right neighbour's cell."""
    return [Box((rank,), (1,))], Box(((rank + 1) % nprocs,), (1,))


def _ring_exchange(comm):
    red = Redistributor(comm, ndims=1, dtype=np.float32, backend="p2p")
    own, need = ring_layout(comm.size, comm.rank)
    red.setup(own=own, need=need)
    data = np.full(1, float(comm.rank), dtype=np.float32)
    out = np.zeros(1, dtype=np.float32)
    progress = red.exchange([data], out)
    assert out[0] == (comm.rank + 1) % comm.size
    return progress


class TestRoundRetry:
    def test_scripted_round_fault_healed_by_retry(self):
        plan = FaultPlan(
            seed=0, nranks=3,
            events=(FaultSpec(kind="round", rank=0, op=0, count=2),),
        )
        policy = ReliabilityPolicy(max_retries=3, backoff_base_s=0.0001)
        with fault_plan(plan, policy):
            progresses = spmd(3, _ring_exchange)
        assert isinstance(progresses[0], ExchangeProgress)
        assert progresses[0].retries.get(0) == 2
        assert progresses[0].total_retries == 2
        # Unfaulted ranks retried nothing.
        assert progresses[1].total_retries == 0
        assert progresses[2].total_retries == 0

    def test_retry_budget_exhaustion_raises_typed_error(self):
        plan = FaultPlan(
            seed=0, nranks=3,
            events=(FaultSpec(kind="round", rank=0, op=0, count=50),),
        )
        policy = ReliabilityPolicy(max_retries=2, backoff_base_s=0.0001)
        with fault_plan(plan, policy):
            with pytest.raises(RankFailure) as excinfo:
                spmd(3, _ring_exchange)
        assert excinfo.value.rank == 0
        assert isinstance(excinfo.value.original, RetriesExhaustedError)

    def test_redistributor_reliability_overrides_layer_policy(self):
        """A policy passed to the Redistributor wins over FAULTS.policy."""
        plan = FaultPlan(
            seed=0, nranks=2,
            events=(FaultSpec(kind="round", rank=0, op=0, count=3),),
        )

        def fn(comm):
            red = Redistributor(
                comm, ndims=1, dtype=np.float32, backend="p2p",
                reliability=ReliabilityPolicy(max_retries=1, backoff_base_s=0.0001),
            )
            own, need = ring_layout(comm.size, comm.rank)
            red.setup(own=own, need=need)
            data = np.full(1, float(comm.rank), dtype=np.float32)
            red.exchange([data], np.zeros(1, dtype=np.float32))

        # The layer's installed policy would allow 5 retries; the per-
        # redistributor budget of 1 must lose to the 3 scripted failures.
        with fault_plan(plan, ReliabilityPolicy(max_retries=5, backoff_base_s=0.0001)):
            with pytest.raises(RankFailure) as excinfo:
                spmd(2, fn)
        assert isinstance(excinfo.value.original, RetriesExhaustedError)


class TestResume:
    def test_completed_rounds_are_skipped_on_resume(self):
        """Pass a failed exchange's progress back in: rounds already marked
        complete never re-enter, so a permanent fault in them is moot."""

        def fn(comm):
            red = Redistributor(comm, ndims=1, dtype=np.float32, backend="p2p")
            red.setup(own=[Box((0,), (4,))], need=Box((0,), (4,)))
            data = np.arange(4, dtype=np.float32)
            out = np.zeros(4, dtype=np.float32)

            clean = red.exchange([data], out)
            assert np.array_equal(out, data)
            assert clean.completed  # every round recorded

            plan = FaultPlan(
                seed=0, nranks=1,
                events=(FaultSpec(kind="round", rank=0, count=1000),),
            )
            with fault_plan(plan, ReliabilityPolicy(max_retries=1, backoff_base_s=0.0001)):
                # A fresh exchange hits the permanent round fault...
                with pytest.raises(RetriesExhaustedError):
                    red.exchange([data], np.zeros(4, dtype=np.float32))
                # ...but resuming the completed progress skips every round.
                out2 = np.zeros(4, dtype=np.float32)
                resumed = red.exchange([data], out2, progress=clean)
                assert resumed is clean

        spmd(1, fn)

    def test_tag_epoch_pinned_across_resume(self):
        """Resume reuses the original epoch (stale first-attempt messages
        must still match); fresh exchanges advance it."""

        def fn(comm):
            red = Redistributor(comm, ndims=1, dtype=np.float32, backend="p2p")
            red.setup(own=[Box((0,), (2,))], need=Box((0,), (2,)))
            data = np.arange(2, dtype=np.float32)

            first = red.exchange([data], np.zeros(2, dtype=np.float32))
            second = red.exchange([data], np.zeros(2, dtype=np.float32))
            assert first.tag_epoch is not None
            assert second.tag_epoch is not None
            assert second.tag_epoch > first.tag_epoch

            epoch = first.tag_epoch
            red.exchange([data], np.zeros(2, dtype=np.float32), progress=first)
            assert first.tag_epoch == epoch  # pinned, not re-advanced

        spmd(1, fn)
