"""Edge chaos harness: seeded client storms must classify, never hang."""

from __future__ import annotations

from repro.faults.chaos import DEGRADED, FAILED, OK, TYPED_ERROR
from repro.faults.edgechaos import BEHAVIORS, run_edge_chaos


class TestRunEdgeChaos:
    def test_short_sweep_survives_and_classifies_every_run(self):
        report = run_edge_chaos(seed=0, runs=3, clients=4)
        assert len(report.runs) == 3
        assert report.passed, report.summary()
        for run in report.runs:
            assert run.outcome in (OK, DEGRADED, TYPED_ERROR)
            assert run.outcome != FAILED
            assert run.workload == "edge-storm"
            assert run.backend == "serve"
            assert run.executor == "asyncio"

    def test_storms_draw_only_known_behaviors(self):
        report = run_edge_chaos(seed=1, runs=2, clients=3)
        allowed = set(BEHAVIORS) | {"well_behaved"}
        for run in report.runs:
            behaviors = {c["behavior"] for c in run.stats.get("clients", [])}
            assert behaviors <= allowed
            # every storm mixes in exactly one cooperative viewer
            assert "well_behaved" in behaviors

    def test_plans_are_seed_deterministic(self):
        # The *plan* (which behaviors, in which order) derives from the
        # seed alone; outcomes may differ under timing jitter, but the
        # injected client count and behavior mix must not.
        a = run_edge_chaos(seed=9, runs=2, clients=3)
        b = run_edge_chaos(seed=9, runs=2, clients=3)
        plans_a = [
            sorted(c["behavior"] for c in run.stats.get("clients", []))
            for run in a.runs
        ]
        plans_b = [
            sorted(c["behavior"] for c in run.stats.get("clients", []))
            for run in b.runs
        ]
        assert plans_a == plans_b
        assert [r.injected for r in a.runs] == [r.injected for r in b.runs]

    def test_well_behaved_viewer_is_always_served(self):
        report = run_edge_chaos(seed=2, runs=2, clients=4)
        assert report.passed, report.summary()
        for run in report.runs:
            served = [
                c for c in run.stats.get("clients", [])
                if c["behavior"] == "well_behaved"
            ]
            assert served and all(c.get("ok") for c in served)
