"""FaultPlan: determinism, scripted events, and the random generator."""

import pytest

from repro.faults import FAULT_KINDS, FaultPlan, FaultSpec, ReliabilityPolicy
from repro.faults.policy import CORRUPTION_RAISE


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        a = FaultPlan(seed=7, nranks=4, p_delay=0.2, p_drop=0.1, p_corrupt=0.1)
        b = FaultPlan(seed=7, nranks=4, p_delay=0.2, p_drop=0.1, p_corrupt=0.1)
        for rank in range(4):
            for op in range(50):
                assert a.delay_s(rank, op) == b.delay_s(rank, op)
                assert a.corrupt(rank, op, 0) == b.corrupt(rank, op, 0)
                assert a.drop(rank, op, 0, 0) == b.drop(rank, op, 0, 0)

    def test_decisions_independent_of_query_order(self):
        """Fault decisions are pure functions of (seed, kind, rank, op) —
        querying in a different interleaving changes nothing."""
        plan = FaultPlan(seed=3, nranks=2, p_delay=0.5)
        forward = [plan.delay_s(0, op) for op in range(20)]
        backward = [plan.delay_s(0, op) for op in reversed(range(20))]
        assert forward == list(reversed(backward))

    def test_different_seeds_differ(self):
        a = FaultPlan(seed=1, nranks=2, p_delay=0.5)
        b = FaultPlan(seed=2, nranks=2, p_delay=0.5)
        decisions_a = [a.delay_s(0, op) > 0 for op in range(64)]
        decisions_b = [b.delay_s(0, op) > 0 for op in range(64)]
        assert decisions_a != decisions_b

    def test_horizon_bounds_probabilistic_faults(self):
        plan = FaultPlan(seed=5, nranks=2, ops=10, p_delay=1.0)
        assert plan.delay_s(0, 5) > 0
        assert plan.delay_s(0, 10) == 0.0
        assert plan.delay_s(0, 1000) == 0.0


class TestScriptedEvents:
    def test_spec_matches(self):
        spec = FaultSpec(kind="drop", rank=1, op=None, tag=17)
        assert spec.matches(1, 99, 17)
        assert not spec.matches(0, 99, 17)
        assert not spec.matches(1, 99, 18)

    def test_scripted_drop_fires_once(self):
        plan = FaultPlan(
            seed=0, nranks=2,
            events=(FaultSpec(kind="drop", rank=0, tag=5, count=1),),
        )
        assert plan.drop(0, 3, 5, seen_drops=0)
        assert not plan.drop(0, 4, 5, seen_drops=1)  # budget spent
        assert not plan.drop(1, 3, 5, seen_drops=0)  # other rank

    def test_scripted_crash(self):
        plan = FaultPlan(seed=0, nranks=2, crash_rank=1, crash_at_op=4)
        assert not plan.crashes(1, 3)
        assert plan.crashes(1, 4)
        assert plan.crashes(1, 100)
        assert not plan.crashes(0, 100)

    def test_round_failures(self):
        plan = FaultPlan(
            seed=0, nranks=2,
            events=(FaultSpec(kind="round", rank=0, op=2, count=2),),
        )
        assert plan.round_failures(0, 2) == 2
        assert plan.round_failures(0, 1) == 0
        assert plan.round_failures(1, 2) == 0


class TestRandom:
    def test_random_is_reproducible(self):
        assert FaultPlan.random(42, 4).summary() == FaultPlan.random(42, 4).summary()

    def test_random_varies_by_seed(self):
        summaries = {FaultPlan.random(s, 4).summary() for s in range(20)}
        assert len(summaries) > 1

    def test_kind_registry(self):
        assert set(FAULT_KINDS) == {
            "delay", "drop", "send", "recv", "corrupt", "round", "crash", "alloc",
        }


class TestPolicy:
    def test_backoff_is_exponential_and_capped(self):
        policy = ReliabilityPolicy(
            backoff_base_s=0.001, backoff_factor=2.0, backoff_cap_s=0.003
        )
        assert policy.backoff_s(1) == 0.001
        assert policy.backoff_s(2) == 0.002
        assert policy.backoff_s(3) == 0.003  # capped
        assert policy.backoff_s(10) == 0.003

    def test_validation(self):
        with pytest.raises(ValueError):
            ReliabilityPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            ReliabilityPolicy(corruption="ignore")
        with pytest.raises(ValueError):
            ReliabilityPolicy(op_deadline_s=0)
        ReliabilityPolicy(corruption=CORRUPTION_RAISE)  # valid mode
