"""Autoscaler policy unit tests + the metrics-driven demo end to end."""

from __future__ import annotations

import pytest

from repro.autoscale import AutoscalePolicy, Autoscaler, autoscale_demo
from repro.obs import MetricsRegistry


def _policy(**overrides) -> AutoscalePolicy:
    defaults = dict(
        min_ranks=2, max_ranks=8,
        grow_exchange_s=1.0, shrink_exchange_s=0.1,
        grow_queue_depth=4.0, cooldown_epochs=0, step=1, ewma_alpha=1.0,
    )
    defaults.update(overrides)
    return AutoscalePolicy(**defaults)


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "bad",
        [
            dict(min_ranks=0),
            dict(min_ranks=5, max_ranks=4),
            dict(shrink_exchange_s=2.0, grow_exchange_s=1.0),
            dict(grow_queue_depth=-1.0),
            dict(cooldown_epochs=-1),
            dict(step=0),
            dict(ewma_alpha=0.0),
            dict(ewma_alpha=1.5),
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            _policy(**bad)


class TestRecommend:
    def test_steady_between_watermarks(self):
        scaler = Autoscaler(_policy())
        scaler.observe(exchange_s=0.5, queue_depth=1.0)
        assert scaler.recommend(4) == 4
        assert scaler.decisions[-1].reason == "steady"

    def test_grows_on_exchange_time(self):
        scaler = Autoscaler(_policy())
        scaler.observe(exchange_s=2.0, queue_depth=0.0)
        assert scaler.recommend(4) == 5
        assert scaler.decisions[-1].reason == "exchange_time"

    def test_grows_on_queue_depth(self):
        scaler = Autoscaler(_policy())
        scaler.observe(exchange_s=0.5, queue_depth=9.0)
        assert scaler.recommend(4) == 5
        assert scaler.decisions[-1].reason == "queue_depth"

    def test_shrinks_when_overprovisioned(self):
        scaler = Autoscaler(_policy())
        scaler.observe(exchange_s=0.01, queue_depth=0.0)
        assert scaler.recommend(4) == 3
        assert scaler.decisions[-1].reason == "overprovisioned"

    def test_never_shrinks_with_backlog(self):
        scaler = Autoscaler(_policy())
        scaler.observe(exchange_s=0.01, queue_depth=9.0)
        # queue is over the grow watermark: grow wins even though the
        # exchange is cheap.
        assert scaler.recommend(4) == 5

    def test_clamps_to_limits(self):
        scaler = Autoscaler(_policy())
        scaler.observe(exchange_s=2.0)
        assert scaler.recommend(8) == 8
        assert scaler.decisions[-1].reason == "exchange_time_at_limit"
        scaler.observe(exchange_s=0.01)
        assert scaler.recommend(2) == 2

    def test_step_size(self):
        scaler = Autoscaler(_policy(step=3))
        scaler.observe(exchange_s=2.0)
        assert scaler.recommend(4) == 7

    def test_cooldown_damps_flapping(self):
        scaler = Autoscaler(_policy(cooldown_epochs=2))
        scaler.observe(exchange_s=2.0)
        scaler.observe(exchange_s=2.0)
        assert scaler.recommend(4) == 5
        scaler.record_resize(5)
        scaler.observe(exchange_s=2.0)
        assert scaler.recommend(5) == 5  # within cooldown
        assert scaler.decisions[-1].reason == "cooldown"
        scaler.observe(exchange_s=2.0)
        assert scaler.recommend(5) == 6  # cooldown expired


class TestEwma:
    def test_smoothing(self):
        scaler = Autoscaler(_policy(ewma_alpha=0.5))
        scaler.observe(exchange_s=1.0)
        scaler.observe(exchange_s=0.0)
        assert scaler.exchange_ewma == pytest.approx(0.5)

    def test_first_observation_seeds(self):
        scaler = Autoscaler(_policy(ewma_alpha=0.1))
        scaler.observe(queue_depth=7.0)
        assert scaler.queue_ewma == pytest.approx(7.0)


class TestObserveRegistry:
    def test_reads_span_delta_and_gauge(self):
        registry = MetricsRegistry()
        scaler = Autoscaler(_policy(ewma_alpha=1.0))
        registry.observe("phase.redistribute", 2.0, rank=0)
        registry.counters["stream.queue_depth"] = 6.0
        scaler.observe_registry(registry)
        assert scaler.exchange_ewma == pytest.approx(2.0)
        assert scaler.queue_ewma == pytest.approx(6.0)
        # Next epoch: only the *delta* of the cumulative histogram counts.
        registry.observe("phase.redistribute", 0.5, rank=0)
        registry.counters["stream.queue_depth"] = 1.0
        scaler.observe_registry(registry)
        assert scaler.exchange_ewma == pytest.approx(0.5)
        assert scaler.queue_ewma == pytest.approx(1.0)

    def test_no_new_exchange_leaves_ewma(self):
        registry = MetricsRegistry()
        scaler = Autoscaler(_policy(ewma_alpha=1.0))
        registry.observe("phase.redistribute", 2.0, rank=0)
        scaler.observe_registry(registry)
        scaler.observe_registry(registry)  # no new samples this epoch
        assert scaler.exchange_ewma == pytest.approx(2.0)
        assert scaler.epochs_observed == 2


def test_demo_end_to_end():
    """The full observe -> recommend -> bcast -> resize loop: grows from 2
    toward the ceiling on the demand hump, drains back down, bitwise."""
    report = autoscale_demo(side=36, epochs=10, start_ranks=2, max_ranks=4)
    assert "resizes applied:" in report
    assert "bitwise-correct" in report
    resizes = int(report.rsplit("resizes applied: ", 1)[1].split(",")[0])
    assert resizes >= 2  # at least one grow and one shrink
    assert "final world size: 2" in report
