"""Volume decomposition tests (near-cubic blocks, paper §IV-A)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Box, check_send_coverage
from repro.volren import block_for_rank, grid_boxes, grid_shape, split_extent


class TestSplitExtent:
    def test_even(self):
        assert split_extent(8, 4) == [(0, 2), (2, 2), (4, 2), (6, 2)]

    def test_remainder_to_leading_parts(self):
        assert split_extent(10, 3) == [(0, 4), (4, 3), (7, 3)]

    def test_exact_cover(self):
        parts = split_extent(4096, 27)
        assert sum(size for _, size in parts) == 4096
        assert max(s for _, s in parts) - min(s for _, s in parts) <= 1

    def test_errors(self):
        with pytest.raises(ValueError):
            split_extent(2, 3)
        with pytest.raises(ValueError):
            split_extent(4, 0)

    @given(extent=st.integers(1, 500), parts=st.integers(1, 50))
    @settings(max_examples=100, deadline=None)
    def test_property_partition(self, extent, parts):
        if parts > extent:
            return
        pieces = split_extent(extent, parts)
        assert len(pieces) == parts
        cursor = 0
        for offset, size in pieces:
            assert offset == cursor and size >= 1
            cursor += size
        assert cursor == extent


class TestGridShape:
    def test_paper_cubes(self):
        dims = (4096, 2048, 4096)
        assert grid_shape(27, dims) == (3, 3, 3)
        grid = grid_shape(64, dims)
        assert grid == (4, 4, 4) or grid[0] * grid[1] * grid[2] == 64

    def test_product_equals_nprocs(self):
        for n in (6, 12, 30, 100):
            grid = grid_shape(n, (512, 512, 512))
            product = 1
            for g in grid:
                product *= g
            assert product == n

    def test_prefers_near_cubic_blocks(self):
        # 8 procs over a cube: 2x2x2, blocks are perfect cubes.
        assert grid_shape(8, (64, 64, 64)) == (2, 2, 2)

    def test_anisotropic_domain(self):
        # 2:1:2 domain with 4 procs: split the two long axes.
        grid = grid_shape(4, (128, 64, 128))
        assert grid == (2, 1, 2)

    def test_2d(self):
        assert grid_shape(4, (100, 100)) == (2, 2)

    def test_1d(self):
        assert grid_shape(5, (100,)) == (5,)

    def test_impossible(self):
        with pytest.raises(ValueError):
            grid_shape(7, (3, 1, 1))  # 7 > every dimension

    def test_bad_args(self):
        with pytest.raises(ValueError):
            grid_shape(0, (4, 4))
        with pytest.raises(ValueError):
            grid_shape(2, ())


class TestGridBoxes:
    def test_rank_order_x_fastest(self):
        # E1-style 2x2: rank = right + 2*bottom
        boxes = grid_boxes((8, 8), (2, 2))
        assert boxes[0] == Box((0, 0), (4, 4))
        assert boxes[1] == Box((4, 0), (4, 4))
        assert boxes[2] == Box((0, 4), (4, 4))
        assert boxes[3] == Box((4, 4), (4, 4))

    def test_boxes_tile_domain(self):
        boxes = grid_boxes((30, 20, 10), (3, 2, 2))
        check_send_coverage([[b] for b in boxes])  # raises if not a tiling

    def test_block_for_rank(self):
        assert block_for_rank((8, 8), (2, 2), 3) == Box((4, 4), (4, 4))

    def test_rank_mismatch(self):
        with pytest.raises(ValueError):
            grid_boxes((8, 8), (2,))

    @given(
        gx=st.integers(1, 4), gy=st.integers(1, 4), gz=st.integers(1, 3),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_tiling_3d(self, gx, gy, gz):
        dims = (12, 8, 6)
        boxes = grid_boxes(dims, (gx, gy, gz))
        assert len(boxes) == gx * gy * gz
        total = sum(b.volume() for b in boxes)
        assert total == 12 * 8 * 6
        check_send_coverage([[b] for b in boxes])
