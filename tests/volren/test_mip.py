"""Maximum-intensity projection tests (exact distributed equality)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.imaging import VolumeSpec, phantom_volume
from repro.volren import composite_distributed_mip, grid_boxes, mip_project
from tests.conftest import spmd


class TestMipProject:
    def test_axis_shapes(self):
        vol = np.zeros((2, 3, 4))
        assert mip_project(vol, "z").shape == (3, 4)
        assert mip_project(vol, "y").shape == (2, 4)
        assert mip_project(vol, "x").shape == (2, 3)

    def test_picks_maximum(self):
        vol = np.zeros((3, 2, 2))
        vol[1, 0, 1] = 7.0
        vol[2, 0, 1] = 3.0
        assert mip_project(vol, "z")[0, 1] == 7.0

    def test_validation(self):
        with pytest.raises(ValueError):
            mip_project(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            mip_project(np.zeros((2, 2, 2)), axis="q")

    @given(seed=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_property_mip_splits_along_ray(self, seed):
        """max over the whole ray == max of per-segment maxima."""
        rng = np.random.default_rng(seed)
        vol = rng.random((8, 4, 4))
        cut = int(rng.integers(1, 8))
        whole = mip_project(vol, "z")
        split = np.maximum(mip_project(vol[:cut], "z"), mip_project(vol[cut:], "z"))
        assert np.array_equal(whole, split)


class TestDistributedMip:
    @pytest.mark.parametrize("grid", [(2, 2, 2), (1, 1, 4), (4, 2, 1)])
    @pytest.mark.parametrize("axis", ["z", "y", "x"])
    def test_exactly_equals_serial(self, grid, axis):
        spec = VolumeSpec(8, 8, 8, np.float32)
        volume = phantom_volume("brain", spec).astype(np.float64)
        serial = mip_project(volume, axis)
        boxes = grid_boxes((8, 8, 8), grid)
        nprocs = len(boxes)

        def fn(comm):
            box = boxes[comm.rank]
            x0, y0, z0 = box.offset
            w, h, d = box.dims
            block = volume[z0 : z0 + d, y0 : y0 + h, x0 : x0 + w]
            partial = mip_project(block, axis)
            return composite_distributed_mip(comm, box, partial, (8, 8, 8), axis=axis)

        results = spmd(nprocs, fn)
        assert np.array_equal(results[0], serial)
        assert all(r is None for r in results[1:])

    def test_shape_checked(self):
        from repro.core import Box

        def fn(comm):
            with pytest.raises(ValueError, match="footprint"):
                composite_distributed_mip(
                    comm, Box((0, 0, 0), (4, 4, 4)), np.zeros((2, 2)), (4, 4, 4)
                )

        spmd(1, fn)
