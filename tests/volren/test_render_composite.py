"""DVR renderer + distributed compositing tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Box
from repro.imaging import VolumeSpec, phantom_volume
from repro.viz import GRAYSCALE
from repro.volren import (
    TOOTH_TF,
    TransferFunction,
    composite_distributed,
    composite_over,
    grid_boxes,
    render_block,
    rgba_to_rgb,
)
from tests.conftest import spmd

LINEAR_TF = TransferFunction(GRAYSCALE, ((0.0, 0.0), (1.0, 0.5)))


class TestTransferFunction:
    def test_opacity_interpolation(self):
        assert LINEAR_TF.opacity(np.array(0.5)) == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            TransferFunction(GRAYSCALE, ((0.1, 0.0), (1.0, 1.0)))
        with pytest.raises(ValueError):
            TransferFunction(GRAYSCALE, ((0.0, 0.0), (1.0, 1.5)))

    def test_tooth_tf_air_transparent(self):
        assert TOOTH_TF.opacity(np.array(0.0)) == 0.0
        assert TOOTH_TF.opacity(np.array(1.0)) == pytest.approx(0.9)


class TestRenderBlock:
    def test_empty_volume_transparent(self):
        img = render_block(np.zeros((4, 5, 6)), TOOTH_TF, vmin=0, vmax=1)
        assert img.shape == (5, 6, 4)
        assert np.all(img == 0.0)

    def test_single_opaque_plane(self):
        """One fully-bright slab under a TF with alpha 1 at s=1."""
        tf = TransferFunction(GRAYSCALE, ((0.0, 0.0), (1.0, 1.0)))
        vol = np.zeros((3, 2, 2))
        vol[1] = 1.0
        img = render_block(vol, tf, vmin=0, vmax=1)
        assert np.allclose(img[..., 3], 1.0)
        assert np.allclose(img[..., :3], 1.0)

    def test_alpha_monotone_nondecreasing_in_depth(self):
        rng = np.random.default_rng(3)
        vol = rng.random((6, 4, 4))
        thin = render_block(vol[:2], LINEAR_TF, vmin=0, vmax=1)
        thick = render_block(vol, LINEAR_TF, vmin=0, vmax=1)
        assert np.all(thick[..., 3] >= thin[..., 3] - 1e-12)

    def test_axes(self):
        vol = np.zeros((2, 3, 4))
        assert render_block(vol, LINEAR_TF, axis="z").shape == (3, 4, 4)
        assert render_block(vol, LINEAR_TF, axis="y").shape == (2, 4, 4)
        assert render_block(vol, LINEAR_TF, axis="x").shape == (2, 3, 4)
        with pytest.raises(ValueError):
            render_block(vol, LINEAR_TF, axis="w")

    def test_step_skips_samples(self):
        rng = np.random.default_rng(5)
        vol = rng.random((8, 3, 3))
        full = render_block(vol, LINEAR_TF, vmin=0, vmax=1, step=1)
        coarse = render_block(vol, LINEAR_TF, vmin=0, vmax=1, step=4)
        assert full.shape == coarse.shape
        assert not np.allclose(full, coarse)

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            render_block(np.zeros((2, 2)), LINEAR_TF)
        with pytest.raises(ValueError):
            render_block(np.zeros((2, 2, 2)), LINEAR_TF, step=0)

    def test_rgba_to_rgb_background(self):
        accum = np.zeros((1, 1, 4))
        rgb = rgba_to_rgb(accum, background=(1.0, 0.0, 0.0))
        assert rgb[0, 0].tolist() == [255, 0, 0]


class TestCompositeOver:
    def test_opaque_front_hides_back(self):
        front = np.zeros((1, 1, 4))
        front[..., 0] = 1.0
        front[..., 3] = 1.0
        back = np.zeros((1, 1, 4))
        back[..., 1] = 1.0
        back[..., 3] = 1.0
        out = composite_over(front, back)
        assert out[0, 0].tolist() == [1.0, 0.0, 0.0, 1.0]

    def test_transparent_front_passes_back(self):
        front = np.zeros((1, 1, 4))
        back = np.ones((1, 1, 4)) * 0.5
        out = composite_over(front, back)
        assert np.allclose(out, back)

    def test_associativity(self):
        rng = np.random.default_rng(9)
        layers = []
        for _ in range(3):
            a = rng.random((2, 2, 1)) * 0.6
            c = rng.random((2, 2, 3)) * a
            layers.append(np.concatenate([c, a], axis=2))
        left = composite_over(composite_over(layers[0], layers[1]), layers[2])
        right = composite_over(layers[0], composite_over(layers[1], layers[2]))
        assert np.allclose(left, right)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            composite_over(np.zeros((2, 2, 4)), np.zeros((3, 2, 4)))


class TestDistributedEqualsSerial:
    """Block-wise render + depth compositing must equal the single-volume
    render (the 'over' operator is associative along each ray)."""

    @pytest.mark.parametrize("grid", [(2, 2, 2), (1, 2, 4), (2, 1, 1)])
    def test_blockwise_matches_global(self, grid):
        spec = VolumeSpec(12, 8, 8, np.float32)
        volume = phantom_volume("tooth", spec).astype(np.float64)  # (z, y, x)
        serial = render_block(volume, TOOTH_TF, vmin=0, vmax=1)

        nprocs = grid[0] * grid[1] * grid[2]
        boxes = grid_boxes((12, 8, 8), grid)

        def fn(comm):
            box = boxes[comm.rank]
            x0, y0, z0 = box.offset
            w, h, d = box.dims
            block = volume[z0 : z0 + d, y0 : y0 + h, x0 : x0 + w]
            partial = render_block(block, TOOTH_TF, vmin=0, vmax=1)
            return composite_distributed(comm, box, partial, (12, 8, 8), axis="z")

        results = spmd(nprocs, fn)
        frame = results[0]
        assert all(r is None for r in results[1:])
        assert frame.shape == serial.shape
        # Early ray termination may truncate contributions below 1e-3.
        assert np.allclose(frame, serial, atol=5e-3)

    def test_partial_shape_checked(self):
        def fn(comm):
            box = Box((0, 0, 0), (4, 4, 4))
            with pytest.raises(ValueError, match="footprint"):
                composite_distributed(comm, box, np.zeros((2, 2, 4)), (4, 4, 4))

        spmd(1, fn)
