"""Table II / Figure 3 prediction tests.

Small-scale tests run everywhere; the full-paper-scale shape checks are
marked slow (seconds of planning time each).
"""

from __future__ import annotations

import pytest

from repro.io import Assignment, StackGeometry
from repro.netmodel import (
    COOLEY,
    ddr_plan,
    exchange_cost,
    figure3_series,
    paper_grid,
    predict_ddr,
    predict_no_ddr,
    predict_table2,
    round_payloads,
)

SMALL = StackGeometry(width=256, height=128, n_images=64, bytes_per_pixel=4)


class TestGeometryHelpers:
    def test_paper_grid_perfect_cubes(self):
        for g in (3, 4, 5, 6):
            assert paper_grid(g**3, SMALL) == (g, g, g)

    def test_paper_grid_non_cube(self):
        grid = paper_grid(12, StackGeometry(400, 400, 400, 1))
        assert grid[0] * grid[1] * grid[2] == 12

    def test_paper_grid_non_cube_is_normalised_3_tuple(self):
        for nprocs in (2, 10, 12, 30, 100):
            grid = paper_grid(nprocs, StackGeometry(400, 400, 400, 1))
            assert isinstance(grid, tuple) and len(grid) == 3
            assert all(type(axis) is int for axis in grid)
            assert grid[0] * grid[1] * grid[2] == nprocs

    def test_ddr_plan_round_counts(self):
        rr = ddr_plan(8, Assignment.ROUND_ROBIN, SMALL)
        consec = ddr_plan(8, Assignment.CONSECUTIVE, SMALL)
        assert rr.nrounds == 64 // 8
        assert consec.nrounds == 1

    def test_plan_cache_returns_same_object(self):
        a = ddr_plan(8, Assignment.ROUND_ROBIN, SMALL)
        b = ddr_plan(8, Assignment.ROUND_ROBIN, SMALL)
        assert a is b


class TestExchangeCostModel:
    def test_round_payloads_shape(self):
        plan = ddr_plan(8, Assignment.ROUND_ROBIN, SMALL)
        payloads = round_payloads(plan)
        assert len(payloads) == plan.nrounds
        assert all(p >= 0 for p in payloads)

    def test_alpha_dominates_many_small_rounds(self):
        rr = exchange_cost(COOLEY, ddr_plan(8, Assignment.ROUND_ROBIN, SMALL))
        consec = exchange_cost(COOLEY, ddr_plan(8, Assignment.CONSECUTIVE, SMALL))
        assert rr.alpha_s == pytest.approx(8 * consec.alpha_s)

    def test_total_is_sum_of_parts(self):
        cost = exchange_cost(COOLEY, ddr_plan(8, Assignment.CONSECUTIVE, SMALL))
        assert cost.total_s == pytest.approx(cost.alpha_s + cost.transfer_s + cost.self_copy_s)


class TestPredictionsSmall:
    def test_ddr_beats_no_ddr(self):
        no_ddr = predict_no_ddr(COOLEY, 8, SMALL)
        ddr = predict_ddr(COOLEY, 8, Assignment.CONSECUTIVE, SMALL)
        assert ddr.total_s < no_ddr.total_s

    def test_modes_labelled(self):
        assert predict_no_ddr(COOLEY, 8, SMALL).mode == "no_ddr"
        assert predict_ddr(COOLEY, 8, Assignment.ROUND_ROBIN, SMALL).mode == "ddr_round_robin"

    def test_des_and_analytic_agree_roughly(self):
        analytic = predict_ddr(COOLEY, 8, Assignment.CONSECUTIVE, SMALL, network="analytic")
        des = predict_ddr(COOLEY, 8, Assignment.CONSECUTIVE, SMALL, network="des")
        assert des.exchange_s == pytest.approx(analytic.exchange_s, rel=5.0)
        assert des.rounds == analytic.rounds

    def test_unknown_network_rejected(self):
        with pytest.raises(ValueError):
            predict_ddr(COOLEY, 8, Assignment.CONSECUTIVE, SMALL, network="carrier-pigeon")

    def test_backend_parameter_all_engines(self):
        # Consecutive assignment at 8 ranks is sparse, so the direct path
        # must price below the collective, and auto must track the winner.
        by_backend = {
            backend: predict_ddr(
                COOLEY, 8, Assignment.CONSECUTIVE, SMALL, backend=backend
            )
            for backend in ("alltoallw", "p2p", "auto")
        }
        assert by_backend["p2p"].exchange_s < by_backend["alltoallw"].exchange_s
        assert by_backend["auto"].exchange_s <= by_backend["alltoallw"].exchange_s
        # The read phase does not depend on the exchange engine.
        reads = {p.read_s for p in by_backend.values()}
        assert len(reads) == 1

    def test_backend_parameter_des_network(self):
        a2a = predict_ddr(
            COOLEY, 8, Assignment.CONSECUTIVE, SMALL, network="des", backend="alltoallw"
        )
        p2p = predict_ddr(
            COOLEY, 8, Assignment.CONSECUTIVE, SMALL, network="des", backend="p2p"
        )
        assert p2p.exchange_s < a2a.exchange_s

    def test_default_backend_is_alltoallw(self):
        default = predict_ddr(COOLEY, 8, Assignment.ROUND_ROBIN, SMALL)
        explicit = predict_ddr(
            COOLEY, 8, Assignment.ROUND_ROBIN, SMALL, backend="alltoallw"
        )
        assert default.exchange_s == explicit.exchange_s


PAPER_TABLE2 = {
    27: (283.0, 39.3, 49.2),
    64: (204.6, 18.9, 18.9),
    125: (188.2, 11.1, 10.4),
    216: (165.3, 9.7, 6.6),
}


@pytest.mark.slow
class TestPaperShape:
    """Calibrated-model predictions must reproduce Table II's structure."""

    @pytest.fixture(scope="class")
    def rows(self):
        return {row["nprocs"]: row for row in predict_table2()}

    def test_within_tolerance_of_paper(self, rows):
        for nprocs, (no_ddr, rr, consec) in PAPER_TABLE2.items():
            row = rows[nprocs]
            assert row["no_ddr_s"] == pytest.approx(no_ddr, rel=0.25)
            assert row["ddr_round_robin_s"] == pytest.approx(rr, rel=0.25)
            assert row["ddr_consecutive_s"] == pytest.approx(consec, rel=0.30)

    def test_round_robin_wins_small_scale(self, rows):
        assert rows[27]["ddr_round_robin_s"] < rows[27]["ddr_consecutive_s"]

    def test_strategies_tie_at_64(self, rows):
        rr, consec = rows[64]["ddr_round_robin_s"], rows[64]["ddr_consecutive_s"]
        assert abs(rr - consec) / max(rr, consec) < 0.15

    def test_consecutive_wins_large_scale(self, rows):
        for nprocs in (125, 216):
            assert rows[nprocs]["ddr_consecutive_s"] < rows[nprocs]["ddr_round_robin_s"]

    def test_headline_speedup(self, rows):
        """Paper: 24.9x at 216 processes.  Require >15x from the model."""
        speedup = rows[216]["no_ddr_s"] / rows[216]["ddr_consecutive_s"]
        assert speedup > 15

    def test_strong_scaling_of_ddr(self, rows):
        """Figure 3: both DDR curves decrease monotonically with scale."""
        for mode in ("ddr_round_robin_s", "ddr_consecutive_s"):
            times = [rows[p][mode] for p in (27, 64, 125, 216)]
            assert times == sorted(times, reverse=True)

    def test_figure3_series_structure(self, rows):
        series = figure3_series()
        assert series["nprocs"] == [27, 64, 125, 216]
        assert series["ddr_consecutive"][-1] < series["no_ddr"][-1] / 15
