"""Discrete-event network simulator: fairness and conservation checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Box, compute_global_plan
from repro.netmodel import (
    COOLEY,
    Flow,
    default_rank_to_node,
    flows_for_round,
    maxmin_rates,
    simulate_exchange,
    simulate_flows,
)


class TestMaxminRates:
    def test_single_flow_gets_full_link(self):
        rates = maxmin_rates([(0, 1, 100.0)], {0: 10.0, 1: 10.0}, {0: 10.0, 1: 10.0})
        assert rates.tolist() == [10.0]

    def test_egress_shared_equally(self):
        flows = [(0, 1, 100.0), (0, 2, 100.0)]
        caps = {n: 10.0 for n in range(3)}
        rates = maxmin_rates(flows, caps, dict(caps))
        assert rates.tolist() == [5.0, 5.0]

    def test_ingress_bottleneck(self):
        flows = [(1, 0, 100.0), (2, 0, 100.0), (3, 0, 100.0)]
        caps = {n: 9.0 for n in range(4)}
        rates = maxmin_rates(flows, caps, dict(caps))
        assert rates.tolist() == [3.0, 3.0, 3.0]

    def test_maxmin_reallocates_slack(self):
        """Flow A is limited to 2 by its egress; flow B should pick up the
        slack at the shared ingress (max-min, not equal split)."""
        flows = [(0, 2, 100.0), (1, 2, 100.0)]
        egress = {0: 2.0, 1: 50.0, 2: 50.0}
        ingress = {0: 10.0, 1: 10.0, 2: 10.0}
        rates = maxmin_rates(flows, egress, ingress)
        assert rates[0] == pytest.approx(2.0)
        assert rates[1] == pytest.approx(8.0)


class TestSimulateFlows:
    def test_serial_bytes_over_link(self):
        t = simulate_flows([Flow(0, 1, 7e9)], 7e9)
        assert t == pytest.approx(1.0)

    def test_empty(self):
        assert simulate_flows([], 7e9) == 0.0

    def test_zero_byte_flows_ignored(self):
        assert simulate_flows([Flow(0, 1, 0)], 7e9) == 0.0

    def test_unequal_flows_complete_in_phases(self):
        """Two flows share egress; after the short one ends the long one
        speeds up: total time < serialized, > bandwidth-fair lower bound."""
        t = simulate_flows([Flow(0, 1, 7e9), Flow(0, 2, 3.5e9)], 7e9)
        # Phase 1: both at 3.5 GB/s until the small flow ends at t=1.0
        # (3.5e9 bytes).  Large flow has 3.5e9 left, now at 7 GB/s: +0.5 s.
        assert t == pytest.approx(1.5)

    def test_conservation_total_time_bounded(self):
        rng = np.random.default_rng(42)
        flows = [
            Flow(int(rng.integers(0, 4)), int(rng.integers(4, 8)), float(rng.integers(1, 10) * 1e8))
            for _ in range(20)
        ]
        t = simulate_flows(flows, 7e9)
        total = sum(f.nbytes for f in flows)
        # Lower bound: all 8 NICs busy continuously; upper: one NIC serial.
        assert total / (8 * 7e9) <= t <= total / 7e9 + 1e-9


class TestFlowsFromPlan:
    def _plan(self):
        owns = [[Box((0, r), (8, 1)), Box((0, r + 4), (8, 1))] for r in range(4)]
        needs = [Box((4 * (r % 2), 4 * (r // 2)), (4, 4)) for r in range(4)]
        return compute_global_plan(owns, needs, 4)

    def test_intra_node_flows_excluded(self):
        plan = self._plan()
        mapping = default_rank_to_node(4, 2)  # ranks 0,1 node 0; 2,3 node 1
        flows = flows_for_round(plan, 0, mapping)
        for f in flows:
            assert f.src_node != f.dst_node

    def test_all_nodes_distinct_keeps_all_remote_traffic(self):
        plan = self._plan()
        flows = flows_for_round(plan, 0, [0, 1, 2, 3])
        total = sum(f.nbytes for f in flows)
        matrix = plan.traffic_matrix(round_index=0)
        off_diag = matrix.sum() - np.trace(matrix)
        assert total == off_diag

    def test_simulate_exchange_positive(self):
        plan = self._plan()
        t = simulate_exchange(COOLEY, plan)
        assert t > 0
        # two rounds of alpha at minimum
        assert t >= 2 * COOLEY.alpha(4)

    def test_engine_changes_only_software_overhead(self):
        # The same bytes cross the same NICs under every engine; only the
        # per-round software term (alpha vs per-message handshakes) differs.
        plan = self._plan()
        a2a = simulate_exchange(COOLEY, plan, engine="alltoallw")
        p2p = simulate_exchange(COOLEY, plan, engine="p2p")
        auto = simulate_exchange(COOLEY, plan, engine="auto")
        assert a2a != p2p
        assert auto == pytest.approx(min(a2a, p2p), rel=1e-9) or (
            min(a2a, p2p) <= auto <= max(a2a, p2p)
        )

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            simulate_exchange(COOLEY, self._plan(), engine="carrier-pigeon")
