"""Cluster spec and disk model unit tests."""

from __future__ import annotations

import pytest

from repro.netmodel import (
    COOLEY,
    ClusterSpec,
    fs_saturation_factor,
    image_read_time,
    stack_read_time,
)
from repro.utils import MiB


class TestClusterSpec:
    def test_cooley_physical_constants_match_paper(self):
        assert COOLEY.nodes == 126
        assert COOLEY.procs_per_node == 2
        assert COOLEY.link_bytes_per_s == pytest.approx(7e9)  # 56 Gbps

    def test_proc_link_share(self):
        assert COOLEY.proc_link_share == pytest.approx(3.5e9)

    def test_alpha_grows_with_ranks(self):
        assert COOLEY.alpha(216) > COOLEY.alpha(27) > 0

    def test_effective_bw_monotone_in_message_size(self):
        small = COOLEY.effective_bw(1 * MiB)
        big = COOLEY.effective_bw(4000 * MiB)
        assert small > big > 0
        assert COOLEY.effective_bw(0) == COOLEY.proc_link_share

    def test_with_override(self):
        spec = COOLEY.with_(read_decode_bw=1e9)
        assert spec.read_decode_bw == 1e9
        assert spec.nodes == COOLEY.nodes
        assert COOLEY.read_decode_bw != 1e9  # original untouched


class TestDiskModel:
    def test_no_saturation_below_peak(self):
        assert fs_saturation_factor(COOLEY, 1) == 1.0
        few = int(COOLEY.fs_peak_bw / COOLEY.read_decode_bw) - 1
        assert fs_saturation_factor(COOLEY, few) == 1.0

    def test_saturation_above_peak(self):
        many = int(COOLEY.fs_peak_bw / COOLEY.read_decode_bw) * 4
        assert fs_saturation_factor(COOLEY, many) > 1.0

    def test_saturation_sublinear(self):
        many = int(COOLEY.fs_peak_bw / COOLEY.read_decode_bw) * 4
        # 4x oversubscription must cost far less than 4x slowdown.
        assert fs_saturation_factor(COOLEY, many) < 2.0

    def test_image_read_time_components(self):
        t = image_read_time(COOLEY, 32 * MiB, 1)
        assert t == pytest.approx(COOLEY.file_open_s + 32 * MiB / COOLEY.read_decode_bw)

    def test_stack_read_scales_with_count(self):
        one = stack_read_time(COOLEY, 1, 32 * MiB, 8)
        ten = stack_read_time(COOLEY, 10, 32 * MiB, 8)
        assert ten == pytest.approx(10 * one)
