"""Analytic exchange-cost model unit tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Box, compute_global_plan
from repro.netmodel import (
    COOLEY,
    P2P_PER_MESSAGE_S,
    engine_cost,
    exchange_cost,
    point_to_point_cost,
    round_payloads,
)


def simple_plan(nprocs=4, n=16, esize=4):
    """1-D reversal: rank r owns block r, needs block nprocs-1-r."""
    per = n // nprocs
    owns = [[Box((r * per,), (per,))] for r in range(nprocs)]
    needs = [Box(((nprocs - 1 - r) * per,), (per,)) for r in range(nprocs)]
    return compute_global_plan(owns, needs, esize)


class TestRoundPayloads:
    def test_reversal_payload(self):
        plan = simple_plan()
        payloads = round_payloads(plan)
        assert len(payloads) == 1
        # Every rank ships its whole block to another rank (n=16, per=4, 4B).
        assert payloads[0] == 4 * 4

    def test_self_heavy_plan_has_small_payload(self):
        """Identity redistribution: everything stays local, nothing on the
        wire."""
        owns = [[Box((r * 4,), (4,))] for r in range(4)]
        needs = [Box((r * 4,), (4,)) for r in range(4)]
        plan = compute_global_plan(owns, needs, 4)
        assert round_payloads(plan) == [0]

    def test_uneven_rounds(self):
        owns = [
            [Box((0,), (4,)), Box((8,), (4,))],
            [Box((4,), (4,)), Box((12,), (4,))],
        ]
        needs = [Box((8,), (8,)), Box((0,), (8,))]
        plan = compute_global_plan(owns, needs, 1)
        payloads = round_payloads(plan)
        assert len(payloads) == 2
        assert all(p > 0 for p in payloads)


class TestExchangeCost:
    def test_identity_plan_costs_only_alpha_and_memcpy(self):
        owns = [[Box((r * 4,), (4,))] for r in range(4)]
        needs = [Box((r * 4,), (4,)) for r in range(4)]
        plan = compute_global_plan(owns, needs, 4)
        cost = exchange_cost(COOLEY, plan)
        assert cost.transfer_s == 0.0
        assert cost.alpha_s == pytest.approx(COOLEY.alpha(4))
        assert cost.self_copy_s > 0

    def test_more_data_costs_more(self):
        small = exchange_cost(COOLEY, simple_plan(n=64))
        large = exchange_cost(COOLEY, simple_plan(n=64_000))
        assert large.transfer_s > small.transfer_s

    def test_more_ranks_cost_more_alpha(self):
        few = exchange_cost(COOLEY, simple_plan(nprocs=2, n=64))
        many = exchange_cost(COOLEY, simple_plan(nprocs=8, n=64))
        assert many.alpha_s > few.alpha_s

    def test_congestion_penalises_huge_messages(self):
        """Effective seconds/byte must grow with message size."""
        mid = simple_plan(nprocs=2, n=2**20)
        big = simple_plan(nprocs=2, n=2**28)
        t_mid = exchange_cost(COOLEY, mid).transfer_s
        t_big = exchange_cost(COOLEY, big).transfer_s
        bytes_mid = round_payloads(mid)[0]
        bytes_big = round_payloads(big)[0]
        assert t_big / bytes_big > t_mid / bytes_mid


class TestPointToPointCost:
    def test_sparse_pattern_cheaper_than_collective(self):
        """Reversal: each rank has exactly one partner, so the direct
        backend avoids the O(P) alpha."""
        plan = simple_plan(nprocs=8, n=1024)
        assert point_to_point_cost(COOLEY, plan) < exchange_cost(COOLEY, plan).total_s

    def test_identity_is_nearly_free(self):
        owns = [[Box((r * 4,), (4,))] for r in range(4)]
        needs = [Box((r * 4,), (4,)) for r in range(4)]
        plan = compute_global_plan(owns, needs, 4)
        assert point_to_point_cost(COOLEY, plan) == pytest.approx(0.0)


class TestEngineCost:
    def test_alltoallw_matches_exchange_cost(self):
        plan = simple_plan(nprocs=8, n=4096)
        legacy = exchange_cost(COOLEY, plan)
        cost = engine_cost(COOLEY, plan, "alltoallw")
        assert cost.total_s == legacy.total_s
        assert cost.alpha_s == legacy.alpha_s
        assert cost.transfer_s == legacy.transfer_s
        assert cost.self_copy_s == legacy.self_copy_s
        assert cost.message_s == 0.0
        assert cost.round_engines == ("alltoallw",)

    def test_p2p_matches_point_to_point_cost(self):
        plan = simple_plan(nprocs=8, n=4096)
        cost = engine_cost(COOLEY, plan, "p2p")
        assert cost.message_s + cost.transfer_s == pytest.approx(
            point_to_point_cost(COOLEY, plan)
        )
        assert cost.alpha_s == 0.0
        assert cost.message_s == pytest.approx(P2P_PER_MESSAGE_S)  # one partner
        assert cost.round_engines == ("p2p",)

    def test_auto_picks_cheapest_protocol_per_round(self):
        # Reversal is maximally sparse (one partner per rank): auto must
        # price it as the direct path, below the collective's.
        plan = simple_plan(nprocs=8, n=4096)
        auto = engine_cost(COOLEY, plan, "auto")
        assert auto.round_engines == ("p2p",)
        assert auto.total_s <= engine_cost(COOLEY, plan, "alltoallw").total_s

    def test_auto_prices_dense_plan_as_collective(self):
        owns = [[Box((r,), (1,))] for r in range(8)]
        needs = [Box((0,), (8,)) for _ in range(8)]
        plan = compute_global_plan(owns, needs, 4)
        auto = engine_cost(COOLEY, plan, "auto")
        assert auto.round_engines == ("alltoallw",)
        assert auto.total_s == engine_cost(COOLEY, plan, "alltoallw").total_s

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            engine_cost(COOLEY, simple_plan(), "smoke-signals")
