"""Analytic exchange-cost model unit tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Box, compute_global_plan
from repro.netmodel import COOLEY, exchange_cost, point_to_point_cost, round_payloads


def simple_plan(nprocs=4, n=16, esize=4):
    """1-D reversal: rank r owns block r, needs block nprocs-1-r."""
    per = n // nprocs
    owns = [[Box((r * per,), (per,))] for r in range(nprocs)]
    needs = [Box(((nprocs - 1 - r) * per,), (per,)) for r in range(nprocs)]
    return compute_global_plan(owns, needs, esize)


class TestRoundPayloads:
    def test_reversal_payload(self):
        plan = simple_plan()
        payloads = round_payloads(plan)
        assert len(payloads) == 1
        # Every rank ships its whole block to another rank (n=16, per=4, 4B).
        assert payloads[0] == 4 * 4

    def test_self_heavy_plan_has_small_payload(self):
        """Identity redistribution: everything stays local, nothing on the
        wire."""
        owns = [[Box((r * 4,), (4,))] for r in range(4)]
        needs = [Box((r * 4,), (4,)) for r in range(4)]
        plan = compute_global_plan(owns, needs, 4)
        assert round_payloads(plan) == [0]

    def test_uneven_rounds(self):
        owns = [
            [Box((0,), (4,)), Box((8,), (4,))],
            [Box((4,), (4,)), Box((12,), (4,))],
        ]
        needs = [Box((8,), (8,)), Box((0,), (8,))]
        plan = compute_global_plan(owns, needs, 1)
        payloads = round_payloads(plan)
        assert len(payloads) == 2
        assert all(p > 0 for p in payloads)


class TestExchangeCost:
    def test_identity_plan_costs_only_alpha_and_memcpy(self):
        owns = [[Box((r * 4,), (4,))] for r in range(4)]
        needs = [Box((r * 4,), (4,)) for r in range(4)]
        plan = compute_global_plan(owns, needs, 4)
        cost = exchange_cost(COOLEY, plan)
        assert cost.transfer_s == 0.0
        assert cost.alpha_s == pytest.approx(COOLEY.alpha(4))
        assert cost.self_copy_s > 0

    def test_more_data_costs_more(self):
        small = exchange_cost(COOLEY, simple_plan(n=64))
        large = exchange_cost(COOLEY, simple_plan(n=64_000))
        assert large.transfer_s > small.transfer_s

    def test_more_ranks_cost_more_alpha(self):
        few = exchange_cost(COOLEY, simple_plan(nprocs=2, n=64))
        many = exchange_cost(COOLEY, simple_plan(nprocs=8, n=64))
        assert many.alpha_s > few.alpha_s

    def test_congestion_penalises_huge_messages(self):
        """Effective seconds/byte must grow with message size."""
        mid = simple_plan(nprocs=2, n=2**20)
        big = simple_plan(nprocs=2, n=2**28)
        t_mid = exchange_cost(COOLEY, mid).transfer_s
        t_big = exchange_cost(COOLEY, big).transfer_s
        bytes_mid = round_payloads(mid)[0]
        bytes_big = round_payloads(big)[0]
        assert t_big / bytes_big > t_mid / bytes_mid


class TestPointToPointCost:
    def test_sparse_pattern_cheaper_than_collective(self):
        """Reversal: each rank has exactly one partner, so the direct
        backend avoids the O(P) alpha."""
        plan = simple_plan(nprocs=8, n=1024)
        assert point_to_point_cost(COOLEY, plan) < exchange_cost(COOLEY, plan).total_s

    def test_identity_is_nearly_free(self):
        owns = [[Box((r * 4,), (4,))] for r in range(4)]
        needs = [Box((r * 4,), (4,)) for r in range(4)]
        plan = compute_global_plan(owns, needs, 4)
        assert point_to_point_cost(COOLEY, plan) == pytest.approx(0.0)
