"""Sensitivity analysis tests (small-stack geometry to stay fast)."""

from __future__ import annotations

import pytest

from repro.io.assignment import StackGeometry
from repro.netmodel import (
    COOLEY,
    FITTED_PARAMETERS,
    crossover,
    headline_speedup,
    sweep_parameter,
    tornado,
)

# A reduced geometry with the paper's structure (images >> procs).
STACK = StackGeometry(width=1024, height=512, n_images=512, bytes_per_pixel=4)
SCALES = (8, 27, 64)


class TestHeadlines:
    def test_speedup_positive_and_large(self):
        speedup = headline_speedup(COOLEY, nprocs=27, stack=STACK)
        assert speedup > 2.0

    def test_crossover_returns_scale_or_none(self):
        result = crossover(COOLEY, stack=STACK, process_counts=SCALES)
        assert result in (*SCALES, None)


class TestSweep:
    def test_decode_rate_moves_speedup(self):
        points = sweep_parameter(
            "read_decode_bw", (0.5, 1.0, 2.0), cluster=COOLEY, stack=STACK
        )
        assert len(points) == 3
        speedups = [p.speedup_216 for p in points]
        # Slower decode -> reads dominate both paths -> DDR's read saving
        # matters more -> larger speedup.  Monotone in the factor.
        assert speedups[0] > speedups[1] > speedups[2]

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="not a fitted parameter"):
            sweep_parameter("nodes", (1.0,))

    def test_congestion_moves_crossover(self):
        """More congestion penalizes big consecutive messages -> the
        crossover moves later (or disappears); less congestion moves it
        earlier.  Verified directionally on the reduced geometry."""
        lo = sweep_parameter("congestion_bytes", (0.05,), stack=STACK)[0]
        hi = sweep_parameter("congestion_bytes", (20.0,), stack=STACK)[0]

        def order(point):
            return point.crossover if point.crossover is not None else 10**9

        assert order(hi) <= order(lo)


class TestTornado:
    def test_all_parameters_covered_and_sorted(self):
        bars = tornado(cluster=COOLEY, stack=STACK)
        assert {bar.parameter for bar in bars} == set(FITTED_PARAMETERS)
        swings = [bar.swing for bar in bars]
        assert swings == sorted(swings, reverse=True)

    def test_decode_rate_is_dominant(self):
        """The read/decode rate sets both the baseline and the DDR read
        phase; it should be among the most influential constants."""
        bars = tornado(cluster=COOLEY, stack=STACK)
        top3 = [bar.parameter for bar in bars[:3]]
        assert "read_decode_bw" in top3

    def test_headline_robust_to_30pct_perturbations(self):
        """No single +-30% perturbation may destroy the order-of-magnitude
        speedup claim."""
        bars = tornado(cluster=COOLEY, stack=STACK)
        for bar in bars:
            assert bar.low_speedup > 2.0, bar
            assert bar.high_speedup > 2.0, bar
