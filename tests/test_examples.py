"""Smoke tests: every example script must run end-to-end (reduced sizes)."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(f"example_{name}", EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)  # type: ignore[union-attr]
    return module


def run_main(module, argv: list[str], monkeypatch) -> None:
    monkeypatch.setattr(sys, "argv", ["prog", *argv])
    module.main()


class TestExamples:
    def test_quickstart(self, capsys, monkeypatch):
        run_main(load_example("quickstart"), [], monkeypatch)
        out = capsys.readouterr().out
        assert out.count("OK") == 8  # 4 ranks x 2 API layers
        assert "MISMATCH" not in out

    def test_ghost_exchange(self, capsys, monkeypatch):
        run_main(
            load_example("ghost_exchange"),
            ["--size", "16", "12", "--iters", "5"],
            monkeypatch,
        )
        out = capsys.readouterr().out
        assert "OK" in out and "MISMATCH" not in out

    def test_tiff_volume_rendering(self, capsys, monkeypatch, tmp_path):
        run_main(
            load_example("tiff_volume_rendering"),
            ["--size", "24", "16", "12", "--ranks", "8",
             "--out", str(tmp_path / "render")],
            monkeypatch,
        )
        out = capsys.readouterr().out
        assert "renders no_ddr vs rr agree: True" in out
        assert (tmp_path / "render" / "tooth.ppm").exists()
        assert (tmp_path / "render" / "tooth.jpg").exists()

    def test_lbm_in_transit(self, capsys, monkeypatch, tmp_path):
        run_main(
            load_example("lbm_in_transit"),
            ["--grid", "48", "24", "--m", "3", "--n", "2",
             "--steps", "40", "--output-every", "20",
             "--out", str(tmp_path / "frames")],
            monkeypatch,
        )
        out = capsys.readouterr().out
        assert "data reduction" in out
        assert len(list((tmp_path / "frames").glob("*.jpg"))) == 2

    def test_lbm_multivariable(self, capsys, monkeypatch, tmp_path):
        run_main(
            load_example("lbm_in_transit"),
            ["--grid", "48", "24", "--m", "2", "--n", "2",
             "--steps", "20", "--output-every", "20",
             "--variables", "vorticity", "speed",
             "--obstacle", "circle",
             "--out", str(tmp_path / "mv")],
            monkeypatch,
        )
        out = capsys.readouterr().out
        assert "per-variable JPEG bytes" in out

    @pytest.mark.slow
    def test_reproduce_paper_fast(self, capsys, monkeypatch):
        run_main(load_example("reproduce_paper"), ["--fast"], monkeypatch)
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "all artifacts regenerated" in out
