"""Shim so editable installs work in offline environments without `wheel`.

``pip install -e .`` (PEP 660) needs the `wheel` package; when it is absent
(e.g. air-gapped machines), run ``python setup.py develop`` instead.  All
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
