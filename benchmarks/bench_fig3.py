"""Bench: Figure 3 — strong scaling of parallel TIFF loading."""

from __future__ import annotations

from repro.bench import fig3


def test_strong_scaling_series(benchmark):
    series = benchmark.pedantic(
        lambda: fig3.figure3_series(), rounds=1, iterations=1
    )
    print("\n" + fig3.report())

    # Both DDR curves decrease monotonically over 27 -> 216 (strong scaling).
    for mode in ("ddr_round_robin", "ddr_consecutive"):
        times = series[mode]
        assert all(a > b for a, b in zip(times, times[1:])), mode

    # no-DDR barely scales: less than 2x over an 8x process increase.
    no_ddr = series["no_ddr"]
    assert no_ddr[0] / no_ddr[-1] < 2.0

    # DDR-consecutive achieves near-ideal strong scaling at large scale:
    # the paper's curve drops ~7.5x over the 8x range.
    consec = series["ddr_consecutive"]
    assert consec[0] / consec[-1] > 5.0


def test_crossover_location(benchmark):
    crossover = benchmark.pedantic(fig3.crossover_processes, rounds=1, iterations=1)
    # Paper: RR wins at 27, tie at 64, consecutive wins by 125.
    assert crossover in (64, 125)


def test_scaling_summaries(benchmark):
    summaries = benchmark.pedantic(fig3.scaling_summaries, rounds=1, iterations=1)
    by_mode = {s.mode: s for s in summaries}
    assert by_mode["ddr_consecutive"].parallel_efficiency > 0.6
    assert by_mode["no_ddr"].parallel_efficiency < 0.25
