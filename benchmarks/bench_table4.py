"""Bench: Table IV — raw vs in-transit JPEG output size.

The pipeline really runs (LBM -> M-to-N stream -> DDR -> colormap -> JPEG)
at reduced grid scale; raw sizes at the paper's grids are exact arithmetic
and processed sizes extrapolate the measured bits/pixel (a documented
upper bound — per-pixel content only gets smoother at larger grids).
"""

from __future__ import annotations

import pytest

from repro.bench import table4
from repro.bench.paperdata import TABLE4_OUTPUT


def test_measured_pipeline_compression(benchmark, measured_compression):
    result = benchmark.pedantic(
        lambda: measured_compression, rounds=1, iterations=1
    )
    # Real pipeline output at native scale: large reduction, sane bpp.
    assert result.frames == 10
    assert result.data_reduction > 0.95
    assert 0.05 < result.bits_per_pixel < 2.0


def test_table4_rows(benchmark, measured_compression):
    rows = benchmark.pedantic(
        table4.table4_rows, args=(measured_compression,), rounds=1, iterations=1
    )
    print("\n" + table4.report(measured_compression))
    for row in rows:
        paper_raw, _, paper_reduction = TABLE4_OUTPUT[(row.nx, row.ny)]
        # Raw sizes are exact arithmetic; paper prints them rounded.
        assert row.raw_bytes == pytest.approx(paper_raw, rel=0.06)
        # Constant-bpp estimate preserves the headline: ~two orders of
        # magnitude reduction (paper: 99.4-99.6%; ours bounds from below).
        assert row.reduction > 0.97
        assert row.reduction <= paper_reduction + 0.005

    # The reduction stays essentially flat across the 64x size range,
    # matching the paper's near-constant percentage column.
    reductions = [row.reduction for row in rows]
    assert max(reductions) - min(reductions) < 0.01


def test_two_scale_bracket_contains_paper(benchmark, measured_compression):
    """The measured [edge-fit, constant-bpp] bracket must contain the
    paper's processed sizes at every grid."""

    def build():
        small = table4.measure_compression(
            nx=162, ny=65, m=4, n=2, steps=1500, output_every=150
        )
        fit = table4.fit_scaling(small, measured_compression)
        low = table4.table4_rows(measured_compression, fit)
        high = table4.table4_rows(measured_compression, None)
        return low, high

    low_rows, high_rows = benchmark.pedantic(build, rounds=1, iterations=1)
    for low, high in zip(low_rows, high_rows):
        _, paper_processed, _ = TABLE4_OUTPUT[(low.nx, low.ny)]
        assert low.processed_bytes <= paper_processed <= high.processed_bytes, (
            low.nx,
            low.processed_bytes,
            paper_processed,
            high.processed_bytes,
        )


def test_raw_sizes_match_paper_exactly():
    """Raw column: nx * ny * 4 bytes * 200 steps."""
    for (nx, ny), (paper_raw, _, _) in TABLE4_OUTPUT.items():
        assert nx * ny * 4 * 200 == pytest.approx(paper_raw, rel=0.06)
