"""Micro-benchmarks of the hot paths under the paper's experiments:
box geometry, subarray pack/unpack, runtime Alltoallw, codec throughput,
LBM step rate, and mapping reuse (the "dynamic data" property)."""

from __future__ import annotations

import numpy as np

from repro.core import Box, Redistributor, intersect_many
from repro.imaging import VolumeSpec, tooth_slice
from repro.jpeg import decode, encode_gray
from repro.lbm import LbmConfig, SerialLbm
from repro.mpisim import FLOAT, SubarrayType
from repro.mpisim.executor import run_spmd


def test_intersect_many_vectorised(benchmark):
    rng = np.random.default_rng(0)
    offsets = rng.integers(0, 1000, (4096, 3))
    dims = rng.integers(1, 100, (4096, 3))
    box = Box((200, 200, 200), (400, 400, 400))
    mask, _, _ = benchmark(intersect_many, box, offsets, dims)
    assert mask.any()


def test_subarray_pack_throughput(benchmark):
    """Packing a 1 MiB interior block out of a 16 MiB buffer."""
    buffer = np.zeros((1024, 4096), dtype=np.float32)
    datatype = SubarrayType(FLOAT, (1024, 4096), (256, 1024), (384, 1536))
    out = benchmark(datatype.pack, buffer)
    assert out.size == 256 * 1024


def test_runtime_alltoallw_round(benchmark):
    """One 4-rank Alltoallw of 1 MiB lanes through the threaded runtime."""

    def exchange():
        def fn(comm):
            size = comm.size
            n = 512
            send = np.zeros((n, n), dtype=np.float32)
            recv = np.zeros((n, n), dtype=np.float32)
            rows = n // size
            stypes = [
                SubarrayType(FLOAT, (n, n), (rows, n), (d * rows, 0)) for d in range(size)
            ]
            rtypes = [
                SubarrayType(FLOAT, (n, n), (rows, n), (s * rows, 0)) for s in range(size)
            ]
            comm.Alltoallw(send, stypes, recv, rtypes)
            return True

        return run_spmd(4, fn)

    assert all(benchmark.pedantic(exchange, rounds=3, iterations=1))


def test_mapping_setup_vs_reuse(benchmark):
    """§III-C: setup once, exchange many — the exchange path must not
    re-plan.  Times 16 exchanges after one setup."""

    def run():
        def fn(comm):
            rank, size = comm.rank, comm.size
            n = 256
            rows = n // size
            red = Redistributor(comm, ndims=2, dtype=np.float32)
            red.setup(
                own=[Box((0, rank * rows), (n, rows))],
                need=Box((0, (size - 1 - rank) * rows), (n, rows)),
            )
            out = np.empty((rows, n), dtype=np.float32)
            data = np.zeros((rows, n), dtype=np.float32)
            for _ in range(16):
                red.exchange([data], out)
            return True

        return run_spmd(4, fn)

    assert all(benchmark.pedantic(run, rounds=3, iterations=1))


def test_tiff_decode_rate(benchmark):
    from io import BytesIO

    from repro.imaging import read_tiff, write_tiff

    spec = VolumeSpec(512, 256, 4, np.uint16)
    buf = BytesIO()
    write_tiff(buf, tooth_slice(spec, 2))
    blob = buf.getvalue()
    image = benchmark(lambda: read_tiff(BytesIO(blob)))
    assert image.shape == (256, 512)


def test_jpeg_encode_rate(benchmark):
    spec = VolumeSpec(512, 256, 4, np.uint8)
    image = tooth_slice(spec, 2)
    blob = benchmark(encode_gray, image, 75)
    assert decode(blob).shape == image.shape


def test_lbm_step_rate(benchmark):
    sim = SerialLbm(LbmConfig(nx=256, ny=128))
    benchmark.pedantic(sim.step, args=(10,), rounds=3, iterations=1)
    assert np.isfinite(sim.f).all()
