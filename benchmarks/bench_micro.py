"""Micro-benchmarks of the hot paths under the paper's experiments:
box geometry, subarray pack/unpack, runtime Alltoallw, codec throughput,
LBM step rate, mapping reuse (the "dynamic data" property), the
packed-vs-zero-copy transport comparison, and the thread-vs-process
executor comparison.

The transport comparison tests append their measured throughputs to
``benchmarks/BENCH_micro.json`` and the executor comparison writes
``benchmarks/BENCH_procs.json`` so ``benchmarks/check_regression.py`` can
diff two runs of either record.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core import Box, Redistributor, intersect_many
from repro.imaging import VolumeSpec, tooth_slice
from repro.jpeg import decode, encode_gray
from repro.lbm import LbmConfig, SerialLbm
from repro.mpisim import (
    FLOAT,
    SubarrayType,
    TRANSPORT_PACKED,
    TRANSPORT_SHM,
    TRANSPORT_ZEROCOPY,
)
from repro.mpisim.executor import run_spmd

BENCH_RECORD = Path(__file__).resolve().parent / "BENCH_micro.json"
BENCH_PROCS_RECORD = Path(__file__).resolve().parent / "BENCH_procs.json"


def _best_seconds(fn, repeats: int = 9) -> float:
    """Best-of-N wall time; best-of is the standard noise filter for
    memory-bound microbenches on a shared machine.  Nine repeats keeps the
    best-case estimate stable enough for a tight (3%) regression gate —
    five left multi-rank runs scattering by ±6% between invocations."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _record_comparison(name: str, bytes_moved: int, packed_s: float, zerocopy_s: float) -> float:
    """Merge one comparison into BENCH_micro.json; returns the speedup."""
    record = {}
    if BENCH_RECORD.exists():
        record = json.loads(BENCH_RECORD.read_text())
    speedup = packed_s / zerocopy_s
    record[name] = {
        "bytes_moved": bytes_moved,
        "packed_seconds": packed_s,
        "zerocopy_seconds": zerocopy_s,
        "packed_throughput_gib_s": bytes_moved / packed_s / 2**30,
        "zerocopy_throughput_gib_s": bytes_moved / zerocopy_s / 2**30,
        "speedup": speedup,
        "timestamp": time.time(),
    }
    BENCH_RECORD.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return speedup


def test_intersect_many_vectorised(benchmark):
    rng = np.random.default_rng(0)
    offsets = rng.integers(0, 1000, (4096, 3))
    dims = rng.integers(1, 100, (4096, 3))
    box = Box((200, 200, 200), (400, 400, 400))
    mask, _, _ = benchmark(intersect_many, box, offsets, dims)
    assert mask.any()


def test_subarray_pack_throughput(benchmark):
    """Packing a 1 MiB interior block out of a 16 MiB buffer."""
    buffer = np.zeros((1024, 4096), dtype=np.float32)
    datatype = SubarrayType(FLOAT, (1024, 4096), (256, 1024), (384, 1536))
    out = benchmark(datatype.pack, buffer)
    assert out.size == 256 * 1024


def test_runtime_alltoallw_round(benchmark):
    """One 4-rank Alltoallw of 1 MiB lanes through the threaded runtime."""

    def exchange():
        def fn(comm):
            size = comm.size
            n = 512
            send = np.zeros((n, n), dtype=np.float32)
            recv = np.zeros((n, n), dtype=np.float32)
            rows = n // size
            stypes = [
                SubarrayType(FLOAT, (n, n), (rows, n), (d * rows, 0)) for d in range(size)
            ]
            rtypes = [
                SubarrayType(FLOAT, (n, n), (rows, n), (s * rows, 0)) for s in range(size)
            ]
            comm.Alltoallw(send, stypes, recv, rtypes)
            return True

        return run_spmd(4, fn)

    assert all(benchmark.pedantic(exchange, rounds=3, iterations=1))


def test_mapping_setup_vs_reuse(benchmark):
    """§III-C: setup once, exchange many — the exchange path must not
    re-plan.  Times 16 exchanges after one setup."""

    def run():
        def fn(comm):
            rank, size = comm.rank, comm.size
            n = 256
            rows = n // size
            red = Redistributor(comm, ndims=2, dtype=np.float32)
            red.setup(
                own=[Box((0, rank * rows), (n, rows))],
                need=Box((0, (size - 1 - rank) * rows), (n, rows)),
            )
            out = np.empty((rows, n), dtype=np.float32)
            data = np.zeros((rows, n), dtype=np.float32)
            for _ in range(16):
                red.exchange([data], out)
            return True

        return run_spmd(4, fn)

    assert all(benchmark.pedantic(run, rounds=3, iterations=1))


def _alltoallw_rounds(mode: str, n: int = 1024, rounds: int = 8) -> None:
    """4-rank Alltoallw rounds moving the whole n x n float32 matrix per rank.

    Several rounds per SPMD launch so the (transport-independent) thread
    spawn cost does not dominate what is being compared.
    """

    def fn(comm):
        size = comm.size
        send = np.zeros((n, n), dtype=np.float32)
        recv = np.zeros((n, n), dtype=np.float32)
        rows = n // size
        stypes = [
            SubarrayType(FLOAT, (n, n), (rows, n), (d * rows, 0)) for d in range(size)
        ]
        rtypes = [
            SubarrayType(FLOAT, (n, n), (rows, n), (s * rows, 0)) for s in range(size)
        ]
        for _ in range(rounds):
            comm.Alltoallw(send, stypes, recv, rtypes, transport=mode)
        return True

    run_spmd(4, fn)


def test_transport_alltoallw_speedup():
    """Acceptance: the zero-copy transport must at least halve the cost of
    a runtime Alltoallw round against the packed baseline."""
    n, rounds = 2048, 4
    for mode in (TRANSPORT_ZEROCOPY, TRANSPORT_PACKED):
        _alltoallw_rounds(mode, n, rounds)  # warm-up: thread pool, allocator
    packed = _best_seconds(lambda: _alltoallw_rounds(TRANSPORT_PACKED, n, rounds))
    zerocopy = _best_seconds(lambda: _alltoallw_rounds(TRANSPORT_ZEROCOPY, n, rounds))
    bytes_moved = rounds * 4 * n * n * 4  # every rank's full matrix, each round
    speedup = _record_comparison(
        "alltoallw_rounds_4x4x16MiB", bytes_moved, packed, zerocopy
    )
    assert speedup >= 2.0, f"zero-copy speedup {speedup:.2f}x < 2x"


def test_transport_subarray_transfer_speedup():
    """Acceptance: moving a strided subarray block between two buffers via
    ``copy_into`` must be at least 2x the pack->unpack staging path."""
    full = (2048, 2048)
    sub = (1024, 1024)
    datatype = SubarrayType(FLOAT, full, sub, (512, 512))
    src = np.zeros(full, dtype=np.float32)
    dst = np.zeros(full, dtype=np.float32)
    datatype.copy_into(src, dst)  # warm-up
    packed = _best_seconds(lambda: datatype.unpack(dst, datatype.pack(src)))
    zerocopy = _best_seconds(lambda: datatype.copy_into(src, dst))
    bytes_moved = int(np.prod(sub)) * 4
    speedup = _record_comparison(
        "subarray_transfer_4MiB", bytes_moved, packed, zerocopy
    )
    assert speedup >= 2.0, f"zero-copy speedup {speedup:.2f}x < 2x"


def test_transport_redistributor_speedup():
    """End-to-end: a warmed Redistributor loop (the per-frame call) under
    both transports."""

    def loop(mode):
        def fn(comm):
            rank, size = comm.rank, comm.size
            n = 1024
            rows = n // size
            red = Redistributor(comm, ndims=2, dtype=np.float32, transport=mode)
            red.setup(
                own=[Box((0, rank * rows), (n, rows))],
                need=Box((0, (size - 1 - rank) * rows), (n, rows)),
            )
            out = np.empty((rows, n), dtype=np.float32)
            data = np.zeros((rows, n), dtype=np.float32)
            for _ in range(8):
                red.exchange([data], out)
            return True

        run_spmd(4, fn)

    loop(TRANSPORT_ZEROCOPY)  # warm-up
    packed = _best_seconds(lambda: loop(TRANSPORT_PACKED), repeats=3)
    zerocopy = _best_seconds(lambda: loop(TRANSPORT_ZEROCOPY), repeats=3)
    bytes_moved = 8 * 4 * 1024 * 256 * 4
    _record_comparison("redistributor_loop_8x1MiB", bytes_moved, packed, zerocopy)
    # No hard multiplier here: the loop includes fixed mapping overhead.
    assert zerocopy < packed


def _pack_exchange_rounds(
    executor: str, nprocs: int = 8, n: int = 1024, rounds: int = 4
) -> None:
    """``nprocs``-rank pack+exchange rounds: every rank packs its full
    n x n float32 matrix lane by lane and Alltoallw's it each round.

    Both executors run a two-copy staging path so the comparison isolates
    the executor (GIL vs processes), not the transport: the thread
    executor packs into a pickled buffer (``packed``), the process
    executor packs into a shared-memory segment (``shm``).
    """
    mode = TRANSPORT_PACKED if executor == "thread" else TRANSPORT_SHM

    def fn(comm):
        size = comm.size
        send = np.zeros((n, n), dtype=np.float32)
        recv = np.zeros((n, n), dtype=np.float32)
        rows = n // size
        stypes = [
            SubarrayType(FLOAT, (n, n), (rows, n), (d * rows, 0)) for d in range(size)
        ]
        rtypes = [
            SubarrayType(FLOAT, (n, n), (rows, n), (s * rows, 0)) for s in range(size)
        ]
        for _ in range(rounds):
            comm.Alltoallw(send, stypes, recv, rtypes, transport=mode)
        return True

    run_spmd(nprocs, fn, executor=executor)


def test_executor_pack_exchange_throughput():
    """Tentpole acceptance: the process executor must at least double the
    thread executor's aggregate pack+exchange throughput at 8 ranks — on a
    host with enough cores for the ranks to actually run in parallel.  On
    single-core machines (CI shared runners, this container) the numbers
    are still recorded in ``BENCH_procs.json`` but the multiplier is not
    asserted; set ``DDR_BENCH_RELAX=1`` to skip the assert everywhere.
    """
    nprocs, n, rounds = 8, 1024, 4
    for executor in ("thread", "process"):
        _pack_exchange_rounds(executor, nprocs, n, rounds)  # warm-up
    thread_s = _best_seconds(
        lambda: _pack_exchange_rounds("thread", nprocs, n, rounds), repeats=3
    )
    process_s = _best_seconds(
        lambda: _pack_exchange_rounds("process", nprocs, n, rounds), repeats=3
    )
    bytes_moved = rounds * nprocs * n * n * 4  # every rank's full matrix per round
    speedup = thread_s / process_s
    cpu_count = os.cpu_count() or 1
    record = {}
    if BENCH_PROCS_RECORD.exists():
        record = json.loads(BENCH_PROCS_RECORD.read_text())
    record["pack_exchange_8ranks_4MiB"] = {
        "bytes_moved": bytes_moved,
        "thread_seconds": thread_s,
        "process_seconds": process_s,
        "thread_throughput_gib_s": bytes_moved / thread_s / 2**30,
        "process_throughput_gib_s": bytes_moved / process_s / 2**30,
        "speedup": speedup,
        "cpu_count": cpu_count,
        "timestamp": time.time(),
    }
    BENCH_PROCS_RECORD.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    if cpu_count >= 4 and not os.environ.get("DDR_BENCH_RELAX"):
        assert speedup >= 2.0, (
            f"process-executor speedup {speedup:.2f}x < 2x on a "
            f"{cpu_count}-core host"
        )


def test_tiff_decode_rate(benchmark):
    from io import BytesIO

    from repro.imaging import read_tiff, write_tiff

    spec = VolumeSpec(512, 256, 4, np.uint16)
    buf = BytesIO()
    write_tiff(buf, tooth_slice(spec, 2))
    blob = buf.getvalue()
    image = benchmark(lambda: read_tiff(BytesIO(blob)))
    assert image.shape == (256, 512)


def test_jpeg_encode_rate(benchmark):
    spec = VolumeSpec(512, 256, 4, np.uint8)
    image = tooth_slice(spec, 2)
    blob = benchmark(encode_gray, image, 75)
    assert decode(blob).shape == image.shape


def test_lbm_step_rate(benchmark):
    sim = SerialLbm(LbmConfig(nx=256, ny=128))
    benchmark.pedantic(sim.step, args=(10,), rounds=3, iterations=1)
    assert np.isfinite(sim.f).all()
