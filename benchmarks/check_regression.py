#!/usr/bin/env python
"""Compare two benchmark JSON records and fail on throughput regressions.

Usage::

    python benchmarks/check_regression.py BASELINE.json [CURRENT.json]

``CURRENT`` defaults to ``benchmarks/BENCH_micro.json`` (the file the
transport benchmarks in ``bench_micro.py`` write); pass the engine bench's
``BENCH_engine.json`` with ``--field throughput_gib_s`` to gate that record
instead.  A benchmark regresses when its watched throughput field drops
more than ``--tolerance`` (default 20%) below the baseline; benchmarks
present in only one record — or lacking the watched field — are reported
but do not fail the check; a field absent from *every* benchmark of a
record is a usage error.  Exit status: 0 = no regression, 1 = regression,
2 = usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_CURRENT = Path(__file__).resolve().parent / "BENCH_micro.json"
WATCHED_FIELD = "zerocopy_throughput_gib_s"


def load(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        print(f"error: record {path} does not exist (run bench_micro.py first)", file=sys.stderr)
        sys.exit(2)
    except json.JSONDecodeError as exc:
        print(f"error: {path} is not valid JSON: {exc}", file=sys.stderr)
        sys.exit(2)


def require_field(record: dict, field: str, path: Path) -> None:
    """Exit 2 with a one-line error when ``field`` appears nowhere in ``record``.

    Without this a typo'd ``--field`` (or gating the wrong JSON file) skips
    every benchmark and the check passes vacuously — the gate silently
    stops gating.
    """
    if not any(isinstance(entry, dict) and field in entry for entry in record.values()):
        print(
            f"error: field {field!r} is absent from every benchmark in {path} "
            f"(wrong --field or wrong record?)",
            file=sys.stderr,
        )
        sys.exit(2)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="previous BENCH_micro.json")
    parser.add_argument(
        "current", type=Path, nargs="?", default=DEFAULT_CURRENT,
        help=f"new BENCH_micro.json (default: {DEFAULT_CURRENT})",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.20,
        help="allowed fractional throughput drop (default 0.20 = 20%%)",
    )
    parser.add_argument(
        "--field", default=WATCHED_FIELD,
        help=f"throughput field to compare (default: {WATCHED_FIELD})",
    )
    args = parser.parse_args(argv)

    baseline = load(args.baseline)
    current = load(args.current)
    require_field(baseline, args.field, args.baseline)
    require_field(current, args.field, args.current)

    regressions = []
    for name in sorted(set(baseline) | set(current)):
        if name not in current:
            print(f"  {name}: only in baseline (skipped)")
            continue
        if name not in baseline:
            print(f"  {name}: new benchmark (no baseline)")
            continue
        if args.field not in baseline[name] or args.field not in current[name]:
            print(f"  {name}: no {args.field!r} field (skipped)")
            continue
        old = float(baseline[name][args.field])
        new = float(current[name][args.field])
        change = (new - old) / old if old else 0.0
        status = "ok"
        if change < -args.tolerance:
            status = "REGRESSION"
            regressions.append(name)
        print(f"  {name}: {old:.2f} -> {new:.2f} GiB/s ({change:+.1%}) {status}")

    if regressions:
        print(
            f"{len(regressions)} benchmark(s) regressed more than "
            f"{args.tolerance:.0%}: {', '.join(regressions)}"
        )
        return 1
    print("no throughput regression beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
