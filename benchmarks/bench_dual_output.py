"""Bench: the paper's §IV-B closing proposals, quantified.

1. Dual-frequency output — raw at the coarse cadence plus in-transit JPEG
   at 10x the rate: "increase temporal resolution 10-fold, but only
   marginally increase data storage size".
2. Multi-variable streaming — "many other variables ... achieving similar
   data compression".
"""

from __future__ import annotations

from repro.intransit import PipelineConfig, run_pipeline
from repro.lbm import LbmConfig
from repro.mpisim import run_spmd


def _run(config: PipelineConfig):
    results = run_spmd(
        config.m + config.n, lambda comm: run_pipeline(comm, config)
    )
    return next(r for r in results if r.role == "analysis_root")


def test_dual_frequency_storage(benchmark):
    """20 analysis frames, raw kept every 10th: 10x temporal resolution."""
    config = PipelineConfig(
        lbm=LbmConfig(nx=324, ny=130), m=8, n=4,
        steps=1000, output_every=50, raw_every_frames=10,
    )
    root = benchmark.pedantic(_run, args=(config,), rounds=1, iterations=1)
    raw_only = root.dual_raw_bytes  # what the raw-only coarse cadence costs
    dual = root.dual_total_bytes
    print(
        f"\nraw-only (every 10th frame): {raw_only / 1e6:.2f} MB; "
        f"dual (plus JPEG every frame): {dual / 1e6:.2f} MB "
        f"(+{100 * root.dual_overhead:.1f}%); "
        f"raw-every-frame would be {root.raw_bytes / 1e6:.2f} MB"
    )
    assert root.frames == 20
    # 10x temporal resolution for well under the cost of raw everywhere.
    assert dual < 0.5 * root.raw_bytes
    # The storage increase over raw-only is bounded ("marginal").
    assert root.dual_overhead < 1.5


def test_multivariable_compression(benchmark):
    config = PipelineConfig(
        lbm=LbmConfig(nx=324, ny=130), m=8, n=4,
        steps=600, output_every=100,
        variables=("vorticity", "density", "speed"),
    )
    root = benchmark.pedantic(_run, args=(config,), rounds=1, iterations=1)
    per_var_raw = 324 * 130 * 4 * root.frames
    print("\nper-variable compression:")
    for name, nbytes in sorted(root.jpeg_bytes_by_variable.items()):
        print(f"  {name:>10}: {nbytes:8d} B JPEG vs {per_var_raw} B raw "
              f"({100 * (1 - nbytes / per_var_raw):.2f}% reduction)")
    for name, nbytes in root.jpeg_bytes_by_variable.items():
        assert 1 - nbytes / per_var_raw > 0.9, name
