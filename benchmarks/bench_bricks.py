"""Bench: the format-conversion workflow from the paper's introduction.

"ParaView ... requires preprocessing data into a custom format in order to
leverage parallel data distribution.  Our research could be integrated into
such packages to enable on-the-fly conversion."  Here DDR performs that
conversion (slices -> bricks) and we quantify the payoff: random block
reads touch only the bricks they need, while the TIFF stack must decode
whole slices.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Box
from repro.imaging import BrickedVolume, VolumeSpec, tooth_slice, write_stack
from repro.io import convert_stack_to_bricks
from repro.mpisim import run_spmd

DIMS = (64, 48, 32)


@pytest.fixture(scope="module")
def assets(tmp_path_factory):
    directory = tmp_path_factory.mktemp("bricks")
    spec = VolumeSpec(*DIMS, np.uint16)
    stack = write_stack(directory / "stack", DIMS[2], lambda z: tooth_slice(spec, z))
    out = directory / "volume.bricks"
    run_spmd(4, lambda comm: convert_stack_to_bricks(comm, stack, out, brick=16))
    return stack, BrickedVolume(out)


def test_parallel_conversion(benchmark, tmp_path):
    spec = VolumeSpec(*DIMS, np.uint16)
    stack = write_stack(tmp_path / "s", DIMS[2], lambda z: tooth_slice(spec, z))

    def convert():
        return run_spmd(
            4,
            lambda comm: convert_stack_to_bricks(
                comm, stack, tmp_path / "v.bricks", brick=16
            ),
        )

    timers = benchmark.pedantic(convert, rounds=1, iterations=1)
    assert len(timers) == 4


def test_block_read_from_bricks(benchmark, assets):
    _, volume = assets
    region = Box((8, 8, 8), (16, 16, 16))
    data = benchmark(volume.read_region, region)
    assert data.shape == (16, 16, 16)
    # One interior 16^3 region = at most 8 bricks of the 4x3x2 grid.
    assert volume.bricks_touched(region) <= 8


def test_block_read_from_slices(benchmark, assets):
    """The slice-format baseline: decode 16 whole slices, crop."""
    stack, _ = assets

    def read():
        planes = [stack.read_slice(z)[8:24, 8:24] for z in range(8, 24)]
        return np.stack(planes)

    data = benchmark(read)
    assert data.shape == (16, 16, 16)


def test_formats_agree(benchmark, assets):
    stack, volume = assets

    def both():
        region = Box((4, 4, 4), (20, 20, 20))
        bricked = volume.read_region(region)
        planes = [stack.read_slice(z)[4:24, 4:24] for z in range(4, 24)]
        return bricked, np.stack(planes)

    bricked, sliced = benchmark.pedantic(both, rounds=1, iterations=1)
    assert np.array_equal(bricked, sliced)
