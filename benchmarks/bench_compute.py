"""Compute-workload benchmarks under both rank executors.

The executor microbenchmark (``bench_micro.py`` -> ``BENCH_procs.json``)
times the pack+exchange hot path; this module times the *applications* —
the distributed LBM simulation and the distributed volume renderer — end
to end under ``executor="thread"`` and ``executor="process"``, including
executor startup and result collection.  Both workloads verify that the
two executors compute identical results before any number is recorded.

Numbers land in ``benchmarks/BENCH_compute.json`` keyed per workload with
a common ``thread_rate`` / ``process_rate`` field (units in the entry),
so CI can gate the thread-path rate with ``check_regression.py
--field thread_rate`` exactly like the BENCH_procs gate.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.lbm import LbmConfig
from repro.lbm.distributed import DistributedLbm
from repro.mpisim.executor import run_spmd

BENCH_COMPUTE_RECORD = Path(__file__).resolve().parent / "BENCH_compute.json"


def _best_seconds(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _merge_record(name: str, entry: dict) -> None:
    record = {}
    if BENCH_COMPUTE_RECORD.exists():
        record = json.loads(BENCH_COMPUTE_RECORD.read_text())
    entry["cpu_count"] = os.cpu_count() or 1
    entry["timestamp"] = time.time()
    record[name] = entry
    BENCH_COMPUTE_RECORD.write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n"
    )


# -- LBM ----------------------------------------------------------------------


def _lbm_worker(comm, nx: int, ny: int, steps: int) -> float:
    sim = DistributedLbm(comm, LbmConfig(nx=nx, ny=ny))
    sim.step(steps)
    return float(np.asarray(sim.interior, dtype=np.float64).sum())


def _lbm_run(executor: str, nprocs: int, nx: int, ny: int, steps: int):
    return run_spmd(nprocs, _lbm_worker, nx, ny, steps, executor=executor)


def test_lbm_executor_rates():
    """Distributed LBM step rate, thread vs process executor (4 ranks)."""
    nprocs, nx, ny, steps = 4, 256, 128, 30
    thread_out = _lbm_run("thread", nprocs, nx, ny, steps)  # warm-up
    process_out = _lbm_run("process", nprocs, nx, ny, steps)
    # Identical physics on both executors, rank by rank.
    assert thread_out == process_out
    thread_s = _best_seconds(lambda: _lbm_run("thread", nprocs, nx, ny, steps))
    process_s = _best_seconds(lambda: _lbm_run("process", nprocs, nx, ny, steps))
    updates = nx * ny * steps
    _merge_record(
        "lbm_4ranks_256x128_30steps",
        {
            "rate_units": "MLUPS (million lattice updates per second)",
            "thread_seconds": thread_s,
            "process_seconds": process_s,
            "thread_rate": updates / thread_s / 1e6,
            "process_rate": updates / process_s / 1e6,
            "speedup": thread_s / process_s,
        },
    )


# -- volume rendering ---------------------------------------------------------


def _volren_worker(comm, dims: tuple, grid: tuple):
    from repro.imaging import VolumeSpec, phantom_volume
    from repro.volren import composite_distributed_mip, grid_boxes, mip_project

    spec = VolumeSpec(*dims, np.float32)
    volume = phantom_volume("brain", spec).astype(np.float64)
    box = grid_boxes(dims, grid)[comm.rank]
    x0, y0, z0 = box.offset
    w, h, d = box.dims
    block = volume[z0 : z0 + d, y0 : y0 + h, x0 : x0 + w]
    partial = mip_project(block, "z")
    frame = composite_distributed_mip(comm, box, partial, dims, axis="z")
    return None if frame is None else float(frame.sum())


def _volren_run(executor: str, dims: tuple, grid: tuple):
    nprocs = int(np.prod(grid))
    return run_spmd(nprocs, _volren_worker, dims, grid, executor=executor)


def test_volren_executor_rates():
    """Distributed MIP rendering rate, thread vs process executor (4 ranks)."""
    dims, grid = (96, 96, 96), (2, 2, 1)
    thread_out = _volren_run("thread", dims, grid)  # warm-up
    process_out = _volren_run("process", dims, grid)
    assert thread_out == process_out
    thread_s = _best_seconds(lambda: _volren_run("thread", dims, grid))
    process_s = _best_seconds(lambda: _volren_run("process", dims, grid))
    voxels = int(np.prod(dims))
    _merge_record(
        "volren_mip_4ranks_96cube",
        {
            "rate_units": "Mvoxel/s (volume voxels projected per second)",
            "thread_seconds": thread_s,
            "process_seconds": process_s,
            "thread_rate": voxels / thread_s / 1e6,
            "process_rate": voxels / process_s / 1e6,
            "speedup": thread_s / process_s,
        },
    )
