"""Memory-budget benchmark: measured staging peak vs budget, bounded overhead.

Runs the slab-to-tile redistribution that motivates the budget machinery
(row slabs in, grid tiles out — every rank talks to every rank) under three
budget levels — 100%, 75%, and 50% of the unbounded staging peak — on the
``bounded`` engine, and records whether the *measured* ledger peak stayed
within each budget into ``benchmarks/BENCH_memory.json``.  The CI gate
(``check_regression.py --field peak_within_budget``) fails the build if a
budget level that used to hold stops holding.

Also records the bounded-vs-alltoallw wall-clock overhead (the price of the
per-piece handshakes when no budget forces them) and a tracemalloc
cross-check of the analytic estimate, so estimate drift is diffable across
commits.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core import Redistributor, compute_global_plan, global_schedules
from repro.lbm.decompose import slab_box
from repro.mpisim.executor import run_spmd
from repro.utils.membudget import MEMORY_BUDGET, auditing_memory, budget_scope
from repro.volren.decompose import grid_boxes, grid_shape

BENCH_RECORD = Path(__file__).resolve().parent / "BENCH_memory.json"
NPROCS = 4
NX, NY = 1024, 512  # big enough that lanes dwarf the 64 KiB piece floor
ITERS = 3
#: Budget levels as fractions of the unbounded staging peak.  The bounded
#: engine must hold all three; the strict engines refuse below 1.0.
LEVELS = (1.0, 0.75, 0.5)


def _layout(nprocs: int, rank: int):
    own = slab_box(NX, NY, nprocs, rank)
    need = grid_boxes((NX, NY), grid_shape(nprocs, (NX, NY)))[rank]
    return own, need


def unbounded_peak_bytes() -> int:
    """The schedule's conservative per-round staging estimate (worst rank)."""
    layouts = [_layout(NPROCS, r) for r in range(NPROCS)]
    plan = compute_global_plan(
        [[own] for own, _ in layouts],
        [need for _, need in layouts],
        element_size=4,
    )
    return max(
        rnd.max_round_bytes for s in global_schedules(plan) for rnd in s.rounds
    )


def _exchange(comm, backend: str, iters: int = ITERS):
    # fill= (not reuse_out=) so the output never enters the staging pool:
    # pooled arrays are intentionally retained across calls, which would
    # read as a ledger leak in the drained-to-zero assertion below.
    own_box, need_box = _layout(comm.size, comm.rank)
    red = Redistributor(
        comm, ndims=2, dtype=np.float32, backend=backend, transport="packed"
    )
    red.setup(own=[own_box], need=need_box)
    field = np.arange(NX * NY, dtype=np.float32).reshape(NY, NX)
    ox, oy = own_box.offset
    h, w = own_box.np_shape()
    own = np.ascontiguousarray(field[oy : oy + h, ox : ox + w])
    out = None
    for _ in range(iters):
        out = red.gather_need([own], fill=-1.0)
    return np.array(out, copy=True)


def _record(name: str, entry: dict) -> None:
    record = {}
    if BENCH_RECORD.exists():
        record = json.loads(BENCH_RECORD.read_text())
    record[name] = entry
    BENCH_RECORD.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")


def _timed(backend: str) -> tuple[float, list]:
    start = time.perf_counter()
    outs = run_spmd(NPROCS, _exchange, backend)
    return time.perf_counter() - start, outs


def test_peak_within_budget():
    """The headline gate: the bounded engine's measured ledger peak must
    stay within every budget level, bitwise-equal to the strict engine."""
    peak = unbounded_peak_bytes()
    _, expected = _timed("alltoallw")
    for fraction in LEVELS:
        budget = int(peak * fraction)
        with budget_scope(limit_bytes=budget):
            seconds, outs = _timed("bounded")
            measured = MEMORY_BUDGET.peak_bytes()
            drained = MEMORY_BUDGET.total_used_bytes()
        within = measured <= budget and drained == 0
        _record(
            f"budget_{int(fraction * 100)}pct",
            {
                "backend": "bounded",
                "nprocs": NPROCS,
                "budget_bytes": budget,
                "estimated_unbounded_peak_bytes": peak,
                "measured_peak_bytes": measured,
                "peak_within_budget": 1.0 if within else 0.0,
                "seconds": seconds,
                "timestamp": time.time(),
            },
        )
        assert within, (
            f"bounded peak {measured} exceeded the {budget}-byte budget "
            f"({fraction:.0%} of unbounded {peak}), or leaked {drained} bytes"
        )
        for want, have in zip(expected, outs):
            assert np.array_equal(want, have)


def test_bounded_overhead():
    """Unbudgeted bounded-vs-alltoallw wall clock: the handshake price."""
    strict_s, expected = _timed("alltoallw")
    bounded_s, outs = _timed("bounded")
    for want, have in zip(expected, outs):
        assert np.array_equal(want, have)
    _record(
        "bounded_overhead",
        {
            "nprocs": NPROCS,
            "alltoallw_s": strict_s,
            "bounded_s": bounded_s,
            "overhead_ratio": bounded_s / strict_s if strict_s else 0.0,
            "timestamp": time.time(),
        },
    )


def test_estimate_vs_tracemalloc():
    """Cross-check: the analytic estimate must not *under*state measured
    allocations by more than the workload's own buffers account for."""
    peak = unbounded_peak_bytes()
    with budget_scope(limit_bytes=4 * peak):
        with auditing_memory() as audit:
            # One exchange: repeated generations pipeline (a fast sender
            # posts generation g+1 before g is drained), which would let
            # the measured peak legitimately exceed one round's estimate.
            run_spmd(NPROCS, _exchange, "alltoallw", 1)
        ledger_peak = MEMORY_BUDGET.peak_bytes()
    # The ledger (staging only, per rank) is bounded by the estimate; the
    # tracemalloc number is process-wide and includes user buffers.
    assert 0 < ledger_peak <= peak
    _record(
        "estimate_audit",
        {
            "nprocs": NPROCS,
            "estimated_peak_bytes": peak,
            "ledger_peak_bytes": ledger_peak,
            "tracemalloc_peak_bytes": audit.measured_peak_bytes,
            "timestamp": time.time(),
        },
    )
