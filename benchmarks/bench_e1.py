"""Bench: Algorithm 1 / Table I / Figure 1 — the paper's E1 example.

Regenerates Table I from Algorithm 1's arithmetic, validates the Figure 1
panel-B mapping, and times the full three-call pipeline on 4 ranks.
"""

from __future__ import annotations

import numpy as np

from repro.bench import e1
from repro.core import Box


def test_table1_parameters_match_paper(benchmark):
    assert benchmark(e1.e1_matches_table1)


def test_figure1_panel_b_mapping(benchmark):
    mapping = benchmark(e1.rank0_mapping)
    # Rank 0 sends its row 0 halves to ranks 0/1, row 4 halves to 2/3 ...
    assert mapping["sends"][(0, 1)] == Box((4, 0), (4, 1))
    assert mapping["sends"][(1, 3)] == Box((4, 4), (4, 1))
    # ... and receives one row slice from every rank's first chunk.
    assert mapping["recvs"][(0, 3)] == Box((0, 3), (4, 1))


def test_e1_end_to_end(benchmark):
    quadrants = benchmark.pedantic(e1.run_e1, rounds=3, iterations=1, warmup_rounds=1)
    g = np.arange(64, dtype=np.float32).reshape(8, 8)
    for rank, quadrant in enumerate(quadrants):
        right, bottom = rank % 2, rank // 2
        expect = g[4 * bottom : 4 * bottom + 4, 4 * right : 4 * right + 4]
        assert np.array_equal(quadrant, expect)


def test_report_prints(benchmark):
    out = benchmark.pedantic(e1.report, rounds=1, iterations=1)
    print("\n" + out)
    assert "matches paper Table I: True" in out
    assert "quadrants correct: True" in out
