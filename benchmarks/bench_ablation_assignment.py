"""Ablation: file-assignment strategy (round-robin / consecutive /
block-cyclic) and its effect on the DDR schedule.

Table III shows the two paper strategies are the endpoints of a trade-off
(1 round of huge messages vs many rounds of constant-size messages);
block-cyclic sits between them, and this ablation quantifies where.
"""

from __future__ import annotations

import pytest

from repro.core.plan import compute_global_plan
from repro.io.assignment import Assignment, StackGeometry, all_owned_chunks
from repro.netmodel import COOLEY, exchange_cost, needed_boxes
from repro.utils.units import MiB

STACK = StackGeometry(width=1024, height=512, n_images=1024, bytes_per_pixel=4)
NPROCS = 64


def plan_for(strategy: Assignment, block: int = 8):
    owns = all_owned_chunks(STACK, NPROCS, strategy, block=block)
    return compute_global_plan(owns, needed_boxes(NPROCS, STACK), STACK.bytes_per_pixel)


@pytest.mark.parametrize(
    "strategy", [Assignment.ROUND_ROBIN, Assignment.CONSECUTIVE, Assignment.BLOCK_CYCLIC]
)
def test_schedule_per_strategy(benchmark, strategy):
    plan = benchmark.pedantic(plan_for, args=(strategy,), rounds=1, iterations=1)
    cost = exchange_cost(COOLEY, plan)
    print(
        f"\n{strategy.value}: rounds={plan.nrounds} "
        f"MB/round={plan.mean_bytes_per_chunk_round() / MiB:.2f} "
        f"modeled exchange={cost.total_s:.3f}s"
    )
    assert plan.nrounds >= 1


def test_block_cyclic_sits_between(benchmark):
    def all_three():
        return {
            strategy: plan_for(strategy)
            for strategy in (
                Assignment.ROUND_ROBIN,
                Assignment.CONSECUTIVE,
                Assignment.BLOCK_CYCLIC,
            )
        }

    plans = benchmark.pedantic(all_three, rounds=1, iterations=1)
    rr = plans[Assignment.ROUND_ROBIN]
    consec = plans[Assignment.CONSECUTIVE]
    cyclic = plans[Assignment.BLOCK_CYCLIC]

    # Rounds: consecutive (1) < block-cyclic < round-robin.
    assert consec.nrounds < cyclic.nrounds < rr.nrounds
    # Per-round payload ordering is the reverse.
    assert (
        consec.mean_bytes_per_chunk_round()
        > cyclic.mean_bytes_per_chunk_round()
        > rr.mean_bytes_per_chunk_round()
    )
    # Every strategy moves the same total volume (minus what stays local).
    totals = {s: p.total_bytes_moved(exclude_self=False) for s, p in plans.items()}
    domain_bytes = STACK.total_bytes
    for total in totals.values():
        assert total == domain_bytes


def test_block_size_sweep(benchmark):
    """Larger block-cyclic blocks -> fewer rounds, bigger messages."""

    def sweep():
        return {
            block: plan_for(Assignment.BLOCK_CYCLIC, block=block)
            for block in (2, 8, 32)
        }

    plans = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rounds = [plans[b].nrounds for b in (2, 8, 32)]
    assert rounds == sorted(rounds, reverse=True)
