"""Bench: Table II — TIFF stack load time.

Model scale reproduces the paper's rows through the calibrated Cooley
model; native scale really executes all three loaders on a reduced stack
and checks the structural facts that do not depend on the cluster: DDR
reads each image once, the baseline reads redundantly, and all strategies
produce identical blocks.
"""

from __future__ import annotations

import pytest

from repro.bench import table2
from repro.bench.paperdata import TABLE2_SECONDS


def test_model_rows_match_paper_shape(benchmark):
    rows = benchmark.pedantic(table2.table2_model_rows, rounds=1, iterations=1)
    print("\n" + table2.report_model())
    by_procs = {r.nprocs: r for r in rows}

    for nprocs, (paper_no_ddr, paper_rr, paper_consec) in TABLE2_SECONDS.items():
        row = by_procs[nprocs]
        # Within 25-30% of the paper's absolute seconds (calibrated model).
        assert row.no_ddr_s == pytest.approx(paper_no_ddr, rel=0.25)
        assert row.rr_s == pytest.approx(paper_rr, rel=0.25)
        assert row.consec_s == pytest.approx(paper_consec, rel=0.30)

    # Structural facts the paper highlights:
    assert by_procs[27].rr_s < by_procs[27].consec_s  # RR wins small scale
    assert by_procs[216].consec_s < by_procs[216].rr_s  # consec wins large
    assert by_procs[125].consec_s < by_procs[125].rr_s
    speedup = by_procs[216].no_ddr_s / by_procs[216].consec_s
    assert speedup > 15  # paper: 24.9x


def test_model_rows_des_network(benchmark):
    """Same table under the discrete-event network (ablation cross-check)."""
    rows = benchmark.pedantic(
        table2.table2_model_rows, args=("des",), rounds=1, iterations=1
    )
    by_procs = {r.nprocs: r for r in rows}
    for row in rows:
        assert row.no_ddr_s > row.rr_s and row.no_ddr_s > row.consec_s
    assert by_procs[216].consec_s < by_procs[216].rr_s


def test_native_execution(benchmark, native_stack):
    row = benchmark.pedantic(
        table2.table2_native, args=(native_stack,), rounds=1, iterations=1
    )
    print("\n" + table2.report_native(native_stack))
    assert row.verified_equal
    # The structural fact behind Table II: DDR decodes each of the 32
    # images exactly once, while the baseline decodes g^2 = 4x as many
    # (every rank decodes every slice its block touches).
    assert row.rr_decodes == 32
    assert row.consec_decodes == 32
    assert row.no_ddr_decodes == 4 * 32
