"""Bench: Table III — Alltoallw communication scheduling (exact geometry).

Validates rounds and MB/process/round against the paper's printed values at
the full 128 GiB workload, and times the planner itself (the cost of
``DDR_SetupDataMapping``'s geometry at production scale).
"""

from __future__ import annotations

import pytest

from repro.bench import table3
from repro.bench.paperdata import TABLE3_SCHEDULE
from repro.io.assignment import Assignment, PAPER_STACK, all_owned_chunks
from repro.core.plan import compute_global_plan
from repro.netmodel.predict import needed_boxes


def test_schedule_matches_paper(benchmark):
    rows = benchmark.pedantic(table3.table3_rows, rounds=1, iterations=1)
    print("\n" + table3.report())
    for row in rows:
        assert row.rounds == row.paper_rounds, (row.nprocs, row.strategy)
        # MB/round to within 0.2% of the paper's printed decimals (the
        # residue is integer slice-boundary effects at non-divisible P).
        assert row.mb_per_round == pytest.approx(row.paper_mb, rel=2e-3), row


def test_round_counts_formula():
    """Rounds: 1 for consecutive; ceil(4096 / P) for round-robin."""
    for nprocs, per in TABLE3_SCHEDULE.items():
        assert per["consecutive"][0] == 1
        assert per["round_robin"][0] == -(-4096 // nprocs)


def test_planner_speed_full_scale_consecutive(benchmark):
    """Planning 27 ranks x 1 chunk over the full volume."""

    def plan():
        owns = all_owned_chunks(PAPER_STACK, 27, Assignment.CONSECUTIVE)
        return compute_global_plan(owns, needed_boxes(27, PAPER_STACK), 4)

    result = benchmark(plan)
    assert result.nrounds == 1


def test_planner_speed_full_scale_round_robin(benchmark):
    """Planning 4096 single-image chunks against 216 needs."""

    def plan():
        owns = all_owned_chunks(PAPER_STACK, 216, Assignment.ROUND_ROBIN)
        return compute_global_plan(owns, needed_boxes(216, PAPER_STACK), 4)

    result = benchmark.pedantic(plan, rounds=1, iterations=1)
    assert result.nrounds == 19
