"""Bench: Figures 4 and 5 — M-to-N streaming and the analysis-side
slice -> rectangle redistribution, executed for real at reduced scale."""

from __future__ import annotations

from repro.bench import fig45
from repro.core import check_send_coverage


def test_figure4_mapping(benchmark):
    mapping = benchmark(fig45.figure4_mapping)
    assert [len(g) for g in mapping] == [3, 3, 2, 2]
    assert fig45.figure4_matches_paper()


def test_figure5_layouts(benchmark):
    layouts = benchmark.pedantic(
        fig45.figure5_layouts, args=(10, 4, 80, 40), rounds=1, iterations=1
    )
    # Incoming slices are full width; outgoing rectangles are near-square.
    for layout in layouts:
        for slab in layout.incoming_slices:
            assert slab.dims[0] == 80
        w, h = layout.rectangle.dims
        assert 0.5 <= w / h <= 2.0
    # Rectangles tile the domain exactly.
    check_send_coverage([[layout.rectangle] for layout in layouts])


def test_native_m_to_n_run(benchmark):
    root = benchmark.pedantic(fig45.run_native, rounds=1, iterations=1)
    print("\n" + fig45.report())
    assert root.frames == 2
    assert root.data_reduction > 0.5


def test_paper_production_topology(benchmark):
    """128 sim -> 32 analysis (the run §IV-B actually used): mapping only."""
    mapping = benchmark.pedantic(
        fig45.figure4_mapping, args=(128, 32), rounds=1, iterations=1
    )
    assert all(len(g) == 4 for g in mapping)
