"""Overload benchmark: goodput under 2x admission load.

Offers twice the hub's admission capacity: the admitted population must
keep receiving frames (goodput >= 80% of what full delivery to every
admitted viewer would be) while every over-capacity attempt is refused
*typed* — :class:`~repro.serve.overload.LayoutSaturatedError` (429) when
one layout is flooded, :class:`~repro.serve.overload.HubSaturatedError`
(503) when the hub-wide cap is hit, both carrying a ``Retry-After`` hint.
Consumers time every frame from its encode stamp
(``ServedFrame.published_at``) to the moment their ``pop()`` returns, so
the record carries a real p99 publish-to-delivery latency, and the
overload ladder must not shed anyone — prompt consumers are not overload.

Appends to ``benchmarks/BENCH_overload.json``; gate with::

    python benchmarks/check_regression.py BENCH_overload.json \
        benchmarks/BENCH_overload.json --field goodput_ratio
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

import numpy as np

from repro.serve import (
    AdmissionError,
    ConsumerLayout,
    FrameHub,
    HubSaturatedError,
    LayoutSaturatedError,
    OverloadController,
    SyntheticSource,
)

BENCH_RECORD = Path(__file__).resolve().parent / "BENCH_overload.json"

NX, NY, M = 64, 32, 4
MAX_VIEWERS = 24  # hub-wide admission cap
MAX_PER_LAYOUT = 8  # per-layout admission cap
N_FRAMES = 40
PUBLISH_PERIOD_S = 0.005  # paced producer: ~200 fps offered

LAYOUTS = [
    ConsumerLayout.make(NX, NY),
    ConsumerLayout.make(NX, NY, x=8, y=4, w=48, h=24),
    ConsumerLayout.make(NX, NY, mip=1),
    ConsumerLayout.make(NX, NY, x=16, y=8, w=32, h=16, parts=2),
]


def _record(name: str, fields: dict) -> None:
    record = {}
    if BENCH_RECORD.exists():
        record = json.loads(BENCH_RECORD.read_text())
    record[name] = dict(fields, timestamp=time.time())
    BENCH_RECORD.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")


def _consume(queue, final_frame: int, latencies: list) -> None:
    """Pop until the final frame (or close); time publish-to-delivery."""
    try:
        while True:
            frame = queue.pop(timeout=10.0)
            if frame is None:
                return
            latencies.append(time.perf_counter() - frame.published_at)
            if frame.index >= final_frame:
                return
    except Exception:  # ViewerDisconnectedError et al. — end of stream
        return


def test_goodput_under_double_admission_load():
    source = SyntheticSource(NX, NY, m=M)
    controller = OverloadController()
    hub = FrameHub(
        NX, NY, m=M, quality=75,
        max_viewers=MAX_VIEWERS,
        max_viewers_per_layout=MAX_PER_LAYOUT,
        overload=controller,
        retry_after_s=2.0,
    )

    offered = 2 * MAX_VIEWERS
    admitted, rejected = [], []
    # Phase 1: flood one layout past its per-layout cap (typed 429s) ...
    for _ in range(MAX_PER_LAYOUT + 4):
        try:
            admitted.append(hub.register(LAYOUTS[0]))
        except AdmissionError as exc:
            rejected.append(exc)
    # ... phase 2: spread the rest round-robin until the hub cap (503s).
    for i in range(offered - (MAX_PER_LAYOUT + 4)):
        try:
            admitted.append(hub.register(LAYOUTS[1 + i % (len(LAYOUTS) - 1)]))
        except AdmissionError as exc:
            rejected.append(exc)

    # The admission contract: exactly the capacity admitted, every refusal
    # typed with the right status and a positive Retry-After hint.
    assert len(admitted) == MAX_VIEWERS, len(admitted)
    assert len(rejected) == offered - MAX_VIEWERS
    assert all(isinstance(e, (HubSaturatedError, LayoutSaturatedError))
               for e in rejected)
    statuses = {e.status for e in rejected}
    assert statuses == {429, 503}, statuses
    assert all(e.retry_after_s > 0 for e in rejected)

    final_frame = N_FRAMES - 1
    latencies_by_viewer: list[list] = [[] for _ in admitted]
    consumers = [
        threading.Thread(
            target=_consume, args=(queue, final_frame, latencies_by_viewer[i]),
            daemon=True,
        )
        for i, queue in enumerate(admitted)
    ]
    for thread in consumers:
        thread.start()

    start = time.perf_counter()
    for index, slabs in source.frames(N_FRAMES):
        hub.publish(index, slabs, force=index == final_frame)
        time.sleep(PUBLISH_PERIOD_S)
    elapsed = time.perf_counter() - start
    for thread in consumers:
        thread.join(timeout=30.0)
    assert not any(thread.is_alive() for thread in consumers)

    received = sum(queue.delivered for queue in admitted)
    goodput = received / (MAX_VIEWERS * N_FRAMES)
    latencies = np.array(sorted(sum(latencies_by_viewer, [])))
    p50_ms = float(np.percentile(latencies, 50) * 1e3)
    p99_ms = float(np.percentile(latencies, 99) * 1e3)

    # The overload contract under 2x offered load: the admitted population
    # is actually served, and prompt consumers are never shed.
    assert goodput >= 0.8, f"goodput {goodput:.3f} under 2x admission load"
    assert controller.shed_total == 0, controller.stats()

    _record(
        f"serve_overload_{offered}offered_{MAX_VIEWERS}cap",
        {
            "offered": offered,
            "admitted": len(admitted),
            "rejected_typed": len(rejected),
            "rejected_429": sum(1 for e in rejected if e.status == 429),
            "rejected_503": sum(1 for e in rejected if e.status == 503),
            "frames": N_FRAMES,
            "seconds": elapsed,
            "goodput_ratio": goodput,
            "deliveries_per_s": received / elapsed,
            "p50_publish_to_delivery_ms": p50_ms,
            "p99_publish_to_delivery_ms": p99_ms,
            "shed": controller.shed_total,
            "ladder_level": controller.level,
        },
    )
    hub.close()


if __name__ == "__main__":
    test_goodput_under_double_admission_load()
    print(BENCH_RECORD.read_text())
