"""Engine ablation: alltoallw vs p2p vs auto on sparse and dense patterns.

Executes the same plan through all three engines on the threaded runtime
(measured) and prices it with the per-engine analytic model (predicted),
recording both into ``benchmarks/BENCH_engine.json`` so the CI regression
gate (``check_regression.py --field throughput_gib_s``) can diff runs.

Two 8-rank patterns bracket the sparsity spectrum:

- ``sparse_ring``: each rank's slab moves one neighbour over — 2 partners
  per rank, the regime where the paper's §V direct-send idea wins;
- ``dense_transpose``: row slabs become column slabs — every rank talks to
  every other, the regime the collective was built for.

The auto engine must pick p2p on the ring and alltoallw on the transpose,
and its executed per-round choices must equal the model's predicted ones
(they share the selection rule by construction — this bench pins that).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core import Box, Redistributor, compute_global_plan
from repro.mpisim.executor import run_spmd
from repro.netmodel import COOLEY, engine_cost

BENCH_RECORD = Path(__file__).resolve().parent / "BENCH_engine.json"
NPROCS = 8
SIDE = 256  # 256x256 float32 = 256 KiB per rank slab
ROWS = SIDE // NPROCS
ITERS = 5  # exchanges per timed run (setup done once, the paper's hot loop)
BACKENDS = ("alltoallw", "p2p", "auto")


def _ring_layout(rank: int) -> tuple[list[Box], Box]:
    own = [Box((0, rank * ROWS), (SIDE, ROWS))]
    need = Box((0, ((rank + 1) % NPROCS) * ROWS), (SIDE, ROWS))
    return own, need


def _transpose_layout(rank: int) -> tuple[list[Box], Box]:
    own = [Box((0, rank * ROWS), (SIDE, ROWS))]
    need = Box((rank * ROWS, 0), (ROWS, SIDE))
    return own, need


PATTERNS = {
    "sparse_ring": _ring_layout,
    "dense_transpose": _transpose_layout,
}


def _global_plan(pattern: str):
    layout = PATTERNS[pattern]
    owns = [layout(rank)[0] for rank in range(NPROCS)]
    needs = [layout(rank)[1] for rank in range(NPROCS)]
    return compute_global_plan(owns, needs, element_size=4)


def _run_pattern(pattern: str, backend: str) -> list:
    """Setup once, exchange ITERS times; returns every rank's final block."""
    layout = PATTERNS[pattern]

    def fn(comm):
        own, need = layout(comm.rank)
        red = Redistributor(comm, ndims=2, dtype=np.float32, backend=backend)
        red.setup(own=own, need=need)
        data = np.arange(SIDE * ROWS, dtype=np.float32).reshape(ROWS, SIDE)
        data += comm.rank * SIDE * ROWS
        out = None
        for _ in range(ITERS):
            out = red.gather_need([data], reuse_out=True)
        return None if out is None else out.copy()

    return run_spmd(NPROCS, fn)


def _executed_choices(pattern: str) -> list:
    def fn(comm):
        own, need = PATTERNS[pattern](comm.rank)
        red = Redistributor(comm, ndims=2, dtype=np.float32, backend="auto")
        red.setup(own=own, need=need)
        return red.engine_choices()

    return run_spmd(NPROCS, fn)


def _best_seconds(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _record(name: str, entry: dict) -> None:
    record = {}
    if BENCH_RECORD.exists():
        record = json.loads(BENCH_RECORD.read_text())
    record[name] = entry
    BENCH_RECORD.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")


def _measure_and_record(pattern: str, benchmark) -> dict[str, float]:
    plan = _global_plan(pattern)
    bytes_per_exchange = plan.total_bytes_moved(exclude_self=True)
    measured: dict[str, float] = {}
    for backend in BACKENDS:
        if backend == BACKENDS[0]:
            seconds = benchmark.pedantic(
                _best_seconds, args=(lambda: _run_pattern(pattern, backend),),
                rounds=1, iterations=1,
            )
        else:
            seconds = _best_seconds(lambda: _run_pattern(pattern, backend))
        measured[backend] = seconds
        predicted = engine_cost(COOLEY, plan, backend)
        _record(
            f"{pattern}_{backend}",
            {
                "pattern": pattern,
                "backend": backend,
                "nprocs": NPROCS,
                "bytes_moved": bytes_per_exchange * ITERS,
                "seconds": seconds,
                "throughput_gib_s": bytes_per_exchange * ITERS / seconds / 2**30,
                "predicted_s": predicted.total_s,
                "predicted_round_engines": list(predicted.round_engines),
                "timestamp": time.time(),
            },
        )
    return measured


def test_sparse_ring_engines(benchmark):
    measured = _measure_and_record("sparse_ring", benchmark)
    assert set(measured) == set(BACKENDS)
    # Predicted and executed auto-selection must agree: sparse -> p2p.
    predicted = engine_cost(COOLEY, _global_plan("sparse_ring"), "auto")
    assert predicted.round_engines == ("p2p",)
    for choices in _executed_choices("sparse_ring"):
        assert choices == list(predicted.round_engines)


def test_dense_transpose_engines(benchmark):
    measured = _measure_and_record("dense_transpose", benchmark)
    assert set(measured) == set(BACKENDS)
    # Predicted and executed auto-selection must agree: dense -> alltoallw.
    predicted = engine_cost(COOLEY, _global_plan("dense_transpose"), "auto")
    assert predicted.round_engines == ("alltoallw",)
    for choices in _executed_choices("dense_transpose"):
        assert choices == list(predicted.round_engines)


def test_engines_bit_identical(benchmark):
    def all_patterns():
        return {
            pattern: [_run_pattern(pattern, backend) for backend in BACKENDS]
            for pattern in PATTERNS
        }

    results = benchmark.pedantic(all_patterns, rounds=1, iterations=1)
    for pattern, per_backend in results.items():
        baseline = per_backend[0]
        for backend, outputs in zip(BACKENDS[1:], per_backend[1:]):
            for rank, (a, b) in enumerate(zip(baseline, outputs)):
                assert np.array_equal(a, b), (pattern, backend, rank)
