"""Serving-hub benchmark: one producer fanned out to 1000+ viewers.

Measures the many-viewer contract end to end, in process (ViewerQueue
consumers, no sockets — the transport is benchmarked separately by the
edge tests): 1000 viewers spread over five distinct layouts must be fed
from exactly five DDR mapping sets (mapping-cache hit rate > 95%), every
viewer must converge to the final frame, and the served pixels must be
bitwise identical to a direct single-consumer redistribution of the same
slabs.  A second scenario churns through hundreds of distinct layouts to
prove the mapping cache's byte footprint stays bounded by its LRU budget.

Appends to ``benchmarks/BENCH_serve.json``; gate with::

    python benchmarks/check_regression.py BENCH_serve.json \
        benchmarks/BENCH_serve.json --field deliveries_per_s
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core import Redistributor
from repro.mpisim.executor import world_communicators
from repro.serve import ConsumerLayout, FrameHub, SyntheticSource

BENCH_RECORD = Path(__file__).resolve().parent / "BENCH_serve.json"

NX, NY, M = 64, 32, 4
N_VIEWERS = 1000
N_FRAMES = 25  # 5 layouts x 25 frames -> hit rate 1 - 1/25 = 96%

LAYOUTS = [
    ConsumerLayout.make(NX, NY),                                # full domain
    ConsumerLayout.make(NX, NY, x=8, y=4, w=48, h=24),          # ROI crop
    ConsumerLayout.make(NX, NY, mip=1),                         # subsampled
    ConsumerLayout.make(NX, NY, x=16, y=8, w=32, h=16, parts=2),
    ConsumerLayout.make(NX, NY, mip=2, parts=3),
]


def _record(name: str, fields: dict) -> None:
    record = {}
    if BENCH_RECORD.exists():
        record = json.loads(BENCH_RECORD.read_text())
    record[name] = dict(fields, timestamp=time.time())
    BENCH_RECORD.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")


def test_thousand_viewer_fanout():
    source = SyntheticSource(NX, NY, m=M)
    hub = FrameHub(NX, NY, m=M, quality=75)
    queues = [
        hub.register(LAYOUTS[i % len(LAYOUTS)]) for i in range(N_VIEWERS)
    ]

    start = time.perf_counter()
    for index, slabs in source.frames(N_FRAMES):
        hub.publish(index, slabs)
    elapsed = time.perf_counter() - start

    stats = hub.stats()
    cache = stats["mapping_cache"]
    deliveries = stats["counters"]["serve.frames_delivered"]

    # The serving contract, asserted before anything is recorded.
    assert deliveries == N_VIEWERS * N_FRAMES
    assert cache["entries"] == len(LAYOUTS)
    assert cache["hit_rate"] > 0.95, cache
    for queue in queues:
        assert queue.last_index == N_FRAMES - 1  # latest-wins convergence

    # Bitwise oracle: what the hub assembles for each layout equals a
    # direct single-consumer redistribution of the same producer slabs.
    final_slabs = source.slabs(N_FRAMES - 1)
    comm = world_communicators(1)[0]
    red = Redistributor(comm, ndims=2, dtype=np.float32)
    for layout in LAYOUTS:
        mapping = red.new_mapping(own=hub.producer_boxes, need=layout.roi)
        direct = red.gather_need(final_slabs, mapping=mapping)
        direct = direct[:: layout.step, :: layout.step]
        np.testing.assert_array_equal(hub.view(layout, final_slabs), direct)

    _record(
        f"serve_fanout_{N_VIEWERS}v_{len(LAYOUTS)}layouts",
        {
            "viewers": N_VIEWERS,
            "frames": N_FRAMES,
            "layouts": len(LAYOUTS),
            "seconds": elapsed,
            "deliveries": deliveries,
            "deliveries_per_s": deliveries / elapsed,
            "publishes_per_s": N_FRAMES / elapsed,
            "mapping_cache_hit_rate": cache["hit_rate"],
            "mapping_cache_entries": cache["entries"],
        },
    )
    hub.close()


def test_layout_churn_stays_bounded():
    """Hundreds of distinct layouts through a small cache: entries and the
    per-mapping staging bytes must stay bounded by the LRU budget."""
    max_layouts = 8
    distinct = 200
    source = SyntheticSource(NX, NY, m=M)
    hub = FrameHub(NX, NY, m=M, max_layouts=max_layouts)
    slabs = source.slabs(0)

    start = time.perf_counter()
    peak_bytes = 0
    for i in range(distinct):
        layout = ConsumerLayout.make(
            NX, NY, x=i % 32, y=i % 16, w=16 + i % 8, h=8 + i % 4
        )
        hub.view(layout, slabs)
        peak_bytes = max(peak_bytes, hub.mapping_cache.pool_bytes())
    elapsed = time.perf_counter() - start

    cache = hub.mapping_cache.stats()
    assert cache["entries"] <= max_layouts
    assert cache["evictions"] >= distinct - max_layouts
    # Every cached mapping stages at most one ROI-sized float32 output.
    roi_bytes = 24 * 12 * 4
    assert peak_bytes <= max_layouts * roi_bytes, peak_bytes
    assert cache["pool_bytes"] <= max_layouts * roi_bytes

    _record(
        f"serve_layout_churn_{distinct}x{max_layouts}",
        {
            "distinct_layouts": distinct,
            "max_layouts": max_layouts,
            "seconds": elapsed,
            "layouts_per_s": distinct / elapsed,
            "evictions": cache["evictions"],
            "peak_pool_bytes": peak_bytes,
            "bound_pool_bytes": max_layouts * roi_bytes,
        },
    )
    hub.close()


if __name__ == "__main__":
    test_thousand_viewer_fanout()
    test_layout_churn_stays_bounded()
    print(BENCH_RECORD.read_text())
