"""Pack-vs-view-vs-copy datatype study (after arXiv 2511.13804).

"Do MPI Derived Datatypes Actually Help?" measures, on a single node,
whether describing non-contiguous data to the MPI library (derived
datatypes, the "view" strategy) beats packing it yourself — and finds the
answer depends on the transport underneath.  This benchmark reproduces the
study's axes inside mpisim: a strided-subarray Alltoallw under every
(executor, transport) combination —

* ``packed``   — manual pack to a contiguous staging buffer, send, unpack
  (the study's "manual pack" baseline);
* ``zerocopy`` — the datatype is handed to the runtime and the receiver
  copies straight out of the sender's live buffer (the study's DDT "view"
  path; only possible when ranks share an address space);
* ``shm``      — pack straight into a POSIX shared-memory segment, the
  receiver unpacks from the mapping (the copy-in/copy-out strategy real
  MPI implementations use for large on-node messages).

On the ``process`` executor ranks are separate address spaces, so
``zerocopy`` degrades to ``shm`` (recorded in the ``resolved`` field) —
exactly the study's observation that cross-process DDT sends bottom out in
a CMA/shared-memory copy regardless of how the data was described.

Writes ``benchmarks/BENCH_datatypes.json`` and prints the markdown table
embedded in ``DESIGN.md``.  Run standalone (``python
benchmarks/bench_datatypes.py``) or through pytest.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.mpisim import (
    FLOAT,
    SubarrayType,
    TRANSPORT_PACKED,
    TRANSPORT_SHM,
    TRANSPORT_ZEROCOPY,
)
from repro.mpisim.executor import run_spmd

BENCH_RECORD = Path(__file__).resolve().parent / "BENCH_datatypes.json"

EXECUTORS = ("thread", "process")
TRANSPORTS = (TRANSPORT_PACKED, TRANSPORT_ZEROCOPY, TRANSPORT_SHM)

#: Benchmark geometry: 4 ranks, each owning one n x n float32 matrix and
#: exchanging strided row-band subarrays of it every round.
NPROCS = 4
N = 1024
ROUNDS = 4


def _best_seconds(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _strided_alltoallw(executor: str, transport: str) -> str:
    """Run the exchange; returns the transport the runtime resolved to."""

    def fn(comm):
        size = comm.size
        send = np.zeros((N, N), dtype=np.float32)
        recv = np.zeros((N, N), dtype=np.float32)
        rows = N // size
        stypes = [
            SubarrayType(FLOAT, (N, N), (rows, N), (d * rows, 0)) for d in range(size)
        ]
        rtypes = [
            SubarrayType(FLOAT, (N, N), (rows, N), (s * rows, 0)) for s in range(size)
        ]
        for _ in range(ROUNDS):
            comm.Alltoallw(send, stypes, recv, rtypes, transport=transport)
        return comm.resolve_transport(transport)

    return run_spmd(NPROCS, fn, executor=executor)[0]


def run_study() -> dict:
    """Measure every (executor, transport) combo; returns the record."""
    bytes_moved = ROUNDS * NPROCS * N * N * 4
    combos: dict[str, dict] = {}
    for executor in EXECUTORS:
        for transport in TRANSPORTS:
            resolved = _strided_alltoallw(executor, transport)  # warm-up
            seconds = _best_seconds(lambda: _strided_alltoallw(executor, transport))
            combos[f"{executor}/{transport}"] = {
                "seconds": seconds,
                "throughput_gib_s": bytes_moved / seconds / 2**30,
                "resolved": resolved,
            }
    return {
        "alltoallw_strided_4ranks_4MiB": {
            "bytes_moved": bytes_moved,
            "cpu_count": os.cpu_count() or 1,
            "combos": combos,
            "timestamp": time.time(),
        }
    }


def markdown_table(record: dict) -> str:
    """The DESIGN.md table: one row per combo, resolved mode called out."""
    study = record["alltoallw_strided_4ranks_4MiB"]
    lines = [
        "| executor | transport | resolved | time (ms) | throughput (GiB/s) |",
        "|----------|-----------|----------|-----------|--------------------|",
    ]
    for name, row in study["combos"].items():
        executor, transport = name.split("/")
        resolved = row["resolved"]
        note = resolved if resolved == transport else f"{resolved} (degraded)"
        lines.append(
            f"| {executor} | {transport} | {note} | "
            f"{row['seconds'] * 1e3:.1f} | {row['throughput_gib_s']:.2f} |"
        )
    return "\n".join(lines)


def test_datatype_study():
    """Every combo completes, resolves sensibly, and is recorded."""
    record = run_study()
    study = record["alltoallw_strided_4ranks_4MiB"]
    combos = study["combos"]
    assert set(combos) == {
        f"{e}/{t}" for e in EXECUTORS for t in TRANSPORTS
    }
    # The process executor cannot share live buffers across address spaces:
    # the rendezvous path must have degraded to shm staging.
    assert combos["process/zerocopy"]["resolved"] == TRANSPORT_SHM
    assert combos["thread/zerocopy"]["resolved"] == TRANSPORT_ZEROCOPY
    for row in combos.values():
        assert row["throughput_gib_s"] > 0
    BENCH_RECORD.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")


def main() -> int:
    record = run_study()
    BENCH_RECORD.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(markdown_table(record))
    print(f"\nwrote {BENCH_RECORD}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
