"""Ablation: analytic congestion model vs discrete-event network simulation.

The Table II crossover (round-robin wins small scale, consecutive wins
large scale) should not be an artifact of the analytic model's functional
form; the max-min-fair DES provides an independent check.
"""

from __future__ import annotations

from repro.io.assignment import Assignment, StackGeometry
from repro.netmodel import COOLEY, ddr_plan, exchange_cost, simulate_exchange

STACK = StackGeometry(width=2048, height=1024, n_images=512, bytes_per_pixel=4)


def test_analytic_exchange_27(benchmark):
    plan = ddr_plan(27, Assignment.CONSECUTIVE, STACK)
    result = benchmark(lambda: exchange_cost(COOLEY, plan).total_s)
    assert result > 0


def test_des_exchange_27(benchmark):
    plan = ddr_plan(27, Assignment.CONSECUTIVE, STACK)
    result = benchmark.pedantic(
        lambda: simulate_exchange(COOLEY, plan), rounds=1, iterations=1
    )
    assert result > 0


def test_models_agree_on_strategy_ordering(benchmark):
    """Both models must agree which strategy wins at each scale."""

    def orderings():
        out = {}
        for nprocs in (27, 64):
            rr = ddr_plan(nprocs, Assignment.ROUND_ROBIN, STACK)
            consec = ddr_plan(nprocs, Assignment.CONSECUTIVE, STACK)
            analytic = (
                exchange_cost(COOLEY, rr).total_s,
                exchange_cost(COOLEY, consec).total_s,
            )
            des = (
                simulate_exchange(COOLEY, rr),
                simulate_exchange(COOLEY, consec),
            )
            out[nprocs] = (analytic, des)
        return out

    results = benchmark.pedantic(orderings, rounds=1, iterations=1)
    for nprocs, (analytic, des) in results.items():
        print(
            f"\nP={nprocs}: analytic RR/consec = {analytic[0]:.3f}/{analytic[1]:.3f}s, "
            f"DES = {des[0]:.3f}/{des[1]:.3f}s"
        )
        analytic_winner = "rr" if analytic[0] < analytic[1] else "consec"
        des_winner = "rr" if des[0] < des[1] else "consec"
        assert analytic_winner == des_winner, f"models disagree at P={nprocs}"


def test_des_times_within_order_of_magnitude(benchmark):
    def compare():
        plan = ddr_plan(27, Assignment.CONSECUTIVE, STACK)
        return exchange_cost(COOLEY, plan).total_s, simulate_exchange(COOLEY, plan)

    analytic, des = benchmark.pedantic(compare, rounds=1, iterations=1)
    ratio = analytic / des
    assert 0.1 < ratio < 10.0
