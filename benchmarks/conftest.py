"""Shared fixtures for the benchmark suite.

Heavy artifacts (the native TIFF stack, the measured pipeline compression)
are session-scoped so each is produced once per ``pytest benchmarks/`` run.
"""

from __future__ import annotations

import pytest

from repro.bench.table2 import prepare_native_stack
from repro.bench.table4 import MeasuredCompression, measure_compression


@pytest.fixture(scope="session")
def native_stack(tmp_path_factory) -> "Path":
    """A reduced-scale synthetic TIFF stack on disk (96x64x32 uint16)."""
    return prepare_native_stack(tmp_path_factory.mktemp("table2"))


@pytest.fixture(scope="session")
def measured_compression() -> MeasuredCompression:
    """One real in-transit pipeline run, reused by the Table IV benches."""
    return measure_compression(nx=324, ny=130, m=8, n=4, steps=1500, output_every=150)
