"""Ablation: Alltoallw backend vs direct point-to-point backend.

The paper's future work (§V) proposes replacing ``MPI_Alltoallw`` with
direct sends when the communication pattern is sparse.  Both backends are
implemented; this bench measures them really executing the same plan, and
compares their modeled cost at full paper scale.
"""

from __future__ import annotations

import numpy as np

from repro.core import Box, Redistributor, message_count_p2p
from repro.io.assignment import Assignment, StackGeometry
from repro.mpisim.executor import run_spmd
from repro.netmodel import COOLEY, ddr_plan, exchange_cost, point_to_point_cost

NPROCS = 8
SIDE = 256  # 256x256 float32 = 256 KiB per rank slab


def _run_backend(backend: str) -> None:
    """Slabs -> near-square blocks on NPROCS thread ranks."""

    def fn(comm):
        rank, size = comm.rank, comm.size
        rows = SIDE // size
        red = Redistributor(comm, ndims=2, dtype=np.float32, backend=backend)
        own = [Box((0, rank * rows), (SIDE, rows))]
        half = SIDE // 2
        need = Box(((rank % 2) * half, (rank // 2) * (SIDE // (size // 2))),
                   (half, SIDE // (size // 2)))
        red.setup(own=own, need=need)
        data = np.full((rows, SIDE), rank, dtype=np.float32)
        return red.gather_need([data])

    run_spmd(NPROCS, fn)


def test_alltoallw_backend_native(benchmark):
    benchmark.pedantic(_run_backend, args=("alltoallw",), rounds=3, iterations=1)


def test_p2p_backend_native(benchmark):
    benchmark.pedantic(_run_backend, args=("p2p",), rounds=3, iterations=1)


def test_backends_produce_identical_blocks(benchmark):
    def both():
        def fn(comm, backend):
            rank, size = comm.rank, comm.size
            rows = SIDE // size
            red = Redistributor(comm, ndims=2, dtype=np.float32, backend=backend)
            red.setup(
                own=[Box((0, rank * rows), (SIDE, rows))],
                need=Box((0, rank * rows), (SIDE, rows)),
            )
            rng = np.random.default_rng(rank)
            return red.gather_need([rng.random((rows, SIDE)).astype(np.float32)])

        a = run_spmd(NPROCS, fn, "alltoallw")
        b = run_spmd(NPROCS, fn, "p2p")
        return a, b

    a, b = benchmark.pedantic(both, rounds=1, iterations=1)
    for x, y in zip(a, b):
        assert np.array_equal(x, y)


def test_modeled_p2p_savings_at_full_scale(benchmark):
    """At 216 procs, each rank talks to ~tens of partners, not 216: the
    direct backend avoids the O(P) collective posting overhead."""
    stack = StackGeometry(width=1024, height=512, n_images=512, bytes_per_pixel=4)

    def compare():
        plan = ddr_plan(64, Assignment.CONSECUTIVE, stack)
        return (
            exchange_cost(COOLEY, plan).total_s,
            point_to_point_cost(COOLEY, plan),
            max(plan.partners_per_rank()),
        )

    alltoallw_s, p2p_s, max_partners = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    print(
        f"\nmodeled exchange @64 procs: alltoallw {alltoallw_s:.4f}s, "
        f"p2p {p2p_s:.4f}s, max partners/rank {max_partners}"
    )
    assert max_partners < 64  # the pattern is sparse ...
    assert p2p_s < alltoallw_s  # ... so direct sends win in the model


def test_p2p_message_count_is_sparse(benchmark):
    """Count actual messages the p2p backend would send per rank."""

    def fn(comm):
        rank, size = comm.rank, comm.size
        rows = SIDE // size
        red = Redistributor(comm, ndims=2, dtype=np.float32, backend="p2p")
        half = SIDE // 2
        red.setup(
            own=[Box((0, rank * rows), (SIDE, rows))],
            need=Box(((rank % 2) * half, (rank // 2) * (SIDE // (size // 2))),
                     (half, SIDE // (size // 2))),
        )
        return message_count_p2p(red.descriptor)

    counts = benchmark.pedantic(
        lambda: run_spmd(NPROCS, fn), rounds=1, iterations=1
    )
    assert all(count <= NPROCS - 1 for count in counts)
    assert any(count < NPROCS - 1 for count in counts)  # genuinely sparse
