"""Ablation: robustness of the Table II conclusions to model calibration.

Sweeps the fitted Cooley constants and checks the paper's qualitative
claims survive: order-of-magnitude DDR speedup, and a round-robin ->
consecutive crossover that moves with (but is not destroyed by) the
congestion constant.
"""

from __future__ import annotations

from repro.io.assignment import StackGeometry
from repro.netmodel import COOLEY, headline_speedup, sweep_parameter, tornado

STACK = StackGeometry(width=1024, height=512, n_images=512, bytes_per_pixel=4)


def test_tornado_ranking(benchmark):
    bars = benchmark.pedantic(
        lambda: tornado(cluster=COOLEY, stack=STACK), rounds=1, iterations=1
    )
    print("\nheadline-speedup tornado (+-30% per fitted constant):")
    for bar in bars:
        print(
            f"  {bar.parameter:>24}: {bar.low_speedup:6.1f}x .. {bar.high_speedup:6.1f}x "
            f"(swing {bar.swing:5.1f})"
        )
    assert all(bar.low_speedup > 2.0 and bar.high_speedup > 2.0 for bar in bars)


def test_congestion_sweep(benchmark):
    points = benchmark.pedantic(
        sweep_parameter,
        args=("congestion_bytes", (0.1, 0.5, 1.0, 2.0, 10.0)),
        kwargs={"stack": STACK},
        rounds=1,
        iterations=1,
    )
    print("\ncongestion_bytes sweep:")
    for point in points:
        print(
            f"  C = {point.value / 1e6:8.1f} MB -> speedup {point.speedup_216:6.1f}x, "
            f"crossover P = {point.crossover}"
        )
    # The speedup claim holds across two orders of magnitude of C.
    assert all(point.speedup_216 > 2.0 for point in points)


def test_headline_at_calibration(benchmark):
    speedup = benchmark.pedantic(
        headline_speedup, kwargs={"cluster": COOLEY, "stack": STACK},
        rounds=1, iterations=1,
    )
    assert speedup > 2.0
