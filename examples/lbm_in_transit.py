#!/usr/bin/env python3
"""Use case 2: in-transit visualization of a Lattice-Boltzmann flow
(paper §IV-B, Figures 4-5, Table IV).

M simulation ranks run the D2Q9 flow-past-a-barrier simulation in row
slabs and stream vorticity to N analysis ranks; the analysis application
uses DDR to reshape full-width slices into near-square rectangles, renders
them with the blue-white-red colormap, and writes compressed JPEG frames
instead of raw floats.

Run:  python examples/lbm_in_transit.py [--grid 324 130] [--m 8] [--n 4]
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from repro.intransit import PipelineConfig, StreamTopology, run_pipeline, sim_to_analysis_map
from repro.lbm import LbmConfig
from repro.mpisim import run_spmd
from repro.volren import grid_boxes, grid_shape


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--grid", nargs=2, type=int, default=[324, 130],
                        metavar=("NX", "NY"))
    parser.add_argument("--m", type=int, default=8, help="simulation ranks")
    parser.add_argument("--n", type=int, default=4, help="analysis ranks")
    parser.add_argument("--steps", type=int, default=2000)
    parser.add_argument("--output-every", type=int, default=200)
    parser.add_argument("--out", type=Path, default=Path("lbm_frames"))
    parser.add_argument("--variables", nargs="+", default=["vorticity"],
                        choices=["vorticity", "density", "speed", "ux", "uy"],
                        help="fields to stream and render per frame")
    parser.add_argument("--obstacle", choices=["bar", "circle", "none"],
                        default="bar")
    args = parser.parse_args()

    nx, ny = args.grid
    print(f"LBM {nx}x{ny}, barrier at x={nx // 4}; "
          f"{args.m} sim ranks -> {args.n} analysis ranks")

    mapping = sim_to_analysis_map(args.m, args.n)
    print("Figure 4 fan-in (analysis rank <- sim ranks):")
    for a, senders in enumerate(mapping):
        print(f"  analysis {a} <- sim {senders}")

    topology = StreamTopology(m=args.m, n=args.n, nx=nx, ny=ny)
    rect_grid = grid_shape(args.n, (nx, ny))
    rectangles = grid_boxes((nx, ny), rect_grid)
    print(f"Figure 5 redistribution (slices -> {rect_grid} rectangles):")
    for a in range(args.n):
        slabs = [box.dims for _, box in topology.incoming_slabs(a)]
        print(f"  analysis {a}: in {slabs} -> out {rectangles[a].dims} "
              f"@ {rectangles[a].offset}")

    config = PipelineConfig(
        lbm=LbmConfig(nx=nx, ny=ny, obstacle=args.obstacle),
        m=args.m,
        n=args.n,
        steps=args.steps,
        output_every=args.output_every,
        save_dir=args.out,
        variables=tuple(args.variables),
    )

    start = time.perf_counter()
    results = run_spmd(args.m + args.n, run_pipeline, config)
    elapsed = time.perf_counter() - start

    root = next(r for r in results if r.role == "analysis_root")
    print(f"\nran {args.steps} iterations in {elapsed:.1f}s, "
          f"saved {root.frames} frames to {args.out}/")
    print(f"raw would-be size : {root.raw_bytes / 1e6:8.2f} MB")
    print(f"JPEG actual size  : {root.jpeg_bytes / 1e6:8.2f} MB")
    print(f"data reduction    : {100 * root.data_reduction:8.2f}%  "
          f"(paper Table IV: 99.4-99.6% at production scale)")
    if len(config.variables) > 1:
        print("per-variable JPEG bytes (paper: 'achieving similar data compression'):")
        for name, nbytes in sorted(root.jpeg_bytes_by_variable.items()):
            print(f"  {name:>10}: {nbytes / 1e6:.3f} MB")


if __name__ == "__main__":
    main()
