#!/usr/bin/env python3
"""Use case 1: parallel visualization of 3-D medical images (paper §IV-A).

Generates a synthetic CT stack (the "primate tooth" phantom standing in for
the paper's APS scan), loads it in parallel three ways — the no-DDR
baseline plus DDR with round-robin and consecutive file assignment —
renders each rank's near-cubic block with direct volume rendering, and
composites the Figure-2-style image on rank 0.

Run:  python examples/tiff_volume_rendering.py [--size 96 64 48] [--ranks 8]
"""

from __future__ import annotations

import argparse
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.imaging import VolumeSpec, tooth_slice, write_stack
from repro.imaging.stack import TiffStack
from repro.io import Assignment, load_stack_ddr, load_stack_no_ddr
from repro.jpeg import encode_rgb
from repro.mpisim import run_spmd
from repro.viz import write_ppm
from repro.volren import (
    TOOTH_TF,
    composite_distributed,
    grid_shape,
    render_block,
    rgba_to_rgb,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", nargs=3, type=int, default=[96, 64, 48],
                        metavar=("W", "H", "D"), help="phantom dimensions")
    parser.add_argument("--ranks", type=int, default=8)
    parser.add_argument("--out", type=Path, default=Path("tooth_render"))
    args = parser.parse_args()

    width, height, depth = args.size
    spec = VolumeSpec(width, height, depth, np.uint16)
    vmax = float(np.iinfo(np.uint16).max)

    workdir = Path(tempfile.mkdtemp(prefix="ddr_tiff_"))
    print(f"writing {depth} synthetic CT slices ({width}x{height} uint16) to {workdir} ...")
    stack = write_stack(workdir, depth, lambda z: tooth_slice(spec, z))

    grid = grid_shape(args.ranks, (width, height, depth))
    print(f"{args.ranks} ranks -> process grid {grid} (near-cubic blocks)")

    def load_and_render(comm, mode):
        if mode == "no_ddr":
            block = load_stack_no_ddr(comm, stack, grid)
        else:
            strategy = (
                Assignment.ROUND_ROBIN if mode == "rr" else Assignment.CONSECUTIVE
            )
            block = load_stack_ddr(comm, stack, grid, strategy)
        partial = render_block(
            block.data.astype(np.float64), TOOTH_TF, vmin=0.0, vmax=vmax
        )
        frame = composite_distributed(
            comm, block.box, partial, (width, height, depth), axis="z"
        )
        return frame, block.read_s, block.exchange_s

    args.out.mkdir(parents=True, exist_ok=True)
    frames = {}
    for mode, label in (("no_ddr", "no DDR"), ("rr", "DDR round-robin"),
                        ("consec", "DDR consecutive")):
        start = time.perf_counter()
        results = run_spmd(args.ranks, load_and_render, mode)
        elapsed = time.perf_counter() - start
        read_s = max(r[1] for r in results)
        exchange_s = max(r[2] for r in results)
        frames[mode] = results[0][0]
        print(
            f"{label:>16}: total {elapsed:6.2f}s  "
            f"(max read {read_s:5.2f}s, max exchange {exchange_s:5.2f}s)"
        )

    for a, b in (("no_ddr", "rr"), ("rr", "consec")):
        same = np.allclose(frames[a], frames[b], atol=5e-3)
        print(f"renders {a} vs {b} agree: {same}")

    rgb = rgba_to_rgb(frames["consec"], background=(0.05, 0.05, 0.08))
    ppm_path = args.out / "tooth.ppm"
    jpg_path = args.out / "tooth.jpg"
    write_ppm(ppm_path, rgb)
    jpg_path.write_bytes(encode_rgb(rgb, quality=90))
    print(f"Figure-2-style render written to {ppm_path} and {jpg_path}")


if __name__ == "__main__":
    main()
