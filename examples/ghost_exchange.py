#!/usr/bin/env python3
"""Ghost-zone exchange via DDR: a distributed 2-D Jacobi heat solver.

Paper §III-B notes that DDR receives may overlap across ranks.  That is
precisely a halo exchange, so DDR can power iterative stencil codes: every
rank owns one tile of the domain and *needs* the tile inflated by one ghost
cell.  This example runs Jacobi diffusion on a process grid and checks the
distributed result against a serial solve (exact agreement).

Run:  python examples/ghost_exchange.py [--size 64 48] [--iters 50]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core import Box, GhostExchanger
from repro.mpisim import run_spmd
from repro.volren import grid_boxes, grid_shape


def jacobi_step_serial(field: np.ndarray) -> np.ndarray:
    """Serial reference: one Jacobi step with fixed (Dirichlet) borders."""
    out = field.copy()
    out[1:-1, 1:-1] = 0.25 * (
        field[:-2, 1:-1] + field[2:, 1:-1] + field[1:-1, :-2] + field[1:-1, 2:]
    )
    return out


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", nargs=2, type=int, default=[64, 48],
                        metavar=("W", "H"))
    parser.add_argument("--ranks", type=int, default=4)
    parser.add_argument("--iters", type=int, default=50)
    args = parser.parse_args()

    width, height = args.size
    domain = Box((0, 0), (width, height))
    grid = grid_shape(args.ranks, (width, height))
    boxes = grid_boxes((width, height), grid)
    print(f"Jacobi heat diffusion on {width}x{height}, "
          f"{args.ranks} ranks in a {grid} grid, {args.iters} iterations")

    # Initial condition: hot left wall, cold elsewhere.
    initial = np.zeros((height, width))
    initial[:, 0] = 100.0

    def fn(comm):
        own = boxes[comm.rank]
        x0, y0 = own.offset
        w, h = own.dims
        ghosts = GhostExchanger(comm, ndims=2, dtype=np.float64)
        padded_box = ghosts.setup(own, halo=1, domain=domain)

        # Does the padded box actually extend past the tile on each side?
        has_north = padded_box.offset[1] < y0
        has_west = padded_box.offset[0] < x0
        has_south = padded_box.end[1] > y0 + h
        has_east = padded_box.end[0] > x0 + w

        # Global-border cells hold fixed Dirichlet values; mask them out.
        ys = np.arange(h) + y0
        xs = np.arange(w) + x0
        update_mask = (
            (ys[:, None] > 0) & (ys[:, None] < height - 1)
            & (xs[None, :] > 0) & (xs[None, :] < width - 1)
        )

        interior = initial[y0 : y0 + h, x0 : x0 + w].copy()
        for _ in range(args.iters):
            padded = ghosts.exchange(interior)
            # Normalise to exactly one ghost cell per side: sides clipped at
            # the domain edge get a replicated row/col, which only feeds
            # masked (fixed-boundary) cells and never changes the result.
            full = np.pad(
                padded,
                (
                    (0 if has_north else 1, 0 if has_south else 1),
                    (0 if has_west else 1, 0 if has_east else 1),
                ),
                mode="edge",
            )
            center = full[1 : 1 + h, 1 : 1 + w]
            stencil = 0.25 * (
                full[0:h, 1 : 1 + w]          # north
                + full[2 : 2 + h, 1 : 1 + w]  # south
                + full[1 : 1 + h, 0:w]        # west
                + full[1 : 1 + h, 2 : 2 + w]  # east
            )
            interior = np.where(update_mask, stencil, center)
        return own, interior

    results = run_spmd(args.ranks, fn)

    reference = initial.copy()
    for _ in range(args.iters):
        reference = jacobi_step_serial(reference)

    worst = 0.0
    for own, interior in results:
        x0, y0 = own.offset
        w, h = own.dims
        expected = reference[y0 : y0 + h, x0 : x0 + w]
        worst = max(worst, float(np.abs(interior - expected).max()))
    print(f"max |distributed - serial| after {args.iters} iterations: {worst:.3e}")
    print("OK" if worst == 0.0 else ("close enough" if worst < 1e-12 else "MISMATCH"))


if __name__ == "__main__":
    main()
