#!/usr/bin/env python3
"""Quickstart: the paper's running example E1 (Algorithm 1 / Figure 1).

Four ranks share an 8x8 grid.  Before redistribution each rank owns two
separate 8x1 rows; afterwards each holds one contiguous 4x4 quadrant.
Shows both API layers: the paper's C-style three calls and the Pythonic
``Redistributor``.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Box,
    DATA_TYPE_2D,
    DDR_NewDataDescriptor,
    DDR_ReorganizeData,
    DDR_SetupDataMapping,
    Redistributor,
)
from repro.mpisim import FLOAT, run_spmd


def paper_api(comm):
    """Algorithm 1, line for line."""
    rank, nprocs = comm.rank, comm.size

    # Line 1: describe the data.
    desc = DDR_NewDataDescriptor(nprocs, DATA_TYPE_2D, FLOAT, 4)

    # Lines 2-8: what this rank owns (two rows) and needs (one quadrant).
    chunks_own = 2
    dims_own = [8, 1, 8, 1]
    offsets_own = [0, rank, 0, rank + 4]
    right, bottom = rank % 2, rank // 2
    dims_need = [4, 4]
    offsets_need = [4 * right, 4 * bottom]

    # Line 9: collective mapping setup (runs once).
    DDR_SetupDataMapping(
        comm, rank, nprocs, chunks_own, dims_own, offsets_own,
        dims_need, offsets_need, desc,
    )

    # Line 10: move the data.
    global_grid = np.arange(64, dtype=np.float32).reshape(8, 8)
    data_own = [global_grid[rank].copy(), global_grid[rank + 4].copy()]
    data_need = np.zeros((4, 4), dtype=np.float32)
    DDR_ReorganizeData(comm, nprocs, data_own, data_need, desc)
    return data_need


def pythonic_api(comm):
    """The same exchange through the idiomatic wrapper."""
    rank = comm.rank
    red = Redistributor(comm, ndims=2, dtype=np.float32)
    red.setup(
        own=[Box((0, rank), (8, 1)), Box((0, rank + 4), (8, 1))],
        need=Box((4 * (rank % 2), 4 * (rank // 2)), (4, 4)),
    )
    global_grid = np.arange(64, dtype=np.float32).reshape(8, 8)
    return red.gather_need([global_grid[rank].copy(), global_grid[rank + 4].copy()])


def main() -> None:
    global_grid = np.arange(64, dtype=np.float32).reshape(8, 8)
    print("global 8x8 domain (value = 8*y + x):")
    print(global_grid.astype(int))

    for label, fn in (("paper C-style API", paper_api), ("Redistributor", pythonic_api)):
        quadrants = run_spmd(4, fn)
        print(f"\n--- {label} ---")
        for rank, quadrant in enumerate(quadrants):
            right, bottom = rank % 2, rank // 2
            expect = global_grid[4 * bottom : 4 * bottom + 4, 4 * right : 4 * right + 4]
            status = "OK" if np.array_equal(quadrant, expect) else "MISMATCH"
            print(f"rank {rank} quadrant (offset [{4*right}, {4*bottom}]): {status}")
            print(quadrant.astype(int))


if __name__ == "__main__":
    main()
