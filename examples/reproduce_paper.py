#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation section.

Prints each reproduced artifact next to the paper's published numbers:

  Table I / Fig 1 : E1 mapping parameters (exact)
  Table II        : TIFF load times (calibrated Cooley model + native run)
  Fig 3           : strong-scaling curves and the RR/consecutive crossover
  Table III       : Alltoallw rounds and MB/process/round (exact geometry)
  Fig 4 / Fig 5   : M-to-N streaming map and slice->rectangle layouts
  Table IV        : raw vs JPEG output size (really-measured pipeline)

Run:  python examples/reproduce_paper.py [--fast]
"""

from __future__ import annotations

import argparse
import tempfile
import time
from pathlib import Path

from repro.bench import e1, fig3, fig45, table2, table3, table4


def banner(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="smaller native runs (CI-sized)")
    args = parser.parse_args()
    started = time.perf_counter()

    banner("Table I / Figure 1 — E1 example")
    print(e1.report())

    banner("Table III — Alltoallw communication scheduling (exact, full scale)")
    print(table3.report())

    banner("Table II — TIFF load time (calibrated Cooley model, full scale)")
    print(table2.report_model())

    banner("Table II — native-scale execution (real threads, real TIFF decode)")
    stack_dir = table2.prepare_native_stack(Path(tempfile.mkdtemp(prefix="ddr_t2_")))
    print(table2.report_native(stack_dir))

    banner("Figure 3 — strong scaling")
    print(fig3.report())

    banner("Figures 4 & 5 — M-to-N streaming and redistribution layout")
    print(fig45.report())

    banner("Table IV — raw vs in-transit JPEG output size")
    if args.fast:
        measured = table4.measure_compression(
            nx=162, ny=65, m=4, n=2, steps=600, output_every=100
        )
        print(table4.report(measured))
    else:
        _, measured, fit = table4.measure_two_scales()
        print(table4.report(measured, fit))

    print(f"\nall artifacts regenerated in {time.perf_counter() - started:.1f}s")


if __name__ == "__main__":
    main()
