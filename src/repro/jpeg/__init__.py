"""From-scratch baseline JPEG codec (Table IV's processed-output format)."""

from .color import rgb_to_ycbcr, subsample_420, upsample_420, ycbcr_to_rgb
from .decoder import JpegError, decode
from .encoder import encode_gray, encode_rgb
from .huffman import (
    HuffmanTable,
    STD_AC_CHROMINANCE,
    STD_AC_LUMINANCE,
    STD_DC_CHROMINANCE,
    STD_DC_LUMINANCE,
)
from .quant import BASE_CHROMINANCE, BASE_LUMINANCE, scale_table

__all__ = [
    "BASE_CHROMINANCE",
    "BASE_LUMINANCE",
    "HuffmanTable",
    "JpegError",
    "STD_AC_CHROMINANCE",
    "STD_AC_LUMINANCE",
    "STD_DC_CHROMINANCE",
    "STD_DC_LUMINANCE",
    "decode",
    "encode_gray",
    "encode_rgb",
    "rgb_to_ycbcr",
    "scale_table",
    "subsample_420",
    "upsample_420",
    "ycbcr_to_rgb",
]
