"""Baseline sequential JPEG encoder (SOF0, Huffman, 4:4:4 or 4:2:0).

Produces standard JFIF files — the "compressed JPEG image" output of the
paper's in-transit analysis application (§IV-B, Table IV).  Grayscale and
RGB inputs are supported; RGB defaults to 4:2:0 chroma subsampling like
common libjpeg configurations.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from .bitio import BitWriter
from .color import rgb_to_ycbcr, subsample_420
from .dct import BLOCK, blockify, forward_dct, to_zigzag
from .huffman import (
    HuffmanTable,
    STD_AC_CHROMINANCE,
    STD_AC_LUMINANCE,
    STD_DC_CHROMINANCE,
    STD_DC_LUMINANCE,
    encode_magnitude,
    magnitude_category,
)
from .quant import BASE_CHROMINANCE, BASE_LUMINANCE, quantize, scale_table

# Marker bytes.
SOI = b"\xff\xd8"
EOI = b"\xff\xd9"
APP0 = 0xE0
DQT = 0xDB
SOF0 = 0xC0
DHT = 0xC4
SOS = 0xDA
DRI = 0xDD


@dataclass
class _Component:
    comp_id: int
    h: int  # horizontal sampling factor
    v: int  # vertical sampling factor
    quant_id: int
    dc_table: HuffmanTable
    ac_table: HuffmanTable
    blocks: np.ndarray  # (n_mcus, h*v, 64) quantized zig-zag coefficients


def _segment(marker: int, payload: bytes) -> bytes:
    return struct.pack(">BBH", 0xFF, marker, len(payload) + 2) + payload


def _app0_jfif() -> bytes:
    return _segment(APP0, b"JFIF\x00" + struct.pack(">BBBHHBB", 1, 1, 0, 1, 1, 0, 0))


def _dqt(table_id: int, table: np.ndarray) -> bytes:
    zz = to_zigzag(table.astype(np.float64)).astype(np.uint8)
    return _segment(DQT, bytes([table_id]) + zz.tobytes())


def _dht(table_class: int, table_id: int, table: HuffmanTable) -> bytes:
    payload = bytes([(table_class << 4) | table_id])
    payload += bytes(table.bits)
    payload += bytes(table.values)
    return _segment(DHT, payload)


def _sof0(height: int, width: int, components: list[_Component]) -> bytes:
    payload = struct.pack(">BHHB", 8, height, width, len(components))
    for comp in components:
        payload += bytes([comp.comp_id, (comp.h << 4) | comp.v, comp.quant_id])
    return _segment(SOF0, payload)


def _sos(components: list[_Component], dc_ids: list[int], ac_ids: list[int]) -> bytes:
    payload = bytes([len(components)])
    for comp, dc_id, ac_id in zip(components, dc_ids, ac_ids):
        payload += bytes([comp.comp_id, (dc_id << 4) | ac_id])
    payload += bytes([0, 63, 0])  # spectral selection for baseline
    return _segment(SOS, payload)


def _prepare_component(
    channel: np.ndarray,
    mcus_x: int,
    mcus_y: int,
    h: int,
    v: int,
    quant_table: np.ndarray,
) -> np.ndarray:
    """Pad to full MCU coverage, DCT, quantize; returns (n_mcus, h*v, 64)."""
    target_h = mcus_y * v * BLOCK
    target_w = mcus_x * h * BLOCK
    rows, cols = channel.shape
    padded = np.pad(channel, ((0, target_h - rows), (0, target_w - cols)), mode="edge")
    blocks, bh, bw = blockify(padded)
    coeffs = forward_dct(blocks - 128.0)
    quantized = quantize(coeffs, quant_table)
    zz = to_zigzag(quantized)  # (bh*bw, 64)
    grid = zz.reshape(bh, bw, 64)
    # Regroup raster blocks into MCU order: each MCU takes a v x h tile.
    mcu_blocks = np.empty((mcus_y * mcus_x, h * v, 64), dtype=np.int32)
    for my in range(mcus_y):
        for mx in range(mcus_x):
            tile = grid[my * v : (my + 1) * v, mx * h : (mx + 1) * h]
            mcu_blocks[my * mcus_x + mx] = tile.reshape(h * v, 64)
    return mcu_blocks


def _encode_block(
    writer: BitWriter,
    zz: np.ndarray,
    predictor: int,
    dc_table: HuffmanTable,
    ac_table: HuffmanTable,
) -> int:
    """Entropy-code one zig-zag block; returns the new DC predictor."""
    dc = int(zz[0])
    diff = dc - predictor
    size = magnitude_category(diff)
    dc_table.encode_symbol(writer, size)
    encode_magnitude(writer, diff, size)

    run = 0
    last_nonzero = 0
    nonzero = np.nonzero(zz[1:])[0]
    if nonzero.size:
        last_nonzero = int(nonzero[-1]) + 1
    for k in range(1, last_nonzero + 1):
        value = int(zz[k])
        if value == 0:
            run += 1
            continue
        while run > 15:
            ac_table.encode_symbol(writer, 0xF0)  # ZRL: 16 zeros
            run -= 16
        size = magnitude_category(value)
        ac_table.encode_symbol(writer, (run << 4) | size)
        encode_magnitude(writer, value, size)
        run = 0
    if last_nonzero < 63:
        ac_table.encode_symbol(writer, 0x00)  # EOB
    return dc


def _dri(interval: int) -> bytes:
    return _segment(DRI, struct.pack(">H", interval))


def _encode_scan(
    components: list[_Component], restart_interval: int | None = None
) -> bytes:
    """Entropy-code the scan; with ``restart_interval``, emit RSTn markers
    every that many MCUs and reset the DC predictors (ITU-T T.81 §F.1.2.3)."""
    out = bytearray()
    writer = BitWriter()
    predictors = [0] * len(components)
    n_mcus = components[0].blocks.shape[0]
    restart_index = 0
    for mcu in range(n_mcus):
        if restart_interval and mcu and mcu % restart_interval == 0:
            out += writer.flush()
            out += bytes([0xFF, 0xD0 + (restart_index % 8)])
            restart_index += 1
            writer = BitWriter()
            predictors = [0] * len(components)
        for index, comp in enumerate(components):
            for block in comp.blocks[mcu]:
                predictors[index] = _encode_block(
                    writer, block, predictors[index], comp.dc_table, comp.ac_table
                )
    out += writer.flush()
    return bytes(out)


def encode_gray(
    image: np.ndarray, quality: int = 75, restart_interval: int | None = None
) -> bytes:
    """Encode an ``(h, w)`` uint8 grayscale image to JPEG bytes."""
    image = np.asarray(image)
    if image.ndim != 2:
        raise ValueError(f"expected (h, w) grayscale, got shape {image.shape}")
    if image.dtype != np.uint8:
        raise ValueError(f"expected uint8 samples, got {image.dtype}")
    height, width = image.shape
    qt = scale_table(BASE_LUMINANCE, quality)
    mcus_x = (width + BLOCK - 1) // BLOCK
    mcus_y = (height + BLOCK - 1) // BLOCK
    blocks = _prepare_component(image.astype(np.float64), mcus_x, mcus_y, 1, 1, qt)
    comp = _Component(1, 1, 1, 0, STD_DC_LUMINANCE, STD_AC_LUMINANCE, blocks)

    out = bytearray()
    out += SOI
    out += _app0_jfif()
    out += _dqt(0, qt)
    out += _sof0(height, width, [comp])
    out += _dht(0, 0, STD_DC_LUMINANCE)
    out += _dht(1, 0, STD_AC_LUMINANCE)
    if restart_interval:
        out += _dri(restart_interval)
    out += _sos([comp], [0], [0])
    out += _encode_scan([comp], restart_interval)
    out += EOI
    return bytes(out)


def encode_rgb(
    image: np.ndarray,
    quality: int = 75,
    subsampling: str = "420",
    restart_interval: int | None = None,
) -> bytes:
    """Encode an ``(h, w, 3)`` uint8 RGB image to JPEG bytes."""
    image = np.asarray(image)
    if image.ndim != 3 or image.shape[2] != 3:
        raise ValueError(f"expected (h, w, 3) RGB, got shape {image.shape}")
    if image.dtype != np.uint8:
        raise ValueError(f"expected uint8 samples, got {image.dtype}")
    if subsampling not in ("444", "420"):
        raise ValueError(f"subsampling must be '444' or '420', got {subsampling!r}")
    height, width = image.shape[:2]
    ycbcr = rgb_to_ycbcr(image)
    y = ycbcr[..., 0]
    cb = ycbcr[..., 1]
    cr = ycbcr[..., 2]

    q_lum = scale_table(BASE_LUMINANCE, quality)
    q_chr = scale_table(BASE_CHROMINANCE, quality)

    if subsampling == "420":
        hy = vy = 2
        cb, cr = subsample_420(cb), subsample_420(cr)
    else:
        hy = vy = 1

    mcu_w = hy * BLOCK
    mcu_h = vy * BLOCK
    mcus_x = (width + mcu_w - 1) // mcu_w
    mcus_y = (height + mcu_h - 1) // mcu_h

    y_blocks = _prepare_component(y, mcus_x, mcus_y, hy, vy, q_lum)
    cb_blocks = _prepare_component(cb, mcus_x, mcus_y, 1, 1, q_chr)
    cr_blocks = _prepare_component(cr, mcus_x, mcus_y, 1, 1, q_chr)

    components = [
        _Component(1, hy, vy, 0, STD_DC_LUMINANCE, STD_AC_LUMINANCE, y_blocks),
        _Component(2, 1, 1, 1, STD_DC_CHROMINANCE, STD_AC_CHROMINANCE, cb_blocks),
        _Component(3, 1, 1, 1, STD_DC_CHROMINANCE, STD_AC_CHROMINANCE, cr_blocks),
    ]

    out = bytearray()
    out += SOI
    out += _app0_jfif()
    out += _dqt(0, q_lum)
    out += _dqt(1, q_chr)
    out += _sof0(height, width, components)
    out += _dht(0, 0, STD_DC_LUMINANCE)
    out += _dht(1, 0, STD_AC_LUMINANCE)
    out += _dht(0, 1, STD_DC_CHROMINANCE)
    out += _dht(1, 1, STD_AC_CHROMINANCE)
    if restart_interval:
        out += _dri(restart_interval)
    out += _sos(components, [0, 1, 1], [0, 1, 1])
    out += _encode_scan(components, restart_interval)
    out += EOI
    return bytes(out)
