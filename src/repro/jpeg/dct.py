"""8x8 block DCT and zig-zag ordering for JPEG."""

from __future__ import annotations

import numpy as np
from scipy.fft import dctn, idctn

BLOCK = 8

#: Zig-zag scan order: ZIGZAG[k] = (row, col) of the k-th coefficient.
def _build_zigzag() -> np.ndarray:
    order = sorted(
        ((r, c) for r in range(BLOCK) for c in range(BLOCK)),
        key=lambda rc: (rc[0] + rc[1], rc[1] if (rc[0] + rc[1]) % 2 == 0 else rc[0]),
    )
    return np.array(order, dtype=np.int64)


ZIGZAG = _build_zigzag()
#: Flat index (row*8+col) of each zig-zag position.
ZIGZAG_FLAT = ZIGZAG[:, 0] * BLOCK + ZIGZAG[:, 1]
#: Inverse permutation: natural flat index -> zig-zag position.
INV_ZIGZAG_FLAT = np.argsort(ZIGZAG_FLAT)


def forward_dct(blocks: np.ndarray) -> np.ndarray:
    """Type-II orthonormal 2-D DCT over the last two axes (8x8 blocks)."""
    return dctn(blocks, type=2, norm="ortho", axes=(-2, -1))


def inverse_dct(coeffs: np.ndarray) -> np.ndarray:
    return idctn(coeffs, type=2, norm="ortho", axes=(-2, -1))


def to_zigzag(block: np.ndarray) -> np.ndarray:
    """Flatten one or more 8x8 blocks in zig-zag order (last axis = 64)."""
    flat = np.asarray(block).reshape(*block.shape[:-2], 64)
    return flat[..., ZIGZAG_FLAT]


def from_zigzag(scan: np.ndarray) -> np.ndarray:
    """Inverse of :func:`to_zigzag`; returns ``(..., 8, 8)``."""
    scan = np.asarray(scan)
    flat = scan[..., INV_ZIGZAG_FLAT]
    return flat.reshape(*scan.shape[:-1], BLOCK, BLOCK)


def blockify(channel: np.ndarray) -> tuple[np.ndarray, int, int]:
    """Split an ``(h, w)`` channel into ``(n, 8, 8)`` blocks, edge-padded.

    Returns ``(blocks, blocks_high, blocks_wide)``; blocks appear in
    raster order.  Padding replicates the last row/column (JPEG's usual
    choice, keeps edge ringing down).
    """
    h, w = channel.shape
    bh = (h + BLOCK - 1) // BLOCK
    bw = (w + BLOCK - 1) // BLOCK
    padded = np.pad(
        channel,
        ((0, bh * BLOCK - h), (0, bw * BLOCK - w)),
        mode="edge",
    )
    blocks = (
        padded.reshape(bh, BLOCK, bw, BLOCK).transpose(0, 2, 1, 3).reshape(-1, BLOCK, BLOCK)
    )
    return blocks, bh, bw


def unblockify(blocks: np.ndarray, bh: int, bw: int, h: int, w: int) -> np.ndarray:
    """Reassemble raster-order ``(n, 8, 8)`` blocks, cropping the padding."""
    grid = blocks.reshape(bh, bw, BLOCK, BLOCK).transpose(0, 2, 1, 3)
    return grid.reshape(bh * BLOCK, bw * BLOCK)[:h, :w]
