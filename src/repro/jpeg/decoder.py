"""Baseline sequential JPEG decoder.

Decodes the subset of JFIF this package's encoder produces (and common
equivalents): 8-bit baseline SOF0, Huffman entropy coding, 1 or 3
components, 4:4:4 or 4:2:0 sampling, single scan.  Used by the tests to
close the loop on the Table IV output path (encode -> decode -> PSNR).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

import numpy as np

from .bitio import BitReader
from .color import upsample_420, ycbcr_to_rgb
from .dct import BLOCK, from_zigzag, inverse_dct, unblockify
from .huffman import HuffmanTable, decode_magnitude
from .quant import dequantize


class JpegError(ValueError):
    """Malformed stream or unsupported JPEG feature."""


@dataclass
class _Component:
    comp_id: int
    h: int
    v: int
    quant_id: int
    dc_id: int = 0
    ac_id: int = 0


@dataclass
class _DecoderState:
    width: int = 0
    height: int = 0
    components: list[_Component] = field(default_factory=list)
    quant_tables: dict[int, np.ndarray] = field(default_factory=dict)
    dc_tables: dict[int, HuffmanTable] = field(default_factory=dict)
    ac_tables: dict[int, HuffmanTable] = field(default_factory=dict)
    restart_interval: int = 0  # MCUs between RSTn markers (0 = none)


def _parse_dqt(payload: bytes, state: _DecoderState) -> None:
    pos = 0
    while pos < len(payload):
        pq_tq = payload[pos]
        pos += 1
        precision, table_id = pq_tq >> 4, pq_tq & 0x0F
        if precision != 0:
            raise JpegError("only 8-bit quantization tables supported")
        if pos + 64 > len(payload):
            raise JpegError("truncated DQT")
        zz = np.frombuffer(payload[pos : pos + 64], dtype=np.uint8).astype(np.int32)
        state.quant_tables[table_id] = from_zigzag(zz)
        pos += 64


def _parse_dht(payload: bytes, state: _DecoderState) -> None:
    pos = 0
    while pos < len(payload):
        tc_th = payload[pos]
        pos += 1
        table_class, table_id = tc_th >> 4, tc_th & 0x0F
        if pos + 16 > len(payload):
            raise JpegError("truncated DHT")
        bits = tuple(payload[pos : pos + 16])
        pos += 16
        count = sum(bits)
        if pos + count > len(payload):
            raise JpegError("truncated DHT values")
        values = tuple(payload[pos : pos + count])
        pos += count
        table = HuffmanTable(bits, values)
        if table_class == 0:
            state.dc_tables[table_id] = table
        elif table_class == 1:
            state.ac_tables[table_id] = table
        else:
            raise JpegError(f"bad Huffman table class {table_class}")


def _parse_sof0(payload: bytes, state: _DecoderState) -> None:
    precision, height, width, ncomp = struct.unpack(">BHHB", payload[:6])
    if precision != 8:
        raise JpegError(f"only 8-bit precision supported, got {precision}")
    state.width, state.height = width, height
    pos = 6
    for _ in range(ncomp):
        comp_id, sampling, quant_id = payload[pos : pos + 3]
        state.components.append(
            _Component(comp_id, sampling >> 4, sampling & 0x0F, quant_id)
        )
        pos += 3


def _parse_sos(payload: bytes, state: _DecoderState) -> None:
    ncomp = payload[0]
    pos = 1
    for _ in range(ncomp):
        comp_id, tables = payload[pos : pos + 2]
        pos += 2
        comp = next((c for c in state.components if c.comp_id == comp_id), None)
        if comp is None:
            raise JpegError(f"scan references unknown component {comp_id}")
        comp.dc_id, comp.ac_id = tables >> 4, tables & 0x0F
    ss, se, ahl = payload[pos : pos + 3]
    if (ss, se) != (0, 63):
        raise JpegError("progressive/partial scans not supported")


def _decode_block(
    reader: BitReader,
    predictor: int,
    dc_table: HuffmanTable,
    ac_table: HuffmanTable,
) -> tuple[np.ndarray, int]:
    zz = np.zeros(64, dtype=np.int32)
    size = dc_table.decode_symbol(reader)
    dc = predictor + decode_magnitude(reader, size)
    zz[0] = dc
    k = 1
    while k <= 63:
        symbol = ac_table.decode_symbol(reader)
        if symbol == 0x00:  # EOB
            break
        run, size = symbol >> 4, symbol & 0x0F
        if size == 0:
            if run != 15:
                raise JpegError(f"invalid AC symbol 0x{symbol:02X}")
            k += 16  # ZRL
            continue
        k += run
        if k > 63:
            raise JpegError("AC run overflows block")
        zz[k] = decode_magnitude(reader, size)
        k += 1
    return zz, dc


def _split_restart_segments(scan: bytes) -> list[bytes]:
    """Split the entropy-coded segment at RSTn markers (byte-aligned by
    construction; stuffed 0xFF00 pairs are skipped, not split)."""
    segments: list[bytes] = []
    start = 0
    i = 0
    while i < len(scan) - 1:
        if scan[i] == 0xFF:
            follower = scan[i + 1]
            if 0xD0 <= follower <= 0xD7:
                segments.append(scan[start:i])
                start = i + 2
                i += 2
                continue
            i += 2  # stuffed byte (or trailing marker caught by caller)
            continue
        i += 1
    segments.append(scan[start:])
    return segments


def decode(data: bytes) -> np.ndarray:
    """Decode JPEG bytes to ``(h, w)`` grayscale or ``(h, w, 3)`` RGB uint8."""
    if data[:2] != b"\xff\xd8":
        raise JpegError("missing SOI marker")
    state = _DecoderState()
    pos = 2
    scan_start = None
    while pos < len(data):
        if data[pos] != 0xFF:
            raise JpegError(f"expected marker at byte {pos}")
        marker = data[pos + 1]
        pos += 2
        if marker == 0xD9:  # EOI
            break
        if marker == 0x01 or 0xD0 <= marker <= 0xD7:
            continue  # standalone markers
        (length,) = struct.unpack(">H", data[pos : pos + 2])
        payload = data[pos + 2 : pos + length]
        if marker == 0xDB:
            _parse_dqt(payload, state)
        elif marker == 0xDD:
            (state.restart_interval,) = struct.unpack(">H", payload[:2])
        elif marker == 0xC4:
            _parse_dht(payload, state)
        elif marker == 0xC0:
            _parse_sof0(payload, state)
        elif marker in (0xC1, 0xC2, 0xC3, 0xC5, 0xC6, 0xC7):
            raise JpegError(f"unsupported frame type 0xFF{marker:02X}")
        elif marker == 0xDA:
            _parse_sos(payload, state)
            scan_start = pos + length
            break
        # APPn / COM / others: skip
        pos += length

    if scan_start is None:
        raise JpegError("no scan found")
    if not state.components:
        raise JpegError("no frame header before scan")
    eoi = data.rfind(b"\xff\xd9")
    if eoi <= scan_start:
        raise JpegError("missing EOI after scan")
    scan = data[scan_start:eoi]
    if state.restart_interval:
        segments = _split_restart_segments(scan)
    else:
        segments = [scan]
    segment_index = 0
    reader = BitReader(segments[0])

    hmax = max(c.h for c in state.components)
    vmax = max(c.v for c in state.components)
    mcus_x = (state.width + hmax * BLOCK - 1) // (hmax * BLOCK)
    mcus_y = (state.height + vmax * BLOCK - 1) // (vmax * BLOCK)

    grids = {
        c.comp_id: np.zeros((mcus_y * c.v, mcus_x * c.h, 64), dtype=np.int32)
        for c in state.components
    }
    predictors = {c.comp_id: 0 for c in state.components}

    for my in range(mcus_y):
        for mx in range(mcus_x):
            mcu_index = my * mcus_x + mx
            if (
                state.restart_interval
                and mcu_index
                and mcu_index % state.restart_interval == 0
            ):
                segment_index += 1
                if segment_index >= len(segments):
                    raise JpegError("missing restart marker in scan")
                reader = BitReader(segments[segment_index])
                for comp_id in predictors:
                    predictors[comp_id] = 0
            for comp in state.components:
                dc_table = state.dc_tables.get(comp.dc_id)
                ac_table = state.ac_tables.get(comp.ac_id)
                if dc_table is None or ac_table is None:
                    raise JpegError("scan uses undefined Huffman table")
                for by in range(comp.v):
                    for bx in range(comp.h):
                        zz, dc = _decode_block(
                            reader, predictors[comp.comp_id], dc_table, ac_table
                        )
                        predictors[comp.comp_id] = dc
                        grids[comp.comp_id][my * comp.v + by, mx * comp.h + bx] = zz

    channels = []
    for comp in state.components:
        table = state.quant_tables.get(comp.quant_id)
        if table is None:
            raise JpegError(f"component {comp.comp_id} uses undefined quant table")
        grid = grids[comp.comp_id]
        bh, bw = grid.shape[:2]
        coeffs = dequantize(from_zigzag(grid.reshape(-1, 64)), table)
        pixels = inverse_dct(coeffs) + 128.0
        comp_w = -(-state.width * comp.h // hmax)  # ceil division
        comp_h = -(-state.height * comp.v // vmax)
        channels.append(unblockify(pixels, bh, bw, comp_h, comp_w))

    if len(channels) == 1:
        return np.clip(np.round(channels[0]), 0, 255).astype(np.uint8)
    if len(channels) != 3:
        raise JpegError(f"unsupported component count {len(channels)}")
    y, cb, cr = channels
    if cb.shape != y.shape:
        cb = upsample_420(cb, state.height, state.width)
        cr = upsample_420(cr, state.height, state.width)
    ycbcr = np.stack([y, cb, cr], axis=-1)
    return ycbcr_to_rgb(ycbcr)
