"""Bit-level I/O for the JPEG entropy-coded segment.

JPEG packs Huffman codes MSB-first and *byte-stuffs* the scan: any 0xFF
byte in the entropy stream is followed by 0x00 so decoders can find
markers.  The reader performs the inverse unstuffing.
"""

from __future__ import annotations


class BitWriter:
    """MSB-first bit accumulator with JPEG byte stuffing."""

    def __init__(self) -> None:
        self._out = bytearray()
        self._acc = 0
        self._nbits = 0

    def write(self, value: int, nbits: int) -> None:
        """Append the low ``nbits`` of ``value``, most significant first."""
        if nbits < 0 or nbits > 32:
            raise ValueError(f"nbits must be in [0, 32], got {nbits}")
        if nbits == 0:
            return
        if value < 0 or value >= (1 << nbits):
            raise ValueError(f"value {value} does not fit in {nbits} bits")
        self._acc = (self._acc << nbits) | value
        self._nbits += nbits
        while self._nbits >= 8:
            self._nbits -= 8
            byte = (self._acc >> self._nbits) & 0xFF
            self._out.append(byte)
            if byte == 0xFF:
                self._out.append(0x00)  # stuffing
        self._acc &= (1 << self._nbits) - 1

    def flush(self) -> bytes:
        """Pad the final partial byte with 1-bits (JPEG convention)."""
        if self._nbits:
            pad = 8 - self._nbits
            self.write((1 << pad) - 1, pad)
        return bytes(self._out)


class BitReader:
    """MSB-first bit reader that undoes JPEG byte stuffing."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0
        self._acc = 0
        self._nbits = 0

    def _pull_byte(self) -> None:
        if self._pos >= len(self._data):
            raise EOFError("entropy-coded segment exhausted")
        byte = self._data[self._pos]
        self._pos += 1
        if byte == 0xFF:
            if self._pos >= len(self._data):
                raise EOFError("truncated stuffing sequence")
            marker = self._data[self._pos]
            if marker == 0x00:
                self._pos += 1  # stuffed 0xFF
            else:
                raise EOFError(f"unexpected marker 0xFF{marker:02X} inside scan")
        self._acc = (self._acc << 8) | byte
        self._nbits += 8

    def read(self, nbits: int) -> int:
        """Read ``nbits`` (MSB first)."""
        if nbits < 0 or nbits > 32:
            raise ValueError(f"nbits must be in [0, 32], got {nbits}")
        while self._nbits < nbits:
            self._pull_byte()
        self._nbits -= nbits
        value = (self._acc >> self._nbits) & ((1 << nbits) - 1)
        self._acc &= (1 << self._nbits) - 1
        return value

    def read_bit(self) -> int:
        return self.read(1)
