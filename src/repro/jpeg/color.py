"""JFIF color conversion: RGB <-> YCbCr (BT.601 full range)."""

from __future__ import annotations

import numpy as np

_FORWARD = np.array(
    [
        [0.299, 0.587, 0.114],
        [-0.168736, -0.331264, 0.5],
        [0.5, -0.418688, -0.081312],
    ]
)

_INVERSE = np.array(
    [
        [1.0, 0.0, 1.402],
        [1.0, -0.344136, -0.714136],
        [1.0, 1.772, 0.0],
    ]
)


def rgb_to_ycbcr(rgb: np.ndarray) -> np.ndarray:
    """``(h, w, 3)`` uint8 RGB -> float YCbCr with chroma centred on 128."""
    rgb = np.asarray(rgb)
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise ValueError(f"expected (h, w, 3), got {rgb.shape}")
    out = rgb.astype(np.float64) @ _FORWARD.T
    out[..., 1:] += 128.0
    return out


def ycbcr_to_rgb(ycbcr: np.ndarray) -> np.ndarray:
    """Float YCbCr -> uint8 RGB (clipped)."""
    ycbcr = np.asarray(ycbcr, dtype=np.float64)
    if ycbcr.ndim != 3 or ycbcr.shape[2] != 3:
        raise ValueError(f"expected (h, w, 3), got {ycbcr.shape}")
    shifted = ycbcr.copy()
    shifted[..., 1:] -= 128.0
    rgb = shifted @ _INVERSE.T
    return np.clip(np.round(rgb), 0, 255).astype(np.uint8)


def subsample_420(channel: np.ndarray) -> np.ndarray:
    """2x2 box-average chroma subsampling (pads odd dimensions by edge)."""
    h, w = channel.shape
    padded = np.pad(channel, ((0, h % 2), (0, w % 2)), mode="edge")
    return padded.reshape(padded.shape[0] // 2, 2, padded.shape[1] // 2, 2).mean(axis=(1, 3))


def upsample_420(channel: np.ndarray, h: int, w: int) -> np.ndarray:
    """Nearest-neighbor chroma upsampling back to ``(h, w)``."""
    up = np.repeat(np.repeat(channel, 2, axis=0), 2, axis=1)
    return up[:h, :w]
