"""The full in-transit analysis pipeline (paper §IV-B).

Simulation ranks run the slab-decomposed LBM and stream vorticity slabs to
the analysis ranks every ``output_every`` iterations; analysis ranks use
DDR to reshape slices into near-square rectangles (Figure 5), render them
through the blue-white-red colormap, assemble the frame, and save it as a
compressed JPEG instead of raw floats — the storage trade Table IV
quantifies.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

import numpy as np

from ..core.api import Redistributor
from ..faults.policy import ReliabilityPolicy
from ..io.raw import raw_frame_bytes, write_raw
from ..jpeg.encoder import encode_rgb
from ..lbm.distributed import DistributedLbm
from ..lbm.simulation import LbmConfig
from ..mpisim.comm import Communicator
from ..obs.tracer import TRACER
from ..resilience.checkpoint import CheckpointPolicy
from ..viz.colormaps import BLUE_WHITE_RED, GRAYSCALE
from ..viz.image import assemble_tiles, render_scalar_field
from ..volren.decompose import grid_boxes, grid_shape
from .stream import StreamReceiver, StreamSender, StreamTopology

#: Streamable simulation variables (paper §IV-B: "many other variables
#: (e.g. velocity, density, etc.) are required for computation and could
#: also be streamed and rendered, achieving similar data compression").
VARIABLES = ("vorticity", "density", "speed", "ux", "uy")

#: Frame-drop policies (``PipelineConfig.frame_drop``): what the consumer
#: does when a frame's slabs miss their receive deadline.
FRAME_DROP_FAIL = "fail"  # block forever (fabric watchdog backstop)
FRAME_DROP_SKIP = "skip"  # drop the frame, keep rendering later ones
FRAME_DROP_STALE = "stale"  # substitute the last good data for the region

FRAME_DROP_MODES = (FRAME_DROP_FAIL, FRAME_DROP_SKIP, FRAME_DROP_STALE)

#: Rank-loss policies (``PipelineConfig.on_rank_loss``): what the pipeline
#: does when a member rank *crashes* (as opposed to a frame going missing).
ON_RANK_LOSS_FAIL = "fail"  # typed error / abort (pre-resilience behaviour)
ON_RANK_LOSS_SHRINK = "shrink"  # reconfigure over the survivors and continue

ON_RANK_LOSS_MODES = (ON_RANK_LOSS_FAIL, ON_RANK_LOSS_SHRINK)

#: Load policies (``PipelineConfig.on_load``): what the pipeline does about
#: *voluntary* reconfiguration — resizing the sim/analysis split while the
#: run is live (as opposed to reacting to a crash).
ON_LOAD_IGNORE = "ignore"  # fixed M-to-N split for the whole run
ON_LOAD_RESIZE = "resize"  # re-split the rank pool at scheduled frames

ON_LOAD_MODES = (ON_LOAD_IGNORE, ON_LOAD_RESIZE)


@dataclass(frozen=True)
class PipelineConfig:
    """One in-transit run: M sim ranks + N analysis ranks on one world.

    ``raw_every_frames`` enables the paper's dual-frequency proposal (§IV-B
    closing discussion): "we could still output raw data every 100
    iterations, but additionally stream data every 10 iterations for visual
    analysis" — every frame is rendered to JPEG, and additionally every
    ``raw_every_frames``-th frame is counted (and, with ``save_dir``,
    written) as a raw float dump.

    ``frame_drop`` is the consumer's degraded mode when a frame's slabs
    miss their receive deadline (``frame_deadline_s``, defaulting to the
    reliability policy's): ``"fail"`` blocks until the fabric watchdog
    fires (the pre-fault-fabric behaviour), ``"skip"`` abandons the frame
    and keeps rendering later ones, ``"stale"`` substitutes the last good
    data for the missing region so every frame still encodes.
    ``reliability`` threads a :class:`~repro.faults.ReliabilityPolicy`
    into the analysis-side :class:`~repro.core.api.Redistributor`.

    ``on_rank_loss`` selects the crash policy: ``"fail"`` keeps the
    pre-resilience behaviour (a dead rank surfaces as a typed error or an
    abort), ``"shrink"`` reconfigures the pipeline over the survivors —
    consumer loss re-partitions the analysis layout, producer loss
    restores the lost simulation slab from buddy checkpoints — and
    replays from the agreed rollback frame (see
    :mod:`repro.intransit.resilient`).  ``checkpoint`` tunes the buddy
    replication; ``None`` uses a :class:`~repro.resilience.CheckpointPolicy`
    that retains every frame.

    ``on_load="resize"`` enables *voluntary* elastic reconfiguration (see
    :mod:`repro.intransit.elastic`): ``resize_schedule`` is a tuple of
    ``(frame, m, n)`` triples, and at each scheduled frame the whole rank
    pool re-splits into ``m`` simulation + ``n`` analysis ranks (either
    side may grow or shrink independently; ranks left over are parked
    until a later entry drafts them back).  Simulation state migrates onto
    the new slab decomposition through a components=9 DDR exchange on one
    persistent world-wide redistributor — each resize is a fresh
    ``LocalMapping`` generation, the same lifecycle crash recovery uses.
    Such schedules are typically produced by an
    :class:`~repro.autoscale.Autoscaler` watching exchange-time and
    queue-depth metrics.  ``on_load="resize"`` composes with the frame-drop
    policies but not (yet) with ``on_rank_loss="shrink"``.
    """

    lbm: LbmConfig
    m: int
    n: int
    steps: int
    output_every: int
    quality: int = 75
    vorticity_limit: float = 0.05  # symmetric colormap range
    save_dir: Optional[Path] = None
    save_raw: bool = False
    keep_frames: bool = False  # retain rendered frames in the result (tests)
    raw_every_frames: Optional[int] = None  # dual-frequency output cadence
    variables: tuple[str, ...] = ("vorticity",)
    backend: Optional[str] = None  # exchange engine; None = DDR_BACKEND/default
    frame_drop: str = FRAME_DROP_FAIL
    frame_deadline_s: Optional[float] = None  # None = reliability policy default
    reliability: Optional[ReliabilityPolicy] = None
    on_rank_loss: str = ON_RANK_LOSS_FAIL
    checkpoint: Optional[CheckpointPolicy] = None
    on_load: str = ON_LOAD_IGNORE
    resize_schedule: Optional[tuple] = None  # ((frame, m, n), ...)

    def __post_init__(self) -> None:
        if self.steps < 1 or self.output_every < 1:
            raise ValueError("steps and output_every must be >= 1")
        if self.frame_drop not in FRAME_DROP_MODES:
            raise ValueError(
                f"unknown frame_drop {self.frame_drop!r}; choose one of "
                f"{FRAME_DROP_MODES}"
            )
        if self.on_rank_loss not in ON_RANK_LOSS_MODES:
            raise ValueError(
                f"unknown on_rank_loss {self.on_rank_loss!r}; choose one of "
                f"{ON_RANK_LOSS_MODES}"
            )
        if self.checkpoint is not None and not isinstance(
            self.checkpoint, CheckpointPolicy
        ):
            raise ValueError("checkpoint must be a CheckpointPolicy or None")
        if self.on_load not in ON_LOAD_MODES:
            raise ValueError(
                f"unknown on_load {self.on_load!r}; choose one of {ON_LOAD_MODES}"
            )
        if self.on_load == ON_LOAD_RESIZE:
            if self.on_rank_loss == ON_RANK_LOSS_SHRINK:
                raise ValueError(
                    'on_load="resize" does not compose with '
                    'on_rank_loss="shrink" yet; pick one reconfiguration mode'
                )
            if not self.resize_schedule:
                raise ValueError(
                    'on_load="resize" needs a resize_schedule of '
                    "(frame, m, n) triples"
                )
            pool = self.m + self.n
            last_frame = 0
            for entry in self.resize_schedule:
                if len(entry) != 3:
                    raise ValueError(
                        f"resize_schedule entries are (frame, m, n); got {entry!r}"
                    )
                frame, m, n = entry
                if frame <= last_frame:
                    raise ValueError(
                        "resize_schedule frames must be strictly increasing "
                        f"and >= 1; got frame {frame} after {last_frame}"
                    )
                last_frame = frame
                if n < 1 or m < n:
                    raise ValueError(
                        f"resize to m={m}, n={n} violates m >= n >= 1"
                    )
                if m + n > pool:
                    raise ValueError(
                        f"resize to m={m}, n={n} exceeds the fixed rank pool "
                        f"of {pool}"
                    )
        elif self.resize_schedule is not None:
            raise ValueError('resize_schedule requires on_load="resize"')
        if self.frame_deadline_s is not None and self.frame_deadline_s <= 0:
            raise ValueError("frame_deadline_s must be positive or None")
        if self.reliability is not None and not isinstance(
            self.reliability, ReliabilityPolicy
        ):
            raise ValueError(
                "reliability must be a ReliabilityPolicy or None"
            )
        if self.backend not in (None, "alltoallw", "p2p", "auto", "bounded"):
            raise ValueError(
                f"unknown backend {self.backend!r}; choose 'alltoallw', 'p2p', "
                "'auto', 'bounded', or None for the process default"
            )
        if self.steps % self.output_every != 0:
            raise ValueError(
                f"steps ({self.steps}) must be a multiple of output_every "
                f"({self.output_every})"
            )
        if not self.variables:
            raise ValueError("at least one variable must be streamed")
        for name in self.variables:
            if name not in VARIABLES:
                raise ValueError(f"unknown variable {name!r}; options: {VARIABLES}")

    @property
    def n_frames(self) -> int:
        return self.steps // self.output_every

    @property
    def effective_frame_deadline_s(self) -> float:
        """The receive deadline the frame-drop policy applies."""
        if self.frame_deadline_s is not None:
            return self.frame_deadline_s
        policy = self.reliability if self.reliability is not None else ReliabilityPolicy()
        return policy.frame_deadline_s


@dataclass
class PipelineResult:
    """Totals collected on analysis rank 0 (``None`` fields elsewhere)."""

    role: str  # "sim" | "analysis" | "analysis_root"
    frames: int = 0
    raw_bytes: int = 0  # what raw-at-every-frame WOULD cost (Table IV baseline)
    jpeg_bytes: int = 0
    dual_raw_bytes: int = 0  # raw dumps actually kept at the coarse cadence
    jpeg_bytes_by_variable: dict = field(default_factory=dict)
    frames_rendered: list = field(default_factory=list)
    frames_dropped: int = 0  # (frame, variable) pairs skipped (frame_drop="skip")
    frames_stale: int = 0  # (frame, variable) pairs rendered with stale data
    slabs_purged: int = 0  # abandoned-frame stragglers drained from the mailbox
    recoveries: int = 0  # shrink-mode reconfigurations this rank survived
    ranks_lost: int = 0  # members removed across those reconfigurations
    resizes: int = 0  # voluntary on_load="resize" reconfigurations applied

    @property
    def data_reduction(self) -> float:
        """Fraction of storage saved by the processed output (Table IV)."""
        if self.raw_bytes == 0:
            return 0.0
        return 1.0 - self.jpeg_bytes / self.raw_bytes

    @property
    def dual_total_bytes(self) -> int:
        """Dual-frequency output: coarse raw dumps + every-frame JPEG."""
        return self.dual_raw_bytes + self.jpeg_bytes

    @property
    def dual_overhead(self) -> float:
        """Storage increase of dual output over raw-only at the coarse
        cadence — the paper's "only marginally increase data storage size"."""
        if self.dual_raw_bytes == 0:
            return 0.0
        return self.dual_total_bytes / self.dual_raw_bytes - 1.0


def run_pipeline(world: Communicator, config: PipelineConfig) -> PipelineResult:
    """SPMD entry point: call on every rank of a (m + n)-rank world."""
    if config.on_load == ON_LOAD_RESIZE:
        from .elastic import run_elastic_pipeline

        return run_elastic_pipeline(world, config)
    if config.on_rank_loss == ON_RANK_LOSS_SHRINK:
        # Deferred import: the resilient runner pulls in the recovery
        # stack, which plain fail-mode pipelines never need.
        from .resilient import run_resilient_pipeline

        return run_resilient_pipeline(world, config)
    topology = StreamTopology(config.m, config.n, config.lbm.nx, config.lbm.ny)
    if world.size != topology.world_size():
        raise ValueError(
            f"world has {world.size} ranks; config needs {topology.world_size()}"
        )
    is_sim = topology.is_sim(world.rank)
    sub = world.Split(0 if is_sim else 1, key=world.rank)
    assert sub is not None

    if is_sim:
        _run_simulation(world, sub, topology, config)
        return PipelineResult(role="sim", frames=config.n_frames)
    return _run_analysis(world, sub, topology, config)


def _sim_fields(sim: DistributedLbm, names: tuple[str, ...]) -> dict[str, np.ndarray]:
    """Compute the requested interior fields of one output step."""
    out: dict[str, np.ndarray] = {}
    need_macro = any(n in ("density", "speed", "ux", "uy") for n in names)
    if need_macro:
        rho, ux, uy = sim.macroscopics()
    for name in names:
        if name == "vorticity":
            out[name] = sim.vorticity().astype(np.float32)
        elif name == "density":
            out[name] = rho.astype(np.float32)
        elif name == "speed":
            out[name] = np.hypot(ux, uy).astype(np.float32)
        elif name == "ux":
            out[name] = ux.astype(np.float32)
        elif name == "uy":
            out[name] = uy.astype(np.float32)
        else:  # pragma: no cover - validated in PipelineConfig
            raise ValueError(name)
    return out


def _run_simulation(
    world: Communicator,
    sim_comm: Communicator,
    topology: StreamTopology,
    config: PipelineConfig,
) -> None:
    sim = DistributedLbm(sim_comm, config.lbm)
    sender = StreamSender(world, topology, sim_comm.rank)
    for frame in range(config.n_frames):
        with TRACER.span("phase.sim_step", frame=frame):
            sim.step(config.output_every)
            fields = _sim_fields(sim, config.variables)
        for var_index, name in enumerate(config.variables):
            with TRACER.span("phase.stream_send", frame=frame, variable=name):
                sender.send_frame(frame, fields[name], var_index)


def _run_analysis(
    world: Communicator,
    analysis_comm: Communicator,
    topology: StreamTopology,
    config: PipelineConfig,
) -> PipelineResult:
    nx, ny = config.lbm.nx, config.lbm.ny
    receiver = StreamReceiver(world, topology, analysis_comm.rank)

    # The analysis layout: rectangles "as close to square as possible"
    # (paper: Figure 5), versus the simulation's full-width slices.
    grid = grid_shape(config.n, (nx, ny))
    need = grid_boxes((nx, ny), grid)[analysis_comm.rank]

    red = Redistributor(
        analysis_comm, ndims=2, dtype=np.float32, backend=config.backend,
        reliability=config.reliability,
    )
    with TRACER.span("phase.ddr_setup", backend=red.backend):
        red.setup(own=receiver.owned_chunks, need=need)  # once; reused per frame

    root = 0
    result = PipelineResult(
        role="analysis_root" if analysis_comm.rank == root else "analysis"
    )
    tile_buffer = np.empty(need.np_shape(), dtype=np.float32)
    # Degraded-mode state: the last good *input* slabs per variable (zeros
    # until a variable's first complete frame).  A rank whose frame missed
    # the deadline re-exchanges these, so the collective DDR call stays
    # joined on every rank and peers still receive data for our region.
    last_slabs: dict[int, list[np.ndarray]] = {
        i: [np.zeros(slab.np_shape(), dtype=np.float32) for _, slab in receiver.sources]
        for i in range(len(config.variables))
    }
    deadline_s = config.effective_frame_deadline_s

    origin = (need.offset[1], need.offset[0])  # (row, col) = (y, x)
    for frame in range(config.n_frames):
        is_raw_frame = (
            config.raw_every_frames is None
            or frame % config.raw_every_frames == 0
        )
        for var_index, name in enumerate(config.variables):
            # Receive under the frame-drop policy.  "fail" keeps the
            # original blocking semantics (fabric watchdog backstop);
            # the degraded modes bound the wait and carry on without the
            # frame's data.  Every rank still joins the redistribution and
            # gather below, so a local drop never desynchronises peers.
            status = "ok"
            with TRACER.span("phase.stream_recv", frame=frame, variable=name):
                if config.frame_drop == FRAME_DROP_FAIL:
                    slabs = receiver.recv_frame(frame, var_index)
                else:
                    slabs = receiver.try_recv_frame(frame, var_index, deadline_s)
                    if slabs is None:
                        status = (
                            "dropped" if config.frame_drop == FRAME_DROP_SKIP
                            else "stale"
                        )
                        if TRACER.enabled:
                            with TRACER.span(
                                "fault.frame_drop", frame=frame, variable=name,
                                policy=config.frame_drop,
                            ):
                                pass
            if status == "ok":
                last_slabs[var_index] = slabs
            else:
                # Frame loss is local: the exchange is collective over the
                # analysis ranks, so a rank whose receive timed out still
                # joins it, re-sending its last good slabs (zeros before
                # the first complete frame).  Peers keep fresh data where
                # they have it; only our region goes stale.
                slabs = last_slabs[var_index]
            with TRACER.span("phase.redistribute", frame=frame, variable=name):
                red.exchange(slabs, tile_buffer)  # per-frame, per-var DDR call
            tile_field = tile_buffer

            tile_rgb: Optional[np.ndarray] = None
            if status != "dropped":
                with TRACER.span("phase.render", frame=frame, variable=name):
                    tile_rgb = _render_variable(tile_field, name, config)
            # The raw baseline tracks the first (primary) variable only,
            # matching Table IV's "one variable of interest".
            want_raw = var_index == 0 and config.save_raw and is_raw_frame
            raw_tile = tile_field.copy() if want_raw and status != "dropped" else None
            gathered = analysis_comm.gather(
                (origin, tile_rgb, raw_tile, status), root=root
            )

            if analysis_comm.rank != root:
                continue
            assert gathered is not None
            statuses = [s for _, _, _, s in gathered]
            if var_index == 0:
                result.frames += 1
                result.raw_bytes += raw_frame_bytes(nx, ny) * len(config.variables)
                if config.raw_every_frames is not None and is_raw_frame:
                    result.dual_raw_bytes += raw_frame_bytes(nx, ny)
            if "dropped" in statuses:
                # skip policy: the frame is lost; later frames keep coming.
                result.frames_dropped += 1
                continue
            if "stale" in statuses:
                result.frames_stale += 1
            with TRACER.span("phase.encode", frame=frame, variable=name):
                frame_rgb = assemble_tiles(
                    [(o, rgb) for o, rgb, _, _ in gathered], (ny, nx)
                )
                blob = encode_rgb(frame_rgb, quality=config.quality)
            result.jpeg_bytes += len(blob)
            result.jpeg_bytes_by_variable[name] = (
                result.jpeg_bytes_by_variable.get(name, 0) + len(blob)
            )
            if var_index == 0 and config.keep_frames:
                result.frames_rendered.append(frame_rgb)
            if config.save_dir is not None:
                directory = Path(config.save_dir)
                directory.mkdir(parents=True, exist_ok=True)
                suffix = "" if len(config.variables) == 1 else f"_{name}"
                (directory / f"frame_{frame:05d}{suffix}.jpg").write_bytes(blob)
                if want_raw and all(tf is not None for _, _, tf, _ in gathered):
                    # Reassemble the full float field for the baseline path.
                    raw = np.zeros((ny, nx), dtype=np.float32)
                    for (r0, c0), _, tile_field_, _ in gathered:
                        th, tw = tile_field_.shape
                        raw[r0 : r0 + th, c0 : c0 + tw] = tile_field_
                    write_raw(directory / f"frame_{frame:05d}.raw", raw)
    if config.frame_drop != FRAME_DROP_FAIL:
        # End-of-run straggler sweep: frames abandoned near the end of the
        # run have no later receive call to purge them, so drain here.  The
        # wait is bounded — a straggler whose send was dropped outright by
        # the fault layer will never arrive and must not stall shutdown.
        sweep_deadline = time.monotonic() + min(deadline_s, 1.0)
        while receiver.abandoned_count() and time.monotonic() < sweep_deadline:
            if receiver.purge_abandoned() == 0:
                time.sleep(0.001)
        result.slabs_purged = receiver.purged_slabs
    return result


def _render_variable(
    field: np.ndarray, name: str, config: PipelineConfig
) -> np.ndarray:
    """Per-variable colormap choices (vorticity uses the paper's map)."""
    u0 = config.lbm.u0
    if name == "vorticity":
        limit = config.vorticity_limit
        return render_scalar_field(field, BLUE_WHITE_RED, -limit, limit, symmetric=True)
    if name == "ux":
        return render_scalar_field(field, BLUE_WHITE_RED, -2 * u0, 2 * u0, symmetric=True)
    if name == "uy":
        return render_scalar_field(field, BLUE_WHITE_RED, -u0, u0, symmetric=True)
    if name == "density":
        return render_scalar_field(field, GRAYSCALE, 0.9, 1.1, symmetric=False)
    if name == "speed":
        return render_scalar_field(field, GRAYSCALE, 0.0, 2 * u0, symmetric=False)
    raise ValueError(name)  # pragma: no cover - validated in PipelineConfig
