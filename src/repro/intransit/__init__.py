"""M-to-N in-transit streaming and the sim->analysis pipeline (use case 2)."""

from .pipeline import (
    FRAME_DROP_FAIL,
    FRAME_DROP_MODES,
    FRAME_DROP_SKIP,
    FRAME_DROP_STALE,
    ON_LOAD_IGNORE,
    ON_LOAD_MODES,
    ON_LOAD_RESIZE,
    ON_RANK_LOSS_FAIL,
    ON_RANK_LOSS_MODES,
    ON_RANK_LOSS_SHRINK,
    PipelineConfig,
    PipelineResult,
    run_pipeline,
)
from .stream import (
    StreamReceiver,
    StreamSender,
    StreamTopology,
    analysis_rank_for,
    frame_tag,
    sim_to_analysis_map,
)

__all__ = [
    "FRAME_DROP_FAIL",
    "FRAME_DROP_MODES",
    "FRAME_DROP_SKIP",
    "FRAME_DROP_STALE",
    "ON_LOAD_IGNORE",
    "ON_LOAD_MODES",
    "ON_LOAD_RESIZE",
    "ON_RANK_LOSS_FAIL",
    "ON_RANK_LOSS_MODES",
    "ON_RANK_LOSS_SHRINK",
    "PipelineConfig",
    "PipelineResult",
    "StreamReceiver",
    "StreamSender",
    "StreamTopology",
    "analysis_rank_for",
    "frame_tag",
    "run_pipeline",
    "sim_to_analysis_map",
]
