"""M-to-N in-transit streaming and the sim->analysis pipeline (use case 2)."""

from .pipeline import PipelineConfig, PipelineResult, run_pipeline
from .stream import (
    StreamReceiver,
    StreamSender,
    StreamTopology,
    analysis_rank_for,
    sim_to_analysis_map,
)

__all__ = [
    "PipelineConfig",
    "PipelineResult",
    "StreamReceiver",
    "StreamSender",
    "StreamTopology",
    "analysis_rank_for",
    "run_pipeline",
    "sim_to_analysis_map",
]
