"""Elastic pipeline: resize the M-to-N split while the run is live.

``PipelineConfig(on_load="resize", resize_schedule=((frame, m, n), ...))``
routes here.  The rank pool is fixed at ``config.m + config.n`` world
ranks, but the *role split* is not: at each scheduled frame every pool
rank — active or parked — joins a reconfiguration collective that

1. migrates the global LBM state from the old slab decomposition onto the
   new one with a components=9 DDR exchange.  The exchange runs on one
   persistent world-spanning :class:`~repro.core.api.Redistributor` whose
   mapping is regenerated per resize (``new_mapping`` + use +
   ``invalidate``) — the same ``LocalMapping`` lifecycle crash recovery
   and :meth:`Redistributor.resize` use, so voluntary pipeline resizing
   exercises exactly the reconfiguration path the resilience layer does;
2. hands the analysis root's frame ledger to wherever the root role lands
   (keyed per frame, so a handoff never double-counts);
3. re-splits the pool — ranks ``[0, m)`` simulate, ``[m, m+n)`` analyse,
   the rest park.  A parked rank simply blocks at the next scheduled
   boundary's collectives until the active ranks reach that frame, then
   takes whatever role the new split assigns it.  Either side can grow or
   shrink independently of the other as long as ``m >= n >= 1`` and
   ``m + n`` fits the pool.

The simulation is deterministic and the migration is exact (no checkpoint
staleness is possible — the state moves synchronously), so a resized run's
rendered frames are bitwise identical to a fixed-split run's, which the
elastic tests assert frame by frame.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.api import Redistributor
from ..core.box import Box
from ..lbm.decompose import slab_box
from ..lbm.distributed import DistributedLbm
from ..mpisim.comm import Communicator
from ..obs.tracer import TRACER
from ..resilience.redistributor import RESILIENCE_STATS
from ..volren.decompose import grid_boxes, grid_shape
from .pipeline import (
    FRAME_DROP_FAIL,
    FRAME_DROP_SKIP,
    PipelineConfig,
    PipelineResult,
    _render_variable,
    _sim_fields,
)
from .resilient import _ResilientPipeline
from .stream import StreamReceiver, StreamSender, StreamTopology

__all__ = ["run_elastic_pipeline"]

ROLE_SIM = "sim"
ROLE_ANALYSIS = "analysis"
ROLE_PARKED = "parked"


def run_elastic_pipeline(
    world: Communicator, config: PipelineConfig
) -> PipelineResult:
    """SPMD entry point for ``on_load="resize"`` pipelines."""
    if world.size != config.m + config.n:
        raise ValueError(
            f"world has {world.size} ranks; config needs {config.m + config.n}"
        )
    return _ElasticPipeline(world, config).run()


class _ElasticPipeline:
    """Per-rank state machine; role state is rebuilt at every resize."""

    def __init__(self, world: Communicator, config: PipelineConfig) -> None:
        self.config = config
        self.world = world
        self.m = config.m
        self.n = config.n
        self.schedule = {f: (m, n) for f, m, n in (config.resize_schedule or ())}
        self.resizes = 0
        self.ledger: dict = {}  # (frame, var_index) -> entry, analysis root only
        # One world-spanning state mover reused across every resize: a
        # reconfiguration is a new mapping generation, not a new
        # redistributor (LBM populations are float64, 9 components).
        self.mover = Redistributor(
            world, ndims=2, dtype=np.float64, components=9
        )
        self.red: Optional[Redistributor] = None  # analysis-side, retargeted
        self._assume_roles(frame=0, migrated=None)

    # -- role assignment -----------------------------------------------------

    @staticmethod
    def _role_of(rank: int, m: int, n: int) -> str:
        if rank < m:
            return ROLE_SIM
        if rank < m + n:
            return ROLE_ANALYSIS
        return ROLE_PARKED

    def _assume_roles(self, frame: int, migrated: Optional[np.ndarray]) -> None:
        config = self.config
        nx, ny = config.lbm.nx, config.lbm.ny
        self.role = self._role_of(self.world.rank, self.m, self.n)
        self.topology = StreamTopology(self.m, self.n, nx, ny)
        color = {ROLE_SIM: 0, ROLE_ANALYSIS: 1, ROLE_PARKED: -1}[self.role]
        self.sub = self.world.Split(color, key=self.world.rank)
        if self.role == ROLE_SIM:
            self.slab = self.topology.sim_slab(self.sub.rank)
            self.sender = StreamSender(self.world, self.topology, self.sub.rank)
            self.sim = DistributedLbm(self.sub, config.lbm)
            if migrated is not None:
                self.sim.f[:, 1:-1, :] = np.moveaxis(migrated, -1, 0)
                self.sim.step_count = frame * config.output_every
        elif self.role == ROLE_ANALYSIS:
            self.receiver = StreamReceiver(self.world, self.topology, self.sub.rank)
            grid = grid_shape(self.n, (nx, ny))
            self.need: Box = grid_boxes((nx, ny), grid)[self.sub.rank]
            if self.red is None:
                self.red = Redistributor(
                    self.sub,
                    ndims=2,
                    dtype=np.float32,
                    backend=config.backend,
                    reliability=config.reliability,
                )
            else:
                # A rank that stays on the analysis side across a resize
                # keeps its redistributor and retargets it at the new
                # sub-communicator — the shared reconfiguration primitive.
                self.red.retarget(self.sub)
            self.red.setup(own=self.receiver.owned_chunks, need=self.need)
            self.tile_buffer = np.empty(self.need.np_shape(), dtype=np.float32)
            self.last_slabs = {
                i: [
                    np.zeros(slab.np_shape(), dtype=np.float32)
                    for _, slab in self.receiver.sources
                ]
                for i in range(len(config.variables))
            }
            self.origin = (self.need.offset[1], self.need.offset[0])

    # -- the frame loop ------------------------------------------------------

    def run(self) -> PipelineResult:
        for frame in range(self.config.n_frames):
            boundary = self.schedule.get(frame)
            if boundary is not None:
                self._reconfigure(frame, *boundary)
            if self.role == ROLE_SIM:
                self._sim_frame(frame)
            elif self.role == ROLE_ANALYSIS:
                self._analysis_frame(frame)
            # Parked ranks do nothing until the next boundary's collectives.
        return self._result()

    def _sim_frame(self, frame: int) -> None:
        config = self.config
        with TRACER.span("phase.sim_step", frame=frame):
            self.sim.step(config.output_every)
            fields = _sim_fields(self.sim, config.variables)
        for var_index, name in enumerate(config.variables):
            with TRACER.span("phase.stream_send", frame=frame, variable=name):
                self.sender.send_frame(frame, fields[name], var_index)

    def _analysis_frame(self, frame: int) -> None:
        config = self.config
        deadline_s = config.effective_frame_deadline_s
        for var_index, name in enumerate(config.variables):
            status = "ok"
            with TRACER.span("phase.stream_recv", frame=frame, variable=name):
                if config.frame_drop == FRAME_DROP_FAIL:
                    slabs = self.receiver.recv_frame(frame, var_index)
                else:
                    slabs = self.receiver.try_recv_frame(
                        frame, var_index, deadline_s
                    )
                    if slabs is None:
                        status = (
                            "dropped"
                            if config.frame_drop == FRAME_DROP_SKIP
                            else "stale"
                        )
            if status == "ok":
                self.last_slabs[var_index] = slabs
            else:
                slabs = self.last_slabs[var_index]
            with TRACER.span("phase.redistribute", frame=frame, variable=name):
                self.red.exchange(slabs, self.tile_buffer)

            tile_rgb = None
            if status != "dropped":
                with TRACER.span("phase.render", frame=frame, variable=name):
                    tile_rgb = _render_variable(self.tile_buffer, name, config)
            want_raw = (
                var_index == 0 and config.save_raw and self._is_raw_frame(frame)
            )
            raw_tile = (
                self.tile_buffer.copy()
                if want_raw and status != "dropped"
                else None
            )
            gathered = self.sub.gather(
                (self.origin, tile_rgb, raw_tile, status), root=0
            )
            if self.sub.rank != 0:
                continue
            assert gathered is not None
            self._record(frame, var_index, name, gathered, want_raw)

    # Ledger bookkeeping and raw-frame cadence are identical to the
    # shrink-mode pipeline's; reuse them rather than fork the logic.
    _is_raw_frame = _ResilientPipeline._is_raw_frame
    _record = _ResilientPipeline._record

    # -- voluntary reconfiguration -------------------------------------------

    def _reconfigure(self, frame: int, new_m: int, new_n: int) -> None:
        """Re-split the pool to ``new_m`` sims + ``new_n`` analysis ranks.

        Collective over the whole pool (parked ranks included): state
        migration, ledger handoff, then role re-assignment.  The migration
        source is the live simulation state — not a checkpoint — so the
        resized run continues bit-exactly.
        """
        config = self.config
        self.resizes += 1
        RESILIENCE_STATS.incr("pipeline_resizes")
        old_root = self.m  # world rank of the analysis root (sub rank 0)
        with TRACER.span(
            "resilience.pipeline_resize", frame=frame, m=new_m, n=new_n
        ):
            own: list[Box] = []
            bufs: list[np.ndarray] = []
            if self.role == ROLE_SIM:
                own = [self.slab]
                bufs = [
                    np.ascontiguousarray(np.moveaxis(self.sim.interior, 0, -1))
                ]
            need = (
                slab_box(config.lbm.nx, config.lbm.ny, new_m, self.world.rank)
                if self.world.rank < new_m
                else None
            )
            migration = self.mover.new_mapping(own=own, need=need, validate=False)
            migrated = self.mover.gather_need(
                bufs if bufs else None, mapping=migration
            )
            migration.invalidate()  # one generation per resize
            led = self.world.bcast(
                self.ledger if self.world.rank == old_root else None,
                root=old_root,
            )
            self.m, self.n = new_m, new_n
            self._assume_roles(frame, migrated)
        if self.role == ROLE_ANALYSIS and self.sub.rank == 0:
            self.ledger = led
        else:
            self.ledger = {}

    # -- result assembly -----------------------------------------------------

    def _result(self) -> PipelineResult:
        config = self.config
        if self.role == ROLE_SIM:
            return PipelineResult(
                role="sim", frames=config.n_frames, resizes=self.resizes
            )
        if self.role == ROLE_PARKED:
            return PipelineResult(role="parked", resizes=self.resizes)
        is_root = self.sub.rank == 0
        result = PipelineResult(
            role="analysis_root" if is_root else "analysis",
            resizes=self.resizes,
        )
        if not is_root:
            return result
        nx, ny = config.lbm.nx, config.lbm.ny
        from ..io.raw import raw_frame_bytes

        for frame in range(config.n_frames):
            result.frames += 1
            result.raw_bytes += raw_frame_bytes(nx, ny) * len(config.variables)
            if config.raw_every_frames is not None and self._is_raw_frame(frame):
                result.dual_raw_bytes += raw_frame_bytes(nx, ny)
            for var_index, name in enumerate(config.variables):
                entry = self.ledger.get((frame, var_index))
                if entry is None:
                    continue
                if entry["status"] == "dropped":
                    result.frames_dropped += 1
                    continue
                if entry["status"] == "stale":
                    result.frames_stale += 1
                result.jpeg_bytes += entry["jpeg"]
                result.jpeg_bytes_by_variable[name] = (
                    result.jpeg_bytes_by_variable.get(name, 0) + entry["jpeg"]
                )
                if var_index == 0 and config.keep_frames:
                    result.frames_rendered.append(entry["rgb"])
        return result
