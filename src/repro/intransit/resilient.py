"""Shrink-mode pipeline: survive rank crashes by reconfiguring M-to-N.

``PipelineConfig(on_rank_loss="shrink")`` routes here.  Both roles run a
resumable per-frame loop; when any member rank crashes, the first rank to
notice revokes the world communicator (waking every survivor out of
whatever stream/halo/exchange operation it was blocked in), and all
survivors run the same recovery protocol on the fabric's crash-proof
agreement plane:

1. agree on the union of observed dead (and cleanly retired) ranks;
2. agree on the rollback frame — the minimum frame any survivor still
   needs, forced to 0 when the analysis root (the ledger holder) died;
3. shrink the world; roles are fixed by *original* world rank, so the
   survivor ordering keeps simulation ranks first and the topology is
   simply rebuilt with ``m' = |surviving sims|``, ``n' = |surviving
   analysis|`` (``ReconfigurationError`` if ``n' < 1`` or ``m' < n'``);
4. **producer loss**: every simulation rank deposits its interior LBM
   populations into a buddy checkpoint store at the start of each frame,
   so the survivors restore the rollback frame's global state — dead
   ranks' slabs from their buddies — and migrate it onto the new slab
   decomposition with a components=9 DDR exchange;
5. **consumer loss**: the analysis layout is re-partitioned over the
   surviving consumers and a fresh redistributor is set up;
6. both sides replay from the rollback frame.  The LBM is deterministic
   and the analysis ledger is keyed by frame, so a replayed frame
   overwrites rather than double-counts and the finished run's output is
   bitwise identical to a fault-free run (unless a restore had to fall
   back to an older checkpoint, which surfaces as stale frames).

Ranks that finish their frame loop retire from the fabric's liveness
table, so late crashes elsewhere never hang an agreement on them; their
checkpoints stay readable (a clean shutdown flushes replicas), letting a
survivor adopt and replay a retired producer's slab too.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

import numpy as np

from ..core.api import Redistributor
from ..io.raw import raw_frame_bytes, write_raw
from ..jpeg.encoder import encode_rgb
from ..lbm.decompose import slab_box
from ..lbm.distributed import DistributedLbm
from ..mpisim.comm import Communicator
from ..mpisim.errors import (
    DeadlineError,
    MpiSimError,
    ProcessFailedError,
    RankCrashError,
    RevokedError,
)
from ..obs.tracer import TRACER
from ..resilience.checkpoint import CheckpointPolicy, shared_store
from ..resilience.errors import DataLossError, ReconfigurationError
from ..resilience.redistributor import RESILIENCE_STATS
from ..viz.image import assemble_tiles
from ..volren.decompose import grid_boxes, grid_shape
from .pipeline import (
    FRAME_DROP_FAIL,
    FRAME_DROP_SKIP,
    PipelineConfig,
    PipelineResult,
    _render_variable,
    _sim_fields,
)
from .stream import StreamReceiver, StreamSender, StreamTopology

#: Fabric.shared key for the simulation-state checkpoint store (kept apart
#: from the exchange-level buddy store of ResilientRedistributor).
STATE_STORE_KEY = "pipeline_state_store"

#: Reconfigurations one rank will attempt before giving up.
MAX_RECOVERIES = 3


def run_resilient_pipeline(
    world: Communicator, config: PipelineConfig
) -> PipelineResult:
    """SPMD entry point for ``on_rank_loss="shrink"`` pipelines."""
    if world.size != config.m + config.n:
        raise ValueError(
            f"world has {world.size} ranks; config needs {config.m + config.n}"
        )
    return _ResilientPipeline(world, config).run()


class _ResilientPipeline:
    """Per-rank state machine; communicator state is rebuilt on recovery."""

    def __init__(self, world: Communicator, config: PipelineConfig) -> None:
        self.config = config
        self.world = world
        # Simulation state is checkpointed per frame; every frame must stay
        # restorable, so the default policy retains all of them.
        self.policy = config.checkpoint or CheckpointPolicy(retain=None)
        self.store = shared_store(world.fabric, key=STATE_STORE_KEY)
        # Roles are pinned to the *original* world ranks; shrink preserves
        # ordering, so sims always precede analysis in the current world.
        self.sim_members = list(world.world_ranks[: config.m])
        self.analysis_members = list(world.world_ranks[config.m :])
        self.my_world = world.world_rank_of(world.rank)
        self.is_sim = self.my_world in self.sim_members
        self.recoveries = 0
        self.ranks_lost = 0
        self.ledger: dict = {}  # (frame, var_index) -> entry, analysis root only
        self._rebuild(restart=None, old_sim_members=None, dead=frozenset())

    # -- (re)construction ----------------------------------------------------

    def _rebuild(
        self,
        restart: Optional[int],
        old_sim_members: Optional[list],
        dead: frozenset,
    ) -> None:
        config = self.config
        m, n = len(self.sim_members), len(self.analysis_members)
        self.topology = StreamTopology(m, n, config.lbm.nx, config.lbm.ny)
        self.sub = self.world.Split(0 if self.is_sim else 1, key=self.world.rank)
        assert self.sub is not None
        self.root_world = self.analysis_members[0]
        if self.is_sim:
            self._rebuild_sim(restart, old_sim_members, dead)
        else:
            self._rebuild_analysis()

    def _rebuild_sim(
        self,
        restart: Optional[int],
        old_sim_members: Optional[list],
        dead: frozenset,
    ) -> None:
        self.slab = self.topology.sim_slab(self.sub.rank)
        self.sender = StreamSender(self.world, self.topology, self.sub.rank)
        self.sim = DistributedLbm(self.sub, self.config.lbm)
        if restart is not None:
            assert old_sim_members is not None
            self._migrate_state(restart, old_sim_members, dead)

    def _migrate_state(
        self, restart: int, old_sim_members: list, dead: frozenset
    ) -> None:
        """Restore the global LBM state at frame ``restart`` onto the new
        slab decomposition: own slabs from self-checkpoints, dead (or
        retired) ranks' slabs from their buddies, moved with a
        components=9 redistribution over the surviving simulation comm."""
        config = self.config
        crashed = frozenset(self.world.fabric.dead_ranks())
        survivors = [w for w in old_sim_members if w not in dead]
        own_boxes, buffers = [], []
        for index, owner in enumerate(old_sim_members):
            box = slab_box(config.lbm.nx, config.lbm.ny, len(old_sim_members), index)
            if owner == self.my_world:
                mine = True
            elif owner in dead:
                holders = self.policy.holder_world_ranks(index, old_sim_members)
                live = [w for w in holders if w not in dead]
                adopter = live[0] if live else survivors[0]
                mine = adopter == self.my_world
            else:
                mine = False
            if not mine:
                continue
            got = self.store.fetch(box, restart, crashed)
            if got is None:
                raise DataLossError(
                    f"no live checkpoint holder for simulation slab {box} "
                    f"at frame {restart}",
                    lost_boxes=(box,),
                )
            state, exact = got
            if not exact:
                RESILIENCE_STATS.incr("stale_restores")
            own_boxes.append(box)
            buffers.append(state)
        with TRACER.span("resilience.state_migration", rank=self.my_world):
            mover = Redistributor(
                self.sub, ndims=2, dtype=self.sim.f.dtype, components=9
            )
            mover.setup(own=own_boxes, need=self.slab, validate=False)
            migrated = mover.gather_need(buffers)
        self.sim.f[:, 1:-1, :] = np.moveaxis(migrated, -1, 0)
        self.sim.step_count = restart * config.output_every

    def _rebuild_analysis(self) -> None:
        config = self.config
        nx, ny = config.lbm.nx, config.lbm.ny
        self.receiver = StreamReceiver(self.world, self.topology, self.sub.rank)
        grid = grid_shape(len(self.analysis_members), (nx, ny))
        self.need = grid_boxes((nx, ny), grid)[self.sub.rank]
        self.red = Redistributor(
            self.sub,
            ndims=2,
            dtype=np.float32,
            backend=config.backend,
            reliability=config.reliability,
        )
        self.red.setup(own=self.receiver.owned_chunks, need=self.need)
        self.tile_buffer = np.empty(self.need.np_shape(), dtype=np.float32)
        self.last_slabs = {
            i: [
                np.zeros(slab.np_shape(), dtype=np.float32)
                for _, slab in self.receiver.sources
            ]
            for i in range(len(config.variables))
        }
        self.origin = (self.need.offset[1], self.need.offset[0])

    # -- the frame loop ------------------------------------------------------

    def run(self) -> PipelineResult:
        frame = 0
        while frame < self.config.n_frames:
            try:
                if self.is_sim:
                    self._sim_frame(frame)
                else:
                    self._analysis_frame(frame)
                frame += 1
            except MpiSimError as exc:
                if not self._recoverable(exc):
                    raise
                frame = self._recover(frame)
        # Clean exit: leave the liveness table so late agreements elsewhere
        # don't wait on us; our checkpoints stay readable for adoption.
        self.world.fabric.mark_retired(self.my_world)
        return self._result()

    def _recoverable(self, exc: MpiSimError) -> bool:
        if self.recoveries >= MAX_RECOVERIES:
            return False
        if isinstance(exc, RankCrashError):
            return False  # this rank is the victim
        if isinstance(exc, (DataLossError, ReconfigurationError)):
            return False  # terminal by definition
        if isinstance(exc, (RevokedError, ProcessFailedError)):
            return True
        if isinstance(exc, DeadlineError):
            fabric = self.world.fabric
            return any(fabric.is_dead(w) for w in self.world.world_ranks)
        return False

    def _sim_frame(self, frame: int) -> None:
        config = self.config
        # Deposit *before* stepping (pure memory, cannot fault): the state
        # entering frame f is what a rollback to f must restore.
        holders = self.policy.holder_world_ranks(self.sub.rank, self.sim_members)
        self.store.deposit(
            self.my_world,
            frame,
            holders,
            [(self.slab, np.moveaxis(self.sim.interior, 0, -1))],
            retain=self.policy.retain,
        )
        RESILIENCE_STATS.incr("deposits")
        with TRACER.span("phase.sim_step", frame=frame):
            self.sim.step(config.output_every)
            fields = _sim_fields(self.sim, config.variables)
        for var_index, name in enumerate(config.variables):
            with TRACER.span("phase.stream_send", frame=frame, variable=name):
                self.sender.send_frame(frame, fields[name], var_index)

    def _analysis_frame(self, frame: int) -> None:
        config = self.config
        deadline_s = config.effective_frame_deadline_s
        for var_index, name in enumerate(config.variables):
            status = "ok"
            with TRACER.span("phase.stream_recv", frame=frame, variable=name):
                if config.frame_drop == FRAME_DROP_FAIL:
                    slabs = self.receiver.recv_frame(frame, var_index)
                else:
                    slabs = self.receiver.try_recv_frame(
                        frame, var_index, deadline_s
                    )
                    if slabs is None:
                        status = (
                            "dropped"
                            if config.frame_drop == FRAME_DROP_SKIP
                            else "stale"
                        )
            if status == "ok":
                self.last_slabs[var_index] = slabs
            else:
                slabs = self.last_slabs[var_index]
            with TRACER.span("phase.redistribute", frame=frame, variable=name):
                self.red.exchange(slabs, self.tile_buffer)

            tile_rgb = None
            if status != "dropped":
                with TRACER.span("phase.render", frame=frame, variable=name):
                    tile_rgb = _render_variable(self.tile_buffer, name, config)
            want_raw = (
                var_index == 0 and config.save_raw and self._is_raw_frame(frame)
            )
            raw_tile = (
                self.tile_buffer.copy()
                if want_raw and status != "dropped"
                else None
            )
            gathered = self.sub.gather(
                (self.origin, tile_rgb, raw_tile, status), root=0
            )
            if self.sub.rank != 0:
                continue
            assert gathered is not None
            self._record(frame, var_index, name, gathered, want_raw)

    def _is_raw_frame(self, frame: int) -> bool:
        return (
            self.config.raw_every_frames is None
            or frame % self.config.raw_every_frames == 0
        )

    def _record(
        self, frame: int, var_index: int, name: str, gathered: list, want_raw: bool
    ) -> None:
        """Root-side per-(frame, variable) ledger entry.

        Keyed writes make replay idempotent: a frame re-processed after a
        reconfiguration overwrites its earlier entry instead of counting
        twice.  Totals are assembled once the loop finishes.
        """
        config = self.config
        nx, ny = config.lbm.nx, config.lbm.ny
        statuses = [s for _, _, _, s in gathered]
        if "dropped" in statuses:
            self.ledger[(frame, var_index)] = {"status": "dropped"}
            return
        entry: dict = {"status": "stale" if "stale" in statuses else "ok"}
        with TRACER.span("phase.encode", frame=frame, variable=name):
            frame_rgb = assemble_tiles(
                [(o, rgb) for o, rgb, _, _ in gathered], (ny, nx)
            )
            blob = encode_rgb(frame_rgb, quality=config.quality)
        entry["jpeg"] = len(blob)
        if var_index == 0 and config.keep_frames:
            entry["rgb"] = frame_rgb
        if config.save_dir is not None:
            directory = Path(config.save_dir)
            directory.mkdir(parents=True, exist_ok=True)
            suffix = "" if len(config.variables) == 1 else f"_{name}"
            (directory / f"frame_{frame:05d}{suffix}.jpg").write_bytes(blob)
            if want_raw and all(tf is not None for _, _, tf, _ in gathered):
                raw = np.zeros((ny, nx), dtype=np.float32)
                for (r0, c0), _, tile_field, _ in gathered:
                    th, tw = tile_field.shape
                    raw[r0 : r0 + th, c0 : c0 + tw] = tile_field
                write_raw(directory / f"frame_{frame:05d}.raw", raw)
        self.ledger[(frame, var_index)] = entry

    # -- recovery ------------------------------------------------------------

    def _recover(self, frame: int) -> int:
        """Revoke, agree, shrink, reconfigure; returns the rollback frame."""
        self.recoveries += 1
        RESILIENCE_STATS.incr("pipeline_recoveries")
        fabric = self.world.fabric
        with TRACER.span("resilience.pipeline_recover", rank=self.my_world):
            self.world.revoke()
            observed = frozenset(
                w for w in self.world.world_ranks if fabric.is_gone(w)
            )
            dead = frozenset(
                self.world.agree(observed, combine=lambda a, b: a | b)
            )
            # The ledger lives on the analysis root; if it died, nothing
            # before the crash is accounted for, so everything replays.
            contribution = 0 if self.root_world in dead else frame
            restart = int(self.world.agree(contribution, combine=min))
            old_sim_members = list(self.sim_members)
            self.sim_members = [w for w in self.sim_members if w not in dead]
            self.analysis_members = [
                w for w in self.analysis_members if w not in dead
            ]
            self.ranks_lost += len(dead)
            RESILIENCE_STATS.incr("ranks_lost", len(dead))
            if (
                not self.analysis_members
                or len(self.sim_members) < len(self.analysis_members)
            ):
                raise ReconfigurationError(
                    "cannot reconfigure the pipeline over the survivors: "
                    f"{len(self.sim_members)} simulation and "
                    f"{len(self.analysis_members)} analysis ranks remain"
                )
            self.world = self.world.shrink(dead=dead)
            self._rebuild(restart=restart, old_sim_members=old_sim_members, dead=dead)
        return restart

    # -- result assembly -----------------------------------------------------

    def _result(self) -> PipelineResult:
        config = self.config
        if self.is_sim:
            return PipelineResult(
                role="sim",
                frames=config.n_frames,
                recoveries=self.recoveries,
                ranks_lost=self.ranks_lost,
            )
        is_root = self.sub.rank == 0
        result = PipelineResult(
            role="analysis_root" if is_root else "analysis",
            recoveries=self.recoveries,
            ranks_lost=self.ranks_lost,
        )
        if not is_root:
            return result
        nx, ny = config.lbm.nx, config.lbm.ny
        for frame in range(config.n_frames):
            result.frames += 1
            result.raw_bytes += raw_frame_bytes(nx, ny) * len(config.variables)
            if config.raw_every_frames is not None and self._is_raw_frame(frame):
                result.dual_raw_bytes += raw_frame_bytes(nx, ny)
            for var_index, name in enumerate(config.variables):
                entry = self.ledger.get((frame, var_index))
                if entry is None:
                    continue
                if entry["status"] == "dropped":
                    result.frames_dropped += 1
                    continue
                if entry["status"] == "stale":
                    result.frames_stale += 1
                result.jpeg_bytes += entry["jpeg"]
                result.jpeg_bytes_by_variable[name] = (
                    result.jpeg_bytes_by_variable.get(name, 0) + entry["jpeg"]
                )
                if var_index == 0 and config.keep_frames:
                    result.frames_rendered.append(entry["rgb"])
        return result
