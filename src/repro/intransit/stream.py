"""M-to-N in-transit streaming (paper §IV-B, Figure 4).

"Data is sent from M simulation ranks to N analysis ranks."  The stand-in
for the paper's GLEAN-style transport: both applications live on one world
communicator (sim ranks first, analysis ranks after), and each simulation
rank streams its slab to a designated analysis rank.  Like the paper's
10-to-4 illustration, sim ranks are block-distributed over analysis ranks,
so uniform mapping is *not* required ("in-transit streaming can be achieved
without uniform mapping").
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.box import Box
from ..lbm.decompose import slab_box
from ..mpisim.comm import Communicator
from ..mpisim.errors import ProcessFailedError, RevokedError
from ..volren.decompose import split_extent

#: Tag base for frame payloads.  The tag encodes (frame, variable):
#: ``FRAME_TAG_BASE + frame * MAX_VARIABLES + var_index``.
FRAME_TAG_BASE = 1000
MAX_VARIABLES = 8


def frame_tag(frame_index: int, var_index: int = 0) -> int:
    if not (0 <= var_index < MAX_VARIABLES):
        raise ValueError(f"var_index must be in [0, {MAX_VARIABLES}), got {var_index}")
    return FRAME_TAG_BASE + frame_index * MAX_VARIABLES + var_index


def sim_to_analysis_map(m: int, n: int) -> list[list[int]]:
    """``map[a]`` = the simulation ranks streaming to analysis rank ``a``.

    Contiguous blocks, sized within one of each other — Figure 4's
    3/3/2/2 split for M=10, N=4.
    """
    if m < 1 or n < 1:
        raise ValueError(f"need m, n >= 1, got {m}, {n}")
    if n > m:
        raise ValueError(f"more analysis ranks ({n}) than simulation ranks ({m})")
    return [
        list(range(offset, offset + size)) for offset, size in split_extent(m, n)
    ]


def analysis_rank_for(sim_rank: int, m: int, n: int) -> int:
    """Which analysis rank receives ``sim_rank``'s slab."""
    for a, members in enumerate(sim_to_analysis_map(m, n)):
        if sim_rank in members:
            return a
    raise ValueError(f"sim rank {sim_rank} out of range for m = {m}")


@dataclass(frozen=True)
class StreamTopology:
    """World-communicator layout: sim ranks [0, m), analysis [m, m+n)."""

    m: int
    n: int
    nx: int
    ny: int

    def __post_init__(self) -> None:
        sim_to_analysis_map(self.m, self.n)  # validates m, n

    def world_size(self) -> int:
        return self.m + self.n

    def is_sim(self, world_rank: int) -> bool:
        return world_rank < self.m

    def analysis_index(self, world_rank: int) -> int:
        if world_rank < self.m:
            raise ValueError(f"rank {world_rank} is a simulation rank")
        return world_rank - self.m

    def sim_slab(self, sim_rank: int) -> Box:
        """The 2-D region sim rank owns, in paper order (x, y)."""
        return slab_box(self.nx, self.ny, self.m, sim_rank)

    def incoming_slabs(self, analysis_rank: int) -> list[tuple[int, Box]]:
        """(sim_rank, slab) pairs this analysis rank will receive."""
        members = sim_to_analysis_map(self.m, self.n)[analysis_rank]
        return [(s, self.sim_slab(s)) for s in members]


class StreamSender:
    """Simulation-side endpoint: pushes one slab per frame."""

    def __init__(self, world: Communicator, topology: StreamTopology, sim_rank: int) -> None:
        self.world = world
        self.topology = topology
        self.sim_rank = sim_rank
        self.dest_world = topology.m + analysis_rank_for(sim_rank, topology.m, topology.n)
        self.slab = topology.sim_slab(sim_rank)

    def send_frame(self, frame_index: int, field: np.ndarray, var_index: int = 0) -> None:
        """Stream one slab of a scalar field (rows x nx, float32)."""
        expected = self.slab.np_shape()
        if field.shape != expected:
            raise ValueError(f"slab field shape {field.shape} != expected {expected}")
        payload = np.ascontiguousarray(field, dtype=np.float32)
        self.world.Send(payload, self.dest_world, tag=frame_tag(frame_index, var_index))


class StreamReceiver:
    """Analysis-side endpoint: collects the slabs of one frame.

    Receive slabs are double-buffered per receiver: the steady-state hot
    path allocates nothing (the BufferCache/StagingPool discipline of the
    DDR core), and the slabs most recently *returned* to the caller — who
    may hold references, e.g. the pipeline's ``frame_drop="stale"`` policy
    — are never written by the next receive.  A returned slab set stays
    valid until the second-next successful receive of the same variable.
    """

    def __init__(self, world: Communicator, topology: StreamTopology, analysis_rank: int) -> None:
        self.world = world
        self.topology = topology
        self.analysis_rank = analysis_rank
        self.sources = topology.incoming_slabs(analysis_rank)
        #: var_index -> [front slab set, back slab set]; receives land in
        #: the back set and the sets flip only on full success.
        self._slab_sets: dict[int, list[list[np.ndarray]]] = {}
        self._front: dict[int, int] = {}
        #: (source_rank, tag) pairs whose receive was abandoned on a
        #: deadline; their straggler slabs are purged from the mailbox by
        #: later calls (and by the pipeline's end-of-run sweep).
        self._abandoned: dict[tuple[int, int], None] = {}
        #: stragglers drained so far (observability + leak assertions)
        self.purged_slabs = 0

    @property
    def owned_chunks(self) -> list[Box]:
        """The slabs this rank will own before redistribution (DDR input)."""
        return [slab for _, slab in self.sources]

    def _back_slabs(self, var_index: int) -> list[np.ndarray]:
        sets = self._slab_sets.get(var_index)
        if sets is None:
            sets = self._slab_sets[var_index] = [
                [np.empty(slab.np_shape(), dtype=np.float32) for _, slab in self.sources]
                for _ in range(2)
            ]
            self._front[var_index] = 0
        return sets[1 - self._front[var_index]]

    def _flip(self, var_index: int) -> None:
        self._front[var_index] = 1 - self._front[var_index]

    def purge_abandoned(self) -> int:
        """Drain straggler slabs of previously abandoned frames.

        Each abandoned receive is remembered by its unique (source, tag);
        once the straggler shows up in the mailbox it is discarded — and
        its transport resources released — keeping a long degraded run's
        mailbox bounded.  Entries whose slab has not arrived yet (or whose
        producer died) are retried on the next call.  Returns the number
        of slabs drained this call.
        """
        drained = 0
        for source, tag in list(self._abandoned):
            purged = self.world.purge(source=source, tag=tag)
            if purged:
                del self._abandoned[(source, tag)]
                drained += purged
        self.purged_slabs += drained
        return drained

    def abandoned_count(self) -> int:
        """Abandoned receives whose stragglers have not been drained yet."""
        return len(self._abandoned)

    def recv_frame(self, frame_index: int, var_index: int = 0) -> list[np.ndarray]:
        """Receive every incoming slab of one frame, in chunk order."""
        self.purge_abandoned()
        out = self._back_slabs(var_index)
        for buffer, (sim_rank, _) in zip(out, self.sources):
            self.world.Recv(
                buffer, source=sim_rank, tag=frame_tag(frame_index, var_index)
            )
        self._flip(var_index)
        return out

    def try_recv_frame(
        self,
        frame_index: int,
        var_index: int = 0,
        deadline_s: float = 5.0,
    ) -> Optional[list[np.ndarray]]:
        """Like :meth:`recv_frame`, bounded by ``deadline_s``.

        Returns the slabs in chunk order, or ``None`` if any slab is still
        missing when the deadline expires — the degraded-mode entry point
        behind the pipeline's frame-drop policy.  Abandoning the wait is
        safe because tags are unique per (frame, variable): a slab that
        straggles in later sits in the mailbox under its own tag and can
        never cross-match another frame's receive.  Senders are eager
        (buffered at post time), so nobody blocks on the abandoned frame —
        and the straggler itself is recorded and drained by
        :meth:`purge_abandoned` on a later call, so abandoned slabs cannot
        accumulate in the mailbox over a long degraded run.

        A *crashed* producer is not a straggler: if a pending source rank
        is known dead, this raises :class:`ProcessFailedError` (and
        :class:`RevokedError` on a revoked world) instead of waiting out
        the deadline, so rank loss reaches the recovery machinery rather
        than masquerading as an ordinary slow frame.
        """
        self.purge_abandoned()
        out = self._back_slabs(var_index)
        tag = frame_tag(frame_index, var_index)
        requests = [
            self.world.Irecv(buffer, source=sim_rank, tag=tag)
            for buffer, (sim_rank, _) in zip(out, self.sources)
        ]
        deadline = time.monotonic() + deadline_s
        pending = list(zip(requests, (rank for rank, _ in self.sources)))
        while pending:
            fabric = self.world.fabric
            fabric.check_abort()
            if fabric.hazard:
                if self.world.revoked:
                    raise RevokedError(
                        "stream world communicator was revoked while waiting "
                        f"for frame {frame_index}"
                    )
                for _, sim_rank in pending:
                    source_world = self.world.world_rank_of(sim_rank)
                    if fabric.is_dead(source_world):
                        raise ProcessFailedError(
                            f"producer rank {sim_rank} (world {source_world}) "
                            f"crashed; frame {frame_index} will never arrive"
                        )
            pending = [
                (request, rank) for request, rank in pending if not request.test()
            ]
            if not pending:
                break
            if time.monotonic() >= deadline:
                # Deliver what already arrived (releasing any transport
                # resources its messages hold) and remember the rest so
                # their stragglers get purged when they land.
                for request, rank in zip(requests, (r for r, _ in self.sources)):
                    if (request, rank) not in pending and request.test():
                        request.wait()
                for _, rank in pending:
                    self._abandoned[(rank, tag)] = None
                # Drain immediately: a straggler that landed between the
                # last test and the deadline is already holding staged
                # bytes (and a budget charge); releasing it now — instead
                # of on the *next* receive — keeps degraded-mode resident
                # staging bounded by the truly in-flight slabs.
                self.purge_abandoned()
                return None
            time.sleep(0.001)
        for request in requests:
            request.wait()
        self._flip(var_index)
        return out
