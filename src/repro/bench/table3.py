"""Harness for Table III — communication scheduling of MPI_Alltoallw.

This table is pure planner geometry (no timing model): the number of rounds
and the mean per-process payload per round, at the paper's full 128 GB
scale.  Agreement is to the printed decimals.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..io.assignment import Assignment, PAPER_STACK, StackGeometry
from ..netmodel.predict import ddr_plan
from ..utils.units import MiB
from .paperdata import TABLE3_SCHEDULE
from .report import format_table, pct, relative_error


@dataclass(frozen=True)
class Table3Row:
    nprocs: int
    strategy: str
    rounds: int
    mb_per_round: float
    paper_rounds: int
    paper_mb: float

    @property
    def mb_error(self) -> float:
        return relative_error(self.mb_per_round, self.paper_mb)


def table3_rows(stack: StackGeometry = PAPER_STACK) -> list[Table3Row]:
    rows = []
    for nprocs, per_strategy in TABLE3_SCHEDULE.items():
        for name, (paper_rounds, paper_mb) in per_strategy.items():
            strategy = Assignment(name)
            plan = ddr_plan(nprocs, strategy, stack)
            rows.append(
                Table3Row(
                    nprocs=nprocs,
                    strategy=name,
                    rounds=plan.nrounds,
                    mb_per_round=plan.mean_bytes_per_chunk_round() / MiB,
                    paper_rounds=paper_rounds,
                    paper_mb=paper_mb,
                )
            )
    return rows


def report(stack: StackGeometry = PAPER_STACK) -> str:
    rows = table3_rows(stack)
    table = [
        [
            r.nprocs,
            r.strategy,
            r.rounds,
            r.paper_rounds,
            r.mb_per_round,
            r.paper_mb,
            pct(r.mb_error),
        ]
        for r in rows
    ]
    return format_table(
        ["procs", "strategy", "rounds", "paper", "MB/round", "paper MB", "err"],
        table,
        title="Table III (reproduced): Alltoallw scheduling at full 128 GiB scale",
    )
