"""Plain-text table rendering for the benchmark harnesses.

Each harness prints rows in the same arrangement as the paper's tables so
paper-vs-measured comparison is a side-by-side read.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Monospace table with right-aligned numeric columns."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[c]), *(len(row[c]) for row in cells)) if cells else len(headers[c])
        for c in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def relative_error(measured: float, reference: float) -> float:
    """Signed relative error of measured vs the paper's value."""
    if reference == 0:
        return 0.0 if measured == 0 else float("inf")
    return (measured - reference) / reference


def pct(value: float) -> str:
    return f"{100.0 * value:+.1f}%"
