"""Harness for Algorithm 1 / Table I / Figure 1 — the paper's E1 example."""

from __future__ import annotations

import numpy as np

from ..core.api import DDR_NewDataDescriptor, DDR_ReorganizeData, DDR_SetupDataMapping
from ..core.box import Box
from ..core.descriptor import DATA_TYPE_2D
from ..core.plan import compute_global_plan
from ..mpisim.datatypes import FLOAT
from ..mpisim.executor import run_spmd
from .paperdata import TABLE1_E1
from .report import format_table


def e1_parameters(rank: int) -> dict:
    """The Table I row for one rank, computed the way Algorithm 1 does."""
    right, bottom = rank % 2, rank // 2
    return {
        "P1": rank,
        "P2": 4,
        "P3": 2,
        "P4": [[8, 1], [8, 1]],
        "P5": [[0, rank], [0, rank + 4]],
        "P6": [4, 4],
        "P7": [4 * right, 4 * bottom],
    }


def e1_matches_table1() -> bool:
    """Do the Algorithm-1-derived parameters equal the paper's Table I?"""
    return all(e1_parameters(rank) == TABLE1_E1[rank] for rank in range(4))


def run_e1() -> list[np.ndarray]:
    """Execute E1 end-to-end on 4 ranks; returns each rank's quadrant."""

    def fn(comm):
        rank = comm.rank
        params = e1_parameters(rank)
        desc = DDR_NewDataDescriptor(params["P2"], DATA_TYPE_2D, FLOAT, 4)
        DDR_SetupDataMapping(
            comm,
            params["P1"],
            params["P2"],
            params["P3"],
            params["P4"],
            params["P5"],
            params["P6"],
            params["P7"],
            desc,
        )
        g = np.arange(64, dtype=np.float32).reshape(8, 8)
        data_own = [g[rank].copy(), g[rank + 4].copy()]
        data_need = np.zeros((4, 4), dtype=np.float32)
        DDR_ReorganizeData(comm, 4, data_own, data_need, desc)
        return data_need

    return run_spmd(4, fn)


def rank0_mapping() -> dict:
    """Figure 1 panel B: rank 0's send and receive map."""
    owns = [[Box((0, r), (8, 1)), Box((0, r + 4), (8, 1))] for r in range(4)]
    needs = [Box((4 * (r % 2), 4 * (r // 2)), (4, 4)) for r in range(4)]
    plan = compute_global_plan(owns, needs, 4).rank_plans[0]
    return {
        "sends": {(s.round, s.dest): s.overlap for s in plan.sends},
        "recvs": {(r.round, r.source): r.overlap for r in plan.recvs},
    }


def report() -> str:
    """Print Table I plus the executed E1 verification."""
    headers = ["", "P1", "P2", "P3", "P4", "P5", "P6", "P7"]
    rows = []
    for rank in range(4):
        p = e1_parameters(rank)
        rows.append(
            [f"Rank {rank}", p["P1"], p["P2"], p["P3"], p["P4"], p["P5"], p["P6"], p["P7"]]
        )
    lines = [format_table(headers, rows, title="Table I (reproduced): E1 parameters")]
    lines.append(f"matches paper Table I: {e1_matches_table1()}")

    quadrants = run_e1()
    g = np.arange(64, dtype=np.float32).reshape(8, 8)
    ok = all(
        np.array_equal(
            quadrants[r], g[4 * (r // 2) : 4 * (r // 2) + 4, 4 * (r % 2) : 4 * (r % 2) + 4]
        )
        for r in range(4)
    )
    lines.append(f"E1 executed on 4 ranks; quadrants correct: {ok}")
    return "\n".join(lines)
