"""Benchmark harnesses: one module per paper table/figure.

Each module exposes a data API (``*_rows`` / ``measure_*``) used by the
pytest-benchmark files and tests, plus a ``report()`` that prints the
reproduced table side-by-side with the paper's numbers.
"""

from . import e1, fig3, fig45, paperdata, table2, table3, table4
from .report import format_table, pct, relative_error

__all__ = [
    "e1",
    "fig3",
    "fig45",
    "format_table",
    "paperdata",
    "pct",
    "relative_error",
    "table2",
    "table3",
    "table4",
]
