"""Harness for Figure 3 — strong scaling of parallel TIFF loading.

The paper plots Table II's three curves against a log3 process axis and
reads off two facts: both DDR variants scale strongly while no-DDR barely
improves, and the RR/consecutive ranking flips between 27 and 216.  This
harness regenerates the series, the derived scaling efficiencies, and an
ASCII rendition of the plot.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..netmodel.predict import figure3_series
from .paperdata import TABLE2_SECONDS
from .report import format_table


@dataclass(frozen=True)
class ScalingSummary:
    mode: str
    times: list[float]
    speedup_27_to_216: float
    parallel_efficiency: float  # vs ideal 8x over the 27 -> 216 range


def scaling_summaries(series: dict[str, list[float]] | None = None) -> list[ScalingSummary]:
    if series is None:
        series = figure3_series()
    procs = series["nprocs"]
    ideal = procs[-1] / procs[0]
    out = []
    for mode in ("no_ddr", "ddr_round_robin", "ddr_consecutive"):
        times = series[mode]
        speedup = times[0] / times[-1]
        out.append(
            ScalingSummary(
                mode=mode,
                times=list(times),
                speedup_27_to_216=speedup,
                parallel_efficiency=speedup / ideal,
            )
        )
    return out


def crossover_processes(series: dict[str, list[float]] | None = None) -> int | None:
    """First process count where consecutive beats round-robin (paper: 125)."""
    if series is None:
        series = figure3_series()
    for nprocs, rr, consec in zip(
        series["nprocs"], series["ddr_round_robin"], series["ddr_consecutive"]
    ):
        if consec < rr:
            return nprocs
    return None


def ascii_plot(series: dict[str, list[float]] | None = None, width: int = 60) -> str:
    """Log-time strong-scaling plot, one row per (mode, process count)."""
    if series is None:
        series = figure3_series()
    lines = ["Figure 3 (reproduced): load time, log scale  [#] model  [p] paper"]
    tmax = max(max(series[m]) for m in ("no_ddr", "ddr_round_robin", "ddr_consecutive"))
    tmin = min(min(series[m]) for m in ("no_ddr", "ddr_round_robin", "ddr_consecutive"))
    span = math.log(tmax / tmin)

    def column(t: float) -> int:
        if not span:
            return 0
        raw = round((math.log(t / tmin) / span) * (width - 1))
        return min(max(raw, 0), width - 1)  # paper points may sit off-range

    for mode, label in (
        ("no_ddr", "noDDR "),
        ("ddr_round_robin", "DDR-RR"),
        ("ddr_consecutive", "DDR-C "),
    ):
        for index, nprocs in enumerate(series["nprocs"]):
            row = [" "] * width
            row[column(series[mode][index])] = "#"
            paper_value = TABLE2_SECONDS.get(nprocs)
            if paper_value is not None:
                paper_t = paper_value[("no_ddr", "ddr_round_robin", "ddr_consecutive").index(mode)]
                col = column(paper_t)
                row[col] = "p" if row[col] == " " else "*"
            lines.append(f"{label} P={nprocs:<4d} |{''.join(row)}|")
    return "\n".join(lines)


def report() -> str:
    series = figure3_series()
    summaries = scaling_summaries(series)
    table = [
        [s.mode, *[f"{t:.1f}" for t in s.times], f"{s.speedup_27_to_216:.2f}x",
         f"{100 * s.parallel_efficiency:.0f}%"]
        for s in summaries
    ]
    out = [
        format_table(
            ["mode", "27", "64", "125", "216", "speedup", "efficiency"],
            table,
            title="Figure 3 (reproduced): strong scaling, seconds",
        ),
        f"RR->consecutive crossover at P = {crossover_processes(series)} (paper: 125)",
        "",
        ascii_plot(series),
    ]
    return "\n".join(out)
