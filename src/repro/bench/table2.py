"""Harness for Table II — TIFF load time (no DDR vs DDR-RR vs DDR-consec).

Two modes:

* **model scale** — the paper's exact workload (4096 x 32 MiB images, 27 to
  216 processes) through the calibrated Cooley model; compared row-by-row
  against the paper's measured seconds.
* **native scale** — a real, reduced-size TIFF stack loaded through the
  actual code path (thread ranks, real decode, real ``Alltoallw``) with
  wall-clock timing; validates the *ordering* of the three strategies where
  modeling assumptions don't apply.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..imaging.stack import write_stack
from ..imaging.synthetic import VolumeSpec, tooth_slice
from ..io.assignment import Assignment
from ..io.stackload import load_stack_ddr, load_stack_no_ddr
from ..mpisim.executor import run_spmd
from ..netmodel.predict import predict_table2
from .paperdata import TABLE2_SECONDS
from .report import format_table, pct, relative_error


@dataclass(frozen=True)
class Table2Row:
    nprocs: int
    no_ddr_s: float
    rr_s: float
    consec_s: float
    paper: tuple[float, float, float]


def table2_model_rows(network: str = "analytic") -> list[Table2Row]:
    """Full-scale modeled Table II."""
    rows = []
    for row in predict_table2(network=network):
        nprocs = row["nprocs"]
        rows.append(
            Table2Row(
                nprocs=nprocs,
                no_ddr_s=row["no_ddr_s"],
                rr_s=row["ddr_round_robin_s"],
                consec_s=row["ddr_consecutive_s"],
                paper=TABLE2_SECONDS[nprocs],
            )
        )
    return rows


def report_model(network: str = "analytic") -> str:
    rows = table2_model_rows(network)
    table = []
    for r in rows:
        table.append(
            [
                r.nprocs,
                r.no_ddr_s,
                r.paper[0],
                r.rr_s,
                r.paper[1],
                r.consec_s,
                r.paper[2],
                pct(relative_error(r.no_ddr_s / r.consec_s, r.paper[0] / r.paper[2])),
            ]
        )
    header = [
        "procs",
        "noDDR",
        "paper",
        "DDR-RR",
        "paper",
        "DDR-consec",
        "paper",
        "speedup err",
    ]
    footer = (
        f"\nmax modeled speedup: {max(r.no_ddr_s / r.consec_s for r in rows):.1f}x "
        f"(paper: 24.9x at 216 procs)"
    )
    return (
        format_table(header, table, title=f"Table II (reproduced, {network} model), seconds")
        + footer
    )


# ---------------------------------------------------------------------------
# Native scale: actually execute the loaders.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NativeTable2Row:
    nprocs: int
    no_ddr_s: float
    rr_s: float
    consec_s: float
    no_ddr_decodes: int
    rr_decodes: int
    consec_decodes: int
    verified_equal: bool


def prepare_native_stack(
    directory: Path, width: int = 96, height: int = 64, depth: int = 32
) -> Path:
    """Write the reduced-scale synthetic stack once; reused across runs."""
    target = Path(directory) / f"stack_{width}x{height}x{depth}"
    marker = target / f"slice_{depth - 1:05d}.tif"
    if not marker.exists():
        spec = VolumeSpec(width, height, depth, np.uint16)
        write_stack(target, depth, lambda z: tooth_slice(spec, z))
    return target


class _CountingStack:
    """TiffStack proxy that counts whole-image decodes (thread-safe via GIL
    list appends) — the structural quantity Table II's speedup comes from."""

    def __init__(self, stack) -> None:
        self._stack = stack
        self.decoded: list[int] = []

    def __getattr__(self, name):
        return getattr(self._stack, name)

    def read_slice(self, z: int) -> np.ndarray:
        self.decoded.append(z)
        return self._stack.read_slice(z)


def table2_native(stack_dir: Path, nprocs: int = 8, grid=(2, 2, 2)) -> NativeTable2Row:
    """Run all three strategies for real: wall-clock + decode counts."""
    from ..imaging.stack import TiffStack

    def run(mode: str):
        stack = _CountingStack(TiffStack(stack_dir))

        def fn(comm):
            if mode == "no_ddr":
                return load_stack_no_ddr(comm, stack, grid)
            strategy = (
                Assignment.ROUND_ROBIN if mode == "rr" else Assignment.CONSECUTIVE
            )
            return load_stack_ddr(comm, stack, grid, strategy)

        start = time.perf_counter()
        blocks = run_spmd(nprocs, fn)
        elapsed = time.perf_counter() - start
        return elapsed, len(stack.decoded), blocks

    no_ddr_s, no_ddr_decodes, base_blocks = run("no_ddr")
    rr_s, rr_decodes, rr_blocks = run("rr")
    consec_s, consec_decodes, consec_blocks = run("consec")
    equal = all(
        np.array_equal(a.data, b.data) and np.array_equal(a.data, c.data)
        for a, b, c in zip(base_blocks, rr_blocks, consec_blocks)
    )
    return NativeTable2Row(
        nprocs,
        no_ddr_s,
        rr_s,
        consec_s,
        no_ddr_decodes,
        rr_decodes,
        consec_decodes,
        equal,
    )


def report_native(stack_dir: Path, nprocs: int = 8, grid=(2, 2, 2)) -> str:
    row = table2_native(stack_dir, nprocs, grid)
    table = [
        [
            row.nprocs,
            row.no_ddr_s,
            row.rr_s,
            row.consec_s,
            f"{row.no_ddr_decodes}/{row.rr_decodes}/{row.consec_decodes}",
            row.verified_equal,
        ]
    ]
    return format_table(
        ["procs", "noDDR s", "DDR-RR s", "DDR-consec s", "decodes", "blocks equal"],
        table,
        title="Table II (native scale, really executed)",
    )
