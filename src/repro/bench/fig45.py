"""Harness for Figures 4 and 5 — M-to-N streaming and slice->rectangle
redistribution inside the analysis application."""

from __future__ import annotations

from dataclasses import dataclass

from ..core.box import Box
from ..intransit.pipeline import PipelineConfig, run_pipeline
from ..intransit.stream import StreamTopology, sim_to_analysis_map
from ..lbm.simulation import LbmConfig
from ..mpisim.executor import run_spmd
from ..volren.decompose import grid_boxes, grid_shape
from .paperdata import FIGURE4_EXAMPLE
from .report import format_table


def figure4_mapping(m: int = 10, n: int = 4) -> list[list[int]]:
    """The streaming fan-in of Figure 4."""
    return sim_to_analysis_map(m, n)


def figure4_matches_paper() -> bool:
    mapping = figure4_mapping(FIGURE4_EXAMPLE["m"], FIGURE4_EXAMPLE["n"])
    return [len(g) for g in mapping] == FIGURE4_EXAMPLE["per_analysis"]


@dataclass(frozen=True)
class Figure5Layout:
    """Before/after layout of one analysis rank (slices -> rectangle)."""

    analysis_rank: int
    incoming_slices: list[Box]
    rectangle: Box


def figure5_layouts(m: int, n: int, nx: int, ny: int) -> list[Figure5Layout]:
    """The redistribution Figure 5 illustrates: full-width slices in,
    near-square rectangles out."""
    topology = StreamTopology(m=m, n=n, nx=nx, ny=ny)
    grid = grid_shape(n, (nx, ny))
    rectangles = grid_boxes((nx, ny), grid)
    return [
        Figure5Layout(
            analysis_rank=a,
            incoming_slices=[slab for _, slab in topology.incoming_slabs(a)],
            rectangle=rectangles[a],
        )
        for a in range(n)
    ]


def run_native(m: int = 12, n: int = 4, nx: int = 96, ny: int = 48, frames: int = 2):
    """Execute the M-to-N pipeline for real at reduced scale."""
    config = PipelineConfig(
        lbm=LbmConfig(nx=nx, ny=ny),
        m=m,
        n=n,
        steps=frames * 25,
        output_every=25,
        keep_frames=True,
    )

    def fn(comm):
        return run_pipeline(comm, config)

    results = run_spmd(m + n, fn)
    return next(r for r in results if r.role == "analysis_root")


def report() -> str:
    lines = []
    mapping = figure4_mapping()
    rows = [
        [f"analysis {a}", len(group), str(group)] for a, group in enumerate(mapping)
    ]
    lines.append(
        format_table(
            ["rank", "#senders", "sim ranks"],
            rows,
            title="Figure 4 (reproduced): 10 sim ranks -> 4 analysis ranks",
        )
    )
    lines.append(f"matches paper (3/3/2/2 fan-in): {figure4_matches_paper()}")
    lines.append("")

    layouts = figure5_layouts(m=10, n=4, nx=80, ny=40)
    rows = [
        [
            layout.analysis_rank,
            len(layout.incoming_slices),
            f"{layout.incoming_slices[0].dims} x{len(layout.incoming_slices)}",
            f"{layout.rectangle.dims} @ {layout.rectangle.offset}",
        ]
        for layout in layouts
    ]
    lines.append(
        format_table(
            ["rank", "slices", "in (dims)", "out rectangle"],
            rows,
            title="Figure 5 (reproduced): slices -> near-square rectangles (80x40 domain)",
        )
    )

    root = run_native()
    lines.append("")
    lines.append(
        f"native 12->4 run executed: {root.frames} frames rendered, "
        f"{root.jpeg_bytes} JPEG bytes vs {root.raw_bytes} raw "
        f"({100 * root.data_reduction:.1f}% reduction)"
    )
    return "\n".join(lines)
