"""Harness for Table IV — raw vs in-transit (JPEG) output size.

The paper saved 200 vorticity frames from 20 000 LBM iterations at four
grid sizes (3238x1295 up to 25904x10360) and compared raw float dumps with
the analysis application's JPEG output.

The raw column is exact arithmetic.  The processed column is *measured*:
we run the real pipeline (LBM -> in-transit stream -> DDR -> colormap ->
our JPEG encoder) at a reduced grid with the same 2.5:1 aspect ratio, fit
bits-per-pixel from the rendered frames, and scale to the paper's grids.
A JPEG's bits-per-pixel is approximately resolution-independent for
self-similar content, which is why the paper's reduction percentage is
nearly flat across its 64x size range (99.38 % to 99.59 %).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..intransit.pipeline import PipelineConfig, PipelineResult, run_pipeline
from ..lbm.simulation import LbmConfig
from ..mpisim.executor import run_spmd
from .paperdata import LBM_RUN, TABLE4_OUTPUT
from .report import format_table

#: Default reduced-scale run: 1/10 the paper's smallest grid per axis,
#: same barrier geometry, long enough for the wake to develop.
DEFAULT_MEASURE = dict(nx=324, ny=130, m=8, n=4, steps=3000, output_every=150)


@dataclass(frozen=True)
class MeasuredCompression:
    """Bits-per-pixel measured from really-rendered pipeline frames."""

    nx: int
    ny: int
    frames: int
    jpeg_bytes: int
    raw_bytes: int

    @property
    def bits_per_pixel(self) -> float:
        return 8.0 * self.jpeg_bytes / (self.frames * self.nx * self.ny)

    @property
    def data_reduction(self) -> float:
        return 1.0 - self.jpeg_bytes / self.raw_bytes


def measure_compression(
    nx: int = DEFAULT_MEASURE["nx"],
    ny: int = DEFAULT_MEASURE["ny"],
    m: int = DEFAULT_MEASURE["m"],
    n: int = DEFAULT_MEASURE["n"],
    steps: int = DEFAULT_MEASURE["steps"],
    output_every: int = DEFAULT_MEASURE["output_every"],
    quality: int = 75,
) -> MeasuredCompression:
    """Run the full in-transit pipeline and measure its output sizes."""
    config = PipelineConfig(
        lbm=LbmConfig(nx=nx, ny=ny),
        m=m,
        n=n,
        steps=steps,
        output_every=output_every,
        quality=quality,
    )

    def fn(comm):
        return run_pipeline(comm, config)

    results: list[PipelineResult] = run_spmd(m + n, fn)
    root = next(r for r in results if r.role == "analysis_root")
    return MeasuredCompression(
        nx=nx,
        ny=ny,
        frames=root.frames,
        jpeg_bytes=root.jpeg_bytes,
        raw_bytes=root.raw_bytes,
    )


@dataclass(frozen=True)
class ScalingFit:
    """Two-point JPEG size model: ``bytes/frame = header + c * pixels^alpha``.

    Vorticity frames are edge-dominated (thin shear layers on a flat
    background), so content bytes grow sublinearly in pixel count; fitting
    ``alpha`` from two really-measured scales extrapolates to the paper's
    grids far better than constant bits-per-pixel.  ``alpha`` is clamped to
    [0.5, 1.0]: 0.5 is the pure-edge limit, 1.0 the constant-bpp limit.
    """

    header_bytes: float
    coefficient: float
    alpha: float

    def frame_bytes(self, pixels: int) -> float:
        return self.header_bytes + self.coefficient * pixels**self.alpha


def jpeg_header_bytes() -> int:
    """Fixed per-file overhead of our color encoder (markers + tables)."""
    import numpy as np

    from ..jpeg.encoder import encode_rgb

    tiny = encode_rgb(np.zeros((8, 8, 3), dtype=np.uint8))
    # An 8x8 black image has a near-empty scan (a few bytes).
    return len(tiny) - 8


def fit_scaling(small: MeasuredCompression, large: MeasuredCompression) -> ScalingFit:
    """Fit the two-point size model from two pipeline runs."""
    header = float(jpeg_header_bytes())
    p1, p2 = small.nx * small.ny, large.nx * large.ny
    if p1 == p2:
        raise ValueError("need two distinct measurement scales")
    c1 = max(small.jpeg_bytes / small.frames - header, 1.0)
    c2 = max(large.jpeg_bytes / large.frames - header, 1.0)
    import math

    alpha = math.log(c2 / c1) / math.log(p2 / p1)
    alpha = min(max(alpha, 0.5), 1.0)
    coefficient = c2 / p2**alpha
    return ScalingFit(header_bytes=header, coefficient=coefficient, alpha=alpha)


@dataclass(frozen=True)
class Table4Row:
    nx: int
    ny: int
    raw_bytes: float
    processed_bytes: float
    reduction: float
    paper_raw: float
    paper_processed: float
    paper_reduction: float


def table4_rows(
    measured: MeasuredCompression, fit: ScalingFit | None = None
) -> list[Table4Row]:
    """Paper grids with exact raw sizes and extrapolated processed sizes.

    With a :class:`ScalingFit` (two measured scales) the edge-scaling model
    is used; otherwise constant bits-per-pixel (an upper bound).
    """
    saved = LBM_RUN["saved_steps"]
    bpp = measured.bits_per_pixel
    rows = []
    for (nx, ny), (paper_raw, paper_proc, paper_red) in TABLE4_OUTPUT.items():
        raw = nx * ny * 4 * saved
        if fit is not None:
            processed = fit.frame_bytes(nx * ny) * saved
        else:
            processed = bpp / 8.0 * nx * ny * saved
        rows.append(
            Table4Row(
                nx=nx,
                ny=ny,
                raw_bytes=raw,
                processed_bytes=processed,
                reduction=1.0 - processed / raw,
                paper_raw=paper_raw,
                paper_processed=paper_proc,
                paper_reduction=paper_red,
            )
        )
    return rows


def measure_two_scales(
    quality: int = 75,
) -> tuple[MeasuredCompression, MeasuredCompression, ScalingFit]:
    """Run the pipeline at two scales and fit the extrapolation model."""
    small = measure_compression(nx=162, ny=65, m=4, n=2, steps=1500, output_every=150,
                                quality=quality)
    large = measure_compression(quality=quality)
    return small, large, fit_scaling(small, large)


def report(
    measured: MeasuredCompression | None = None, fit: ScalingFit | None = None
) -> str:
    """Print Table IV with the processed size as a measured bracket.

    Constant bits-per-pixel is an upper bound (content only smooths out at
    larger grids); the two-scale edge fit is a lower bound (it assumes the
    pure-edge limit everywhere).  The paper's measured sizes should — and
    do — fall inside the bracket.
    """
    if measured is None:
        _, measured, fit = measure_two_scales()
    upper_rows = table4_rows(measured, None)
    lower_rows = table4_rows(measured, fit) if fit is not None else upper_rows
    table = []
    for low, high in zip(lower_rows, upper_rows):
        if fit is not None:
            processed = f"{low.processed_bytes / 1e6:.1f}-{high.processed_bytes / 1e6:.1f} MB"
            reduction = f"{100 * high.reduction:.2f}-{100 * low.reduction:.2f}%"
        else:
            processed = f"{high.processed_bytes / 1e6:.1f} MB"
            reduction = f"{100 * high.reduction:.2f}%"
        table.append(
            [
                f"{high.nx} x {high.ny}",
                f"{high.raw_bytes / 1e9:.1f} GB",
                f"{high.paper_raw / 1e9:.1f} GB",
                processed,
                f"{high.paper_processed / 1e6:.1f} MB",
                reduction,
                f"{100 * high.paper_reduction:.2f}%",
            ]
        )
    header = ["grid", "raw", "paper", "processed", "paper", "reduction", "paper"]
    intro = (
        f"measured on a really-executed {measured.nx}x{measured.ny} run "
        f"({measured.frames} frames): {measured.bits_per_pixel:.3f} bits/pixel, "
        f"{100 * measured.data_reduction:.2f}% reduction at native scale"
    )
    if fit is not None:
        intro += (
            f"\nextrapolation: bytes/frame = {fit.header_bytes:.0f} + "
            f"{fit.coefficient:.3f} * pixels^{fit.alpha:.3f} (two-scale edge fit)"
        )
    return (
        format_table(header, table, title="Table IV (reproduced): output size, 200 saved steps")
        + "\n"
        + intro
    )
