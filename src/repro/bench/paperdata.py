"""Every number the paper's evaluation reports, transcribed verbatim.

Single source of truth for the paper-vs-measured comparisons in the bench
harnesses, EXPERIMENTS.md, and the shape assertions in the test suite.
"""

from __future__ import annotations

#: Table II — TIFF load time (seconds): process count -> (no DDR, DDR
#: round-robin, DDR consecutive).  Mean +/- stddev over 10 runs; we keep
#: the means and the stddevs separately.
TABLE2_SECONDS = {
    27: (283.0, 39.3, 49.2),
    64: (204.6, 18.9, 18.9),
    125: (188.2, 11.1, 10.4),
    216: (165.3, 9.7, 6.6),
}

TABLE2_STDDEV = {
    27: (1.7, 0.2, 0.2),
    64: (1.2, 0.2, 0.1),
    125: (1.2, 0.1, 0.1),
    216: (5.9, 0.4, 0.0),
}

#: Headline claim: "24.9X speed up" at 216 processes.
TABLE2_MAX_SPEEDUP = 24.9

#: Table III — Alltoallw schedule: process count -> strategy ->
#: (rounds, MB sent/received per process per round).
TABLE3_SCHEDULE = {
    27: {"consecutive": (1, 4315.12), "round_robin": (152, 30.81)},
    64: {"consecutive": (1, 1920.00), "round_robin": (64, 31.50)},
    125: {"consecutive": (1, 1006.63), "round_robin": (33, 31.74)},
    216: {"consecutive": (1, 589.95), "round_robin": (19, 31.85)},
}

#: The artificial TIFF series of §IV-A.
TIFF_SERIES = {
    "n_images": 4096,
    "width": 4096,
    "height": 2048,
    "bits": 32,
    "total_bytes": 128 * 2**30,
}

#: Table IV — in-transit output sizes: grid -> (raw, processed, reduction).
#: Sizes are the paper's printed strings converted to bytes (decimal units).
TABLE4_OUTPUT = {
    (3238, 1295): (3.2e9, 19.9e6, 0.9938),
    (6476, 2590): (12.8e9, 61.0e6, 0.9952),
    (12952, 5180): (51.2e9, 217.8e6, 0.9957),
    (25904, 10360): (204.7e9, 830.9e6, 0.9959),
}

#: §IV-B run parameters.
LBM_RUN = {
    "sim_ranks": 128,
    "analysis_ranks": 32,
    "iterations": 20000,
    "output_every": 100,
    "saved_steps": 200,
}

#: Figure 4's illustration: 10 simulation ranks stream to 4 analysis ranks.
FIGURE4_EXAMPLE = {"m": 10, "n": 4, "per_analysis": [3, 3, 2, 2]}

#: Table I — E1's DDR_SetupDataMapping parameters (per rank).
TABLE1_E1 = {
    rank: {
        "P1": rank,
        "P2": 4,
        "P3": 2,
        "P4": [[8, 1], [8, 1]],
        "P5": [[0, rank], [0, rank + 4]],
        "P6": [4, 4],
        "P7": [4 * (rank % 2), 4 * (rank // 2)],
    }
    for rank in range(4)
}
