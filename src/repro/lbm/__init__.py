"""2-D Lattice-Boltzmann simulation substrate (use case 2 producer)."""

from .d2q9 import (
    CX,
    CY,
    N_DIRS,
    OPPOSITE,
    W,
    bounce_back,
    collide,
    equilibrium,
    macroscopics,
    omega_from_viscosity,
    stream,
)
from .decompose import neighbors, slab_box, slab_rows
from .distributed import DistributedLbm
from .fields import kinetic_energy, total_mass, vorticity
from .halo import exchange_ghost_rows
from .simulation import LbmConfig, SerialLbm

__all__ = [
    "CX",
    "CY",
    "DistributedLbm",
    "LbmConfig",
    "N_DIRS",
    "OPPOSITE",
    "SerialLbm",
    "W",
    "bounce_back",
    "collide",
    "equilibrium",
    "exchange_ghost_rows",
    "kinetic_energy",
    "macroscopics",
    "neighbors",
    "omega_from_viscosity",
    "slab_box",
    "slab_rows",
    "stream",
    "total_mass",
    "vorticity",
]
