"""Slab-decomposed distributed LBM solver.

Bitwise-equivalent to :class:`~repro.lbm.simulation.SerialLbm` (the test
suite asserts exact equality): collision is elementwise, streaming uses the
same rolls with ghost rows supplying neighbor data, and the periodic wrap
traffic lands only in boundary rows that the inflow condition overwrites.
"""

from __future__ import annotations

import numpy as np

from ..mpisim.comm import Communicator
from .d2q9 import bounce_back, collide, macroscopics, stream
from .decompose import slab_rows
from .fields import vorticity
from .halo import exchange_ghost_rows
from .simulation import LbmConfig


class DistributedLbm:
    """One rank's slab of the simulation (rows ``[y0, y1)`` plus ghosts)."""

    def __init__(self, comm: Communicator, config: LbmConfig) -> None:
        if comm.size > config.ny:
            raise ValueError(
                f"{comm.size} ranks need at least one row each (ny = {config.ny})"
            )
        self.comm = comm
        self.config = config
        self.y0, self.y1 = slab_rows(config.ny, comm.size, comm.rank)
        self.rows = self.y1 - self.y0
        # Interior rows 1..rows; ghost rows 0 and rows+1.
        self.solid = config.barrier_mask((self.y0, self.y1))
        self.f = config.inflow_equilibrium(self.rows + 2).copy()
        self.step_count = 0

    @property
    def interior(self) -> np.ndarray:
        """View of the interior populations ``(9, rows, nx)``."""
        return self.f[:, 1:-1, :]

    def step(self, n: int = 1) -> None:
        config = self.config
        for _ in range(n):
            collide(self.interior, config.omega, skip=self.solid)
            exchange_ghost_rows(self.comm, self.f)
            stream(self.f)
            bounce_back(self.interior, self.solid)
            self._apply_boundaries()
            self.step_count += 1

    def _apply_boundaries(self) -> None:
        edge = self.config.inflow_equilibrium(1)[:, 0, :]  # (9, nx)
        col = edge[:, :1]
        interior = self.interior
        interior[:, :, 0] = col
        interior[:, :, -1] = col
        if self.y0 == 0:
            interior[:, 0, :] = edge
        if self.y1 == self.config.ny:
            interior[:, -1, :] = edge

    # -- observables ----------------------------------------------------------

    def macroscopics(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Interior density/velocity, ``(rows, nx)`` each."""
        rho, ux, uy = macroscopics(self.interior)
        return rho, ux, uy

    def vorticity(self) -> np.ndarray:
        """Interior vorticity matching the serial solver row-for-row.

        Central differences need one neighbor row on each side; ghost rows
        provide it except at the global domain edges, where the serial
        solver's one-sided differences are reproduced by trimming.
        """
        # Refresh ghosts so velocity at slab borders is current.
        exchange_ghost_rows(self.comm, self.f)
        lo = 1 if self.y0 == 0 else 0
        hi = -1 if self.y1 == self.config.ny else None
        window = self.f[:, lo:hi, :] if hi is not None else self.f[:, lo:, :]
        _, ux, uy = macroscopics(window)
        curl = vorticity(ux, uy)
        start = 1 - lo  # rows of curl preceding our first interior row
        return curl[start : start + self.rows]
