"""Serial LBM driver: flow past a barrier (the paper's evaluation flow).

"For our evaluation tests, we place a barrier inside the domain that forces
the fluid to flow around it, creating more turbulent flow patterns."

The serial simulation is both a usable solver and the bitwise reference for
the slab-decomposed distributed solver in ``distributed.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .d2q9 import (
    bounce_back,
    collide,
    equilibrium,
    macroscopics,
    omega_from_viscosity,
    stream,
)
from .fields import vorticity


@dataclass(frozen=True)
class LbmConfig:
    """Domain + physics of one run.

    ``nx x ny`` lattice, west-to-east inflow ``u0``, kinematic viscosity
    ``viscosity``.  ``obstacle`` selects the solid geometry: ``"bar"`` (the
    paper's barrier — a one-cell vertical segment at ``barrier_x`` spanning
    ``[barrier_y0, barrier_y1)``), ``"circle"`` (a cylinder, the classic
    Kármán-street setup), or ``"none"``.
    """

    nx: int
    ny: int
    u0: float = 0.1
    viscosity: float = 0.02
    obstacle: str = "bar"

    @property
    def omega(self) -> float:
        return omega_from_viscosity(self.viscosity)

    @property
    def barrier_x(self) -> int:
        return max(self.nx // 4, 1)

    @property
    def barrier_y0(self) -> int:
        return self.ny // 3

    @property
    def barrier_y1(self) -> int:
        return max(self.ny - self.ny // 3, self.barrier_y0 + 1)

    @property
    def circle_center(self) -> tuple[float, float]:
        return (self.nx / 4.0, self.ny / 2.0)

    @property
    def circle_radius(self) -> float:
        return max(self.ny / 6.0, 1.0)

    def __post_init__(self) -> None:
        if self.nx < 4 or self.ny < 4:
            raise ValueError(f"domain {self.nx}x{self.ny} too small (min 4x4)")
        if not (0 < self.u0 < 0.3):
            raise ValueError(f"u0 = {self.u0} outside the stable range (0, 0.3)")
        if self.obstacle not in ("bar", "circle", "none"):
            raise ValueError(
                f"obstacle must be 'bar', 'circle' or 'none', got {self.obstacle!r}"
            )
        _ = self.omega  # validates viscosity

    def barrier_mask(self, y_range: tuple[int, int] | None = None) -> np.ndarray:
        """Solid mask ``(rows, nx)``; ``y_range`` selects a slab of rows.

        A pure function of global coordinates, so slab-decomposed ranks
        compute masks consistent with the serial solver.
        """
        y_lo, y_hi = (0, self.ny) if y_range is None else y_range
        mask = np.zeros((y_hi - y_lo, self.nx), dtype=bool)
        if self.obstacle == "bar":
            lo = max(self.barrier_y0, y_lo)
            hi = min(self.barrier_y1, y_hi)
            if lo < hi:
                mask[lo - y_lo : hi - y_lo, self.barrier_x] = True
        elif self.obstacle == "circle":
            cx, cy = self.circle_center
            r2 = self.circle_radius**2
            ys = np.arange(y_lo, y_hi)[:, None]
            xs = np.arange(self.nx)[None, :]
            mask |= (xs - cx) ** 2 + (ys - cy) ** 2 <= r2
        return mask

    def inflow_equilibrium(self, rows: int) -> np.ndarray:
        """Equilibrium populations of the uniform inflow, ``(9, rows, nx)``."""
        rho = np.ones((rows, self.nx))
        ux = np.full((rows, self.nx), self.u0)
        uy = np.zeros((rows, self.nx))
        return equilibrium(rho, ux, uy)


class SerialLbm:
    """Whole-domain reference solver."""

    def __init__(self, config: LbmConfig) -> None:
        self.config = config
        self.solid = config.barrier_mask()
        self.f = config.inflow_equilibrium(config.ny).copy()
        self.step_count = 0

    def step(self, n: int = 1) -> None:
        config = self.config
        for _ in range(n):
            collide(self.f, config.omega, skip=self.solid)
            stream(self.f)
            bounce_back(self.f, self.solid)
            self._apply_boundaries()
            self.step_count += 1

    def _apply_boundaries(self) -> None:
        """Re-impose uniform inflow on all four domain borders."""
        edge = self.config.inflow_equilibrium(1)[:, 0, :]  # (9, nx)
        self.f[:, 0, :] = edge
        self.f[:, -1, :] = edge
        col = edge[:, :1]  # (9, 1) uniform value per direction
        self.f[:, :, 0] = col
        self.f[:, :, -1] = col

    # -- observables --------------------------------------------------------

    def macroscopics(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return macroscopics(self.f)

    def vorticity(self) -> np.ndarray:
        _, ux, uy = self.macroscopics()
        return vorticity(ux, uy)
