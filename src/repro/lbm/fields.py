"""Derived fields of the LBM state (the analysis variables of §IV-B)."""

from __future__ import annotations

import numpy as np


def vorticity(ux: np.ndarray, uy: np.ndarray) -> np.ndarray:
    """Discrete curl ``d(uy)/dx - d(ux)/dy`` via central differences.

    The paper renders this ("rotational velocity was chosen as the variable
    of interest").  Edges use one-sided differences so the output matches
    the input shape.
    """
    if ux.shape != uy.shape or ux.ndim != 2:
        raise ValueError("ux and uy must be equal-shape 2-D fields")
    duy_dx = np.gradient(uy, axis=1)
    dux_dy = np.gradient(ux, axis=0)
    return duy_dx - dux_dy


def total_mass(f: np.ndarray) -> float:
    """Total density over the lattice (conserved by collide+stream)."""
    return float(f.sum())


def kinetic_energy(rho: np.ndarray, ux: np.ndarray, uy: np.ndarray) -> float:
    return float(0.5 * (rho * (ux * ux + uy * uy)).sum())
