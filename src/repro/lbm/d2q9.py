"""D2Q9 lattice-Boltzmann kernels (paper §IV-B's "simple Lattice Boltzmann
method for computing fluid flows in a two-dimensional space").

Arrays are ``(9, ny, nx)`` with the direction index first.  Everything here
is pure NumPy elementwise/roll arithmetic, which is what makes the slab-
decomposed distributed run bitwise-identical to the serial one (tested).
"""

from __future__ import annotations

import numpy as np

#: Direction vectors (cx, cy): rest, E, N, W, S, NE, NW, SW, SE.
CX = np.array([0, 1, 0, -1, 0, 1, -1, -1, 1], dtype=np.int64)
CY = np.array([0, 0, 1, 0, -1, 1, 1, -1, -1], dtype=np.int64)

#: Quadrature weights.
W = np.array(
    [4 / 9, 1 / 9, 1 / 9, 1 / 9, 1 / 9, 1 / 36, 1 / 36, 1 / 36, 1 / 36],
    dtype=np.float64,
)

#: Index of the opposite direction (for bounce-back).
OPPOSITE = np.array([0, 3, 4, 1, 2, 7, 8, 5, 6], dtype=np.int64)

N_DIRS = 9


def omega_from_viscosity(viscosity: float) -> float:
    """BGK relaxation rate: ``omega = 1 / (3 nu + 1/2)``."""
    if viscosity <= 0:
        raise ValueError(f"viscosity must be positive, got {viscosity}")
    return 1.0 / (3.0 * viscosity + 0.5)


def equilibrium(rho: np.ndarray, ux: np.ndarray, uy: np.ndarray) -> np.ndarray:
    """Maxwell-Boltzmann equilibrium populations for given macroscopics."""
    cu = CX[:, None, None] * ux[None] + CY[:, None, None] * uy[None]
    usq = ux * ux + uy * uy
    return rho[None] * W[:, None, None] * (
        1.0 + 3.0 * cu + 4.5 * cu * cu - 1.5 * usq[None]
    )


def macroscopics(f: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Density and velocity from populations: ``(rho, ux, uy)``."""
    rho = f.sum(axis=0)
    inv = 1.0 / rho
    ux = (f * CX[:, None, None]).sum(axis=0) * inv
    uy = (f * CY[:, None, None]).sum(axis=0) * inv
    return rho, ux, uy


def collide(f: np.ndarray, omega: float, skip: np.ndarray | None = None) -> None:
    """In-place BGK collision; ``skip`` masks cells (the solid barrier)."""
    rho, ux, uy = macroscopics(f)
    feq = equilibrium(rho, ux, uy)
    if skip is None:
        f += omega * (feq - f)
    else:
        update = omega * (feq - f)
        update[:, skip] = 0.0
        f += update


def stream(f: np.ndarray) -> None:
    """In-place streaming: shift each population along its direction.

    Uses periodic ``np.roll``; the caller's boundary conditions overwrite
    the wrapped edges afterwards (the driver re-imposes equilibrium inflow
    on all domain borders each step).
    """
    for i in range(1, N_DIRS):
        f[i] = np.roll(f[i], shift=(int(CY[i]), int(CX[i])), axis=(0, 1))


def bounce_back(f: np.ndarray, solid: np.ndarray) -> None:
    """Full-way bounce-back: reverse all populations at solid cells.

    Populations that streamed into the barrier this step leave it, reversed,
    on the next streaming step — the standard no-slip wall treatment.
    """
    f[:, solid] = f[OPPOSITE][:, solid]
