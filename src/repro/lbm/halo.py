"""Ghost-row exchange for the slab-decomposed LBM."""

from __future__ import annotations

import numpy as np

from ..mpisim.comm import Communicator
from .decompose import neighbors

TAG_UP = 101
TAG_DOWN = 102


def exchange_ghost_rows(comm: Communicator, f: np.ndarray) -> None:
    """Fill ghost rows 0 and -1 of a ``(9, h+2, nx)`` slab in place.

    Row 1 (the top interior row) goes to the neighbor above; row ``h`` (the
    bottom interior row) goes to the neighbor below; their counterparts fill
    our ghosts.  Single-rank runs copy locally (periodic wrap).
    """
    above, below = neighbors(comm.size, comm.rank)
    top_interior = np.ascontiguousarray(f[:, 1, :])
    bottom_interior = np.ascontiguousarray(f[:, -2, :])

    if comm.size == 1:
        f[:, 0, :] = bottom_interior
        f[:, -1, :] = top_interior
        return

    top_ghost = np.empty_like(top_interior)
    bottom_ghost = np.empty_like(bottom_interior)
    # Post BOTH sends before any receive: sends are eager (buffered), so
    # this cannot deadlock even when above == below (two-rank ring).
    comm.Send(top_interior, above, tag=TAG_UP)
    comm.Send(bottom_interior, below, tag=TAG_DOWN)
    comm.Recv(top_ghost, source=above, tag=TAG_DOWN)
    comm.Recv(bottom_ghost, source=below, tag=TAG_UP)
    f[:, 0, :] = top_ghost
    f[:, -1, :] = bottom_ghost
