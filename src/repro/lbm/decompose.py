"""Row-slab decomposition for the distributed LBM (paper §IV-B).

"The simulation application splits the data into slices ... each rank only
needs to communicate with two other ranks at most, the neighbors with data
directly above and below."
"""

from __future__ import annotations

from ..core.box import Box
from ..volren.decompose import split_extent


def slab_rows(ny: int, nprocs: int, rank: int) -> tuple[int, int]:
    """Global row range ``[y0, y1)`` owned by ``rank``."""
    offset, size = split_extent(ny, nprocs)[rank]
    return offset, offset + size


def slab_box(nx: int, ny: int, nprocs: int, rank: int) -> Box:
    """The rank's slab as a DDR box in paper order ``(x, y)``."""
    y0, y1 = slab_rows(ny, nprocs, rank)
    return Box((0, y0), (nx, y1 - y0))


def neighbors(nprocs: int, rank: int) -> tuple[int, int]:
    """(above, below) ranks with periodic wrap.

    The wrap traffic only ever lands in boundary rows that the driver
    overwrites with the inflow condition, mirroring the serial solver's
    periodic ``np.roll`` + boundary re-imposition.
    """
    return (rank - 1) % nprocs, (rank + 1) % nprocs
