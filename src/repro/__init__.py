"""repro — reproduction of *Automated Dynamic Data Redistribution* (IPPS 2017).

Public surface:

* the paper's three-call DDR API and the Pythonic :class:`Redistributor`
  (``repro.core``),
* the in-process MPI runtime it executes on (``repro.mpisim``),
* the substrates for the two use cases: TIFF stacks + volume rendering
  (``repro.imaging``, ``repro.volren``, ``repro.io``) and the LBM simulation
  with in-transit visualization (``repro.lbm``, ``repro.intransit``,
  ``repro.viz``, ``repro.jpeg``),
* the Cooley cluster performance model used to regenerate the paper's
  timing results (``repro.netmodel``),
* the fault-injection fabric and self-healing machinery
  (``repro.faults``), and
* the benchmark harnesses that print each paper table/figure
  (``repro.bench``).
"""

from .core import (
    Box,
    DATA_TYPE_1D,
    DATA_TYPE_2D,
    DATA_TYPE_3D,
    DDR_NewDataDescriptor,
    DDR_ReorganizeData,
    DDR_SetupDataMapping,
    DataDescriptor,
    DataLayout,
    Redistributor,
)
from .faults import (
    FaultPlan,
    FaultSpec,
    ReliabilityPolicy,
    fault_plan,
    install_fault_plan,
)

__version__ = "1.0.0"

__all__ = [
    "Box",
    "DATA_TYPE_1D",
    "DATA_TYPE_2D",
    "DATA_TYPE_3D",
    "DDR_NewDataDescriptor",
    "DDR_ReorganizeData",
    "DDR_SetupDataMapping",
    "DataDescriptor",
    "DataLayout",
    "FaultPlan",
    "FaultSpec",
    "Redistributor",
    "ReliabilityPolicy",
    "__version__",
    "fault_plan",
    "install_fault_plan",
]
