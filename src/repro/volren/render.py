"""Orthographic direct volume rendering (emission-absorption model).

The paper's consumer application is GPU DVR; what matters for DDR is that
each rank renders *its own near-cubic block* and partial images are later
composited in depth order.  This CPU renderer implements front-to-back
compositing along a principal axis with per-sample opacity correction —
enough to produce the Figure 2 style images from the redistributed blocks.
"""

from __future__ import annotations

import numpy as np

from ..obs.tracer import TRACER
from ..viz.colormaps import normalize
from .transfer import TransferFunction


def render_block(
    data: np.ndarray,
    tf: TransferFunction,
    axis: str = "z",
    vmin: float | None = None,
    vmax: float | None = None,
    step: int = 1,
    opacity_unit: float = 1.0,
) -> np.ndarray:
    """Render one ``(z, y, x)`` scalar block to a premultiplied RGBA image.

    Returns a float array ``(h, w, 4)``: premultiplied color + accumulated
    alpha, ready for :func:`repro.volren.composite.composite_over`.
    ``vmin``/``vmax`` fix the normalization so distributed blocks agree on
    the transfer-function domain; ``opacity_unit`` rescales per-sample
    opacity for the sampling rate (opacity correction).
    """
    data = np.asarray(data)
    if data.ndim != 3:
        raise ValueError(f"expected (z, y, x) block, got shape {data.shape}")
    if step < 1:
        raise ValueError(f"step must be >= 1, got {step}")
    with TRACER.span("phase.render", axis=axis, voxels=int(data.size)):
        return _render_block(data, tf, axis, vmin, vmax, step, opacity_unit)


def _render_block(
    data: np.ndarray,
    tf: TransferFunction,
    axis: str,
    vmin: float | None,
    vmax: float | None,
    step: int,
    opacity_unit: float,
) -> np.ndarray:

    if axis == "z":
        planes = data[::step]  # iterate z, image is (y, x)
    elif axis == "y":
        planes = np.moveaxis(data, 1, 0)[::step]  # image is (z, x)
    elif axis == "x":
        planes = np.moveaxis(data, 2, 0)[::step]  # image is (z, y)
    else:
        raise ValueError(f"axis must be one of 'x', 'y', 'z', got {axis!r}")

    scalars = normalize(planes, vmin=vmin, vmax=vmax)
    height, width = planes.shape[1], planes.shape[2]
    accum = np.zeros((height, width, 4))

    for index in range(scalars.shape[0]):
        s = scalars[index]
        color = tf.color(s)
        alpha = 1.0 - (1.0 - tf.opacity(s)) ** (step * opacity_unit)
        transmittance = (1.0 - accum[..., 3:4])
        accum[..., :3] += transmittance * color * alpha[..., None]
        accum[..., 3:4] += transmittance * alpha[..., None]
        if accum[..., 3].min() > 0.999:  # early ray termination
            break
    return accum


def mip_project(data: np.ndarray, axis: str = "z") -> np.ndarray:
    """Maximum-intensity projection of a ``(z, y, x)`` block.

    The standard radiology rendering for CT stacks (the paper's Figure 2
    data): each output pixel is the maximum sample along the ray.  Because
    ``max`` is associative, block-wise MIP + max-compositing is *exactly*
    equal to whole-volume MIP (property-tested), unlike emission-absorption
    DVR which matches only up to early-termination tolerance.
    """
    data = np.asarray(data)
    if data.ndim != 3:
        raise ValueError(f"expected (z, y, x) block, got shape {data.shape}")
    if axis == "z":
        return data.max(axis=0)  # (y, x)
    if axis == "y":
        return data.max(axis=1)  # (z, x)
    if axis == "x":
        return data.max(axis=2)  # (z, y)
    raise ValueError(f"axis must be one of 'x', 'y', 'z', got {axis!r}")


def rgba_to_rgb(
    accum: np.ndarray, background: tuple[float, float, float] = (0, 0, 0)
) -> np.ndarray:
    """Blend a premultiplied RGBA buffer over a background; returns uint8 RGB."""
    bg = np.asarray(background, dtype=np.float64)
    rgb = accum[..., :3] + (1.0 - accum[..., 3:4]) * bg
    return np.round(np.clip(rgb, 0.0, 1.0) * 255.0).astype(np.uint8)
