"""Depth compositing of per-rank partial renders.

After DDR places a near-cubic block on every rank and each rank renders it,
the partial images must be combined front-to-back along the view axis —
the standard sort-last compositing step of distributed DVR.  Partial images
are gathered to rank 0 (sufficient at these scales; binary swap would slot
in here for larger runs) and blended per screen tile in depth order.
"""

from __future__ import annotations

import numpy as np

from ..core.box import Box
from ..mpisim.comm import Communicator


def composite_over(front: np.ndarray, back: np.ndarray) -> np.ndarray:
    """Front-to-back 'over' operator on premultiplied RGBA buffers."""
    if front.shape != back.shape:
        raise ValueError(f"shape mismatch {front.shape} vs {back.shape}")
    transmittance = 1.0 - front[..., 3:4]
    out = front.copy()
    out[..., :3] += transmittance * back[..., :3]
    out[..., 3:4] += transmittance * back[..., 3:4]
    return out


def _screen_geometry(box: Box, axis: str) -> tuple[tuple[int, int], tuple[int, int], int]:
    """((row0, col0), (rows, cols), depth_key) of one block's footprint."""
    x, y, z = box.offset
    w, h, d = box.dims
    if axis == "z":
        return (y, x), (h, w), z
    if axis == "y":
        return (z, x), (d, w), y
    if axis == "x":
        return (z, y), (d, h), x
    raise ValueError(f"axis must be one of 'x', 'y', 'z', got {axis!r}")


def composite_distributed_mip(
    comm: Communicator,
    box: Box,
    partial: np.ndarray,
    volume_dims: tuple[int, int, int],
    axis: str = "z",
    root: int = 0,
    fill: float = -np.inf,
) -> np.ndarray | None:
    """Gather per-rank MIP tiles and max-combine them on ``root``.

    Unlike the 'over' operator, max needs no depth ordering, so tiles
    combine in any order.  Returns the full scalar projection on ``root``.
    """
    (row0, col0), (rows, cols), _ = _screen_geometry(box, axis)
    if partial.shape != (rows, cols):
        raise ValueError(
            f"partial projection {partial.shape} does not match footprint {(rows, cols)}"
        )
    gathered = comm.gather(((row0, col0), partial), root=root)
    if comm.rank != root:
        return None

    vx, vy, vz = volume_dims
    screen = {"z": (vy, vx), "y": (vz, vx), "x": (vz, vy)}[axis]
    frame = np.full(screen, fill, dtype=np.float64)
    assert gathered is not None
    for (r0, c0), tile in gathered:
        th, tw = tile.shape
        region = frame[r0 : r0 + th, c0 : c0 + tw]
        np.maximum(region, tile, out=region)
    return frame


def composite_distributed(
    comm: Communicator,
    box: Box,
    partial: np.ndarray,
    volume_dims: tuple[int, int, int],
    axis: str = "z",
    root: int = 0,
) -> np.ndarray | None:
    """Gather per-rank partial RGBA renders and composite on ``root``.

    Each rank contributes its block's ``partial`` image; tiles that share a
    screen footprint are blended front-to-back by their depth along the view
    axis.  Returns the full premultiplied RGBA frame on ``root``, ``None``
    elsewhere.
    """
    (row0, col0), (rows, cols), depth = _screen_geometry(box, axis)
    if partial.shape[:2] != (rows, cols):
        raise ValueError(
            f"partial image {partial.shape[:2]} does not match block footprint {(rows, cols)}"
        )
    gathered = comm.gather(((row0, col0), depth, partial), root=root)
    if comm.rank != root:
        return None

    vx, vy, vz = volume_dims
    if axis == "z":
        screen = (vy, vx)
    elif axis == "y":
        screen = (vz, vx)
    else:
        screen = (vz, vy)
    frame = np.zeros(screen + (4,))

    assert gathered is not None
    for (r0, c0), _, tile in sorted(gathered, key=lambda item: item[1]):
        th, tw = tile.shape[:2]
        region = frame[r0 : r0 + th, c0 : c0 + tw]
        frame[r0 : r0 + th, c0 : c0 + tw] = composite_over(region, tile)
    return frame
