"""Distributed direct volume rendering substrate (use case 1 consumer)."""

from .composite import composite_distributed, composite_distributed_mip, composite_over
from .decompose import block_for_rank, grid_boxes, grid_shape, split_extent
from .render import mip_project, render_block, rgba_to_rgb
from .transfer import TOOTH_TF, TransferFunction

__all__ = [
    "TOOTH_TF",
    "TransferFunction",
    "block_for_rank",
    "composite_distributed",
    "composite_distributed_mip",
    "composite_over",
    "grid_boxes",
    "grid_shape",
    "mip_project",
    "render_block",
    "rgba_to_rgb",
    "split_extent",
]
