"""Volume decomposition for distributed DVR (paper §IV-A).

"In order to perform efficient distributed memory DVR, the entire volume is
broken into equally sized boxes that are as close to cubes as possible."

:func:`grid_shape` picks the per-axis process grid; :func:`grid_boxes`
produces the per-rank needed boxes in the paper's ``[i, j, k]`` axis order
(i = image width/x, j = image height/y, k = slice index/z), with rank order
x-fastest — the 3D generalization of E1's ``right = rank % 2`` /
``bottom = rank / 2`` convention.
"""

from __future__ import annotations

from typing import Sequence

from ..core.box import Box


def split_extent(extent: int, parts: int) -> list[tuple[int, int]]:
    """Block-partition ``extent`` cells into ``parts`` (offset, size) pairs.

    Remainder cells go to the leading parts, matching common block
    distributions (and keeping |sizes| within 1 of each other).
    """
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    if extent < parts:
        raise ValueError(f"cannot split extent {extent} into {parts} non-empty parts")
    base, rem = divmod(extent, parts)
    out = []
    offset = 0
    for index in range(parts):
        size = base + (1 if index < rem else 0)
        out.append((offset, size))
        offset += size
    return out


def grid_shape(nprocs: int, dims: Sequence[int]) -> tuple[int, ...]:
    """Choose a process grid whose blocks are as close to cubes as possible.

    Searches factorizations of ``nprocs`` into ``len(dims)`` factors and
    minimises the spread of block edge lengths ``dims[a] / grid[a]``.  For
    the paper's perfect-cube process counts on the 4096x2048x4096 volume
    this returns the expected symmetric grids (e.g. 27 -> (3, 3, 3)).
    """
    ndim = len(dims)
    if ndim < 1:
        raise ValueError("dims must be non-empty")
    if nprocs < 1:
        raise ValueError(f"nprocs must be >= 1, got {nprocs}")

    best: tuple[float, float, tuple[int, ...]] | None = None

    def rec(remaining: int, axis: int, grid: tuple[int, ...]) -> None:
        nonlocal best
        if axis == ndim - 1:
            full = grid + (remaining,)
            if any(g > d for g, d in zip(full, dims)):
                return
            edges = [d / g for d, g in zip(dims, full)]
            score = max(edges) / min(edges)
            # Tie-break toward balanced process grids (the paper splits
            # "an equal number of chunks in each dimension"), then toward
            # a deterministic tuple order.
            balance = max(full) / min(full)
            key = (score, balance, full)
            if best is None or key < best:
                best = key
            return
        divisor = 1
        while divisor <= remaining:
            if remaining % divisor == 0:
                rec(remaining // divisor, axis + 1, grid + (divisor,))
            divisor += 1

    rec(nprocs, 0, ())
    if best is None:
        raise ValueError(f"no valid {ndim}-D grid for {nprocs} processes over {dims}")
    return best[-1]


def grid_boxes(dims: Sequence[int], grid: Sequence[int]) -> list[Box]:
    """Per-rank needed boxes for a ``grid`` decomposition of ``dims``.

    Rank order is x-fastest: ``rank = i + j*grid[0] + k*grid[0]*grid[1]``.
    """
    dims = tuple(int(d) for d in dims)
    grid = tuple(int(g) for g in grid)
    if len(grid) != len(dims):
        raise ValueError("grid rank must match dims rank")
    axis_splits = [split_extent(d, g) for d, g in zip(dims, grid)]

    boxes: list[Box] = []
    ndim = len(dims)
    counters = [0] * ndim

    def emit() -> None:
        offset = tuple(axis_splits[a][counters[a]][0] for a in range(ndim))
        size = tuple(axis_splits[a][counters[a]][1] for a in range(ndim))
        boxes.append(Box(offset, size))

    total = 1
    for g in grid:
        total *= g
    for rank in range(total):
        rest = rank
        for a in range(ndim):
            counters[a] = rest % grid[a]
            rest //= grid[a]
        emit()
    return boxes


def block_for_rank(dims: Sequence[int], grid: Sequence[int], rank: int) -> Box:
    """The needed box of one rank (same convention as :func:`grid_boxes`)."""
    boxes = grid_boxes(dims, grid)
    return boxes[rank]
