"""Transfer functions for direct volume rendering.

A transfer function maps normalized scalar values to emission color and
opacity (per unit sample).  Color comes from a :class:`~repro.viz.colormaps
.Colormap`; opacity is piecewise-linear over its own control points, which
is how tools like ParaView expose DVR transfer functions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..viz.colormaps import Colormap, TOOTH


@dataclass(frozen=True)
class TransferFunction:
    """Scalar in [0, 1] -> (RGB emission, opacity)."""

    colormap: Colormap
    opacity_points: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        xs = [x for x, _ in self.opacity_points]
        if len(xs) < 2 or xs != sorted(xs) or xs[0] != 0.0 or xs[-1] != 1.0:
            raise ValueError("opacity control points must ascend from 0.0 to 1.0")
        if any(not (0.0 <= a <= 1.0) for _, a in self.opacity_points):
            raise ValueError("opacities must lie in [0, 1]")

    def color(self, scalars: np.ndarray) -> np.ndarray:
        return self.colormap(scalars)

    def opacity(self, scalars: np.ndarray) -> np.ndarray:
        s = np.clip(np.asarray(scalars, dtype=np.float64), 0.0, 1.0)
        xs = np.array([x for x, _ in self.opacity_points])
        ys = np.array([a for _, a in self.opacity_points])
        return np.interp(s, xs, ys)


#: Figure-2-style tooth rendering: air transparent, enamel nearly opaque.
TOOTH_TF = TransferFunction(
    colormap=TOOTH,
    opacity_points=((0.0, 0.0), (0.15, 0.0), (0.4, 0.02), (0.7, 0.25), (1.0, 0.9)),
)
