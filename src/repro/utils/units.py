"""Unit constants and human-readable formatting.

The paper mixes decimal and binary conventions (its "MB" figures in Table
III are base-2 mebibytes; its "GB" sizes in Table IV are decimal-ish).  We
keep both and are explicit at every call site.
"""

from __future__ import annotations

KiB = 1024
MiB = 1024**2
GiB = 1024**3

KB = 1000
MB = 1000**2
GB = 1000**3


def mb(nbytes: int | float) -> float:
    """Convert a byte count to binary mebibytes (the unit of paper Table III)."""
    return nbytes / MiB


def gbit_per_s(gbits: float) -> float:
    """Convert a link speed quoted in Gbit/s (e.g. FDR IB '56 Gbps') to bytes/s."""
    return gbits * 1e9 / 8.0


def fmt_bytes(nbytes: int | float) -> str:
    """Format a byte count with a binary suffix, e.g. ``fmt_bytes(3<<20) == '3.00 MiB'``."""
    value = float(nbytes)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or suffix == "TiB":
            return f"{value:.2f} {suffix}"
        value /= 1024.0
    raise AssertionError("unreachable")


def fmt_mb(nbytes: int | float) -> str:
    """Format a byte count in mebibytes with two decimals (Table III style)."""
    return f"{mb(nbytes):.2f}"


def fmt_seconds(seconds: float) -> str:
    """Format a duration the way the paper's tables do (one decimal, 'sec')."""
    return f"{seconds:.1f} sec"
