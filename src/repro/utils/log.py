"""Minimal logging facade (stdlib logging, library-safe defaults)."""

from __future__ import annotations

import logging

_ROOT_NAME = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a logger under the ``repro`` namespace with a NullHandler."""
    full = _ROOT_NAME if not name else f"{_ROOT_NAME}.{name}"
    logger = logging.getLogger(full)
    if not logging.getLogger(_ROOT_NAME).handlers:
        logging.getLogger(_ROOT_NAME).addHandler(logging.NullHandler())
    return logger


def enable_console_logging(level: int = logging.INFO) -> None:
    """Attach a stderr handler — used by the example scripts, never implicitly."""
    root = logging.getLogger(_ROOT_NAME)
    handler = logging.StreamHandler()
    handler.setFormatter(logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s"))
    root.addHandler(handler)
    root.setLevel(level)
