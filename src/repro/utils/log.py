"""Minimal logging facade (stdlib logging, library-safe defaults)."""

from __future__ import annotations

import logging
from typing import Optional

_ROOT_NAME = "repro"

#: The one console handler this facade manages; reused across calls so
#: repeated ``enable_console_logging()`` invocations (two example scripts in
#: one process, test setup run twice) never duplicate log lines.
_console_handler: Optional[logging.Handler] = None


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a logger under the ``repro`` namespace with a NullHandler."""
    full = _ROOT_NAME if not name else f"{_ROOT_NAME}.{name}"
    logger = logging.getLogger(full)
    if not logging.getLogger(_ROOT_NAME).handlers:
        logging.getLogger(_ROOT_NAME).addHandler(logging.NullHandler())
    return logger


def enable_console_logging(level: int = logging.INFO) -> None:
    """Attach a stderr handler — used by the example scripts, never implicitly.

    Idempotent: repeat calls reuse the same handler (updating the level)
    instead of stacking a fresh ``StreamHandler`` each time.
    """
    global _console_handler
    root = logging.getLogger(_ROOT_NAME)
    if _console_handler is None:
        _console_handler = logging.StreamHandler()
        _console_handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
    if _console_handler not in root.handlers:
        root.addHandler(_console_handler)
    root.setLevel(level)


def disable_console_logging() -> None:
    """Detach the console handler attached by :func:`enable_console_logging`."""
    global _console_handler
    if _console_handler is not None:
        logging.getLogger(_ROOT_NAME).removeHandler(_console_handler)
        _console_handler = None
