"""Lightweight wall-clock timing helpers used by benches and examples,
plus the transfer-accounting hook the transport layer reports into."""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


class Timer:
    """Context-manager stopwatch.

    >>> with Timer() as t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed = time.perf_counter() - self._start


@dataclass
class StopwatchRegistry:
    """Accumulates named timings across repeated phases.

    Used by the use-case drivers to separate "read", "redistribute" and
    "render" time the way the paper's evaluation discusses them.
    """

    totals: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)

    def add(self, name: str, seconds: float) -> None:
        self.totals[name] = self.totals.get(name, 0.0) + seconds
        self.counts[name] = self.counts.get(name, 0) + 1

    def time(self, name: str):
        """Return a context manager that accumulates into ``name``."""
        registry = self

        class _Scope:
            def __enter__(self) -> "_Scope":
                self._start = time.perf_counter()
                return self

            def __exit__(self, *exc: object) -> None:
                registry.add(name, time.perf_counter() - self._start)

        return _Scope()

    def total(self, name: str) -> float:
        return self.totals.get(name, 0.0)

    def mean(self, name: str) -> float:
        n = self.counts.get(name, 0)
        return self.totals.get(name, 0.0) / n if n else 0.0

    def summary(self) -> str:
        lines = [
            f"{name:<16s} total={self.totals[name]:9.4f}s  n={self.counts[name]:4d}"
            for name in sorted(self.totals)
        ]
        return "\n".join(lines)


class TransferCounters:
    """Byte/copy accounting for the redistribution transfer path.

    The transport layer (``repro.mpisim``) and the DDR core report every
    staging allocation and every array copy here, so benchmarks and tests
    can *assert* copy counts instead of inferring them from timings —
    e.g. that the zero-copy transport performs exactly one copy per lane
    and that a cached :class:`~repro.core.api.Redistributor` allocates no
    new arrays on repeated exchanges.

    Disabled by default; every hot-path hook is a single attribute check
    in that state.  Enable through :func:`counting_transfers` (preferred)
    or ``enabled = True`` + :meth:`reset`.
    """

    #: copy kinds reported by the transport layer
    KINDS = ("pack", "unpack", "payload", "direct")

    def __init__(self) -> None:
        self.enabled = False
        self._lock = threading.Lock()
        self.reset()

    def reset(self) -> None:
        self.copies: dict[str, int] = {kind: 0 for kind in self.KINDS}
        self.bytes_copied: dict[str, int] = {kind: 0 for kind in self.KINDS}
        self.allocations = 0
        self.bytes_allocated = 0
        self.evictions = 0
        self.bytes_evicted = 0

    def count_copy(self, kind: str, nbytes: int) -> None:
        if kind not in self.copies:
            raise ValueError(
                f"unknown copy kind {kind!r}; expected one of {self.KINDS}"
            )
        with self._lock:
            self.copies[kind] += 1
            self.bytes_copied[kind] += int(nbytes)

    def count_alloc(self, nbytes: int) -> None:
        with self._lock:
            self.allocations += 1
            self.bytes_allocated += int(nbytes)

    def count_eviction(self, nbytes: int) -> None:
        with self._lock:
            self.evictions += 1
            self.bytes_evicted += int(nbytes)

    @property
    def total_copies(self) -> int:
        return sum(self.copies.values())

    @property
    def total_bytes_copied(self) -> int:
        return sum(self.bytes_copied.values())

    def snapshot(self) -> dict:
        """A plain-dict copy, convenient for JSON records and asserts."""
        with self._lock:
            return {
                "copies": dict(self.copies),
                "bytes_copied": dict(self.bytes_copied),
                "allocations": self.allocations,
                "bytes_allocated": self.bytes_allocated,
                "evictions": self.evictions,
                "bytes_evicted": self.bytes_evicted,
            }


#: Process-wide singleton the transport hooks report into.  All SPMD "ranks"
#: are threads of one process, so one set of counters sees every lane.
TRANSFER_COUNTERS = TransferCounters()


def transfer_counters() -> TransferCounters:
    return TRANSFER_COUNTERS


@contextmanager
def counting_transfers() -> Iterator[TransferCounters]:
    """Enable transfer accounting within a block.

    The block starts from zero, and nesting is safe: the prior state
    (including a surrounding block's accumulated counts) is saved on entry
    and restored on exit with the inner block's counts folded back in, so
    an outer ``counting_transfers`` sees everything that happened inside
    it and keeps its own ``enabled`` flag.

    >>> with counting_transfers() as counters:
    ...     pass
    >>> counters.total_copies
    0
    """
    counters = TRANSFER_COUNTERS
    with counters._lock:
        prior_enabled = counters.enabled
        prior = {
            "copies": dict(counters.copies),
            "bytes_copied": dict(counters.bytes_copied),
            "allocations": counters.allocations,
            "bytes_allocated": counters.bytes_allocated,
            "evictions": counters.evictions,
            "bytes_evicted": counters.bytes_evicted,
        }
        counters.reset()  # does not take the lock; safe to call while held
        counters.enabled = True
    try:
        yield counters
    finally:
        with counters._lock:
            counters.enabled = prior_enabled
            for kind in counters.KINDS:
                counters.copies[kind] += prior["copies"][kind]
                counters.bytes_copied[kind] += prior["bytes_copied"][kind]
            counters.allocations += prior["allocations"]
            counters.bytes_allocated += prior["bytes_allocated"]
            counters.evictions += prior["evictions"]
            counters.bytes_evicted += prior["bytes_evicted"]
