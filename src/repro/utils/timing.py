"""Lightweight wall-clock timing helpers used by benches and examples."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


class Timer:
    """Context-manager stopwatch.

    >>> with Timer() as t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed = time.perf_counter() - self._start


@dataclass
class StopwatchRegistry:
    """Accumulates named timings across repeated phases.

    Used by the use-case drivers to separate "read", "redistribute" and
    "render" time the way the paper's evaluation discusses them.
    """

    totals: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)

    def add(self, name: str, seconds: float) -> None:
        self.totals[name] = self.totals.get(name, 0.0) + seconds
        self.counts[name] = self.counts.get(name, 0) + 1

    def time(self, name: str):
        """Return a context manager that accumulates into ``name``."""
        registry = self

        class _Scope:
            def __enter__(self) -> "_Scope":
                self._start = time.perf_counter()
                return self

            def __exit__(self, *exc: object) -> None:
                registry.add(name, time.perf_counter() - self._start)

        return _Scope()

    def total(self, name: str) -> float:
        return self.totals.get(name, 0.0)

    def mean(self, name: str) -> float:
        n = self.counts.get(name, 0)
        return self.totals.get(name, 0.0) / n if n else 0.0

    def summary(self) -> str:
        lines = [
            f"{name:<16s} total={self.totals[name]:9.4f}s  n={self.counts[name]:4d}"
            for name in sorted(self.totals)
        ]
        return "\n".join(lines)
