"""NumPy array helpers shared by the datatype and packing layers."""

from __future__ import annotations

import numpy as np

from .timing import TRANSFER_COUNTERS


class StagingPool:
    """A reuse pool for staging/output arrays keyed by (shape, dtype).

    Repeated redistribution of same-layout data (the paper's dynamic-data
    use case — one call per simulation frame) needs the same scratch arrays
    every time; this pool hands back the previously allocated array instead
    of allocating afresh.  One array is cached per key, so a taken array is
    only valid until the same key is taken again — which matches the
    per-frame lifecycle of every caller.  Not thread-safe: each SPMD rank
    owns its own pool.
    """

    def __init__(self) -> None:
        self._arrays: dict[tuple[tuple[int, ...], np.dtype], np.ndarray] = {}

    def take(self, shape, dtype) -> np.ndarray:
        """An uninitialised array of the requested geometry (cached)."""
        if np.isscalar(shape):
            shape = (shape,)
        key = (tuple(int(s) for s in shape), np.dtype(dtype))
        array = self._arrays.get(key)
        if array is None:
            array = np.empty(key[0], dtype=key[1])
            if TRANSFER_COUNTERS.enabled:
                TRANSFER_COUNTERS.count_alloc(array.nbytes)
            self._arrays[key] = array
        return array

    def take_filled(self, shape, dtype, fill) -> np.ndarray:
        array = self.take(shape, dtype)
        array.fill(fill)
        return array

    def clear(self) -> None:
        self._arrays.clear()


def dtype_size(dtype: np.dtype | type | str) -> int:
    """Byte size of one element of ``dtype``."""
    return int(np.dtype(dtype).itemsize)


def as_contiguous(array: np.ndarray) -> np.ndarray:
    """Return ``array`` itself when already C-contiguous, else a C copy.

    DDR (like MPI subarray types) assumes row-major contiguous buffers;
    every public entry point normalises through this helper.
    """
    if array.flags["C_CONTIGUOUS"]:
        return array
    return np.ascontiguousarray(array)


def flat_view(array: np.ndarray) -> np.ndarray:
    """A 1-D view of a C-contiguous array (no copy).

    Raises ``ValueError`` for non-contiguous inputs instead of silently
    copying, because the communication layer relies on writes through the
    view being visible in the caller's buffer.
    """
    if not array.flags["C_CONTIGUOUS"]:
        raise ValueError("flat_view requires a C-contiguous array")
    return array.reshape(-1)
