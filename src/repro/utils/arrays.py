"""NumPy array helpers shared by the datatype and packing layers."""

from __future__ import annotations

import numpy as np


def dtype_size(dtype: np.dtype | type | str) -> int:
    """Byte size of one element of ``dtype``."""
    return int(np.dtype(dtype).itemsize)


def as_contiguous(array: np.ndarray) -> np.ndarray:
    """Return ``array`` itself when already C-contiguous, else a C copy.

    DDR (like MPI subarray types) assumes row-major contiguous buffers;
    every public entry point normalises through this helper.
    """
    if array.flags["C_CONTIGUOUS"]:
        return array
    return np.ascontiguousarray(array)


def flat_view(array: np.ndarray) -> np.ndarray:
    """A 1-D view of a C-contiguous array (no copy).

    Raises ``ValueError`` for non-contiguous inputs instead of silently
    copying, because the communication layer relies on writes through the
    view being visible in the caller's buffer.
    """
    if not array.flags["C_CONTIGUOUS"]:
        raise ValueError("flat_view requires a C-contiguous array")
    return array.reshape(-1)
