"""NumPy array helpers shared by the datatype and packing layers."""

from __future__ import annotations

import os
from collections import OrderedDict

import numpy as np

from .membudget import MEMORY_BUDGET
from .timing import TRANSFER_COUNTERS

#: Default per-pool byte budget.  Overridable through ``DDR_POOL_BUDGET_MB``;
#: large enough that a single steady-state workload never evicts, small
#: enough that a pool cannot eat the host when mappings proliferate.
DEFAULT_POOL_BUDGET_BYTES = int(
    float(os.environ.get("DDR_POOL_BUDGET_MB", "512")) * 1024 * 1024
)


class StagingPool:
    """A bounded LRU reuse pool for staging/output arrays keyed by
    (shape, dtype).

    Repeated redistribution of same-layout data (the paper's dynamic-data
    use case — one call per simulation frame) needs the same scratch arrays
    every time; this pool hands back the previously allocated array instead
    of allocating afresh.  One array is cached per key, so a taken array is
    only valid until the same key is taken again — which matches the
    per-frame lifecycle of every caller.  Not thread-safe: each SPMD rank
    owns its own pool.

    The pool holds at most ``max_bytes`` of cached arrays: when an insert
    pushes it over budget the least-recently-taken entries are dropped
    (never the entry just inserted, so a single oversized array still
    round-trips).  Evictions are counted on the pool itself and, when
    enabled, in :data:`~repro.utils.timing.TRANSFER_COUNTERS` so the
    metrics layer can watch cache pressure as mappings proliferate.

    When a process-wide :data:`~repro.utils.membudget.MEMORY_BUDGET` is
    active, every fresh allocation reserves against the owning ``rank``'s
    ledger *before* NumPy allocates (raising the typed
    ``MemoryBudgetError`` instead of approaching real OOM) and every
    eviction or :meth:`clear` releases it.  ``peak_bytes`` is the pool's
    own resident high-water mark, surfaced as a metrics gauge by the
    serving layer.
    """

    def __init__(self, max_bytes: int | None = None, rank: int | None = None) -> None:
        self._arrays: OrderedDict[
            tuple[tuple[int, ...], np.dtype], np.ndarray
        ] = OrderedDict()
        self.max_bytes = DEFAULT_POOL_BUDGET_BYTES if max_bytes is None else int(max_bytes)
        self.current_bytes = 0
        self.peak_bytes = 0
        self.evictions = 0
        self.rank = rank

    def take(self, shape, dtype) -> np.ndarray:
        """An uninitialised array of the requested geometry (cached)."""
        if np.isscalar(shape):
            shape = (shape,)
        key = (tuple(int(s) for s in shape), np.dtype(dtype))
        array = self._arrays.get(key)
        if array is None:
            nbytes = key[1].itemsize
            for extent in key[0]:
                nbytes *= extent
            if MEMORY_BUDGET.active:
                MEMORY_BUDGET.reserve(nbytes, "staging pool", rank=self.rank)
            array = np.empty(key[0], dtype=key[1])
            if TRANSFER_COUNTERS.enabled:
                TRANSFER_COUNTERS.count_alloc(array.nbytes)
            self._arrays[key] = array
            self.current_bytes += array.nbytes
            if self.current_bytes > self.peak_bytes:
                self.peak_bytes = self.current_bytes
            self._evict_over_budget(keep=key)
        else:
            self._arrays.move_to_end(key)
        return array

    def take_filled(self, shape, dtype, fill) -> np.ndarray:
        array = self.take(shape, dtype)
        array.fill(fill)
        return array

    def _evict_over_budget(self, keep) -> None:
        while self.current_bytes > self.max_bytes and len(self._arrays) > 1:
            oldest = next(iter(self._arrays))
            if oldest == keep:
                # The just-inserted array must survive this call; everything
                # older is already gone, so the budget simply can't be met.
                break
            victim = self._arrays.pop(oldest)
            self.current_bytes -= victim.nbytes
            self.evictions += 1
            if MEMORY_BUDGET.active:
                MEMORY_BUDGET.release(victim.nbytes, rank=self.rank)
            if TRANSFER_COUNTERS.enabled:
                TRANSFER_COUNTERS.count_eviction(victim.nbytes)

    def clear(self) -> None:
        if MEMORY_BUDGET.active and self.current_bytes:
            MEMORY_BUDGET.release(self.current_bytes, rank=self.rank)
        self._arrays.clear()
        self.current_bytes = 0


def dtype_size(dtype: np.dtype | type | str) -> int:
    """Byte size of one element of ``dtype``."""
    return int(np.dtype(dtype).itemsize)


def as_contiguous(array: np.ndarray) -> np.ndarray:
    """Return ``array`` itself when already C-contiguous, else a C copy.

    DDR (like MPI subarray types) assumes row-major contiguous buffers;
    every public entry point normalises through this helper.
    """
    if array.flags["C_CONTIGUOUS"]:
        return array
    return np.ascontiguousarray(array)


def flat_view(array: np.ndarray) -> np.ndarray:
    """A 1-D view of a C-contiguous array (no copy).

    Raises ``ValueError`` for non-contiguous inputs instead of silently
    copying, because the communication layer relies on writes through the
    view being visible in the caller's buffer.
    """
    if not array.flags["C_CONTIGUOUS"]:
        raise ValueError("flat_view requires a C-contiguous array")
    return array.reshape(-1)
