"""Shared helpers: units, timing, array utilities, logging."""

from .units import (
    GiB,
    KiB,
    MiB,
    fmt_bytes,
    fmt_mb,
    fmt_seconds,
    gbit_per_s,
    mb,
)
from .timing import (
    StopwatchRegistry,
    Timer,
    TransferCounters,
    counting_transfers,
    transfer_counters,
)
from .arrays import StagingPool, as_contiguous, dtype_size, flat_view
from .membudget import (
    MEMORY_BUDGET,
    MemoryAudit,
    MemoryBudget,
    auditing_memory,
    budget_scope,
    memory_budget,
)

__all__ = [
    "GiB",
    "KiB",
    "MEMORY_BUDGET",
    "MemoryAudit",
    "MemoryBudget",
    "MiB",
    "StagingPool",
    "StopwatchRegistry",
    "Timer",
    "TransferCounters",
    "counting_transfers",
    "transfer_counters",
    "as_contiguous",
    "auditing_memory",
    "budget_scope",
    "dtype_size",
    "flat_view",
    "fmt_bytes",
    "fmt_mb",
    "fmt_seconds",
    "gbit_per_s",
    "mb",
    "memory_budget",
]
