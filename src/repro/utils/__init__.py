"""Shared helpers: units, timing, array utilities, logging."""

from .units import (
    GiB,
    KiB,
    MiB,
    fmt_bytes,
    fmt_mb,
    fmt_seconds,
    gbit_per_s,
    mb,
)
from .timing import Timer, StopwatchRegistry
from .arrays import as_contiguous, dtype_size, flat_view

__all__ = [
    "GiB",
    "KiB",
    "MiB",
    "StopwatchRegistry",
    "Timer",
    "as_contiguous",
    "dtype_size",
    "flat_view",
    "fmt_bytes",
    "fmt_mb",
    "fmt_seconds",
    "gbit_per_s",
    "mb",
]
