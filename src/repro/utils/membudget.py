"""Process-wide memory budget for DDR-managed staging allocations.

The budget bounds what the *library* allocates on behalf of an exchange —
staging-pool arrays, packed send payloads, shared-memory segments, and
in-flight receive payloads — per rank.  User buffers (the arrays handed to
``gather_need`` or returned from it) are never charged: the budget models
the paper's "small host" scenario where the data fits but the naive
exchange footprint does not.

Enforcement is predictive: :meth:`MemoryBudget.reserve` is consulted
*before* each staging allocation and raises the typed
:class:`~repro.mpisim.errors.MemoryBudgetError` when the ledger would
exceed the limit, so the process never races the host's OOM killer.
When no limit is configured (the default) every hook is a single
attribute check.

The limit comes from ``DDR_MEM_BUDGET_MB`` at import time or from
:func:`budget_scope` / :meth:`MemoryBudget.set_limit` at runtime.  The
ledger is per rank (SPMD ranks are threads of one process; ``None`` keys
the driver thread) because the budget models per-host memory and every
rank of the simulated job shares this host.

:func:`auditing_memory` is the cross-check: it measures the real
allocation peak of a block via :mod:`tracemalloc` so tests and the memory
benchmark can hold the analytic :meth:`~repro.core.schedule.RoundSchedule.
peak_bytes` estimates against measured reality.
"""

from __future__ import annotations

import os
import threading
import tracemalloc
from contextlib import contextmanager
from typing import Iterator, Optional

from .units import fmt_bytes

__all__ = [
    "MEMORY_BUDGET",
    "MemoryAudit",
    "MemoryBudget",
    "auditing_memory",
    "budget_scope",
    "memory_budget",
]


def _budget_error():
    # Lazy: utils must stay importable without repro.mpisim (and mpisim.comm
    # imports utils.arrays), so the typed error is fetched on first raise —
    # the same pattern faults.injector uses for transport error types.
    from ..mpisim.errors import MemoryBudgetError

    return MemoryBudgetError


class MemoryBudget:
    """Per-rank ledger of DDR-managed staging bytes against a hard limit.

    ``active`` is False until a limit is set; in that state ``reserve`` and
    ``release`` return immediately after one attribute check, so the
    disabled budget costs the hot path nothing.  ``release`` clamps at
    zero per rank, which makes it safe to enable a budget mid-flight:
    stragglers allocated before the limit existed release into an empty
    ledger without driving it negative.
    """

    def __init__(self, limit_bytes: Optional[int] = None) -> None:
        self._lock = threading.Lock()
        self.active = False
        self.limit_bytes: Optional[int] = None
        #: rank (``None`` = driver thread) -> currently reserved bytes
        self._used: dict[Optional[int], int] = {}
        #: rank -> high-water mark of ``_used``
        self._peak: dict[Optional[int], int] = {}
        if limit_bytes is not None:
            self.set_limit(limit_bytes)

    # -- configuration -------------------------------------------------------

    def set_limit(self, limit_bytes: Optional[int]) -> None:
        """Install (or clear, with ``None``) the per-rank byte limit."""
        with self._lock:
            self.limit_bytes = None if limit_bytes is None else int(limit_bytes)
            self.active = self.limit_bytes is not None

    def reset(self) -> None:
        """Zero the ledger and high-water marks (limit unchanged)."""
        with self._lock:
            self._used.clear()
            self._peak.clear()

    # -- ledger --------------------------------------------------------------

    def reserve(
        self, nbytes: int, what: str = "staging", rank: Optional[int] = None
    ) -> None:
        """Charge ``nbytes`` to ``rank``; raise typed when over the limit."""
        if not self.active:
            return
        nbytes = int(nbytes)
        if nbytes <= 0:
            return
        with self._lock:
            limit = self.limit_bytes
            have = self._used.get(rank, 0)
            if limit is not None and have + nbytes > limit:
                who = "driver" if rank is None else f"rank {rank}"
                raise _budget_error()(
                    f"{what}: reserving {fmt_bytes(nbytes)} would put {who} at "
                    f"{fmt_bytes(have + nbytes)} of the "
                    f"{fmt_bytes(limit)} DDR_MEM_BUDGET_MB staging budget"
                )
            used = have + nbytes
            self._used[rank] = used
            if used > self._peak.get(rank, 0):
                self._peak[rank] = used

    def release(self, nbytes: int, rank: Optional[int] = None) -> None:
        if not self.active:
            return
        nbytes = int(nbytes)
        if nbytes <= 0:
            return
        with self._lock:
            self._used[rank] = max(0, self._used.get(rank, 0) - nbytes)

    # -- inspection ----------------------------------------------------------

    def used_bytes(self, rank: Optional[int] = None) -> int:
        with self._lock:
            return self._used.get(rank, 0)

    def total_used_bytes(self) -> int:
        with self._lock:
            return sum(self._used.values())

    def peak_bytes(self, rank: Optional[int] = None) -> int:
        """High-water mark — for ``rank``, or the worst rank when omitted
        (comparable to the per-rank limit)."""
        with self._lock:
            if rank is not None:
                return self._peak.get(rank, 0)
            return max(self._peak.values(), default=0)

    def headroom_bytes(self, rank: Optional[int] = None) -> Optional[int]:
        """Bytes left under the limit for ``rank`` (``None`` when unlimited)."""
        with self._lock:
            if self.limit_bytes is None:
                return None
            return max(0, self.limit_bytes - self._used.get(rank, 0))


def _limit_from_env() -> Optional[int]:
    raw = os.environ.get("DDR_MEM_BUDGET_MB", "").strip()
    if not raw:
        return None
    return int(float(raw) * 1024 * 1024)


#: Process-wide singleton every staging path consults (all SPMD ranks are
#: threads of this process).  Seeded from ``DDR_MEM_BUDGET_MB`` at import.
MEMORY_BUDGET = MemoryBudget(_limit_from_env())


def memory_budget() -> MemoryBudget:
    return MEMORY_BUDGET


@contextmanager
def budget_scope(
    limit_mb: Optional[float] = None, *, limit_bytes: Optional[int] = None
) -> Iterator[MemoryBudget]:
    """Install a budget limit within a block, restoring the prior ledger.

    ``budget_scope(64)`` caps DDR staging at 64 MiB per rank for the block;
    ``budget_scope(None)`` disables the budget for the block (useful for
    carving audit regions out of a budgeted run).  The chaos harness and
    the memory benchmark sweep budgets with this rather than mutating the
    environment.
    """
    if limit_mb is not None and limit_bytes is not None:
        raise ValueError("pass limit_mb or limit_bytes, not both")
    if limit_mb is not None:
        limit_bytes = int(float(limit_mb) * 1024 * 1024)
    budget = MEMORY_BUDGET
    with budget._lock:
        prior_limit = budget.limit_bytes
        prior_used = dict(budget._used)
        prior_peak = dict(budget._peak)
    budget.reset()
    budget.set_limit(limit_bytes)
    try:
        yield budget
    finally:
        budget.set_limit(prior_limit)
        with budget._lock:
            budget._used = prior_used
            budget._peak = prior_peak


class MemoryAudit:
    """Result handle for :func:`auditing_memory`: ``measured_peak_bytes``
    is valid after the block exits."""

    __slots__ = ("baseline_bytes", "measured_peak_bytes")

    def __init__(self, baseline_bytes: int) -> None:
        self.baseline_bytes = baseline_bytes
        self.measured_peak_bytes = 0


@contextmanager
def auditing_memory() -> Iterator[MemoryAudit]:
    """Measure the real allocation peak of a block via :mod:`tracemalloc`.

    The measured number is process-wide (tracemalloc cannot split threads),
    so cross-checks against the analytic estimates compare it to the *sum*
    of per-rank ``peak_bytes`` plus workload buffers, not to a single
    rank's share.  Tracing is started only for the block when not already
    on, and the surrounding trace state is preserved.
    """
    started = not tracemalloc.is_tracing()
    if started:
        tracemalloc.start()
    baseline, _ = tracemalloc.get_traced_memory()
    tracemalloc.reset_peak()
    audit = MemoryAudit(baseline)
    try:
        yield audit
    finally:
        _, peak = tracemalloc.get_traced_memory()
        audit.measured_peak_bytes = max(0, peak - baseline)
        if started:
            tracemalloc.stop()
