"""Metrics-driven autoscaling for elastic redistribution.

The malleability stack gives three mechanisms — ``Communicator.spawn``,
``Redistributor.resize`` and the pipeline's ``on_load="resize"`` — but no
*policy*.  This module supplies it: an :class:`Autoscaler` consumes
:class:`~repro.obs.MetricsRegistry` signals (exchange seconds per epoch,
queue depth), smooths them with exponentially-weighted moving averages,
and recommends a rank-count target that the caller applies with
``ResilientRedistributor.resize`` (or folds into a pipeline
``resize_schedule``).

Separation of concerns mirrors the rest of the repo: the autoscaler never
talks to a communicator.  One rank (by convention rank 0) observes and
recommends, broadcasts the target, and *every* member calls ``resize`` —
the decision is data, the reconfiguration is collective.

``python -m repro autoscale`` demos the full loop: a redistribution
workload under a synthetic demand curve grows from 2 ranks to the
configured ceiling and drains back down, with spawned joiners entering and
shrunk leavers exiting mid-run, every epoch's output checked bitwise.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

import numpy as np

__all__ = ["AutoscalePolicy", "Autoscaler", "autoscale_demo"]

#: Registry names the autoscaler reads by default: the per-exchange span
#: histogram the tracer/pipeline emit, and a gauge-style counter callers
#: maintain for backlog (pending frames, mailbox depth, ...).
EXCHANGE_SPAN = "phase.redistribute"
QUEUE_GAUGE = "stream.queue_depth"


@dataclass(frozen=True)
class AutoscalePolicy:
    """Watermark policy: when to grow, when to shrink, and by how much.

    ``grow_exchange_s`` / ``shrink_exchange_s``
        High and low watermarks on the EWMA of exchange seconds per epoch.
        Above the high watermark the exchange itself is the bottleneck, so
        more ranks (smaller per-rank payloads) are recommended; below the
        low watermark the world is over-provisioned.
    ``grow_queue_depth``
        High watermark on the EWMA of queue depth (pending work items).
        Backlog growth recommends growing even while individual exchanges
        are cheap.  Shrinking additionally requires the backlog to sit
        below this watermark — never scale in while work is queueing.
    ``cooldown_epochs``
        Observed epochs that must pass after a resize before the next
        recommendation may differ from the current size; damps flapping
        (each reconfiguration costs a full data migration).
    ``step``
        Ranks added or removed per decision (gentle, reversible moves).
    ``ewma_alpha``
        Smoothing factor in (0, 1]; 1 reacts to the latest epoch only.
    """

    min_ranks: int = 1
    max_ranks: int = 16
    grow_exchange_s: float = 0.5
    shrink_exchange_s: float = 0.05
    grow_queue_depth: float = 4.0
    cooldown_epochs: int = 2
    step: int = 1
    ewma_alpha: float = 0.5

    def __post_init__(self) -> None:
        if not 1 <= self.min_ranks <= self.max_ranks:
            raise ValueError(
                f"need 1 <= min_ranks <= max_ranks, got "
                f"{self.min_ranks}..{self.max_ranks}"
            )
        if not 0 <= self.shrink_exchange_s < self.grow_exchange_s:
            raise ValueError(
                "need 0 <= shrink_exchange_s < grow_exchange_s, got "
                f"{self.shrink_exchange_s} / {self.grow_exchange_s}"
            )
        if self.grow_queue_depth < 0:
            raise ValueError("grow_queue_depth must be >= 0")
        if self.cooldown_epochs < 0:
            raise ValueError("cooldown_epochs must be >= 0")
        if self.step < 1:
            raise ValueError("step must be >= 1")
        if not 0 < self.ewma_alpha <= 1:
            raise ValueError("ewma_alpha must be in (0, 1]")


@dataclass
class AutoscaleDecision:
    """One recommendation, kept for post-mortems and the demo timeline."""

    epoch: int
    current: int
    target: int
    reason: str
    exchange_ewma: Optional[float]
    queue_ewma: Optional[float]


class Autoscaler:
    """EWMA observer + watermark recommender over resize-capable worlds."""

    def __init__(self, policy: Optional[AutoscalePolicy] = None) -> None:
        self.policy = policy or AutoscalePolicy()
        self.exchange_ewma: Optional[float] = None
        self.queue_ewma: Optional[float] = None
        self.epochs_observed = 0
        self.decisions: List[AutoscaleDecision] = []
        self._last_resize_epoch = 0
        # registry snapshot for delta-based per-epoch exchange time
        self._seen_exchange: Tuple[int, float] = (0, 0.0)

    # -- signal intake -------------------------------------------------------

    def observe(
        self,
        exchange_s: Optional[float] = None,
        queue_depth: Optional[float] = None,
    ) -> None:
        """Fold one epoch's raw signals into the EWMAs."""
        self.epochs_observed += 1
        if exchange_s is not None:
            self.exchange_ewma = self._ewma(self.exchange_ewma, exchange_s)
        if queue_depth is not None:
            self.queue_ewma = self._ewma(self.queue_ewma, queue_depth)

    def observe_registry(
        self,
        registry: Any,
        exchange_span: str = EXCHANGE_SPAN,
        queue_gauge: str = QUEUE_GAUGE,
    ) -> None:
        """One epoch's signals, read from a :class:`MetricsRegistry`.

        The exchange signal is the *delta* of the span histogram since the
        previous call (histograms are cumulative; the delta is this epoch's
        exchange seconds).  The queue signal is the current value of the
        ``queue_gauge`` counter, treated as a gauge.
        """
        exchange_s = None
        hist = registry.histograms.get(exchange_span)
        if hist is not None:
            seen_count, seen_total = self._seen_exchange
            if hist.count > seen_count:
                exchange_s = hist.total - seen_total
                self._seen_exchange = (hist.count, hist.total)
        queue_depth = registry.counters.get(queue_gauge)
        self.observe(exchange_s=exchange_s, queue_depth=queue_depth)

    def _ewma(self, current: Optional[float], value: float) -> float:
        if current is None:
            return float(value)
        alpha = self.policy.ewma_alpha
        return alpha * float(value) + (1 - alpha) * current

    # -- recommendation ------------------------------------------------------

    def recommend(self, current: int) -> int:
        """The rank count the world should run at, given the EWMAs.

        Pure function of observer state: returns ``current`` during the
        post-resize cooldown or when the signals sit between watermarks.
        The caller is responsible for broadcasting the target and invoking
        the (collective) resize; call :meth:`record_resize` once it lands.
        """
        policy = self.policy
        target = current
        reason = "steady"
        in_cooldown = (
            self.epochs_observed - self._last_resize_epoch
            < policy.cooldown_epochs
        )
        exchange_high = (
            self.exchange_ewma is not None
            and self.exchange_ewma > policy.grow_exchange_s
        )
        exchange_low = (
            self.exchange_ewma is not None
            and self.exchange_ewma < policy.shrink_exchange_s
        )
        queue_high = (
            self.queue_ewma is not None
            and self.queue_ewma > policy.grow_queue_depth
        )
        if in_cooldown:
            reason = "cooldown"
        elif exchange_high or queue_high:
            target = min(current + policy.step, policy.max_ranks)
            reason = "exchange_time" if exchange_high else "queue_depth"
        elif exchange_low and not queue_high:
            target = max(current - policy.step, policy.min_ranks)
            reason = "overprovisioned"
        if target == current and reason not in ("cooldown", "steady"):
            reason = f"{reason}_at_limit"
        self.decisions.append(
            AutoscaleDecision(
                epoch=self.epochs_observed,
                current=current,
                target=target,
                reason=reason,
                exchange_ewma=self.exchange_ewma,
                queue_ewma=self.queue_ewma,
            )
        )
        return target

    def record_resize(self, new_n: int) -> None:
        """Start the cooldown window after an applied reconfiguration."""
        self._last_resize_epoch = self.epochs_observed


# -- demo: the full observe -> recommend -> resize loop -----------------------


@dataclass
class _DemoSpec:
    """Pickle-friendly demo parameters (crosses the fork on spawn)."""

    side: int
    epochs: int
    policy: AutoscalePolicy
    queue_curve: Tuple[float, ...]
    timeline: List[str] = field(default_factory=list)


def _demo_slab(rank: int, n: int):
    from .core.box import Box

    side = _DEMO_SIDE[0]
    base, extra = divmod(side, n)
    start = rank * base + min(rank, extra)
    rows = base + (1 if rank < extra else 0)
    return Box((0, start), (side, rows)) if rows else None


#: The demo layout closure must be picklable by reference for the process
#: executor, so the side length travels through module state set per run.
_DEMO_SIDE = [0]


def _demo_field(side: int) -> np.ndarray:
    return np.arange(side * side, dtype=np.float32).reshape(side, side)


def _demo_rows(own) -> np.ndarray:
    side = _DEMO_SIDE[0]
    return _demo_field(side)[own.offset[1] : own.offset[1] + own.dims[1], :]


def _demo_epochs(rr, own, data, spec: _DemoSpec) -> dict:
    """The shared epoch loop: members continue it, joiners enter it.

    Rank 0 owns the autoscaler and a :class:`MetricsRegistry`; every epoch
    it folds the measured exchange time and the synthetic demand curve into
    the registry, asks for a recommendation, and broadcasts it.  All
    members then call ``ResilientRedistributor.resize`` together — leavers
    return out of the loop, joiners enter it via the resize worker at the
    members' epoch.
    """
    from .obs import MetricsRegistry

    scaler = Autoscaler(spec.policy) if rr.comm.rank == 0 else None
    registry = MetricsRegistry() if scaler else None
    resizes = 0
    while rr.epoch < spec.epochs:
        epoch_index = rr.epoch  # before the exchange bumps it
        start = time.perf_counter()
        out = rr.gather_need(data)
        elapsed = time.perf_counter() - start
        expect = _demo_rows(own)
        if not np.array_equal(out, expect):
            raise AssertionError(f"epoch {epoch_index} output diverged")
        target = rr.comm.size
        if scaler is not None:
            registry.observe(EXCHANGE_SPAN, elapsed, rank=0)
            registry.counters[QUEUE_GAUGE] = spec.queue_curve[
                min(epoch_index, len(spec.queue_curve) - 1)
            ]
            scaler.observe_registry(registry)
            target = scaler.recommend(rr.comm.size)
            decision = scaler.decisions[-1]
            spec.timeline.append(
                f"epoch {decision.epoch:>2}: ranks {decision.current} "
                f"queue {decision.queue_ewma:5.2f} "
                f"exch {1e3 * (decision.exchange_ewma or 0):7.3f} ms "
                f"-> {decision.target} ({decision.reason})"
            )
        target = rr.comm.bcast(target, root=0)
        if target != rr.comm.size and rr.epoch < spec.epochs:
            result = rr.resize(
                target, out, _demo_slab, worker=_demo_join, worker_args=(spec,)
            )
            resizes += 1
            if not result.member:
                return {"rank": None, "resizes": resizes, "timeline": []}
            if scaler is not None:
                scaler.record_resize(target)
            own = result.own
            rr.setup(own=[own], need=own)
            data = _demo_rows(own).copy()
        else:
            data = out
    return {
        "rank": rr.comm.rank,
        "resizes": resizes,
        "final_size": rr.comm.size,
        "timeline": spec.timeline if scaler is not None else [],
    }


def _demo_join(rr, result, spec: _DemoSpec) -> dict:
    """Spawned-rank entry: verify the migrated slab, then join the loop."""
    _DEMO_SIDE[0] = spec.side
    own = result.own
    data = result.data.reshape(own.np_shape()).copy()
    if not np.array_equal(data, _demo_rows(own)):
        raise AssertionError("joiner received wrong migrated data")
    rr.setup(own=[own], need=own)
    return _demo_epochs(rr, own, data, spec)


def _demo_worker(comm, spec: _DemoSpec) -> dict:
    from .resilience import ResilientRedistributor

    _DEMO_SIDE[0] = spec.side
    rr = ResilientRedistributor(comm, 2, np.float32)
    own = _demo_slab(comm.rank, comm.size)
    rr.setup(own=[own], need=own)
    data = _demo_rows(own).copy()
    return _demo_epochs(rr, own, data, spec)


def autoscale_demo(
    side: int = 96,
    epochs: int = 14,
    start_ranks: int = 2,
    max_ranks: int = 5,
    executor: Optional[str] = None,
) -> str:
    """Run the observe/recommend/resize loop end to end; returns a report.

    A hump-shaped synthetic demand curve drives queue depth above the grow
    watermark and back below it, so the world grows rank by rank (spawning
    joiners mid-run) and then drains back down (splitting leavers off),
    with every epoch's redistribution checked bitwise against the truth.
    """
    from .mpisim.executor import run_spmd

    policy = AutoscalePolicy(
        min_ranks=min(start_ranks, 2),
        max_ranks=max_ranks,
        grow_exchange_s=10.0,  # queue depth drives growth in the demo
        shrink_exchange_s=5.0,
        grow_queue_depth=4.0,
        cooldown_epochs=1,
        step=1,
        ewma_alpha=0.6,
    )
    peak = max(2, epochs // 2)
    curve = tuple(
        8.0 if epoch < peak else 0.0 for epoch in range(epochs)
    )
    spec = _DemoSpec(
        side=side, epochs=epochs, policy=policy, queue_curve=curve
    )
    results = run_spmd(
        start_ranks,
        _demo_worker,
        spec,
        executor=executor,
        spawn_slots=max(0, max_ranks - start_ranks),
    )
    summaries = [r for r in results if isinstance(r, dict)]
    root = next(r for r in summaries if r.get("rank") == 0)
    lines = [
        f"autoscale demo: {side}x{side} float32, {epochs} epochs, "
        f"{start_ranks} -> [{policy.min_ranks}, {policy.max_ranks}] ranks",
        *root["timeline"],
        f"resizes applied: {root['resizes']}, final world size: "
        f"{root['final_size']}; every epoch bitwise-correct",
    ]
    return "\n".join(lines)
