"""Minimal RFC 6455 WebSocket framing — enough for MJPEG push streams.

No external dependency: the edge server and the synthetic smoke viewers
both speak through these helpers.  Server frames are unmasked, client
frames are masked, as the RFC requires; fragmentation is not produced and
not accepted (every served frame fits one message).
"""

from __future__ import annotations

import base64
import hashlib
import os
import struct
from typing import Optional

__all__ = [
    "OP_BINARY",
    "OP_CLOSE",
    "OP_PING",
    "OP_PONG",
    "OP_TEXT",
    "accept_key",
    "decode_frame",
    "encode_frame",
]

#: RFC 6455 §1.3 handshake GUID.
WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA


def accept_key(client_key: str) -> str:
    """Sec-WebSocket-Accept for a client's Sec-WebSocket-Key."""
    digest = hashlib.sha1((client_key.strip() + WS_GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def encode_frame(payload: bytes, opcode: int = OP_BINARY, mask: bool = False) -> bytes:
    """One complete (FIN) frame around ``payload``."""
    header = bytearray([0x80 | (opcode & 0x0F)])
    length = len(payload)
    mask_bit = 0x80 if mask else 0x00
    if length < 126:
        header.append(mask_bit | length)
    elif length < 1 << 16:
        header.append(mask_bit | 126)
        header += struct.pack(">H", length)
    else:
        header.append(mask_bit | 127)
        header += struct.pack(">Q", length)
    if not mask:
        return bytes(header) + payload
    key = os.urandom(4)
    header += key
    masked = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return bytes(header) + masked


def decode_frame(buffer: bytes) -> Optional[tuple[int, bytes, int]]:
    """Parse one frame from the head of ``buffer``.

    Returns ``(opcode, payload, bytes_consumed)``, or ``None`` when the
    buffer does not yet hold a complete frame.  Raises ``ValueError`` on
    fragmented messages (FIN=0), which this edge never produces or accepts.
    """
    if len(buffer) < 2:
        return None
    b0, b1 = buffer[0], buffer[1]
    if not b0 & 0x80:
        raise ValueError("fragmented WebSocket messages are not supported")
    opcode = b0 & 0x0F
    masked = bool(b1 & 0x80)
    length = b1 & 0x7F
    offset = 2
    if length == 126:
        if len(buffer) < offset + 2:
            return None
        (length,) = struct.unpack_from(">H", buffer, offset)
        offset += 2
    elif length == 127:
        if len(buffer) < offset + 8:
            return None
        (length,) = struct.unpack_from(">Q", buffer, offset)
        offset += 8
    key = b""
    if masked:
        if len(buffer) < offset + 4:
            return None
        key = buffer[offset : offset + 4]
        offset += 4
    if len(buffer) < offset + length:
        return None
    payload = buffer[offset : offset + length]
    if masked:
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return opcode, payload, offset + length
