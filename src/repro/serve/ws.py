"""Minimal RFC 6455 WebSocket framing — enough for MJPEG push streams.

No external dependency: the edge server and the synthetic smoke viewers
both speak through these helpers.  Server frames are unmasked, client
frames are masked, as the RFC requires; fragmentation is not produced and
not accepted (every served frame fits one message).
"""

from __future__ import annotations

import base64
import hashlib
import os
import struct
from typing import Optional

__all__ = [
    "CLOSE_NORMAL",
    "CLOSE_PROTOCOL_ERROR",
    "CLOSE_TOO_BIG",
    "CLOSE_TRY_AGAIN_LATER",
    "OP_BINARY",
    "OP_CLOSE",
    "OP_PING",
    "OP_PONG",
    "OP_TEXT",
    "WsProtocolError",
    "accept_key",
    "decode_frame",
    "encode_close",
    "encode_frame",
]

#: RFC 6455 §1.3 handshake GUID.
WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

#: Opcodes this edge produces or accepts; everything else is reserved.
KNOWN_OPCODES = frozenset({OP_TEXT, OP_BINARY, OP_CLOSE, OP_PING, OP_PONG})
CONTROL_OPCODES = frozenset({OP_CLOSE, OP_PING, OP_PONG})

#: RFC 6455 §7.4.1 close codes.
CLOSE_NORMAL = 1000
CLOSE_PROTOCOL_ERROR = 1002
CLOSE_TOO_BIG = 1009
CLOSE_TRY_AGAIN_LATER = 1013


class WsProtocolError(ValueError):
    """A malformed or policy-violating frame, carrying the RFC 6455 close
    code the peer should receive (1002 protocol error, 1009 too big).

    Subclasses ``ValueError`` so pre-existing ``except ValueError`` drains
    keep working; new callers read :attr:`code` to send a proper close
    frame instead of silently dropping the connection.
    """

    def __init__(self, code: int, message: str) -> None:
        super().__init__(message)
        self.code = code


def accept_key(client_key: str) -> str:
    """Sec-WebSocket-Accept for a client's Sec-WebSocket-Key."""
    digest = hashlib.sha1((client_key.strip() + WS_GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def encode_frame(payload: bytes, opcode: int = OP_BINARY, mask: bool = False) -> bytes:
    """One complete (FIN) frame around ``payload``."""
    header = bytearray([0x80 | (opcode & 0x0F)])
    length = len(payload)
    mask_bit = 0x80 if mask else 0x00
    if length < 126:
        header.append(mask_bit | length)
    elif length < 1 << 16:
        header.append(mask_bit | 126)
        header += struct.pack(">H", length)
    else:
        header.append(mask_bit | 127)
        header += struct.pack(">Q", length)
    if not mask:
        return bytes(header) + payload
    key = os.urandom(4)
    header += key
    masked = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return bytes(header) + masked


def encode_close(code: int = CLOSE_NORMAL, reason: bytes = b"", mask: bool = False) -> bytes:
    """A close frame carrying an RFC 6455 status code (and short reason)."""
    return encode_frame(struct.pack(">H", code) + reason[:123], OP_CLOSE, mask=mask)


def decode_frame(
    buffer: bytes, max_payload: Optional[int] = None
) -> Optional[tuple[int, bytes, int]]:
    """Parse one frame from the head of ``buffer``.

    Returns ``(opcode, payload, bytes_consumed)``, or ``None`` when the
    buffer does not yet hold a complete frame.  Raises
    :class:`WsProtocolError` on fragmented messages (FIN=0 or continuation
    frames, which this edge never produces or accepts), reserved RSV bits,
    reserved/unknown opcodes, oversized control frames, and — when
    ``max_payload`` is given — any frame whose *declared* length exceeds it
    (raised before the payload is buffered, so a hostile length header
    cannot make the server accumulate the bytes first).
    """
    if len(buffer) < 2:
        return None
    b0, b1 = buffer[0], buffer[1]
    if b0 & 0x70:
        raise WsProtocolError(
            CLOSE_PROTOCOL_ERROR, "reserved RSV bits set without an extension"
        )
    if not b0 & 0x80:
        raise WsProtocolError(
            CLOSE_PROTOCOL_ERROR, "fragmented WebSocket messages are not supported"
        )
    opcode = b0 & 0x0F
    if opcode not in KNOWN_OPCODES:
        raise WsProtocolError(
            CLOSE_PROTOCOL_ERROR, f"reserved/unknown opcode 0x{opcode:x}"
        )
    masked = bool(b1 & 0x80)
    length = b1 & 0x7F
    offset = 2
    if length == 126:
        if len(buffer) < offset + 2:
            return None
        (length,) = struct.unpack_from(">H", buffer, offset)
        offset += 2
    elif length == 127:
        if len(buffer) < offset + 8:
            return None
        (length,) = struct.unpack_from(">Q", buffer, offset)
        offset += 8
    if opcode in CONTROL_OPCODES and length > 125:
        raise WsProtocolError(
            CLOSE_PROTOCOL_ERROR, f"control frame payload {length} exceeds 125 bytes"
        )
    if max_payload is not None and length > max_payload:
        raise WsProtocolError(
            CLOSE_TOO_BIG, f"frame payload {length} exceeds the {max_payload}-byte cap"
        )
    key = b""
    if masked:
        if len(buffer) < offset + 4:
            return None
        key = buffer[offset : offset + 4]
        offset += 4
    if len(buffer) < offset + length:
        return None
    payload = buffer[offset : offset + length]
    if masked:
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return opcode, payload, offset + length
