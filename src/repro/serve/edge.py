"""The web-facing streaming edge: HTTP + WebSocket MJPEG over asyncio.

One :class:`StreamEdge` serves a :class:`~repro.serve.hub.FrameHub` to
browsers and synthetic load clients alike, with no dependencies beyond the
standard library:

* ``GET /``            — an HTML page embedding the MJPEG stream;
* ``GET /stats``       — hub statistics as JSON;
* ``GET /frame``       — one JPEG (waits for the next published frame);
* ``GET /mjpeg``       — ``multipart/x-mixed-replace`` MJPEG, one part per
                         frame with ``X-Frame-Index`` headers;
* ``GET /ws``          — RFC 6455 upgrade; each binary message is a 4-byte
                         big-endian frame index followed by the JPEG.

Every route accepts the layout query parameters ``x``/``y``/``w``/``h``/
``mip``/``parts`` (see :class:`~repro.serve.layout.ConsumerLayout`).
Backpressure is per viewer: the hub's coalescing queue keeps the newest
frames, the transport ``drain()`` paces the socket, and a disconnect —
typed as :class:`~repro.serve.hub.ViewerDisconnectedError` — unregisters
the viewer without disturbing anyone else.
"""

from __future__ import annotations

import asyncio
import json
import struct
import threading
from typing import Optional
from urllib.parse import parse_qsl, urlsplit

from ..obs.tracer import TRACER
from .hub import FrameHub, ViewerDisconnectedError, ViewerQueue
from .layout import ConsumerLayout
from .ws import OP_CLOSE, OP_PING, OP_PONG, accept_key, decode_frame, encode_frame

__all__ = ["StreamEdge"]

MJPEG_BOUNDARY = "ddrframe"

INDEX_HTML = """<!doctype html>
<html><head><title>repro serve</title></head>
<body style="background:#111;color:#eee;font-family:monospace">
<h3>Automated Dynamic Data Redistribution &mdash; live stream</h3>
<img src="/mjpeg{query}" alt="stream">
<p><a href="/stats" style="color:#8cf">/stats</a></p>
</body></html>
"""

_DISCONNECTS = (
    ConnectionResetError,
    BrokenPipeError,
    ConnectionAbortedError,
    asyncio.IncompleteReadError,
    ViewerDisconnectedError,
)


class _AsyncViewer:
    """Bridges a hub ViewerQueue (threaded) onto the edge's event loop."""

    def __init__(self, hub: FrameHub, layout: ConsumerLayout) -> None:
        self._loop = asyncio.get_running_loop()
        self._event = asyncio.Event()
        self.queue: ViewerQueue = hub.register(layout, on_frame=self._wake)
        self._hub = hub

    def _wake(self) -> None:
        # Called from the producer thread after every push/close.
        self._loop.call_soon_threadsafe(self._event.set)

    async def next_frame(self, timeout: Optional[float] = None):
        """The next buffered frame; None on timeout; typed error on close."""
        while True:
            self._event.clear()
            frame = self.queue.try_pop()  # raises when closed and drained
            if frame is not None:
                return frame
            try:
                await asyncio.wait_for(self._event.wait(), timeout)
            except asyncio.TimeoutError:
                return None

    def release(self) -> None:
        self._hub.unregister(self.queue)


class StreamEdge:
    """Asyncio server fronting one hub.  ``start()`` binds (port 0 picks a
    free port, published back on :attr:`port`); ``serve_in_thread()`` runs
    the whole edge on a background event loop for synchronous drivers."""

    def __init__(
        self,
        hub: FrameHub,
        host: str = "127.0.0.1",
        port: int = 0,
        frame_timeout_s: float = 30.0,
    ) -> None:
        self.hub = hub
        self.host = host
        self.port = port
        self.frame_timeout_s = frame_timeout_s
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def serve_in_thread(self) -> None:
        """Run the edge on a daemon thread with its own event loop."""
        started = threading.Event()

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            loop.run_until_complete(self.start())
            started.set()
            loop.run_forever()
            loop.run_until_complete(self.stop())
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True)
            )
            loop.close()

        self._thread = threading.Thread(target=run, name="serve-edge", daemon=True)
        self._thread.start()
        if not started.wait(timeout=10.0):
            raise RuntimeError("edge server failed to start within 10s")

    def shutdown(self) -> None:
        """Stop the background thread started by :meth:`serve_in_thread`."""
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    # -- request handling ----------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await asyncio.wait_for(reader.readline(), timeout=10.0)
            parts = request.decode("latin-1").split()
            if len(parts) < 2 or parts[0] != "GET":
                await self._plain(writer, 405, "only GET is served here\n")
                return
            target = urlsplit(parts[1])
            params = dict(parse_qsl(target.query))
            headers = await self._read_headers(reader)
            path = target.path
            if path == "/":
                query = f"?{target.query}" if target.query else ""
                await self._plain(
                    writer, 200, INDEX_HTML.format(query=query), "text/html"
                )
            elif path == "/stats":
                await self._plain(
                    writer, 200, json.dumps(self.hub.stats(), indent=2) + "\n",
                    "application/json",
                )
            elif path == "/frame":
                await self._serve_single(writer, params)
            elif path == "/mjpeg":
                await self._serve_mjpeg(reader, writer, params)
            elif path == "/ws":
                await self._serve_ws(reader, writer, headers, params)
            else:
                await self._plain(writer, 404, f"no route {path}\n")
        except _DISCONNECTS:
            self.hub.metrics.incr("serve.transport_disconnects")
        except (asyncio.TimeoutError, asyncio.CancelledError):
            # Cancellation only reaches here on edge shutdown; finishing the
            # task normally keeps the stdlib stream callback quiet.
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (Exception, asyncio.CancelledError):
                pass

    @staticmethod
    async def _read_headers(reader: asyncio.StreamReader) -> dict[str, str]:
        headers: dict[str, str] = {}
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout=10.0)
            if line in (b"\r\n", b"\n", b""):
                return headers
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()

    @staticmethod
    async def _plain(
        writer: asyncio.StreamWriter,
        status: int,
        body: str,
        content_type: str = "text/plain",
    ) -> None:
        text = {200: "OK", 404: "Not Found", 405: "Method Not Allowed",
                400: "Bad Request"}.get(status, "OK")
        payload = body.encode()
        writer.write(
            f"HTTP/1.1 {status} {text}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n\r\n".encode() + payload
        )
        await writer.drain()

    def _layout(self, params: dict[str, str]) -> ConsumerLayout:
        return ConsumerLayout.from_query(params, self.hub.nx, self.hub.ny)

    async def _serve_single(
        self, writer: asyncio.StreamWriter, params: dict[str, str]
    ) -> None:
        viewer = _AsyncViewer(self.hub, self._layout(params))
        try:
            frame = await viewer.next_frame(timeout=self.frame_timeout_s)
            if frame is None:
                await self._plain(writer, 404, "no frame published in time\n")
                return
            writer.write(
                "HTTP/1.1 200 OK\r\n"
                "Content-Type: image/jpeg\r\n"
                f"Content-Length: {len(frame.jpeg)}\r\n"
                f"X-Frame-Index: {frame.index}\r\n"
                "Connection: close\r\n\r\n".encode() + frame.jpeg
            )
            await writer.drain()
        finally:
            viewer.release()

    async def _serve_mjpeg(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        params: dict[str, str],
    ) -> None:
        viewer = _AsyncViewer(self.hub, self._layout(params))

        async def watch_eof() -> None:
            # A write to a half-closed socket only fails on the *second*
            # attempt; reading EOF notices the client leaving immediately.
            try:
                while await reader.read(65536):
                    pass
            except (_DISCONNECTS + (asyncio.CancelledError,)):
                pass
            finally:
                viewer.queue.close()

        eof_task = asyncio.ensure_future(watch_eof())
        span = TRACER.span(
            "serve.viewer", transport="mjpeg", viewer=viewer.queue.viewer_id,
            layout=viewer.queue.layout.describe(),
        )
        try:
            with span:
                writer.write(
                    "HTTP/1.1 200 OK\r\n"
                    "Content-Type: multipart/x-mixed-replace; "
                    f"boundary={MJPEG_BOUNDARY}\r\n"
                    "Connection: close\r\n\r\n".encode()
                )
                await writer.drain()
                while True:
                    frame = await viewer.next_frame(timeout=self.frame_timeout_s)
                    if frame is None:
                        break  # idle too long; drop the stream
                    writer.write(
                        f"--{MJPEG_BOUNDARY}\r\n"
                        "Content-Type: image/jpeg\r\n"
                        f"Content-Length: {len(frame.jpeg)}\r\n"
                        f"X-Frame-Index: {frame.index}\r\n\r\n".encode()
                        + frame.jpeg + b"\r\n"
                    )
                    await writer.drain()  # per-viewer backpressure
        except _DISCONNECTS:
            self.hub.metrics.incr("serve.viewer_disconnects")
        finally:
            eof_task.cancel()
            viewer.release()

    async def _serve_ws(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        headers: dict[str, str],
        params: dict[str, str],
    ) -> None:
        key = headers.get("sec-websocket-key")
        if key is None or "websocket" not in headers.get("upgrade", "").lower():
            await self._plain(writer, 400, "expected a WebSocket upgrade\n")
            return
        writer.write(
            "HTTP/1.1 101 Switching Protocols\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Accept: {accept_key(key)}\r\n\r\n".encode()
        )
        await writer.drain()
        viewer = _AsyncViewer(self.hub, self._layout(params))
        closed = asyncio.Event()

        async def read_client() -> None:
            # Drain client frames: answer pings, honour close, ignore rest.
            buffer = b""
            try:
                while not closed.is_set():
                    chunk = await reader.read(4096)
                    if not chunk:
                        break
                    buffer += chunk
                    while (parsed := decode_frame(buffer)) is not None:
                        opcode, payload, consumed = parsed
                        buffer = buffer[consumed:]
                        if opcode == OP_CLOSE:
                            return
                        if opcode == OP_PING:
                            writer.write(encode_frame(payload, OP_PONG))
                            await writer.drain()
            except (_DISCONNECTS + (ValueError,)):
                pass
            finally:
                closed.set()
                viewer.queue.close()

        reader_task = asyncio.ensure_future(read_client())
        span = TRACER.span(
            "serve.viewer", transport="ws", viewer=viewer.queue.viewer_id,
            layout=viewer.queue.layout.describe(),
        )
        try:
            with span:
                while not closed.is_set():
                    frame = await viewer.next_frame(timeout=self.frame_timeout_s)
                    if frame is None:
                        break
                    writer.write(
                        encode_frame(struct.pack(">I", frame.index) + frame.jpeg)
                    )
                    await writer.drain()
        except _DISCONNECTS:
            self.hub.metrics.incr("serve.viewer_disconnects")
        finally:
            closed.set()
            reader_task.cancel()
            viewer.release()
