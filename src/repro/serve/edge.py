"""The web-facing streaming edge: HTTP + WebSocket MJPEG over asyncio.

One :class:`StreamEdge` serves a :class:`~repro.serve.hub.FrameHub` to
browsers and synthetic load clients alike, with no dependencies beyond the
standard library:

* ``GET /``            — an HTML page embedding the MJPEG stream;
* ``GET /stats``       — hub statistics as JSON;
* ``GET /healthz``     — liveness: 200 while the hub is open;
* ``GET /readyz``      — readiness: 503 while draining or when the
                         producer-stall circuit breaker is open;
* ``GET /frame``       — one JPEG (waits for the next published frame;
                         serves the last-good frame with ``X-Frame-Stale``
                         when the producer has stalled);
* ``GET /mjpeg``       — ``multipart/x-mixed-replace`` MJPEG, one part per
                         frame with ``X-Frame-Index`` headers;
* ``GET /ws``          — RFC 6455 upgrade; each binary message is a 4-byte
                         big-endian frame index followed by the JPEG.

Every route accepts the layout query parameters ``x``/``y``/``w``/``h``/
``mip``/``parts`` (see :class:`~repro.serve.layout.ConsumerLayout`).

The edge assumes *hostile* clients (:class:`EdgeLimits`): header parsing
is bounded in lines, bytes, and wall-clock (408 on a slow-loris drip),
concurrent connections are capped (503 + ``Retry-After``), WebSocket
frames are bounded in declared payload size (close 1009), a never-reading
consumer trips a write-stall timeout instead of pinning the handler
forever, and hub admission refusals surface as typed 429/503 responses.
Backpressure is per viewer: the hub's coalescing queue keeps the newest
frames, the transport ``drain()`` paces the socket, and a disconnect —
typed as :class:`~repro.serve.hub.ViewerDisconnectedError` — unregisters
the viewer without disturbing anyone else.
"""

from __future__ import annotations

import asyncio
import json
import struct
import threading
from dataclasses import dataclass
from typing import Optional
from urllib.parse import parse_qsl, urlsplit

from ..obs.tracer import TRACER
from .hub import FrameHub, ViewerDisconnectedError, ViewerQueue, ViewerShedError
from .layout import ConsumerLayout
from .overload import AdmissionError
from .ws import (
    CLOSE_TRY_AGAIN_LATER,
    OP_CLOSE,
    OP_PING,
    OP_PONG,
    WsProtocolError,
    accept_key,
    decode_frame,
    encode_close,
    encode_frame,
)

__all__ = ["EdgeLimits", "StreamEdge"]

MJPEG_BOUNDARY = "ddrframe"

INDEX_HTML = """<!doctype html>
<html><head><title>repro serve</title></head>
<body style="background:#111;color:#eee;font-family:monospace">
<h3>Automated Dynamic Data Redistribution &mdash; live stream</h3>
<img src="/mjpeg{query}" alt="stream">
<p><a href="/stats" style="color:#8cf">/stats</a></p>
</body></html>
"""

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    429: "Too Many Requests",
    503: "Service Unavailable",
}

_DISCONNECTS = (
    ConnectionResetError,
    BrokenPipeError,
    ConnectionAbortedError,
    asyncio.IncompleteReadError,
    ViewerDisconnectedError,
)


@dataclass(frozen=True)
class EdgeLimits:
    """What one client connection may cost the edge.

    ``max_header_lines`` / ``max_header_bytes``
        Caps on header *count* and total header bytes (400 when exceeded) —
        the per-line read timeout alone lets a slow-loris client hold a
        connection forever by dripping one header per nine seconds.
    ``request_deadline_s``
        Wall-clock budget for the whole request head (request line plus
        headers); 408 when exceeded, however slowly the bytes arrive.
    ``max_conns``
        Concurrent-connection cap; beyond it new connections are refused
        with 503 + ``Retry-After`` before any parsing happens.
    ``max_ws_payload``
        Declared-length cap on inbound WebSocket frames (close 1009).
    ``write_stall_timeout_s``
        How long one socket write may sit in ``drain()`` before the client
        is declared dead (never-reading MJPEG/WS consumers).
    ``write_buffer_bytes``
        Transport write-buffer high-water mark, so a stalled client costs
        bounded memory and ``drain()`` exerts real backpressure.
    ``drain_timeout_s``
        Graceful-shutdown budget: how long to wait for in-flight handlers
        after closing the listener before cancelling them.
    ``sock_sndbuf``
        Optional ``SO_SNDBUF`` override (tests shrink it so write stalls
        trip deterministically).
    """

    max_header_lines: int = 64
    max_header_bytes: int = 16384
    request_deadline_s: float = 10.0
    max_conns: int = 256
    max_ws_payload: int = 1 << 20
    retry_after_s: float = 1.0
    write_stall_timeout_s: float = 15.0
    write_buffer_bytes: int = 256 * 1024
    drain_timeout_s: float = 5.0
    sock_sndbuf: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_header_lines < 1 or self.max_header_bytes < 64:
            raise ValueError("header caps are too small to parse any request")
        if self.request_deadline_s <= 0 or self.write_stall_timeout_s <= 0:
            raise ValueError("deadlines must be positive")
        if self.max_conns < 1:
            raise ValueError(f"max_conns must be >= 1, got {self.max_conns}")
        if self.max_ws_payload < 125:
            raise ValueError("max_ws_payload must fit control frames (>= 125)")


class _RequestError(Exception):
    """Parse/deadline violation answered with a typed status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class _WriteStall(Exception):
    """A socket write sat in drain() past the stall timeout."""


class _AsyncViewer:
    """Bridges a hub ViewerQueue (threaded) onto the edge's event loop."""

    def __init__(self, hub: FrameHub, layout: ConsumerLayout) -> None:
        self._loop = asyncio.get_running_loop()
        self._event = asyncio.Event()
        self.queue: ViewerQueue = hub.register(layout, on_frame=self._wake)
        self._hub = hub

    def _wake(self) -> None:
        # Called from the producer thread after every push/close.
        self._loop.call_soon_threadsafe(self._event.set)

    async def next_frame(self, timeout: Optional[float] = None):
        """The next buffered frame; None on timeout; typed error on close."""
        while True:
            self._event.clear()
            frame = self.queue.try_pop()  # raises when closed and drained
            if frame is not None:
                return frame
            try:
                await asyncio.wait_for(self._event.wait(), timeout)
            except asyncio.TimeoutError:
                return None

    def release(self) -> None:
        self._hub.unregister(self.queue)


class StreamEdge:
    """Asyncio server fronting one hub.  ``start()`` binds (port 0 picks a
    free port, published back on :attr:`port`); ``serve_in_thread()`` runs
    the whole edge on a background event loop for synchronous drivers."""

    def __init__(
        self,
        hub: FrameHub,
        host: str = "127.0.0.1",
        port: int = 0,
        frame_timeout_s: float = 30.0,
        limits: Optional[EdgeLimits] = None,
    ) -> None:
        self.hub = hub
        self.host = host
        self.port = port
        self.frame_timeout_s = frame_timeout_s
        self.limits = limits if limits is not None else EdgeLimits()
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._conns = 0  # live handler count (event-loop-confined)
        self._conn_tasks: set[asyncio.Task] = set()
        self._draining = False

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def serve_in_thread(self) -> None:
        """Run the edge on a daemon thread with its own event loop."""
        started = threading.Event()

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            loop.run_until_complete(self.start())
            started.set()
            loop.run_forever()
            loop.run_until_complete(self.stop())
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True)
            )
            loop.close()

        self._thread = threading.Thread(target=run, name="serve-edge", daemon=True)
        self._thread.start()
        if not started.wait(timeout=10.0):
            raise RuntimeError("edge server failed to start within 10s")

    async def _graceful_drain(self) -> None:
        """Stop accepting, end every stream cleanly, wait for handlers."""
        self._draining = True
        await self.stop()
        self.hub.drain()  # closes viewer queues; stream loops exit typed
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.limits.drain_timeout_s
        while self._conn_tasks and loop.time() < deadline:
            await asyncio.sleep(0.01)
        for task in list(self._conn_tasks):
            task.cancel()

    def shutdown(self, drain: bool = True) -> None:
        """Stop the background thread started by :meth:`serve_in_thread`.

        With ``drain=True`` (default) the edge first refuses new
        connections, closes every viewer queue so in-flight streams end
        cleanly, and waits up to ``limits.drain_timeout_s`` for handlers to
        finish before cancelling stragglers.
        """
        if self._loop is not None and self._loop.is_running() and drain:
            future = asyncio.run_coroutine_threadsafe(
                self._graceful_drain(), self._loop
            )
            try:
                future.result(timeout=self.limits.drain_timeout_s + 5.0)
            except (Exception, TimeoutError):  # noqa: BLE001 - best effort
                pass
        if self._loop is not None and not self._loop.is_closed():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self._loop = None

    # -- introspection (tests, chaos harness) --------------------------------

    def connection_count(self) -> int:
        return self._conns

    def task_count(self) -> int:
        """Live (not-done) tasks on the edge loop — leak detection."""
        if self._loop is None or not self._loop.is_running():
            return 0

        async def count() -> int:
            return sum(1 for t in asyncio.all_tasks() if not t.done())

        return asyncio.run_coroutine_threadsafe(count(), self._loop).result(
            timeout=5.0
        )

    # -- request handling ----------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        limits = self.limits
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._conns += 1
        try:
            writer.transport.set_write_buffer_limits(
                high=limits.write_buffer_bytes
            )
            if limits.sock_sndbuf is not None:
                sock = writer.get_extra_info("socket")
                if sock is not None:
                    import socket as _socket

                    sock.setsockopt(
                        _socket.SOL_SOCKET, _socket.SO_SNDBUF, limits.sock_sndbuf
                    )
            if self._draining:
                await self._refuse(writer, 503, "edge is draining\n")
                return
            if self._conns > limits.max_conns:
                self.hub.metrics.incr("serve.conns_rejected")
                await self._refuse(
                    writer, 503, f"connection cap reached ({limits.max_conns})\n"
                )
                return
            deadline = asyncio.get_running_loop().time() + limits.request_deadline_s
            request = await self._read_line(reader, deadline)
            parts = request.decode("latin-1").split()
            if len(parts) < 2 or parts[0] != "GET":
                await self._plain(writer, 405, "only GET is served here\n")
                return
            target = urlsplit(parts[1])
            params = dict(parse_qsl(target.query))
            headers = await self._read_headers(reader, deadline)
            await self._dispatch(target, params, headers, reader, writer)
        except _RequestError as exc:
            self.hub.metrics.incr("serve.requests_rejected")
            await self._refuse(writer, exc.status, f"{exc}\n")
        except AdmissionError as exc:
            await self._refuse(
                writer, exc.status, f"{exc}\n",
                retry_after_s=exc.retry_after_s,
            )
        except ValueError as exc:
            self.hub.metrics.incr("serve.requests_rejected")
            await self._refuse(writer, 400, f"bad request: {exc}\n")
        except _WriteStall:
            self.hub.metrics.incr("serve.viewer_stalls")
        except _DISCONNECTS:
            self.hub.metrics.incr("serve.transport_disconnects")
        except (asyncio.TimeoutError, asyncio.CancelledError):
            # Cancellation only reaches here on edge shutdown; finishing the
            # task normally keeps the stdlib stream callback quiet.
            pass
        finally:
            self._conns -= 1
            if task is not None:
                self._conn_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (Exception, asyncio.CancelledError):
                pass

    async def _dispatch(
        self,
        target,
        params: dict[str, str],
        headers: dict[str, str],
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        path = target.path
        if path == "/":
            query = f"?{target.query}" if target.query else ""
            await self._plain(
                writer, 200, INDEX_HTML.format(query=query), "text/html"
            )
        elif path == "/stats":
            await self._plain(
                writer, 200, json.dumps(self.hub.stats(), indent=2) + "\n",
                "application/json",
            )
        elif path == "/healthz":
            alive = not self.hub.closed
            await self._plain(
                writer, 200 if alive else 503, "ok\n" if alive else "closed\n"
            )
        elif path == "/readyz":
            ready, reason = self.hub.ready()
            if self._draining:
                ready, reason = False, "draining"
            if ready:
                await self._plain(writer, 200, "ready\n")
            else:
                await self._refuse(writer, 503, f"{reason}\n")
        elif path == "/frame":
            await self._serve_single(writer, params)
        elif path == "/mjpeg":
            await self._serve_mjpeg(reader, writer, params)
        elif path == "/ws":
            await self._serve_ws(reader, writer, headers, params)
        else:
            await self._plain(writer, 404, f"no route {path}\n")

    # -- bounded request-head parsing ----------------------------------------

    @staticmethod
    async def _read_line(
        reader: asyncio.StreamReader, deadline: float
    ) -> bytes:
        """One header line within the overall request deadline."""
        remaining = deadline - asyncio.get_running_loop().time()
        if remaining <= 0:
            raise _RequestError(408, "request header deadline exceeded")
        try:
            return await asyncio.wait_for(reader.readline(), timeout=remaining)
        except asyncio.TimeoutError:
            raise _RequestError(408, "request header deadline exceeded") from None
        except ValueError:
            # StreamReader line-length overrun (a single unbounded line).
            raise _RequestError(400, "request header line too long") from None

    async def _read_headers(
        self, reader: asyncio.StreamReader, deadline: float
    ) -> dict[str, str]:
        """Parse headers under count/byte caps and the request deadline.

        A cooperative client is untouched; a slow-loris drip hits the
        deadline (408), and header floods hit the line or byte caps (400)
        no matter how patiently they are delivered.
        """
        limits = self.limits
        headers: dict[str, str] = {}
        total = 0
        for _ in range(limits.max_header_lines + 1):
            line = await self._read_line(reader, deadline)
            if line in (b"\r\n", b"\n", b""):
                return headers
            total += len(line)
            if total > limits.max_header_bytes:
                raise _RequestError(
                    400,
                    f"request headers exceed {limits.max_header_bytes} bytes",
                )
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        raise _RequestError(
            400, f"more than {limits.max_header_lines} request headers"
        )

    # -- responses -----------------------------------------------------------

    @staticmethod
    async def _plain(
        writer: asyncio.StreamWriter,
        status: int,
        body: str,
        content_type: str = "text/plain",
        extra_headers: Optional[dict[str, str]] = None,
    ) -> None:
        text = _STATUS_TEXT.get(status, "OK")
        payload = body.encode()
        head = [
            f"HTTP/1.1 {status} {text}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(payload)}",
        ]
        for name, value in (extra_headers or {}).items():
            head.append(f"{name}: {value}")
        head.append("Connection: close\r\n\r\n")
        writer.write("\r\n".join(head).encode() + payload)
        await writer.drain()

    async def _refuse(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: str,
        retry_after_s: Optional[float] = None,
    ) -> None:
        """A typed refusal; 429/503 always carry ``Retry-After``."""
        extra: dict[str, str] = {}
        if status in (429, 503):
            after = (
                retry_after_s if retry_after_s is not None
                else self.limits.retry_after_s
            )
            extra["Retry-After"] = str(max(1, round(after)))
        try:
            await self._plain(writer, status, body, extra_headers=extra)
        except _DISCONNECTS:
            pass

    async def _drain_writer(self, writer: asyncio.StreamWriter) -> None:
        """``drain()`` bounded by the write-stall timeout: a client that
        stopped reading is disconnected instead of pinning the handler.
        The transport is aborted (no lingering flush of bytes the client
        will never read), so the handler task ends promptly too."""
        try:
            await asyncio.wait_for(
                writer.drain(), timeout=self.limits.write_stall_timeout_s
            )
        except asyncio.TimeoutError:
            writer.transport.abort()
            raise _WriteStall("client stopped reading") from None

    def _layout(self, params: dict[str, str]) -> ConsumerLayout:
        return ConsumerLayout.from_query(params, self.hub.nx, self.hub.ny)

    # -- streaming routes ----------------------------------------------------

    async def _write_jpeg(
        self, writer: asyncio.StreamWriter, frame, stale: bool = False
    ) -> None:
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: image/jpeg\r\n"
            f"Content-Length: {len(frame.jpeg)}\r\n"
            f"X-Frame-Index: {frame.index}\r\n"
        )
        if stale:
            head += "X-Frame-Stale: 1\r\n"
        writer.write((head + "Connection: close\r\n\r\n").encode() + frame.jpeg)
        await self._drain_writer(writer)

    async def _serve_single(
        self, writer: asyncio.StreamWriter, params: dict[str, str]
    ) -> None:
        layout = self._layout(params)
        if self.hub.stalled():
            # Circuit breaker open: answer with the last-good frame at once
            # instead of hanging on a producer that has gone quiet.
            frame = self.hub.last_frame(layout)
            if frame is not None:
                self.hub.metrics.incr("serve.frames_stale_served")
                await self._write_jpeg(writer, frame, stale=True)
                return
        viewer = _AsyncViewer(self.hub, layout)
        try:
            frame = await viewer.next_frame(timeout=self.frame_timeout_s)
            if frame is None:
                frame = self.hub.last_frame(viewer.queue.layout)
                if frame is not None:
                    self.hub.metrics.incr("serve.frames_stale_served")
                    await self._write_jpeg(writer, frame, stale=True)
                    return
                await self._plain(writer, 404, "no frame published in time\n")
                return
            await self._write_jpeg(writer, frame)
        finally:
            viewer.release()

    async def _serve_mjpeg(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        params: dict[str, str],
    ) -> None:
        viewer = _AsyncViewer(self.hub, self._layout(params))

        async def watch_eof() -> None:
            # A write to a half-closed socket only fails on the *second*
            # attempt; reading EOF notices the client leaving immediately.
            try:
                while await reader.read(65536):
                    pass
            except (_DISCONNECTS + (asyncio.CancelledError,)):
                pass
            finally:
                viewer.queue.close()

        eof_task = asyncio.ensure_future(watch_eof())
        span = TRACER.span(
            "serve.viewer", transport="mjpeg", viewer=viewer.queue.viewer_id,
            layout=viewer.queue.layout.describe(),
        )
        try:
            with span:
                writer.write(
                    "HTTP/1.1 200 OK\r\n"
                    "Content-Type: multipart/x-mixed-replace; "
                    f"boundary={MJPEG_BOUNDARY}\r\n"
                    "Connection: close\r\n\r\n".encode()
                )
                await self._drain_writer(writer)
                while True:
                    frame = await viewer.next_frame(timeout=self.frame_timeout_s)
                    if frame is None:
                        break  # idle too long; drop the stream
                    writer.write(
                        f"--{MJPEG_BOUNDARY}\r\n"
                        "Content-Type: image/jpeg\r\n"
                        f"Content-Length: {len(frame.jpeg)}\r\n"
                        f"X-Frame-Index: {frame.index}\r\n\r\n".encode()
                        + frame.jpeg + b"\r\n"
                    )
                    await self._drain_writer(writer)  # per-viewer backpressure
        except ViewerShedError:
            self.hub.metrics.incr("serve.viewer_shed_closes")
        except _WriteStall:
            self.hub.metrics.incr("serve.viewer_stalls")
        except _DISCONNECTS:
            self.hub.metrics.incr("serve.viewer_disconnects")
        finally:
            eof_task.cancel()
            viewer.release()

    async def _serve_ws(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        headers: dict[str, str],
        params: dict[str, str],
    ) -> None:
        key = headers.get("sec-websocket-key")
        if key is None or "websocket" not in headers.get("upgrade", "").lower():
            await self._plain(writer, 400, "expected a WebSocket upgrade\n")
            return
        # Register before upgrading so admission refusals can still answer
        # with a plain typed 429/503 instead of a mid-protocol close.
        viewer = _AsyncViewer(self.hub, self._layout(params))
        closed = asyncio.Event()
        try:
            writer.write(
                "HTTP/1.1 101 Switching Protocols\r\n"
                "Upgrade: websocket\r\n"
                "Connection: Upgrade\r\n"
                f"Sec-WebSocket-Accept: {accept_key(key)}\r\n\r\n".encode()
            )
            await self._drain_writer(writer)
        except BaseException:
            viewer.release()
            raise

        async def read_client() -> None:
            # Drain client frames: answer pings, honour close, reject
            # protocol violations with a proper close code, ignore rest.
            buffer = b""
            try:
                while not closed.is_set():
                    chunk = await reader.read(4096)
                    if not chunk:
                        break
                    buffer += chunk
                    while (
                        parsed := decode_frame(
                            buffer, max_payload=self.limits.max_ws_payload
                        )
                    ) is not None:
                        opcode, payload, consumed = parsed
                        buffer = buffer[consumed:]
                        if opcode == OP_CLOSE:
                            return
                        if opcode == OP_PING:
                            writer.write(encode_frame(payload, OP_PONG))
                            await self._drain_writer(writer)
            except WsProtocolError as exc:
                self.hub.metrics.incr("serve.ws_protocol_errors")
                try:
                    writer.write(encode_close(exc.code, str(exc).encode()[:80]))
                    await writer.drain()
                except (_DISCONNECTS + (_WriteStall, asyncio.CancelledError)):
                    pass
            except (_DISCONNECTS + (_WriteStall, ValueError)):
                pass
            finally:
                closed.set()
                viewer.queue.close()

        reader_task = asyncio.ensure_future(read_client())
        span = TRACER.span(
            "serve.viewer", transport="ws", viewer=viewer.queue.viewer_id,
            layout=viewer.queue.layout.describe(),
        )
        try:
            with span:
                while not closed.is_set():
                    frame = await viewer.next_frame(timeout=self.frame_timeout_s)
                    if frame is None:
                        break
                    writer.write(
                        encode_frame(struct.pack(">I", frame.index) + frame.jpeg)
                    )
                    await self._drain_writer(writer)
        except ViewerShedError:
            # Shed by policy: tell the client to retry later, politely.
            self.hub.metrics.incr("serve.viewer_shed_closes")
            try:
                writer.write(encode_close(CLOSE_TRY_AGAIN_LATER, b"shed"))
                await writer.drain()
            except (_DISCONNECTS + (asyncio.CancelledError,)):
                pass
        except _WriteStall:
            self.hub.metrics.incr("serve.viewer_stalls")
        except _DISCONNECTS:
            self.hub.metrics.incr("serve.viewer_disconnects")
        finally:
            closed.set()
            reader_task.cancel()
            viewer.release()
