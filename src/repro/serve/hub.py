"""The frame-distribution hub: one producer, many concurrent consumers.

The analysis side of the in-transit pipeline ends at one root writing
JPEGs; the hub turns that root into a service.  Producer slabs come in
once per frame (``publish``); every registered viewer's layout — ROI crop,
mip level, consumer rank count — is satisfied by its own set of
:meth:`~repro.core.api.Redistributor.new_mapping` handles over those same
slabs, built once per *distinct* layout through a bounded
:class:`~repro.core.MappingCache` and reused for every viewer and frame
that shares it.

Delivery is per-viewer buffered with coalescing: a slow client's queue
keeps only the newest frames (oldest are dropped, never blocking the
producer), so every viewer always converges to the latest frame — the
"ship latest, drop intermediates" contract of live MJPEG streaming.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from ..core.api import Redistributor
from ..core.box import Box
from ..core.mapcache import MappingCache
from ..jpeg.encoder import encode_rgb
from ..lbm.decompose import slab_box
from ..mpisim.executor import world_communicators
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import TRACER
from ..utils.arrays import StagingPool
from ..viz.colormaps import BLUE_WHITE_RED
from ..viz.image import render_scalar_field
from .layout import ConsumerLayout
from .overload import HubSaturatedError, LayoutSaturatedError, OverloadController

__all__ = [
    "FrameHub",
    "ServedFrame",
    "ViewerDisconnectedError",
    "ViewerQueue",
    "ViewerShedError",
]


class ViewerDisconnectedError(Exception):
    """Typed signal that a viewer's queue was closed (client went away)."""


class ViewerShedError(ViewerDisconnectedError):
    """The hub shed this viewer *by policy* (overload ladder) — the client
    did nothing wrong and should retry later."""


@dataclass(frozen=True)
class ServedFrame:
    """One encoded frame as delivered to a viewer."""

    index: int
    layout_key: tuple
    jpeg: bytes
    shape: tuple[int, int]  # (h, w) of the encoded image
    published_at: float = 0.0  # perf_counter stamp at encode time


class ViewerQueue:
    """Per-viewer backpressure buffer with latest-wins coalescing.

    The producer pushes; the viewer's transport pops.  The queue holds at
    most ``capacity`` frames: pushing into a full queue drops the *oldest*
    entry, so a slow client skips intermediates and always receives the
    newest frame the moment it catches up.  ``close()`` (either side) makes
    further pops raise :class:`ViewerDisconnectedError` after the buffer
    drains, and further pushes no-ops.
    """

    def __init__(
        self,
        viewer_id: int,
        layout: ConsumerLayout,
        capacity: int = 2,
        on_frame: Optional[Callable[[], None]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.viewer_id = viewer_id
        self.layout = layout
        self.capacity = capacity
        #: transport wake-up hook (the async edge bridges it onto its loop);
        #: called outside the queue lock after every push and on close.
        self.on_frame = on_frame
        self._frames: deque[ServedFrame] = deque()
        self._cond = threading.Condition()
        self.closed = False
        self.close_reason: Optional[str] = None  # "shed" -> ViewerShedError
        self.coalesced = 0  # frames dropped because this viewer was slow
        self.delivered = 0  # frames handed to the transport
        self.last_index: Optional[int] = None  # newest frame index ever queued

    def push(self, frame: ServedFrame) -> bool:
        """Producer side; returns False when the viewer is gone."""
        with self._cond:
            if self.closed:
                return False
            if len(self._frames) >= self.capacity:
                self._frames.popleft()
                self.coalesced += 1
            self._frames.append(frame)
            self.last_index = frame.index
            self._cond.notify_all()
        if self.on_frame is not None:
            self.on_frame()
        return True

    def _raise_closed(self) -> None:
        if self.close_reason == "shed":
            raise ViewerShedError(
                f"viewer {self.viewer_id} was shed by overload policy"
            )
        raise ViewerDisconnectedError(f"viewer {self.viewer_id} is closed")

    def try_pop(self) -> Optional[ServedFrame]:
        """Viewer side, non-blocking; None when nothing is buffered."""
        with self._cond:
            if self._frames:
                self.delivered += 1
                return self._frames.popleft()
            if self.closed:
                self._raise_closed()
            return None

    def pop(self, timeout: Optional[float] = None) -> Optional[ServedFrame]:
        """Viewer side, blocking; None on timeout, typed error when closed."""
        with self._cond:
            if not self._cond.wait_for(
                lambda: self._frames or self.closed, timeout=timeout
            ):
                return None
            if self._frames:
                self.delivered += 1
                return self._frames.popleft()
            self._raise_closed()

    def close(self, reason: Optional[str] = None) -> None:
        with self._cond:
            if self.closed:
                return
            self.closed = True
            self.close_reason = reason
            self._cond.notify_all()
        if self.on_frame is not None:
            self.on_frame()


class FrameHub:
    """Fans one producer's frames out to N independently-mapped consumers.

    ``register`` / ``unregister`` are thread-safe (the async edge calls
    them from its event loop while the producer publishes); ``publish``
    itself runs from a single producer thread — it owns the hub's
    :class:`~repro.core.api.Redistributor`, whose exchanges run on a
    private single-rank world (pure local copies through the exchange
    engine, no peer ranks needed).
    """

    def __init__(
        self,
        nx: int,
        ny: int,
        m: int = 1,
        producer_boxes: Optional[Sequence[Box]] = None,
        *,
        quality: int = 80,
        max_layouts: int = 64,
        queue_capacity: int = 2,
        backend: Optional[str] = None,
        metrics: Optional[MetricsRegistry] = None,
        max_viewers: Optional[int] = None,
        max_viewers_per_layout: Optional[int] = None,
        overload: Optional[OverloadController] = None,
        retry_after_s: float = 1.0,
    ) -> None:
        self.nx, self.ny = int(nx), int(ny)
        if producer_boxes is None:
            producer_boxes = [slab_box(nx, ny, m, rank) for rank in range(m)]
        self.producer_boxes = list(producer_boxes)
        comm = world_communicators(1)[0]
        kwargs = {} if backend is None else {"backend": backend}
        self.red = Redistributor(comm, ndims=2, dtype=np.float32, **kwargs)
        self.mapping_cache = MappingCache(max_entries=max_layouts)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.quality = int(quality)
        self.queue_capacity = int(queue_capacity)
        self.max_viewers = max_viewers
        self.max_viewers_per_layout = max_viewers_per_layout
        self.overload = overload
        self.retry_after_s = float(retry_after_s)
        self._pool = StagingPool()  # assembled-ROI scratch, keyed by shape
        self._lock = threading.Lock()
        self._next_viewer = 0
        #: viewer_id -> queue; layouts are recovered from the queues
        self._viewers: dict[int, ViewerQueue] = {}
        #: layout key -> newest ServedFrame (the stale-serving circuit breaker)
        self._last_good: dict[tuple, ServedFrame] = {}
        self.frames_published = 0
        self.frames_ratelimited = 0
        self._last_publish_mono: Optional[float] = None
        self.draining = False
        self.closed = False

    # -- viewer lifecycle ----------------------------------------------------

    def _admit_layout(self, layout: ConsumerLayout) -> ConsumerLayout:
        """Apply the ladder's mip floor to a new registration."""
        if self.overload is None:
            return layout
        floor = self.overload.min_mip
        if floor <= layout.mip:
            return layout
        x0, y0 = layout.roi.offset
        w, h = layout.roi.dims
        self.metrics.incr("serve.mip_forced")
        return ConsumerLayout.make(
            self.nx, self.ny, x=x0, y=y0, w=w, h=h, mip=floor, parts=layout.parts
        )

    def register(
        self,
        layout: ConsumerLayout,
        on_frame: Optional[Callable[[], None]] = None,
    ) -> ViewerQueue:
        """Attach a viewer; returns its private frame queue.

        Admission control lives here: the hub-wide viewer cap refuses with
        :class:`~repro.serve.overload.HubSaturatedError` (503) and the
        per-layout cap with
        :class:`~repro.serve.overload.LayoutSaturatedError` (429), both
        carrying a ``Retry-After`` hint.  When the overload ladder sits at
        the mip rung or below, new registrations are forced to a coarser
        mip level before the cache key is computed.
        """
        if self.closed:
            raise ViewerDisconnectedError("hub is closed")
        layout = self._admit_layout(layout)
        key = layout.canonical_key()
        with self._lock:
            if (
                self.max_viewers is not None
                and len(self._viewers) >= self.max_viewers
            ):
                self.metrics.incr("serve.admission_rejected")
                raise HubSaturatedError(
                    f"hub viewer cap reached ({self.max_viewers})",
                    retry_after_s=self.retry_after_s,
                )
            if self.max_viewers_per_layout is not None:
                same = sum(
                    1
                    for q in self._viewers.values()
                    if q.layout.canonical_key() == key
                )
                if same >= self.max_viewers_per_layout:
                    self.metrics.incr("serve.admission_rejected")
                    raise LayoutSaturatedError(
                        f"layout viewer cap reached "
                        f"({self.max_viewers_per_layout} for {layout.describe()})",
                        retry_after_s=self.retry_after_s,
                    )
            viewer_id = self._next_viewer
            self._next_viewer += 1
            queue = ViewerQueue(
                viewer_id, layout, capacity=self.queue_capacity, on_frame=on_frame
            )
            self._viewers[viewer_id] = queue
        self.metrics.incr("serve.viewers_connected")
        if TRACER.enabled:
            with TRACER.span(
                "serve.viewer_register", viewer=viewer_id, layout=layout.describe()
            ):
                pass
        return queue

    def unregister(self, queue: ViewerQueue) -> None:
        """Detach a viewer (idempotent); its queue closes immediately."""
        queue.close()
        with self._lock:
            removed = self._viewers.pop(queue.viewer_id, None)
        if removed is not None:
            self.metrics.incr("serve.viewers_disconnected")
            self.metrics.incr("serve.frames_coalesced", queue.coalesced)

    def viewer_count(self) -> int:
        with self._lock:
            return len(self._viewers)

    def shed_viewers(self, count: int) -> int:
        """Shed up to ``count`` viewers by policy — newest/slowest first
        (most coalesced frames, then highest viewer id).  Their queues
        close typed as :class:`ViewerShedError`; returns how many went."""
        if count <= 0:
            return 0
        with self._lock:
            victims = sorted(
                self._viewers.values(),
                key=lambda q: (q.coalesced, q.viewer_id),
                reverse=True,
            )[:count]
            for queue in victims:
                self._viewers.pop(queue.viewer_id, None)
        for queue in victims:
            queue.close(reason="shed")
            self.metrics.incr("serve.viewers_shed")
            if TRACER.enabled:
                with TRACER.span(
                    "serve.shed", viewer=queue.viewer_id,
                    coalesced=queue.coalesced,
                ):
                    pass
        if self.overload is not None and victims:
            self.overload.note_shed(len(victims))
        return len(victims)

    # -- liveness / readiness ------------------------------------------------

    def stalled(self) -> bool:
        """Producer-stall circuit breaker: True once the producer has
        published at least one frame and then gone quiet for longer than
        the SLO policy's ``stall_timeout_s``."""
        if self._last_publish_mono is None:
            return False
        timeout = (
            self.overload.policy.stall_timeout_s
            if self.overload is not None
            else 5.0
        )
        return time.monotonic() - self._last_publish_mono > timeout

    def ready(self) -> tuple[bool, str]:
        """(ready, reason) for the edge's ``/readyz``."""
        if self.closed:
            return False, "closed"
        if self.draining:
            return False, "draining"
        if self.stalled():
            return False, "producer-stalled"
        return True, "ready"

    def last_frame(self, layout: ConsumerLayout) -> Optional[ServedFrame]:
        """The newest frame ever encoded for ``layout`` (stale serving)."""
        return self._last_good.get(layout.canonical_key())

    def drain(self) -> None:
        """Graceful drain: close every viewer queue (streams end cleanly)
        and refuse readiness, but keep the hub itself alive so ``/stats``
        and ``/healthz`` still answer during shutdown."""
        self.draining = True
        with self._lock:
            viewers = list(self._viewers.values())
            self._viewers.clear()
        for queue in viewers:
            queue.close(reason="drain")
            self.metrics.incr("serve.viewers_disconnected")

    # -- frame path ----------------------------------------------------------

    def _mappings_for(self, layout: ConsumerLayout):
        key = layout.canonical_key()
        return self.mapping_cache.get(
            key,
            lambda: [
                self.red.new_mapping(own=self.producer_boxes, need=part)
                for part in layout.part_boxes()
            ],
        )

    def view(
        self, layout: ConsumerLayout, slabs: Sequence[np.ndarray]
    ) -> np.ndarray:
        """The float field a consumer with ``layout`` receives (a copy).

        The correctness oracle: per-part DDR exchanges assembled into the
        ROI, then mip-subsampled — bitwise what :meth:`publish` renders and
        what a direct single-consumer redistribution of the same frame
        produces.
        """
        return self._assemble(layout, slabs).copy()

    def _assemble(
        self, layout: ConsumerLayout, slabs: Sequence[np.ndarray]
    ) -> np.ndarray:
        """ROI field for ``layout`` (a view into hub scratch — valid until
        the next ``_assemble`` call with the same ROI shape)."""
        mappings = self._mappings_for(layout)
        roi = self._pool.take(layout.roi.np_shape(), np.float32)
        for mapping, part in zip(mappings, layout.part_boxes()):
            part_out = self.red.gather_need(slabs, mapping=mapping, reuse_out=True)
            r0, c0 = part.np_starts_within(layout.roi)
            h, w = part.np_shape()
            roi[r0 : r0 + h, c0 : c0 + w] = part_out
        step = layout.step
        return roi[::step, ::step]

    def publish(
        self, frame_index: int, slabs: Sequence[np.ndarray], force: bool = False
    ) -> int:
        """Redistribute, render, and encode one producer frame for every
        distinct registered layout, then fan the JPEGs out to each viewer's
        queue.  Returns the number of distinct layouts served.

        When the overload ladder sits at the fps rung, frames off the
        stride are skipped (the producer stays live for the circuit
        breaker, but no work is done); ``force=True`` bypasses the stride
        so a driver can guarantee its *final* frame goes out.  After the
        fan-out the controller observes this epoch's SLO signals and any
        pending shed request is applied.
        """
        if len(slabs) != len(self.producer_boxes):
            raise ValueError(
                f"expected {len(self.producer_boxes)} producer slabs, got {len(slabs)}"
            )
        controller = self.overload
        self._last_publish_mono = time.monotonic()
        if controller is not None and not force:
            stride = controller.frame_stride
            if stride > 1 and frame_index % stride:
                self.frames_ratelimited += 1
                self.metrics.incr("serve.frames_ratelimited")
                return 0
        quality = (
            controller.quality(self.quality) if controller is not None
            else self.quality
        )
        started = time.perf_counter()
        encode_s = 0.0
        with self._lock:
            queues = list(self._viewers.values())
        by_layout: dict[tuple, list[ViewerQueue]] = {}
        layouts: dict[tuple, ConsumerLayout] = {}
        for queue in queues:
            key = queue.layout.canonical_key()
            by_layout.setdefault(key, []).append(queue)
            layouts.setdefault(key, queue.layout)
        for key, audience in by_layout.items():
            layout = layouts[key]
            with TRACER.span(
                "serve.publish", frame=frame_index, layout=layout.describe(),
                viewers=len(audience),
            ):
                field = self._assemble(layout, slabs)
                encode_started = time.perf_counter()
                with TRACER.span("serve.encode", frame=frame_index):
                    rgb = render_scalar_field(field, BLUE_WHITE_RED, symmetric=True)
                    blob = encode_rgb(np.ascontiguousarray(rgb), quality=quality)
                encode_s += time.perf_counter() - encode_started
            frame = ServedFrame(
                frame_index, key, blob, field.shape,
                published_at=time.perf_counter(),
            )
            self._last_good[key] = frame
            gone = []
            for queue in audience:
                before = queue.coalesced
                if queue.push(frame):
                    self.metrics.incr("serve.frames_delivered")
                    if queue.coalesced > before:
                        self.metrics.incr("serve.frames_coalesced")
                else:
                    gone.append(queue)
            for queue in gone:
                self.unregister(queue)
        self.frames_published += 1
        self.metrics.incr("serve.frames_published")
        elapsed = time.perf_counter() - started
        self.metrics.observe("serve.publish", elapsed)
        if encode_s:
            self.metrics.observe("serve.encode", encode_s)
        cache_stats = self.mapping_cache.stats()
        self.metrics.gauge("serve.pool_bytes", cache_stats["pool_bytes"])
        self.metrics.gauge("serve.pool_peak_bytes", cache_stats["pool_peak_bytes"])
        self.metrics.gauge("serve.cache_bytes", cache_stats["cache_bytes"])
        self.metrics.gauge("serve.cache_peak_bytes", cache_stats["cache_peak_bytes"])
        if controller is not None:
            controller.observe_registry(self.metrics)
            self.metrics.gauge("serve.degrade_level", controller.level)
            shed = controller.take_shed_request(self.viewer_count())
            if shed:
                self.shed_viewers(shed)
        return len(by_layout)

    # -- reporting / shutdown ------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            viewers = list(self._viewers.values())
        ready, reason = self.ready()
        return {
            "viewers": len(viewers),
            "frames_published": self.frames_published,
            "frames_ratelimited": self.frames_ratelimited,
            "coalesced_in_flight": sum(q.coalesced for q in viewers),
            "mapping_cache": self.mapping_cache.stats(),
            "counters": dict(self.metrics.counters),
            "ready": ready,
            "ready_reason": reason,
            "admission": {
                "max_viewers": self.max_viewers,
                "max_viewers_per_layout": self.max_viewers_per_layout,
                "rejected": self.metrics.counters.get("serve.admission_rejected", 0),
            },
            "overload": (
                self.overload.stats() if self.overload is not None else None
            ),
        }

    def close(self) -> None:
        """Close every viewer queue and drop all cached mappings."""
        self.closed = True
        with self._lock:
            viewers = list(self._viewers.values())
            self._viewers.clear()
        for queue in viewers:
            queue.close()
        self.mapping_cache.clear()
        self._pool.clear()
        self._last_good.clear()
