"""Consumer layouts: what one viewer asks the serving hub to redistribute.

A layout names a rectangular region of interest inside the simulation
domain, a mip level (power-of-two subsampling for small screens), and a
consumer rank count ``parts`` — the hub satisfies each part with its own
DDR mapping over the producer slabs, so a layout with ``parts=4`` exercises
exactly the redistribution a real 4-rank consumer application would run.

Layouts canonicalize: out-of-range requests clamp to the domain, the mip
level clamps so at least one pixel survives, and ``parts`` clamps to what
the ROI can be split into.  Canonical layouts are frozen and hashable —
:meth:`ConsumerLayout.canonical_key` is the producer-side mapping-cache key,
so thousands of viewers asking for the same (clamped) view share one
schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from ..core.box import Box
from ..volren.decompose import split_extent

__all__ = ["ConsumerLayout"]


@dataclass(frozen=True)
class ConsumerLayout:
    """One viewer's view: ROI crop + mip level + consumer rank count.

    ``roi`` is a 2-D :class:`~repro.core.box.Box` in paper axis order
    ``(x, y)``; build instances through :meth:`make` or :meth:`from_query`
    so they arrive canonicalized.
    """

    roi: Box
    mip: int = 0
    parts: int = 1

    def __post_init__(self) -> None:
        if len(self.roi.dims) != 2:
            raise ValueError(f"layouts are 2-D, got roi {self.roi}")
        if self.roi.is_empty():
            raise ValueError(f"empty roi {self.roi}")
        if self.mip < 0:
            raise ValueError(f"mip must be >= 0, got {self.mip}")
        if not (1 <= self.parts <= self.roi.dims[1]):
            raise ValueError(
                f"parts must be in [1, {self.roi.dims[1]}], got {self.parts}"
            )

    # -- construction --------------------------------------------------------

    @classmethod
    def make(
        cls,
        nx: int,
        ny: int,
        x: int = 0,
        y: int = 0,
        w: Optional[int] = None,
        h: Optional[int] = None,
        mip: int = 0,
        parts: int = 1,
    ) -> "ConsumerLayout":
        """A canonical layout clamped to the ``nx`` x ``ny`` domain."""
        w = nx if w is None else w
        h = ny if h is None else h
        roi = Box((int(x), int(y)), (max(1, int(w)), max(1, int(h)))).intersect(
            Box((0, 0), (nx, ny))
        )
        if roi is None:
            raise ValueError(
                f"roi ({x},{y})+({w}x{h}) lies outside the {nx}x{ny} domain"
            )
        # Clamp mip so the subsampled frame keeps at least one pixel, and
        # parts so every consumer rank receives a non-empty row band.
        mip = min(max(int(mip), 0), max(min(roi.dims) - 1, 0).bit_length())
        while (1 << mip) > min(roi.dims):
            mip -= 1
        parts = min(max(int(parts), 1), roi.dims[1])
        return cls(roi=roi, mip=mip, parts=parts)

    @classmethod
    def from_query(
        cls, params: Mapping[str, str], nx: int, ny: int
    ) -> "ConsumerLayout":
        """Parse an edge query string (``x``/``y``/``w``/``h``/``mip``/
        ``parts``) into a canonical layout; absent keys default to the full
        domain at mip 0 for a single consumer rank."""

        def _int(name: str, default: int) -> int:
            raw = params.get(name)
            if raw in (None, ""):
                return default
            try:
                return int(raw)
            except ValueError as exc:
                raise ValueError(f"query parameter {name}={raw!r} is not an integer") from exc

        return cls.make(
            nx,
            ny,
            x=_int("x", 0),
            y=_int("y", 0),
            w=_int("w", nx),
            h=_int("h", ny),
            mip=_int("mip", 0),
            parts=_int("parts", 1),
        )

    # -- derived geometry ----------------------------------------------------

    def canonical_key(self) -> tuple:
        """Hashable identity: equal keys share one set of DDR mappings."""
        return (self.roi.offset, self.roi.dims, self.mip, self.parts)

    def part_boxes(self) -> list[Box]:
        """The per-consumer-rank need boxes: the ROI split into row bands
        (the same block distribution the analysis pipeline uses)."""
        x0, y0 = self.roi.offset
        w = self.roi.dims[0]
        return [
            Box((x0, y0 + offset), (w, size))
            for offset, size in split_extent(self.roi.dims[1], self.parts)
        ]

    @property
    def step(self) -> int:
        return 1 << self.mip

    def frame_shape(self) -> tuple[int, int]:
        """(h, w) of the served frame after mip subsampling."""
        h, w = self.roi.np_shape()
        step = self.step
        return (-(-h // step), -(-w // step))

    def describe(self) -> str:
        x0, y0 = self.roi.offset
        w, h = self.roi.dims
        return f"roi=({x0},{y0})+{w}x{h} mip={self.mip} parts={self.parts}"
