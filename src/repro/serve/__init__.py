"""Many-viewer in-transit serving: DDR fan-out behind a streaming edge.

The ROADMAP's "millions of users" axis: one producer's frames served to N
concurrent consumers, each with its own layout satisfied by independent
DDR mappings over the same producer slabs (layout-keyed, LRU-bounded
mapping cache), delivered as MJPEG over HTTP multipart or WebSocket with
per-viewer backpressure and latest-wins coalescing.
"""

from .edge import StreamEdge
from .hub import FrameHub, ServedFrame, ViewerDisconnectedError, ViewerQueue
from .layout import ConsumerLayout
from .producer import LbmSource, SyntheticSource
from .smoke import SMOKE_LAYOUT_QUERIES, ViewerReport, run_viewers

__all__ = [
    "ConsumerLayout",
    "FrameHub",
    "LbmSource",
    "SMOKE_LAYOUT_QUERIES",
    "ServedFrame",
    "StreamEdge",
    "SyntheticSource",
    "ViewerDisconnectedError",
    "ViewerQueue",
    "ViewerReport",
    "run_viewers",
]
