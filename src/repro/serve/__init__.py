"""Many-viewer in-transit serving: DDR fan-out behind a streaming edge.

The ROADMAP's "millions of users" axis: one producer's frames served to N
concurrent consumers, each with its own layout satisfied by independent
DDR mappings over the same producer slabs (layout-keyed, LRU-bounded
mapping cache), delivered as MJPEG over HTTP multipart or WebSocket with
per-viewer backpressure and latest-wins coalescing.

Overload is a governed regime, not an accident: hub admission caps refuse
typed (429/503 + ``Retry-After``), an SLO-driven
:class:`~repro.serve.overload.OverloadController` walks a degradation
ladder (quality → mip → fps → shed) with hysteresis, a producer-stall
circuit breaker flips ``/readyz`` and serves last-good frames, and
:class:`~repro.serve.edge.EdgeLimits` bounds what any one client
connection may cost the edge.
"""

from .edge import EdgeLimits, StreamEdge
from .hub import (
    FrameHub,
    ServedFrame,
    ViewerDisconnectedError,
    ViewerQueue,
    ViewerShedError,
)
from .layout import ConsumerLayout
from .overload import (
    LADDER,
    AdmissionError,
    HubSaturatedError,
    LayoutSaturatedError,
    OverloadController,
    SloPolicy,
)
from .producer import LbmSource, SyntheticSource
from .smoke import SMOKE_LAYOUT_QUERIES, ViewerReport, run_viewers
from .ws import WsProtocolError

__all__ = [
    "AdmissionError",
    "ConsumerLayout",
    "EdgeLimits",
    "FrameHub",
    "HubSaturatedError",
    "LADDER",
    "LayoutSaturatedError",
    "LbmSource",
    "OverloadController",
    "SMOKE_LAYOUT_QUERIES",
    "ServedFrame",
    "SloPolicy",
    "StreamEdge",
    "SyntheticSource",
    "ViewerDisconnectedError",
    "ViewerQueue",
    "ViewerReport",
    "ViewerShedError",
    "WsProtocolError",
    "run_viewers",
]
