"""SLO-driven overload control: admission errors and a degradation ladder.

Under overload the hub used to degrade *by accident* — per-viewer queues
coalesce, sockets stall, and nothing else gives.  This module makes
overload a policy-governed regime:

* **Admission errors** (:class:`AdmissionError` and friends) are the typed
  refusals the hub and edge raise when capacity limits are hit; each
  carries the HTTP status (429/503) and a ``Retry-After`` hint so the edge
  can answer instead of silently dropping connections.

* **The ladder** (:class:`OverloadController`): an SLO monitor consuming
  :class:`~repro.obs.metrics.MetricsRegistry` EWMAs — publish latency,
  encode time, per-viewer queue drop rate, mapping-cache pool bytes — and
  walking a fixed degradation ladder with hysteresis::

      normal -> quality -> mip -> fps -> shed

  Each rung trades output fidelity for headroom: lower JPEG quality,
  force coarser mip levels on *new* registrations, cap the frame rate
  (publish every k-th frame), and finally shed the newest/slowest viewers
  (typed :class:`~repro.serve.hub.ViewerShedError`).  Every transition is
  recorded as a ``serve.degrade`` trace span and kept for ``/stats``.

The controller never touches sockets or queues itself — the hub observes
into it once per publish and applies the knobs it exposes (``quality()``,
``min_mip``, ``frame_stride``, ``take_shed_request()``).  Separation of
concerns mirrors :mod:`repro.autoscale`: the decision is data, the
enforcement lives where the resources live.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..obs.tracer import TRACER

__all__ = [
    "AdmissionError",
    "HubSaturatedError",
    "LADDER",
    "LayoutSaturatedError",
    "OverloadController",
    "SloPolicy",
]

#: Ladder rungs, mildest first.  Index == level; 0 is healthy.
LADDER = ("normal", "quality", "mip", "fps", "shed")


class AdmissionError(Exception):
    """Typed admission refusal: the server is protecting itself, not
    failing.  ``status`` is the HTTP status the edge answers with and
    ``retry_after_s`` the ``Retry-After`` hint."""

    status = 503

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


class HubSaturatedError(AdmissionError):
    """The hub-wide viewer cap is reached (503 Service Unavailable)."""

    status = 503


class LayoutSaturatedError(AdmissionError):
    """The per-layout viewer cap is reached (429 Too Many Requests) —
    a single hot layout must not starve every other consumer."""

    status = 429


@dataclass(frozen=True)
class SloPolicy:
    """Service-level objectives and ladder dynamics.

    ``publish_slo_s`` / ``encode_slo_s``
        EWMA ceilings on seconds spent publishing one frame (all layouts)
        and JPEG-encoding it.  Above either, the producer thread is the
        bottleneck and fidelity must give.
    ``drop_rate_slo``
        EWMA ceiling on the per-publish queue drop rate —
        coalesced / (coalesced + delivered).  Coalescing is the *normal*
        backpressure mechanism, so this trips only when most pushes drop.
    ``pool_budget_bytes``
        Optional ceiling on the mapping-cache staging-pool footprint.
    ``breach_steps`` / ``clear_steps``
        Hysteresis: consecutive breached observations required to step
        *down* the ladder (degrade), and consecutive healthy ones to step
        back *up* (recover).  A single noisy frame never moves the ladder.
    ``degraded_quality`` / ``forced_mip`` / ``frame_stride``
        What the quality, mip, and fps rungs apply.
    ``shed_fraction`` / ``min_shed``
        How many viewers one shed action removes.
    ``stall_timeout_s``
        Producer-stall circuit breaker: no publish for this long flips
        ``/readyz`` and serves last-good frames with ``X-Frame-Stale``.
    """

    publish_slo_s: float = 0.25
    encode_slo_s: float = 0.15
    drop_rate_slo: float = 0.9
    pool_budget_bytes: Optional[int] = None
    ewma_alpha: float = 0.5
    breach_steps: int = 2
    clear_steps: int = 3
    degraded_quality: int = 40
    forced_mip: int = 1
    frame_stride: int = 2
    shed_fraction: float = 0.25
    min_shed: int = 1
    stall_timeout_s: float = 5.0

    def __post_init__(self) -> None:
        if self.publish_slo_s <= 0 or self.encode_slo_s <= 0:
            raise ValueError("publish/encode SLOs must be positive seconds")
        if not 0 < self.drop_rate_slo <= 1:
            raise ValueError(f"drop_rate_slo must be in (0, 1], got {self.drop_rate_slo}")
        if not 0 < self.ewma_alpha <= 1:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}")
        if self.breach_steps < 1 or self.clear_steps < 1:
            raise ValueError("breach_steps and clear_steps must be >= 1")
        if not 1 <= self.degraded_quality <= 100:
            raise ValueError(f"degraded_quality must be in [1, 100], got {self.degraded_quality}")
        if self.forced_mip < 0:
            raise ValueError(f"forced_mip must be >= 0, got {self.forced_mip}")
        if self.frame_stride < 1:
            raise ValueError(f"frame_stride must be >= 1, got {self.frame_stride}")
        if not 0 < self.shed_fraction <= 1:
            raise ValueError(f"shed_fraction must be in (0, 1], got {self.shed_fraction}")
        if self.min_shed < 1:
            raise ValueError(f"min_shed must be >= 1, got {self.min_shed}")
        if self.stall_timeout_s <= 0:
            raise ValueError("stall_timeout_s must be positive")


class OverloadController:
    """EWMA SLO monitor walking the degradation ladder with hysteresis.

    Not thread-safe by itself: ``observe*`` and ``take_shed_request`` run
    on the hub's single producer thread; the read-only knob properties are
    safe to read from anywhere (plain attribute loads).
    """

    def __init__(self, policy: Optional[SloPolicy] = None) -> None:
        self.policy = policy or SloPolicy()
        self.level = 0
        self.epochs = 0
        self.publish_ewma: Optional[float] = None
        self.encode_ewma: Optional[float] = None
        self.drop_ewma: Optional[float] = None
        self.pool_bytes = 0
        self.shed_total = 0
        #: transition records, oldest first: dicts with from/to/direction.
        self.transitions: list[dict] = []
        self._breach_streak = 0
        self._clear_streak = 0
        self._shed_pending = False
        self._active_reasons: tuple[str, ...] = ()
        # (count, total) snapshots for delta-reads of cumulative histograms
        self._seen: dict[str, tuple[int, float]] = {}
        self._seen_counters: dict[str, float] = {}

    # -- signal intake -------------------------------------------------------

    def observe_registry(self, registry: Any, pool_bytes: Optional[int] = None) -> int:
        """Fold one publish epoch's signals out of a ``MetricsRegistry``.

        Histograms are cumulative, so publish/encode latencies are read as
        deltas since the previous call (this epoch's mean seconds); drop
        rate comes from the ``serve.frames_coalesced`` /
        ``serve.frames_delivered`` counter deltas; pool bytes from the
        ``serve.pool_bytes`` gauge unless passed explicitly.  Returns the
        (possibly updated) ladder level.
        """
        publish_s = self._hist_delta(registry, "serve.publish")
        encode_s = self._hist_delta(registry, "serve.encode")
        coalesced = self._counter_delta(registry, "serve.frames_coalesced")
        delivered = self._counter_delta(registry, "serve.frames_delivered")
        drop_rate = None
        if coalesced + delivered > 0:
            drop_rate = coalesced / (coalesced + delivered)
        if pool_bytes is None:
            pool_bytes = int(registry.counters.get("serve.pool_bytes", 0))
        return self.observe(
            publish_s=publish_s,
            encode_s=encode_s,
            drop_rate=drop_rate,
            pool_bytes=pool_bytes,
        )

    def _hist_delta(self, registry: Any, name: str) -> Optional[float]:
        hist = registry.histograms.get(name)
        if hist is None:
            return None
        seen_count, seen_total = self._seen.get(name, (0, 0.0))
        if hist.count <= seen_count:
            return None
        delta = (hist.total - seen_total) / (hist.count - seen_count)
        self._seen[name] = (hist.count, hist.total)
        return delta

    def _counter_delta(self, registry: Any, name: str) -> float:
        value = float(registry.counters.get(name, 0))
        delta = value - self._seen_counters.get(name, 0.0)
        self._seen_counters[name] = value
        return max(0.0, delta)

    def observe(
        self,
        publish_s: Optional[float] = None,
        encode_s: Optional[float] = None,
        drop_rate: Optional[float] = None,
        pool_bytes: Optional[int] = None,
    ) -> int:
        """Fold one epoch's raw signals in and move the ladder if the
        hysteresis allows; returns the current level."""
        policy = self.policy
        self.epochs += 1
        if publish_s is not None:
            self.publish_ewma = self._ewma(self.publish_ewma, publish_s)
        if encode_s is not None:
            self.encode_ewma = self._ewma(self.encode_ewma, encode_s)
        if drop_rate is not None:
            self.drop_ewma = self._ewma(self.drop_ewma, drop_rate)
        if pool_bytes is not None:
            self.pool_bytes = int(pool_bytes)

        reasons = []
        if self.publish_ewma is not None and self.publish_ewma > policy.publish_slo_s:
            reasons.append("publish_latency")
        if self.encode_ewma is not None and self.encode_ewma > policy.encode_slo_s:
            reasons.append("encode_time")
        if self.drop_ewma is not None and self.drop_ewma > policy.drop_rate_slo:
            reasons.append("queue_drops")
        if (
            policy.pool_budget_bytes is not None
            and self.pool_bytes > policy.pool_budget_bytes
        ):
            reasons.append("mapping_pool")
        self._active_reasons = tuple(reasons)

        if reasons:
            self._clear_streak = 0
            self._breach_streak += 1
            if self._breach_streak >= policy.breach_steps:
                self._breach_streak = 0
                if self.level < len(LADDER) - 1:
                    self._transition(self.level + 1, "degrade", reasons)
                if LADDER[self.level] == "shed":
                    self._shed_pending = True
        else:
            self._breach_streak = 0
            self._clear_streak += 1
            if self._clear_streak >= policy.clear_steps and self.level > 0:
                self._clear_streak = 0
                self._transition(self.level - 1, "recover", ["slo_met"])
        return self.level

    def _ewma(self, current: Optional[float], value: float) -> float:
        if current is None:
            return float(value)
        alpha = self.policy.ewma_alpha
        return alpha * float(value) + (1 - alpha) * current

    def _transition(self, to_level: int, direction: str, reasons: list) -> None:
        record = {
            "epoch": self.epochs,
            "from": self.level,
            "to": to_level,
            "from_name": LADDER[self.level],
            "to_name": LADDER[to_level],
            "direction": direction,
            "reason": ",".join(reasons),
        }
        self.transitions.append(record)
        with TRACER.span(
            "serve.degrade",
            from_level=record["from_name"],
            to_level=record["to_name"],
            direction=direction,
            reason=record["reason"],
        ):
            pass
        self.level = to_level

    # -- knobs the hub applies -----------------------------------------------

    def quality(self, default: int) -> int:
        """JPEG quality to encode with (the quality rung lowers it)."""
        if self.level >= LADDER.index("quality"):
            return min(default, self.policy.degraded_quality)
        return default

    @property
    def min_mip(self) -> int:
        """Coarsest-acceptable mip floor applied to *new* registrations."""
        if self.level >= LADDER.index("mip"):
            return self.policy.forced_mip
        return 0

    @property
    def frame_stride(self) -> int:
        """Publish every k-th frame when the fps rung is active."""
        if self.level >= LADDER.index("fps"):
            return self.policy.frame_stride
        return 1

    def take_shed_request(self, viewer_count: int) -> int:
        """Viewers the hub should shed now (0 when no shed is pending);
        consuming the request arms the next one only after another full
        breach streak at the shed rung."""
        if not self._shed_pending or viewer_count <= 0:
            return 0
        self._shed_pending = False
        policy = self.policy
        return max(policy.min_shed, int(viewer_count * policy.shed_fraction))

    def note_shed(self, count: int) -> None:
        """Record how many viewers the hub actually shed."""
        self.shed_total += int(count)

    # -- reporting -----------------------------------------------------------

    def stats(self) -> dict:
        return {
            "level": self.level,
            "level_name": LADDER[self.level],
            "epochs": self.epochs,
            "publish_ewma_s": self.publish_ewma,
            "encode_ewma_s": self.encode_ewma,
            "drop_rate_ewma": self.drop_ewma,
            "pool_bytes": self.pool_bytes,
            "active_reasons": list(self._active_reasons),
            "shed_total": self.shed_total,
            "transitions": list(self.transitions),
        }
