"""Synthetic viewers for smoke tests and CI: raw-socket HTTP/WS clients.

Each viewer opens a real TCP connection to a running
:class:`~repro.serve.edge.StreamEdge`, consumes frames over its transport
(MJPEG multipart or WebSocket binary messages), and reports the frame
indices it saw.  The driver asserts the serving contract: under coalescing
a slow viewer may skip intermediates, but every viewer must see the final
frame.
"""

from __future__ import annotations

import base64
import os
import socket
import struct
import threading
import time
from dataclasses import dataclass, field

from .edge import MJPEG_BOUNDARY
from .ws import OP_BINARY, OP_CLOSE, decode_frame, encode_frame

__all__ = ["ViewerReport", "run_viewers", "SMOKE_LAYOUT_QUERIES"]

#: Mixed layouts the smoke viewers cycle through (>= 3 distinct, exercising
#: full-domain, ROI-cropped, mip-subsampled, and multi-part consumers).
SMOKE_LAYOUT_QUERIES = (
    "",  # full domain
    "x=4&y=2&w=24&h=12",  # ROI crop
    "mip=1",  # subsampled
    "x=8&y=4&w=16&h=8&parts=2",  # cropped 2-rank consumer
    "mip=2&parts=3",  # subsampled 3-rank consumer
)


@dataclass
class ViewerReport:
    viewer: int
    transport: str
    query: str
    frames_seen: list[int] = field(default_factory=list)
    error: str = ""

    @property
    def last_frame(self) -> int:
        return self.frames_seen[-1] if self.frames_seen else -1


def _recv_until(sock: socket.socket, marker: bytes, limit: int = 1 << 20) -> bytes:
    data = b""
    while marker not in data:
        chunk = sock.recv(4096)
        if not chunk:
            raise ConnectionError("server closed during header read")
        data += chunk
        if len(data) > limit:
            raise ValueError("header larger than limit")
    return data


def _http_viewer(
    report: ViewerReport, port: int, final_frame: int, timeout_s: float
) -> None:
    with socket.create_connection(("127.0.0.1", port), timeout=timeout_s) as sock:
        sock.sendall(
            f"GET /mjpeg?{report.query} HTTP/1.1\r\n"
            "Host: localhost\r\nConnection: keep-alive\r\n\r\n".encode()
        )
        buffer = _recv_until(sock, b"\r\n\r\n")
        status, _, buffer = buffer.partition(b"\r\n\r\n")
        if b" 200 " not in status.split(b"\r\n")[0]:
            raise ConnectionError(f"bad status: {status.splitlines()[0]!r}")
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            # One multipart part: boundary, part headers, then the body.
            marker = f"--{MJPEG_BOUNDARY}\r\n".encode()
            while marker not in buffer or b"\r\n\r\n" not in buffer.split(marker, 1)[1]:
                chunk = sock.recv(65536)
                if not chunk:
                    return
                buffer += chunk
            _, _, rest = buffer.partition(marker)
            head, _, rest = rest.partition(b"\r\n\r\n")
            headers = dict(
                line.split(": ", 1)
                for line in head.decode("latin-1").split("\r\n")
                if ": " in line
            )
            index = int(headers["X-Frame-Index"])
            length = int(headers["Content-Length"])
            while len(rest) < length:
                chunk = sock.recv(65536)
                if not chunk:
                    return
                rest += chunk
            body, buffer = rest[:length], rest[length:]
            assert body[:2] == b"\xff\xd8", "part body is not a JPEG"
            report.frames_seen.append(index)
            if index >= final_frame:
                return


def _ws_viewer(
    report: ViewerReport, port: int, final_frame: int, timeout_s: float
) -> None:
    with socket.create_connection(("127.0.0.1", port), timeout=timeout_s) as sock:
        key = base64.b64encode(os.urandom(16)).decode("ascii")
        sock.sendall(
            f"GET /ws?{report.query} HTTP/1.1\r\n"
            "Host: localhost\r\nUpgrade: websocket\r\nConnection: Upgrade\r\n"
            f"Sec-WebSocket-Key: {key}\r\nSec-WebSocket-Version: 13\r\n\r\n".encode()
        )
        response = _recv_until(sock, b"\r\n\r\n")
        head, _, buffer = response.partition(b"\r\n\r\n")
        if b" 101 " not in head.split(b"\r\n")[0]:
            raise ConnectionError(f"upgrade refused: {head.splitlines()[0]!r}")
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            parsed = decode_frame(buffer)
            if parsed is None:
                chunk = sock.recv(65536)
                if not chunk:
                    return
                buffer += chunk
                continue
            opcode, payload, consumed = parsed
            buffer = buffer[consumed:]
            if opcode == OP_CLOSE:
                return
            if opcode != OP_BINARY or len(payload) < 4:
                continue
            (index,) = struct.unpack_from(">I", payload)
            assert payload[4:6] == b"\xff\xd8", "message body is not a JPEG"
            report.frames_seen.append(index)
            if index >= final_frame:
                sock.sendall(encode_frame(b"", OP_CLOSE, mask=True))
                return


def run_viewers(
    port: int,
    count: int,
    final_frame: int,
    layout_queries: tuple[str, ...] = SMOKE_LAYOUT_QUERIES,
    timeout_s: float = 30.0,
) -> list[ViewerReport]:
    """Attach ``count`` concurrent viewers (alternating WS and MJPEG over
    the layout mix) and run each until it sees ``final_frame``.  Returns
    one report per viewer; callers assert on ``last_frame``/``error``."""
    reports = [
        ViewerReport(
            viewer=i,
            transport="ws" if i % 2 else "http",
            query=layout_queries[i % len(layout_queries)],
        )
        for i in range(count)
    ]

    def run(report: ViewerReport) -> None:
        try:
            worker = _ws_viewer if report.transport == "ws" else _http_viewer
            worker(report, port, final_frame, timeout_s)
        except Exception as exc:  # report, don't kill the thread pool
            report.error = f"{type(exc).__name__}: {exc}"

    threads = [
        threading.Thread(target=run, args=(r,), daemon=True) for r in reports
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=timeout_s + 10.0)
    return reports
