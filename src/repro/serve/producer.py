"""Frame sources feeding the serving hub.

Both sources present the same shape the in-transit analysis side sees:
per frame, a list of ``m`` float32 slab arrays matching
``slab_box(nx, ny, m, rank)`` — exactly the producer decomposition the
hub's DDR mappings redistribute from.  Slab buffers are persistent and
refilled in place, so the steady-state publish loop allocates nothing and
the hub's per-mapping BufferCaches hit on buffer identity every frame.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from ..core.box import Box
from ..lbm.decompose import slab_box
from ..lbm.simulation import LbmConfig, SerialLbm

__all__ = ["LbmSource", "SyntheticSource"]


class _SlabSource:
    def __init__(self, nx: int, ny: int, m: int) -> None:
        self.nx, self.ny, self.m = int(nx), int(ny), int(m)
        self.boxes: list[Box] = [slab_box(nx, ny, m, rank) for rank in range(m)]
        self._slabs = [
            np.empty(box.np_shape(), dtype=np.float32) for box in self.boxes
        ]

    def _split(self, field: np.ndarray) -> Sequence[np.ndarray]:
        """Refill the persistent slab buffers from a full (ny, nx) field."""
        for box, slab in zip(self.boxes, self._slabs):
            y0 = box.offset[1]
            slab[...] = field[y0 : y0 + box.dims[1], :]
        return self._slabs


class SyntheticSource(_SlabSource):
    """Deterministic frames for tests and load benchmarks: a smooth field
    whose value at every cell is a pure function of (frame, x, y), so any
    frame can be recomputed independently for bitwise verification."""

    def __init__(self, nx: int, ny: int, m: int = 1) -> None:
        super().__init__(nx, ny, m)
        ys, xs = np.meshgrid(
            np.arange(ny, dtype=np.float32),
            np.arange(nx, dtype=np.float32),
            indexing="ij",
        )
        self._xs, self._ys = xs, ys
        self._field = np.empty((ny, nx), dtype=np.float32)

    def field(self, frame_index: int) -> np.ndarray:
        np.sin(
            0.3 * self._xs + 0.17 * frame_index,
            out=self._field,
        )
        self._field *= np.cos(0.2 * self._ys - 0.05 * frame_index)
        return self._field

    def slabs(self, frame_index: int) -> Sequence[np.ndarray]:
        return self._split(self.field(frame_index))

    def frames(self, n_frames: int) -> Iterator[tuple[int, Sequence[np.ndarray]]]:
        for index in range(n_frames):
            yield index, self.slabs(index)


class LbmSource(_SlabSource):
    """Live physics: the serial lattice-Boltzmann solver stepped between
    frames, streaming its vorticity field — the paper's variable of
    interest — through the hub."""

    def __init__(
        self, nx: int, ny: int, m: int = 1, steps_per_frame: int = 10
    ) -> None:
        super().__init__(nx, ny, m)
        self.steps_per_frame = int(steps_per_frame)
        self._sim = SerialLbm(LbmConfig(nx=nx, ny=ny))

    def frames(self, n_frames: int) -> Iterator[tuple[int, Sequence[np.ndarray]]]:
        for index in range(n_frames):
            self._sim.step(self.steps_per_frame)
            field = np.asarray(self._sim.vorticity(), dtype=np.float32)
            yield index, self._split(field)
