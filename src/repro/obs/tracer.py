"""Per-rank structured tracing: nestable spans with near-zero disabled cost.

The runtime's "ranks" are threads of one process, so one process-wide
:class:`Tracer` singleton (:data:`TRACER`) sees every rank's spans.  A span
is opened with::

    with TRACER.span("ddr.round", round=3, backend="p2p"):
        ...

and records wall-clock start/duration plus arbitrary attributes.  Spans
nest naturally through the ``with`` stack; the per-thread open-span stack
is also inspectable (:meth:`Tracer.active_spans`), which is how
``run_spmd`` names what a wedged rank was doing when it diagnoses a hang.

Cost discipline (same as ``TransferCounters``): every hot-path call site
guards on ``TRACER.enabled`` — a single attribute check — before computing
any span attributes.  ``span()`` itself also returns a no-op singleton when
tracing is off, so warm paths may call it unguarded.

Which process (pid) a span belongs to is resolved in this order: an
explicit ``rank=`` attribute at the call site (the instrumented runtime
passes the world rank), else the thread's rank as registered by
``run_spmd`` via :meth:`Tracer.set_thread_rank`, else ``None`` — the
exporter files those under a synthetic "driver" process.

Enable tracing per scope with :func:`tracing` (saves and restores the
prior state, so scopes nest safely) or process-wide by setting the
``DDR_TRACE`` environment variable to a non-empty value other than ``0``.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

__all__ = ["SpanRecord", "Tracer", "TRACER", "tracing"]


@dataclass
class SpanRecord:
    """One closed span: what happened, where, and for how long."""

    name: str
    rank: Optional[int]  # world rank, or None for driver/main-thread work
    tid: int  # OS thread ident (the exporter compresses these per pid)
    start_us: float  # microseconds since the tracer's epoch
    dur_us: float
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def category(self) -> str:
        """Dotted-name prefix (``mpi``, ``ddr``, ``phase``, ...)."""
        return self.name.split(".", 1)[0]


class _NullSpan:
    """The disabled-path span: every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class _Span:
    """An open span (context manager).  Created only while tracing is on."""

    __slots__ = ("_tracer", "name", "rank", "attrs", "_start")

    def __init__(
        self, tracer: "Tracer", name: str, rank: Optional[int], attrs: dict[str, Any]
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.rank = rank
        self.attrs = attrs

    def set(self, **attrs: Any) -> "_Span":
        """Attach attributes discovered mid-span (e.g. received byte count)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        local = tracer._local
        if self.rank is None:
            self.rank = getattr(local, "rank", None)
        stack = getattr(local, "stack", None)
        if stack is None:
            stack = local.stack = []
            with tracer._lock:
                tracer._stacks[threading.get_ident()] = stack
        stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        end = time.perf_counter()
        tracer = self._tracer
        stack = tracer._local.stack
        if stack and stack[-1] is self:
            stack.pop()
        else:  # out-of-order exit (shouldn't happen); drop our entry anyway
            try:
                stack.remove(self)
            except ValueError:
                pass
        record = SpanRecord(
            name=self.name,
            rank=self.rank,
            tid=threading.get_ident(),
            start_us=(self._start - tracer._epoch) * 1e6,
            dur_us=(end - self._start) * 1e6,
            attrs=self.attrs,
        )
        with tracer._lock:
            tracer._records.append(record)
        return False


class Tracer:
    """Thread-safe span collector; one per process (see :data:`TRACER`).

    ``enabled`` is a plain attribute so the hot-path guard is a single
    attribute check.  Records accumulate until :meth:`clear`.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._records: list[SpanRecord] = []
        self._epoch = time.perf_counter()
        self._local = threading.local()
        # thread ident -> that thread's open-span stack (owner-mutated; other
        # threads only snapshot names, which is safe under the GIL).
        self._stacks: dict[int, list[_Span]] = {}

    @property
    def epoch(self) -> float:
        """The ``perf_counter`` value all ``start_us`` stamps are relative to.

        ``CLOCK_MONOTONIC`` is system-wide on Linux, so a forked child that
        adopts its parent's epoch (:meth:`reset_for_child`) produces spans
        on the same timeline — the parent can merge them verbatim.
        """
        return self._epoch

    # -- cross-process support (the process executor) ------------------------

    def reset_for_child(self, epoch: float, enabled: bool) -> None:
        """Re-initialise this tracer inside a forked rank process.

        Drops the records and open-span stacks inherited from the parent
        (they belong to the parent's threads, which do not exist here) and
        adopts the parent's epoch so this child's spans merge onto the
        parent's timeline.
        """
        with self._lock:
            self._records.clear()
            self._stacks.clear()
        self._local = threading.local()
        self._epoch = epoch
        self.enabled = enabled

    def ingest(self, records: list[SpanRecord]) -> None:
        """Merge spans recorded elsewhere (child rank processes)."""
        with self._lock:
            self._records.extend(records)

    # -- recording -----------------------------------------------------------

    def span(self, name: str, rank: Optional[int] = None, **attrs: Any):
        """Open a span; returns a context manager (no-op when disabled)."""
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, rank, attrs)

    def set_thread_rank(self, rank: Optional[int]) -> None:
        """Bind the calling thread to a world rank (``run_spmd`` workers)."""
        self._local.rank = rank

    def thread_rank(self) -> Optional[int]:
        return getattr(self._local, "rank", None)

    # -- inspection ----------------------------------------------------------

    def records(self) -> list[SpanRecord]:
        """Snapshot of all closed spans, in completion order."""
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def active_spans(self) -> dict[Optional[int], list[str]]:
        """Open-span names per rank — what each live thread is doing *now*.

        Used by ``run_spmd``'s hang diagnostic.  Threads with no open span
        are omitted; driver-thread spans appear under ``None``.
        """
        with self._lock:
            stacks = list(self._stacks.values())
        out: dict[Optional[int], list[str]] = {}
        for stack in stacks:
            snapshot = list(stack)  # owner thread may mutate concurrently
            if snapshot:
                out[snapshot[0].rank] = [span.name for span in snapshot]
        return out

    def clear(self) -> None:
        """Drop all records and restart the time epoch."""
        with self._lock:
            self._records.clear()
            self._epoch = time.perf_counter()


def _env_enabled() -> bool:
    return os.environ.get("DDR_TRACE", "") not in ("", "0")


#: Process-wide singleton every instrumentation hook reports into.
TRACER = Tracer(enabled=_env_enabled())


@contextmanager
def tracing(tracer: Tracer = TRACER, clear: bool = True) -> Iterator[Tracer]:
    """Enable tracing within a block; prior state is saved and restored
    (so nested scopes compose — the discipline ``counting_transfers``
    originally got wrong).  With ``clear=True`` (default) records from
    before the block are dropped on entry; a nested scope that must not
    clobber its parent's records passes ``clear=False``."""
    was_enabled = tracer.enabled
    if clear:
        tracer.clear()
    tracer.enabled = True
    try:
        yield tracer
    finally:
        tracer.enabled = was_enabled
