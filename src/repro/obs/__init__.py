"""Observability: per-rank trace spans, metrics, Chrome-trace export.

The layer every performance-facing subsystem reports through:

* :data:`TRACER` / :func:`tracing` / ``Tracer.span`` — structured,
  thread-safe, nestable spans with a single-attribute-check disabled path
  (``repro.obs.tracer``);
* :class:`MetricsRegistry` — histograms/counters folded from spans and
  from the legacy ``StopwatchRegistry``/``TransferCounters`` paths
  (``repro.obs.metrics``);
* :func:`write_chrome_trace` — trace-event JSON, one pid per rank,
  loadable in Perfetto / chrome://tracing (``repro.obs.export``).

``python -m repro trace <demo> --out trace.json`` captures a trace of a
demo workload end to end.
"""

from .export import chrome_trace_events, write_chrome_trace
from .metrics import Histogram, MetricsRegistry
from .tracer import NULL_SPAN, SpanRecord, TRACER, Tracer, tracing

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "SpanRecord",
    "TRACER",
    "Tracer",
    "chrome_trace_events",
    "tracing",
    "write_chrome_trace",
]
