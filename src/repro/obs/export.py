"""Chrome trace-event export: load the result in Perfetto or chrome://tracing.

The Trace Event Format (the JSON ``chrome://tracing`` and
https://ui.perfetto.dev consume) models a trace as processes (pid) of
threads (tid) emitting timestamped events.  We map:

* one **pid per rank** (with a ``process_name`` metadata record naming it
  ``rank N``), plus a final synthetic ``driver`` pid for spans emitted by
  the main thread outside any rank;
* complete ("ph": "X") events per span, with microsecond ``ts``/``dur``
  and the span attributes under ``args`` — nested spans on one thread
  render as a flame-graph stack;
* thread idents compressed to small tids per pid, so traces are stable
  across runs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence, Union

import numpy as np

from .tracer import SpanRecord

__all__ = ["chrome_trace_events", "write_chrome_trace"]


def _json_safe(value):
    """Trace args must be JSON-serialisable; numpy scalars sneak in."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, np.generic):
        return value.item()
    return str(value)


def chrome_trace_events(records: Iterable[SpanRecord]) -> list[dict]:
    """Lower span records into a trace-event list (metadata + "X" events)."""
    records = list(records)
    ranks = sorted({r.rank for r in records if r.rank is not None})
    driver_pid = (max(ranks) + 1) if ranks else 0

    def pid_of(record: SpanRecord) -> int:
        return record.rank if record.rank is not None else driver_pid

    events: list[dict] = []
    for rank in ranks:
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "ts": 0,
                "pid": rank,
                "tid": 0,
                "args": {"name": f"rank {rank}"},
            }
        )
    if any(r.rank is None for r in records):
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "ts": 0,
                "pid": driver_pid,
                "tid": 0,
                "args": {"name": "driver"},
            }
        )

    # Compress OS thread idents to small per-pid tids.
    tids: dict[tuple[int, int], int] = {}
    for record in records:
        pid = pid_of(record)
        key = (pid, record.tid)
        tid = tids.get(key)
        if tid is None:
            tid = tids[key] = sum(1 for k in tids if k[0] == pid)
        events.append(
            {
                "name": record.name,
                "cat": record.category,
                "ph": "X",
                "ts": record.start_us,
                "dur": record.dur_us,
                "pid": pid,
                "tid": tid,
                "args": {key: _json_safe(value) for key, value in record.attrs.items()},
            }
        )
    return events


def write_chrome_trace(
    records: Sequence[SpanRecord], path: Union[str, Path]
) -> dict:
    """Write the JSON object format (``{"traceEvents": [...]}``); returns it."""
    trace = {
        "traceEvents": chrome_trace_events(records),
        "displayTimeUnit": "ms",
    }
    Path(path).write_text(json.dumps(trace, indent=1) + "\n")
    return trace
