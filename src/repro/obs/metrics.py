"""Metrics: histograms + counters, folded from trace spans and the legacy
timing/transfer accounting paths.

:class:`MetricsRegistry` is the single reporting sink the observability
layer funnels into.  Three producers feed it:

* :meth:`MetricsRegistry.ingest` — span records from the
  :class:`~repro.obs.tracer.Tracer`, folded into per-name duration
  histograms, kept both per rank and aggregated across ranks;
* :meth:`MetricsRegistry.absorb_stopwatches` — a
  :class:`~repro.utils.timing.StopwatchRegistry` (the use-case drivers'
  read/exchange/render totals);
* :meth:`MetricsRegistry.absorb_transfers` — a
  :class:`~repro.utils.timing.TransferCounters` snapshot (copy/allocation
  counts from the transport layer);
* :meth:`MetricsRegistry.absorb_faults` — a
  :class:`~repro.faults.FaultStats` snapshot (injected faults and
  recoveries from the fault layer).

so the pre-existing reporting paths and the new tracing layer print through
one :meth:`summary`.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Iterable, Optional, Union

from ..utils.timing import StopwatchRegistry, TransferCounters
from .tracer import SpanRecord

__all__ = ["Histogram", "MetricsRegistry"]

#: Histogram bucket upper bounds, in seconds (log-spaced; +inf overflow).
BUCKET_BOUNDS_S = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)


@dataclass
class Histogram:
    """Streaming histogram over seconds: count/sum/min/max + log buckets."""

    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    buckets: list[int] = field(
        default_factory=lambda: [0] * (len(BUCKET_BOUNDS_S) + 1)
    )

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for index, bound in enumerate(BUCKET_BOUNDS_S):
            if value <= bound:
                self.buckets[index] += 1
                return
        self.buckets[-1] += 1

    def observe_aggregate(self, count: int, total: float) -> None:
        """Fold in a pre-accumulated (count, total) pair with no per-sample
        detail (the ``StopwatchRegistry`` shape); buckets see the mean."""
        if count <= 0:
            return
        mean = total / count
        self.count += count
        self.total += total
        self.min = min(self.min, mean)
        self.max = max(self.max, mean)
        for index, bound in enumerate(BUCKET_BOUNDS_S):
            if mean <= bound:
                self.buckets[index] += count
                return
        self.buckets[-1] += count

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        for index, n in enumerate(other.buckets):
            self.buckets[index] += n


class MetricsRegistry:
    """Thread-safe counters + named histograms, per rank and aggregate."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counters: dict[str, float] = {}
        #: aggregate across all ranks
        self.histograms: dict[str, Histogram] = {}
        #: rank -> name -> Histogram (rank ``None`` = driver thread)
        self.by_rank: dict[Optional[int], dict[str, Histogram]] = {}

    # -- primitive sinks -----------------------------------------------------

    def incr(self, name: str, value: float = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set a counter to an instantaneous value (gauge semantics: the
        latest observation wins — pool bytes, queue depth, ladder level)."""
        with self._lock:
            self.counters[name] = float(value)

    def observe(self, name: str, seconds: float, rank: Optional[int] = None) -> None:
        with self._lock:
            self._histogram(self.histograms, name).observe(seconds)
            self._histogram(self.by_rank.setdefault(rank, {}), name).observe(seconds)

    @staticmethod
    def _histogram(table: dict[str, Histogram], name: str) -> Histogram:
        hist = table.get(name)
        if hist is None:
            hist = table[name] = Histogram()
        return hist

    # -- producers -----------------------------------------------------------

    def ingest(self, records: Iterable[SpanRecord]) -> None:
        """Fold closed spans into duration histograms and byte counters."""
        for record in records:
            self.observe(record.name, record.dur_us / 1e6, rank=record.rank)
            nbytes = record.attrs.get("nbytes")
            if nbytes is not None:
                self.incr(f"{record.name}.bytes", int(nbytes))

    def absorb_stopwatches(
        self,
        stopwatches: StopwatchRegistry,
        rank: Optional[int] = None,
        prefix: str = "phase.",
    ) -> None:
        """Fold a driver's named stopwatch totals in as histograms."""
        with self._lock:
            for name, total in stopwatches.totals.items():
                count = stopwatches.counts.get(name, 1)
                full = f"{prefix}{name}"
                self._histogram(self.histograms, full).observe_aggregate(count, total)
                self._histogram(self.by_rank.setdefault(rank, {}), full).observe_aggregate(
                    count, total
                )

    def absorb_transfers(
        self, counters: Union[TransferCounters, dict], prefix: str = "transfer."
    ) -> None:
        """Fold a transfer-counter snapshot into plain counters."""
        snapshot = counters.snapshot() if isinstance(counters, TransferCounters) else counters
        for kind, n in snapshot["copies"].items():
            if n:
                self.incr(f"{prefix}copies.{kind}", n)
        for kind, n in snapshot["bytes_copied"].items():
            if n:
                self.incr(f"{prefix}bytes_copied.{kind}", n)
        if snapshot["allocations"]:
            self.incr(f"{prefix}allocations", snapshot["allocations"])
            self.incr(f"{prefix}bytes_allocated", snapshot["bytes_allocated"])
        # Older snapshots (pre pool-eviction accounting) lack these keys.
        if snapshot.get("evictions"):
            self.incr(f"{prefix}pool_evictions", snapshot["evictions"])
            self.incr(f"{prefix}bytes_evicted", snapshot.get("bytes_evicted", 0))

    def absorb_faults(self, stats, prefix: str = "fault.") -> None:
        """Fold a fault-layer stats snapshot into plain counters.

        ``stats`` is a :class:`~repro.faults.FaultStats` (anything with a
        ``snapshot()``) or a plain ``{name: count}`` dict.
        """
        snapshot = stats.snapshot() if hasattr(stats, "snapshot") else dict(stats)
        for name, n in snapshot.items():
            if n:
                self.incr(f"{prefix}{name}", n)

    def absorb_resilience(self, stats, prefix: str = "resilience.") -> None:
        """Fold a resilience stats snapshot (recoveries, deposits, replays,
        adoptions, ...) into plain counters; same contract as
        :meth:`absorb_faults`."""
        self.absorb_faults(stats, prefix=prefix)

    # -- reporting -----------------------------------------------------------

    def summary(self, per_rank: bool = False) -> str:
        """Human-readable table: one histogram row per span name."""
        lines = []
        if self.histograms:
            lines.append(
                f"{'span':<24} {'count':>7} {'total_s':>10} {'mean_ms':>10} "
                f"{'min_ms':>10} {'max_ms':>10}"
            )
            for name in sorted(self.histograms):
                lines.append(self._row(name, self.histograms[name]))
        if per_rank:
            for rank in sorted(self.by_rank, key=lambda r: (r is None, r)):
                label = "driver" if rank is None else f"rank {rank}"
                lines.append(f"-- {label}")
                for name in sorted(self.by_rank[rank]):
                    lines.append(self._row(name, self.by_rank[rank][name]))
        if self.counters:
            lines.append("counters:")
            for name in sorted(self.counters):
                lines.append(f"  {name:<38} {self.counters[name]:>14.0f}")
        return "\n".join(lines)

    @staticmethod
    def _row(name: str, hist: Histogram) -> str:
        return (
            f"{name:<24} {hist.count:>7d} {hist.total:>10.4f} {hist.mean * 1e3:>10.3f} "
            f"{hist.min * 1e3:>10.3f} {hist.max * 1e3:>10.3f}"
        )
