"""SPMD thread executor: run ``fn(comm, *args)`` once per rank.

``run_spmd(nprocs, fn)`` is this runtime's ``mpiexec -n nprocs``.  Each rank
runs in its own thread over a shared :class:`~repro.mpisim.comm.Fabric`; the
first exception aborts every blocked peer (MPI_Abort semantics) and is
re-raised to the caller with its rank attached.

The driver never blocks forever on its workers: ranks wedged *inside* the
fabric are caught by the fabric's own deadlock watchdog, and ranks wedged
*outside* it (user compute that never returns) are caught by a join
timeout derived from ``deadlock_timeout``.  The resulting
:class:`SpmdHangError` names the stuck ranks and — when tracing is on —
the span stack each one was inside (see :mod:`repro.obs.tracer`).
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..faults.injector import FAULTS
from ..obs.tracer import TRACER
from .comm import DEFAULT_DEADLOCK_TIMEOUT, Communicator, Fabric
from .errors import AbortError, CommunicatorError, RankCrashError

WORLD_ID = "world"

#: Executor kinds ``run_spmd`` accepts (argument or ``DDR_EXECUTOR`` env).
EXECUTOR_THREAD = "thread"
EXECUTOR_PROCESS = "process"
_VALID_EXECUTORS = (EXECUTOR_THREAD, EXECUTOR_PROCESS)


def default_executor() -> str:
    """The process-wide default executor (``DDR_EXECUTOR``, else thread)."""
    return os.environ.get("DDR_EXECUTOR", "").strip().lower() or EXECUTOR_THREAD


@dataclass
class RankFailure(Exception):
    """Wraps the first per-rank exception with the failing rank number."""

    rank: int
    original: BaseException

    def __str__(self) -> str:
        return f"rank {self.rank} failed: {self.original!r}"


class SpmdHangError(RuntimeError):
    """Workers outlived the join timeout; lists who is stuck where.

    ``executor`` names the executor kind the run used ("thread" or
    "process") and — for process ranks — ``pids`` maps each world rank to
    its child PID, so a stuck process can be inspected (``py-spy``, ``gdb``)
    or killed from the report alone.
    """

    def __init__(
        self,
        stuck: list[int],
        timeout: float,
        detail: str,
        executor: str = EXECUTOR_THREAD,
        pids: Optional[dict[int, Optional[int]]] = None,
    ) -> None:
        self.stuck_ranks = stuck
        self.executor = executor
        self.pids = dict(pids) if pids else {}
        super().__init__(
            f"{len(stuck)} rank(s) still running after {timeout:.1f}s join "
            f"timeout on the {executor} executor: {detail}"
        )


def world_communicators(
    nprocs: int, deadlock_timeout: float = DEFAULT_DEADLOCK_TIMEOUT
) -> list[Communicator]:
    """Create the COMM_WORLD endpoints for ``nprocs`` ranks on a new fabric."""
    fabric = Fabric(nprocs, deadlock_timeout)
    return [
        Communicator(fabric, WORLD_ID, tuple(range(nprocs)), rank) for rank in range(nprocs)
    ]


def _stuck_detail(stuck: list[int], dead: frozenset[int] = frozenset()) -> str:
    """Name each stuck rank and, if tracing is on, its open span stack.

    Ranks the liveness table (or the fault layer) already knows are dead
    are reported as "crashed", not listed among the stuck ranks with open
    spans — a crashed rank isn't wedged, it was killed by the fault plan.

    When a fault plan is installed the report also carries the
    fault-injection state — the active plan, each rank's op count, and any
    retry in progress — so a chaos-test hang is diagnosable from the error
    message alone.
    """
    active = TRACER.active_spans()
    crashed = set(dead)
    if FAULTS.active:
        crashed |= FAULTS.crashed_ranks()
    parts = []
    for rank in stuck:
        if rank in crashed:
            parts.append(f"rank {rank} crashed (killed by the fault plan; not stuck)")
            continue
        spans = active.get(rank)
        notes = []
        if spans:
            notes.append(f"in {' > '.join(spans)}")
        elif TRACER.enabled:
            notes.append("(no open span)")
        else:
            notes.append("(enable tracing for span context)")
        if FAULTS.active:
            retry = FAULTS.pending_retries.get(rank)
            notes.append(
                f"[faults: op {FAULTS.op_count(rank)}"
                + (f", retrying {retry}" if retry else "")
                + "]"
            )
        parts.append(f"rank {rank} " + " ".join(notes))
    detail = "; ".join(parts)
    if FAULTS.active:
        detail += f" | fault layer: {FAULTS.diagnostics()}"
    return detail


def run_spmd(
    nprocs: int,
    fn: Callable[..., Any],
    *args: Any,
    deadlock_timeout: float = DEFAULT_DEADLOCK_TIMEOUT,
    join_timeout: Optional[float] = None,
    resilient: bool = False,
    executor: Optional[str] = None,
    spawn_slots: Optional[int] = None,
    **kwargs: Any,
) -> list[Any]:
    """Execute ``fn(comm, *args, **kwargs)`` on ``nprocs`` ranks.

    Returns the per-rank return values, in rank order.  If any rank raises,
    every other rank is aborted and :class:`RankFailure` propagates the
    first failure (by rank order among failures).

    ``executor`` selects how ranks run: ``"thread"`` (the default) shares
    one address space and supports the zero-copy transport; ``"process"``
    (see :mod:`repro.mpisim.procexec`) forks one OS process per rank —
    true multi-core parallelism, payloads via shared memory.  ``None``
    follows the ``DDR_EXECUTOR`` environment variable.

    With ``resilient=True`` a :class:`RankCrashError` does *not* abort the
    run: the crashed rank is recorded in the fabric's liveness table (so
    survivors' blocked operations surface typed failures instead of
    hanging), its slot in the result list holds the crash exception, and
    the surviving ranks keep running — the contract ULFM-style recovery
    (``repro.resilience``) builds on.  Any other exception still aborts.

    ``join_timeout`` bounds how long the driver waits for worker threads
    *without observing progress* (a worker finishing renews the window); it
    defaults to ``deadlock_timeout * 1.5 + 5`` so the fabric's own
    watchdog, which fires within ``deadlock_timeout`` for any rank blocked
    in communication, always gets to report first.  A rank wedged outside
    the fabric — e.g. user compute that never returns — trips the join
    timeout instead, and :class:`SpmdHangError` reports the stuck ranks
    with their current trace spans.

    ``spawn_slots`` reserves capacity for ranks joining the running world
    via :meth:`Communicator.spawn` (elastic grow).  The thread executor
    grows its fabric in place and ignores the value; the process executor
    pre-provisions that many extra queue slots so forked joiners have
    endpoints (``DDR_SPAWN_SLOTS`` sets the default).  A spawned rank has
    no slot in the returned result list: a clean return retires it, a
    failure aborts the run and is reported like any rank failure.
    """
    if nprocs < 1:
        raise CommunicatorError(f"need at least one rank, got {nprocs}")
    kind = (executor or default_executor()).strip().lower()
    if kind not in _VALID_EXECUTORS:
        raise CommunicatorError(
            f"unknown executor {kind!r} (use one of {_VALID_EXECUTORS})"
        )
    if kind == EXECUTOR_PROCESS:
        from .procexec import run_spmd_processes

        return run_spmd_processes(
            nprocs,
            fn,
            *args,
            deadlock_timeout=deadlock_timeout,
            join_timeout=join_timeout,
            resilient=resilient,
            spawn_slots=spawn_slots,
            **kwargs,
        )

    if join_timeout is None:
        join_timeout = deadlock_timeout * 1.5 + 5.0
    comms = world_communicators(nprocs, deadlock_timeout)
    fabric = comms[0].fabric
    fabric.resilient = resilient
    results: list[Any] = [None] * nprocs
    failures: dict[int, BaseException] = {}
    failures_lock = threading.Lock()

    def worker(rank: int) -> None:
        TRACER.set_thread_rank(rank)
        try:
            results[rank] = fn(comms[rank], *args, **kwargs)
        except AbortError:
            # Secondary failure caused by another rank's abort; ignore.
            pass
        except RankCrashError as exc:
            if resilient:
                # Simulated process death: record it in the liveness table
                # and let the survivors carry on (ULFM semantics).
                results[rank] = exc
                fabric.mark_dead(rank)
            else:
                with failures_lock:
                    failures[rank] = exc
                fabric.abort(exc)
        except BaseException as exc:  # noqa: BLE001 - must propagate anything
            with failures_lock:
                failures[rank] = exc
            fabric.abort(exc)

    threads = [
        threading.Thread(target=worker, args=(rank,), name=f"spmd-rank-{rank}", daemon=True)
        for rank in range(nprocs)
    ]
    for thread in threads:
        thread.start()

    try:
        # Join with a progress-renewed timeout: as long as at least one rank
        # finishes per window the wait continues, so long multi-phase runs are
        # unaffected; only a window with zero completions declares a hang.
        pending = list(enumerate(threads))
        while pending:
            progressed = False
            deadline = time.monotonic() + join_timeout
            for rank, thread in list(pending):
                thread.join(timeout=max(0.0, deadline - time.monotonic()))
                if not thread.is_alive():
                    pending.remove((rank, thread))
                    progressed = True
            if pending and not progressed:
                stuck = [rank for rank, _ in pending]
                detail = _stuck_detail(stuck, dead=fabric.dead_ranks())
                # Wake any peers blocked on the wedged ranks; the stuck threads
                # themselves are daemons and cannot be killed, only reported.
                error = SpmdHangError(
                    stuck, join_timeout, detail, executor=EXECUTOR_THREAD
                )
                fabric.abort(error)
                raise error
    finally:
        # Unlink any shm segments the run staged (the shm transport under
        # the thread executor); live views in stuck daemons stay mapped.
        fabric.close_shm()

    # Failures raised by spawned ranks have no result-list slot; fold them
    # in so a grow-side crash surfaces exactly like an original rank's.
    failures.update(fabric.spawn_failures)
    if failures:
        first_rank = min(failures)
        raise RankFailure(first_rank, failures[first_rank]) from failures[first_rank]
    return results
