"""SPMD thread executor: run ``fn(comm, *args)`` once per rank.

``run_spmd(nprocs, fn)`` is this runtime's ``mpiexec -n nprocs``.  Each rank
runs in its own thread over a shared :class:`~repro.mpisim.comm.Fabric`; the
first exception aborts every blocked peer (MPI_Abort semantics) and is
re-raised to the caller with its rank attached.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable

from .comm import DEFAULT_DEADLOCK_TIMEOUT, Communicator, Fabric
from .errors import AbortError

WORLD_ID = "world"


@dataclass
class RankFailure(Exception):
    """Wraps the first per-rank exception with the failing rank number."""

    rank: int
    original: BaseException

    def __str__(self) -> str:
        return f"rank {self.rank} failed: {self.original!r}"


def world_communicators(
    nprocs: int, deadlock_timeout: float = DEFAULT_DEADLOCK_TIMEOUT
) -> list[Communicator]:
    """Create the COMM_WORLD endpoints for ``nprocs`` ranks on a new fabric."""
    fabric = Fabric(nprocs, deadlock_timeout)
    return [
        Communicator(fabric, WORLD_ID, tuple(range(nprocs)), rank) for rank in range(nprocs)
    ]


def run_spmd(
    nprocs: int,
    fn: Callable[..., Any],
    *args: Any,
    deadlock_timeout: float = DEFAULT_DEADLOCK_TIMEOUT,
    **kwargs: Any,
) -> list[Any]:
    """Execute ``fn(comm, *args, **kwargs)`` on ``nprocs`` ranks.

    Returns the per-rank return values, in rank order.  If any rank raises,
    every other rank is aborted and :class:`RankFailure` propagates the
    first failure (by rank order among failures).
    """
    comms = world_communicators(nprocs, deadlock_timeout)
    fabric = comms[0].fabric
    results: list[Any] = [None] * nprocs
    failures: dict[int, BaseException] = {}
    failures_lock = threading.Lock()

    def worker(rank: int) -> None:
        try:
            results[rank] = fn(comms[rank], *args, **kwargs)
        except AbortError:
            # Secondary failure caused by another rank's abort; ignore.
            pass
        except BaseException as exc:  # noqa: BLE001 - must propagate anything
            with failures_lock:
                failures[rank] = exc
            fabric.abort(exc)

    threads = [
        threading.Thread(target=worker, args=(rank,), name=f"spmd-rank-{rank}", daemon=True)
        for rank in range(nprocs)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    if failures:
        first_rank = min(failures)
        raise RankFailure(first_rank, failures[first_rank]) from failures[first_rank]
    return results
