"""MPI-like derived datatypes over NumPy buffers.

The real DDR library describes strided multidimensional subsets with
``MPI_Type_create_subarray`` and hands them to ``MPI_Alltoallw``.  This
module reproduces that machinery: a :class:`Datatype` knows how to *pack*
elements out of a C-contiguous NumPy buffer and *unpack* them back in.

Only the features DDR needs are implemented — named types, contiguous,
vector, and subarray — but each follows the MPI definition closely enough
that the tests can validate against hand-computed layouts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .errors import DatatypeError

ORDER_C = "C"
ORDER_FORTRAN = "F"


class Datatype:
    """Base class.  Subclasses define element selection within a buffer."""

    #: NumPy scalar dtype of the leaves of this type tree.
    base_dtype: np.dtype

    def size_elements(self) -> int:
        """Number of base elements this datatype selects."""
        raise NotImplementedError

    def size_bytes(self) -> int:
        """Number of payload bytes this datatype selects."""
        return self.size_elements() * self.base_dtype.itemsize

    def pack(self, buffer: np.ndarray) -> np.ndarray:
        """Gather the selected elements of ``buffer`` into a new 1-D array."""
        raise NotImplementedError

    def unpack(self, buffer: np.ndarray, data: np.ndarray) -> None:
        """Scatter ``data`` (1-D, base dtype) into the selected elements."""
        raise NotImplementedError

    # MPI API fidelity: committing is a no-op for an in-process runtime, but
    # the DDR core calls it the way the C library would.
    def Commit(self) -> "Datatype":
        return self

    def Free(self) -> None:
        return None

    def _require_buffer(self, buffer: np.ndarray) -> np.ndarray:
        if not isinstance(buffer, np.ndarray):
            raise DatatypeError(f"expected ndarray buffer, got {type(buffer)!r}")
        if not buffer.flags["C_CONTIGUOUS"]:
            raise DatatypeError("datatype operations require a C-contiguous buffer")
        if buffer.dtype != self.base_dtype:
            raise DatatypeError(
                f"buffer dtype {buffer.dtype} does not match datatype base {self.base_dtype}"
            )
        return buffer.reshape(-1)


@dataclass(frozen=True)
class NamedType(Datatype):
    """A basic MPI type (``MPI_FLOAT`` etc.), wrapping one NumPy dtype."""

    dtype: np.dtype
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "dtype", np.dtype(self.dtype))

    @property
    def base_dtype(self) -> np.dtype:  # type: ignore[override]
        return self.dtype

    def size_elements(self) -> int:
        return 1

    def pack(self, buffer: np.ndarray) -> np.ndarray:
        flat = self._require_buffer(buffer)
        return flat[:1].copy()

    def unpack(self, buffer: np.ndarray, data: np.ndarray) -> None:
        flat = self._require_buffer(buffer)
        flat[:1] = data

    def Create_contiguous(self, count: int) -> "ContiguousType":
        return ContiguousType(self, count)

    def Create_vector(self, count: int, blocklength: int, stride: int) -> "VectorType":
        return VectorType(self, count, blocklength, stride)

    def Create_subarray(
        self,
        sizes: Sequence[int],
        subsizes: Sequence[int],
        starts: Sequence[int],
        order: str = ORDER_C,
    ) -> "SubarrayType":
        return SubarrayType(self, tuple(sizes), tuple(subsizes), tuple(starts), order)

    def Get_size(self) -> int:
        return self.dtype.itemsize


class ContiguousType(Datatype):
    """``count`` consecutive elements starting at the buffer origin."""

    def __init__(self, base: NamedType, count: int) -> None:
        if count < 0:
            raise DatatypeError(f"negative count {count}")
        self.base = base
        self.count = int(count)
        self.base_dtype = base.dtype

    def size_elements(self) -> int:
        return self.count

    def pack(self, buffer: np.ndarray) -> np.ndarray:
        flat = self._require_buffer(buffer)
        if flat.size < self.count:
            raise DatatypeError(f"buffer has {flat.size} elements, type needs {self.count}")
        return flat[: self.count].copy()

    def unpack(self, buffer: np.ndarray, data: np.ndarray) -> None:
        flat = self._require_buffer(buffer)
        if flat.size < self.count:
            raise DatatypeError(f"buffer has {flat.size} elements, type needs {self.count}")
        flat[: self.count] = data


class VectorType(Datatype):
    """``count`` blocks of ``blocklength`` elements, ``stride`` elements apart."""

    def __init__(self, base: NamedType, count: int, blocklength: int, stride: int) -> None:
        if count < 0 or blocklength < 0:
            raise DatatypeError("count and blocklength must be non-negative")
        self.base = base
        self.count = int(count)
        self.blocklength = int(blocklength)
        self.stride = int(stride)
        self.base_dtype = base.dtype

    def size_elements(self) -> int:
        return self.count * self.blocklength

    def _extent(self) -> int:
        if self.count == 0:
            return 0
        return (self.count - 1) * self.stride + self.blocklength

    def _indices(self) -> np.ndarray:
        starts = np.arange(self.count) * self.stride
        offsets = np.arange(self.blocklength)
        return (starts[:, None] + offsets[None, :]).reshape(-1)

    def pack(self, buffer: np.ndarray) -> np.ndarray:
        flat = self._require_buffer(buffer)
        if flat.size < self._extent():
            raise DatatypeError("buffer smaller than vector extent")
        return flat[self._indices()].copy()

    def unpack(self, buffer: np.ndarray, data: np.ndarray) -> None:
        flat = self._require_buffer(buffer)
        if flat.size < self._extent():
            raise DatatypeError("buffer smaller than vector extent")
        flat[self._indices()] = data


class SubarrayType(Datatype):
    """An N-dimensional sub-block of an N-dimensional array (MPI subarray).

    ``sizes`` is the full array shape, ``subsizes`` the block shape and
    ``starts`` the block origin, exactly as in ``MPI_Type_create_subarray``.
    Only C (row-major) order is supported; DDR never uses Fortran order.
    """

    def __init__(
        self,
        base: NamedType,
        sizes: Sequence[int],
        subsizes: Sequence[int],
        starts: Sequence[int],
        order: str = ORDER_C,
    ) -> None:
        if order != ORDER_C:
            raise DatatypeError("only C-order subarrays are supported")
        sizes_t = tuple(int(s) for s in sizes)
        subsizes_t = tuple(int(s) for s in subsizes)
        starts_t = tuple(int(s) for s in starts)
        if not (len(sizes_t) == len(subsizes_t) == len(starts_t)):
            raise DatatypeError("sizes, subsizes and starts must have equal length")
        if len(sizes_t) == 0:
            raise DatatypeError("subarray must have at least one dimension")
        for full, sub, start in zip(sizes_t, subsizes_t, starts_t):
            if full < 0 or sub < 0 or start < 0:
                raise DatatypeError("negative subarray geometry")
            if start + sub > full:
                raise DatatypeError(
                    f"subarray [{start}, {start + sub}) exceeds dimension of size {full}"
                )
        self.base = base
        self.sizes = sizes_t
        self.subsizes = subsizes_t
        self.starts = starts_t
        self.base_dtype = base.dtype

    def size_elements(self) -> int:
        total = 1
        for sub in self.subsizes:
            total *= sub
        return total

    def _slices(self) -> tuple[slice, ...]:
        return tuple(
            slice(start, start + sub) for start, sub in zip(self.starts, self.subsizes)
        )

    def _full_elements(self) -> int:
        total = 1
        for size in self.sizes:
            total *= size
        return total

    def pack(self, buffer: np.ndarray) -> np.ndarray:
        flat = self._require_buffer(buffer)
        if flat.size < self._full_elements():
            raise DatatypeError(
                f"buffer has {flat.size} elements, subarray full size is {self._full_elements()}"
            )
        grid = flat[: self._full_elements()].reshape(self.sizes)
        return grid[self._slices()].reshape(-1).copy()

    def unpack(self, buffer: np.ndarray, data: np.ndarray) -> None:
        flat = self._require_buffer(buffer)
        if flat.size < self._full_elements():
            raise DatatypeError(
                f"buffer has {flat.size} elements, subarray full size is {self._full_elements()}"
            )
        grid = flat[: self._full_elements()].reshape(self.sizes)
        grid[self._slices()] = np.asarray(data, dtype=self.base_dtype).reshape(self.subsizes)


# ---------------------------------------------------------------------------
# Named type constants (the subset the paper's API touches, plus friends).
# ---------------------------------------------------------------------------

BYTE = NamedType(np.uint8, "MPI_BYTE")
CHAR = NamedType(np.int8, "MPI_CHAR")
SHORT = NamedType(np.int16, "MPI_SHORT")
INT = NamedType(np.int32, "MPI_INT")
LONG = NamedType(np.int64, "MPI_LONG")
UNSIGNED = NamedType(np.uint32, "MPI_UNSIGNED")
UNSIGNED_CHAR = NamedType(np.uint8, "MPI_UNSIGNED_CHAR")
UNSIGNED_SHORT = NamedType(np.uint16, "MPI_UNSIGNED_SHORT")
UNSIGNED_LONG = NamedType(np.uint64, "MPI_UNSIGNED_LONG")
FLOAT = NamedType(np.float32, "MPI_FLOAT")
DOUBLE = NamedType(np.float64, "MPI_DOUBLE")

_BY_DTYPE: dict[np.dtype, NamedType] = {}
for _named in (BYTE, CHAR, SHORT, INT, LONG, UNSIGNED_SHORT, UNSIGNED, UNSIGNED_LONG, FLOAT, DOUBLE):
    _BY_DTYPE.setdefault(_named.dtype, _named)


def named_type_for(dtype: np.dtype | type | str) -> NamedType:
    """Return the :class:`NamedType` for a NumPy dtype (creating one if new)."""
    key = np.dtype(dtype)
    found = _BY_DTYPE.get(key)
    if found is None:
        found = NamedType(key, f"MPI_{key.name.upper()}")
        _BY_DTYPE[key] = found
    return found
