"""MPI-like derived datatypes over NumPy buffers.

The real DDR library describes strided multidimensional subsets with
``MPI_Type_create_subarray`` and hands them to ``MPI_Alltoallw``.  This
module reproduces that machinery: a :class:`Datatype` knows how to *pack*
elements out of a C-contiguous NumPy buffer and *unpack* them back in.

Only the features DDR needs are implemented — named types, contiguous,
vector, and subarray — but each follows the MPI definition closely enough
that the tests can validate against hand-computed layouts.

Beyond pack/unpack, every type supports a *zero-copy protocol*: ``view``
exposes the selected elements as an ndarray view (no data movement) when
the selection is expressible with basic slicing, and ``copy_into`` moves a
selection from one buffer straight into another's selection — one
``np.copyto`` instead of pack + unpack — falling back to staging only for
selections that cannot be viewed (e.g. overlapping vectors).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..utils.timing import TRANSFER_COUNTERS
from .errors import DatatypeError

ORDER_C = "C"
ORDER_FORTRAN = "F"


class Datatype:
    """Base class.  Subclasses define element selection within a buffer."""

    #: NumPy scalar dtype of the leaves of this type tree.
    base_dtype: np.dtype

    def size_elements(self) -> int:
        """Number of base elements this datatype selects."""
        raise NotImplementedError

    def size_bytes(self) -> int:
        """Number of payload bytes this datatype selects."""
        return self.size_elements() * self.base_dtype.itemsize

    def pack(self, buffer: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Gather the selected elements of ``buffer`` into a 1-D array.

        With ``out`` (a 1-D array of at least ``size_elements()`` base
        elements) the gather fills the leading slice of ``out`` and returns
        that slice, so callers with a staging pool can avoid allocating.
        """
        raise NotImplementedError

    def unpack(self, buffer: np.ndarray, data: np.ndarray) -> None:
        """Scatter ``data`` (1-D, base dtype) into the selected elements."""
        raise NotImplementedError

    def view(self, buffer: np.ndarray) -> Optional[np.ndarray]:
        """A no-copy ndarray view of the selection, in pack (C) order.

        Returns ``None`` when the selection cannot be expressed with basic
        slicing (callers must then stage through :meth:`pack`).  The view
        may be strided; reading it in C order yields exactly ``pack(...)``.
        """
        return None

    def is_contiguous(self) -> bool:
        """True when the selection is one flat run of the buffer, so a
        direct copy degrades to a single memcpy-style block move."""
        return False

    def copy_into(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        dst_type: Optional["Datatype"] = None,
    ) -> int:
        """Copy this type's selection of ``src`` directly into ``dst_type``'s
        selection of ``dst`` (same type by default).  Returns bytes moved.

        The fast path is one ``np.copyto`` between two views — no staging
        allocation.  When either selection is not viewable, or the two
        selections are strided *and* shaped differently, it falls back to
        ``dst_type.unpack(dst, self.pack(src))``.
        """
        target = dst_type if dst_type is not None else self
        if target.size_elements() != self.size_elements():
            raise DatatypeError(
                f"copy_into: source selects {self.size_elements()} elements, "
                f"destination selects {target.size_elements()}"
            )
        nbytes = self.size_bytes()
        src_view = self.view(src)
        dst_view = target.view(dst)
        if src_view is not None and dst_view is not None:
            if src_view.shape == dst_view.shape:
                np.copyto(dst_view, src_view, casting="unsafe")
            elif src_view.flags["C_CONTIGUOUS"]:
                # A contiguous source reshapes without copying.
                np.copyto(dst_view, src_view.reshape(dst_view.shape), casting="unsafe")
            elif dst_view.flags["C_CONTIGUOUS"]:
                np.copyto(dst_view.reshape(src_view.shape), src_view, casting="unsafe")
            else:
                target.unpack(dst, self.pack(src))
                return nbytes
            if TRANSFER_COUNTERS.enabled:
                TRANSFER_COUNTERS.count_copy("direct", nbytes)
            return nbytes
        target.unpack(dst, self.pack(src))
        return nbytes

    # MPI API fidelity: committing is a no-op for an in-process runtime, but
    # the DDR core calls it the way the C library would.
    def Commit(self) -> "Datatype":
        return self

    def Free(self) -> None:
        return None

    def _require_buffer(self, buffer: np.ndarray) -> np.ndarray:
        if not isinstance(buffer, np.ndarray):
            raise DatatypeError(f"expected ndarray buffer, got {type(buffer)!r}")
        if not buffer.flags["C_CONTIGUOUS"]:
            raise DatatypeError("datatype operations require a C-contiguous buffer")
        if buffer.dtype != self.base_dtype:
            raise DatatypeError(
                f"buffer dtype {buffer.dtype} does not match datatype base {self.base_dtype}"
            )
        return buffer.reshape(-1)


def _packed(selected: np.ndarray, out: Optional[np.ndarray], dtype: np.dtype) -> np.ndarray:
    """Materialise ``selected`` (a view in pack order) as a 1-D staging array.

    Allocates unless ``out`` (1-D, matching dtype, large enough) is given,
    in which case the leading slice of ``out`` is filled and returned.
    """
    count = selected.size
    nbytes = count * dtype.itemsize
    if out is None:
        result = np.empty(count, dtype=dtype)
        if TRANSFER_COUNTERS.enabled:
            TRANSFER_COUNTERS.count_alloc(nbytes)
    else:
        if out.ndim != 1 or out.dtype != dtype or not out.flags["C_CONTIGUOUS"]:
            raise DatatypeError(
                f"pack out array must be 1-D contiguous of dtype {dtype}, got "
                f"{out.ndim}-D {out.dtype}"
            )
        if out.size < count:
            raise DatatypeError(f"pack out array holds {out.size} elements, need {count}")
        result = out[:count]
    np.copyto(result.reshape(selected.shape), selected)
    if TRANSFER_COUNTERS.enabled:
        TRANSFER_COUNTERS.count_copy("pack", nbytes)
    return result


@dataclass(frozen=True)
class NamedType(Datatype):
    """A basic MPI type (``MPI_FLOAT`` etc.), wrapping one NumPy dtype."""

    dtype: np.dtype
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "dtype", np.dtype(self.dtype))

    @property
    def base_dtype(self) -> np.dtype:  # type: ignore[override]
        return self.dtype

    def size_elements(self) -> int:
        return 1

    def is_contiguous(self) -> bool:
        return True

    def view(self, buffer: np.ndarray) -> np.ndarray:
        return self._require_buffer(buffer)[:1]

    def pack(self, buffer: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        flat = self._require_buffer(buffer)
        return _packed(flat[:1], out, self.dtype)

    def unpack(self, buffer: np.ndarray, data: np.ndarray) -> None:
        flat = self._require_buffer(buffer)
        flat[:1] = data
        if TRANSFER_COUNTERS.enabled:
            TRANSFER_COUNTERS.count_copy("unpack", self.dtype.itemsize)

    def Create_contiguous(self, count: int) -> "ContiguousType":
        return ContiguousType(self, count)

    def Create_vector(self, count: int, blocklength: int, stride: int) -> "VectorType":
        return VectorType(self, count, blocklength, stride)

    def Create_subarray(
        self,
        sizes: Sequence[int],
        subsizes: Sequence[int],
        starts: Sequence[int],
        order: str = ORDER_C,
    ) -> "SubarrayType":
        return SubarrayType(self, tuple(sizes), tuple(subsizes), tuple(starts), order)

    def Get_size(self) -> int:
        return self.dtype.itemsize


class ContiguousType(Datatype):
    """``count`` consecutive elements starting at the buffer origin."""

    def __init__(self, base: NamedType, count: int) -> None:
        if count < 0:
            raise DatatypeError(f"negative count {count}")
        self.base = base
        self.count = int(count)
        self.base_dtype = base.dtype

    def size_elements(self) -> int:
        return self.count

    def is_contiguous(self) -> bool:
        return True

    def view(self, buffer: np.ndarray) -> np.ndarray:
        flat = self._require_buffer(buffer)
        if flat.size < self.count:
            raise DatatypeError(f"buffer has {flat.size} elements, type needs {self.count}")
        return flat[: self.count]

    def pack(self, buffer: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        return _packed(self.view(buffer), out, self.base_dtype)

    def unpack(self, buffer: np.ndarray, data: np.ndarray) -> None:
        flat = self._require_buffer(buffer)
        if flat.size < self.count:
            raise DatatypeError(f"buffer has {flat.size} elements, type needs {self.count}")
        flat[: self.count] = data
        if TRANSFER_COUNTERS.enabled:
            TRANSFER_COUNTERS.count_copy("unpack", self.size_bytes())


class VectorType(Datatype):
    """``count`` blocks of ``blocklength`` elements, ``stride`` elements apart."""

    def __init__(self, base: NamedType, count: int, blocklength: int, stride: int) -> None:
        if count < 0 or blocklength < 0:
            raise DatatypeError("count and blocklength must be non-negative")
        self.base = base
        self.count = int(count)
        self.blocklength = int(blocklength)
        self.stride = int(stride)
        self.base_dtype = base.dtype
        # Geometry is immutable, so the gather indices (and extent) are
        # computed once here rather than on every pack/unpack.
        starts = np.arange(self.count) * self.stride
        offsets = np.arange(self.blocklength)
        self._indices_cache = (starts[:, None] + offsets[None, :]).reshape(-1)
        self._extent_cache = (
            0 if self.count == 0 else (self.count - 1) * self.stride + self.blocklength
        )

    def size_elements(self) -> int:
        return self.count * self.blocklength

    def is_contiguous(self) -> bool:
        return self.count <= 1 or self.blocklength == self.stride

    def _extent(self) -> int:
        return self._extent_cache

    def _indices(self) -> np.ndarray:
        return self._indices_cache

    def view(self, buffer: np.ndarray) -> Optional[np.ndarray]:
        flat = self._require_buffer(buffer)
        if flat.size < self._extent_cache:
            raise DatatypeError("buffer smaller than vector extent")
        if self.count == 0 or self.blocklength == 0:
            return flat[:0]
        if self.is_contiguous():
            return flat[: self.count * self.blocklength]
        if self.blocklength < self.stride and flat.size >= self.count * self.stride:
            rows = flat[: self.count * self.stride].reshape(self.count, self.stride)
            return rows[:, : self.blocklength]
        # Overlapping blocks (blocklength > stride), or a buffer that ends
        # exactly at the extent: not expressible as a basic-slicing view.
        return None

    def pack(self, buffer: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        selected = self.view(buffer)
        if selected is not None:
            return _packed(selected, out, self.base_dtype)
        flat = self._require_buffer(buffer)
        gathered = flat[self._indices_cache]  # fancy indexing gathers into a new array
        if TRANSFER_COUNTERS.enabled:
            TRANSFER_COUNTERS.count_alloc(self.size_bytes())
            TRANSFER_COUNTERS.count_copy("pack", self.size_bytes())
        if out is None:
            return gathered
        return _packed(gathered, out, self.base_dtype)

    def unpack(self, buffer: np.ndarray, data: np.ndarray) -> None:
        flat = self._require_buffer(buffer)
        if flat.size < self._extent_cache:
            raise DatatypeError("buffer smaller than vector extent")
        flat[self._indices_cache] = data
        if TRANSFER_COUNTERS.enabled:
            TRANSFER_COUNTERS.count_copy("unpack", self.size_bytes())


class SubarrayType(Datatype):
    """An N-dimensional sub-block of an N-dimensional array (MPI subarray).

    ``sizes`` is the full array shape, ``subsizes`` the block shape and
    ``starts`` the block origin, exactly as in ``MPI_Type_create_subarray``.
    Only C (row-major) order is supported; DDR never uses Fortran order.
    """

    def __init__(
        self,
        base: NamedType,
        sizes: Sequence[int],
        subsizes: Sequence[int],
        starts: Sequence[int],
        order: str = ORDER_C,
    ) -> None:
        if order != ORDER_C:
            raise DatatypeError("only C-order subarrays are supported")
        sizes_t = tuple(int(s) for s in sizes)
        subsizes_t = tuple(int(s) for s in subsizes)
        starts_t = tuple(int(s) for s in starts)
        if not (len(sizes_t) == len(subsizes_t) == len(starts_t)):
            raise DatatypeError("sizes, subsizes and starts must have equal length")
        if len(sizes_t) == 0:
            raise DatatypeError("subarray must have at least one dimension")
        for full, sub, start in zip(sizes_t, subsizes_t, starts_t):
            if full < 0 or sub < 0 or start < 0:
                raise DatatypeError("negative subarray geometry")
            if start + sub > full:
                raise DatatypeError(
                    f"subarray [{start}, {start + sub}) exceeds dimension of size {full}"
                )
        self.base = base
        self.sizes = sizes_t
        self.subsizes = subsizes_t
        self.starts = starts_t
        self.base_dtype = base.dtype
        # Geometry is immutable: precompute the selection slices, element
        # counts, and whether the selection is a single contiguous run of
        # the flat buffer (true when every axis except the slowest-varying
        # non-trivial one is taken whole).
        self._slices_cache = tuple(
            slice(start, start + sub) for start, sub in zip(starts_t, subsizes_t)
        )
        total = 1
        for sub in subsizes_t:
            total *= sub
        self._size_cache = total
        full = 1
        for size in sizes_t:
            full *= size
        self._full_cache = full
        contiguous = True
        for axis in range(len(sizes_t) - 1, -1, -1):
            if subsizes_t[axis] == sizes_t[axis]:
                continue
            # First (fastest-varying) partial axis found; every slower axis
            # must then select a single index for the run to stay flat.
            contiguous = all(s == 1 for s in subsizes_t[:axis])
            break
        self._contiguous_cache = contiguous or total <= 1

    def size_elements(self) -> int:
        return self._size_cache

    def is_contiguous(self) -> bool:
        return self._contiguous_cache

    def _slices(self) -> tuple[slice, ...]:
        return self._slices_cache

    def _full_elements(self) -> int:
        return self._full_cache

    def _grid(self, buffer: np.ndarray) -> np.ndarray:
        flat = self._require_buffer(buffer)
        if flat.size < self._full_cache:
            raise DatatypeError(
                f"buffer has {flat.size} elements, subarray full size is {self._full_cache}"
            )
        return flat[: self._full_cache].reshape(self.sizes)

    def view(self, buffer: np.ndarray) -> np.ndarray:
        return self._grid(buffer)[self._slices_cache]

    def pack(self, buffer: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        return _packed(self._grid(buffer)[self._slices_cache], out, self.base_dtype)

    def unpack(self, buffer: np.ndarray, data: np.ndarray) -> None:
        grid = self._grid(buffer)
        grid[self._slices_cache] = np.asarray(data, dtype=self.base_dtype).reshape(
            self.subsizes
        )
        if TRANSFER_COUNTERS.enabled:
            TRANSFER_COUNTERS.count_copy("unpack", self.size_bytes())


# ---------------------------------------------------------------------------
# Named type constants (the subset the paper's API touches, plus friends).
# ---------------------------------------------------------------------------

BYTE = NamedType(np.uint8, "MPI_BYTE")
CHAR = NamedType(np.int8, "MPI_CHAR")
SHORT = NamedType(np.int16, "MPI_SHORT")
INT = NamedType(np.int32, "MPI_INT")
LONG = NamedType(np.int64, "MPI_LONG")
UNSIGNED = NamedType(np.uint32, "MPI_UNSIGNED")
UNSIGNED_CHAR = NamedType(np.uint8, "MPI_UNSIGNED_CHAR")
UNSIGNED_SHORT = NamedType(np.uint16, "MPI_UNSIGNED_SHORT")
UNSIGNED_LONG = NamedType(np.uint64, "MPI_UNSIGNED_LONG")
FLOAT = NamedType(np.float32, "MPI_FLOAT")
DOUBLE = NamedType(np.float64, "MPI_DOUBLE")

_BY_DTYPE: dict[np.dtype, NamedType] = {}
for _named in (BYTE, CHAR, SHORT, INT, LONG, UNSIGNED_SHORT, UNSIGNED, UNSIGNED_LONG,
               FLOAT, DOUBLE):
    _BY_DTYPE.setdefault(_named.dtype, _named)


def named_type_for(dtype: np.dtype | type | str) -> NamedType:
    """Return the :class:`NamedType` for a NumPy dtype (creating one if new)."""
    key = np.dtype(dtype)
    found = _BY_DTYPE.get(key)
    if found is None:
        found = NamedType(key, f"MPI_{key.name.upper()}")
        _BY_DTYPE[key] = found
    return found
